//! Offline shim for the `rand` crate (0.9 API surface used by this
//! workspace): `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the
//! `Rng` extension methods `random_range` / `random_bool`.
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `rand`'s ChaCha12, but the workspace only relies
//! on determinism-under-seed, not on a specific stream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from the range.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Maps 64 random bits to a uniform f64 in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        // 53-bit resolution over the closed interval.
        let u = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + u * (hi - lo)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = hi.wrapping_sub(lo) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_signed_range!(i64, i32);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed through SplitMix64, per the xoshiro authors'
            // recommendation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random_range(0u64..1000), b.random_range(0u64..1000));
        }
        let mut c = StdRng::seed_from_u64(8);
        let first: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let other: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(first, other);
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f = rng.random_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
            let g = rng.random_range(-0.1f64..=0.1);
            assert!((-0.1..=0.1).contains(&g));
            let u = rng.random_range(3usize..7);
            assert!((3..7).contains(&u));
            let v = rng.random_range(0usize..=3);
            assert!(v <= 3);
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4500..5500).contains(&hits), "{hits}");
        assert!((0..100).all(|_| !rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn float_mean_is_centred() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random_range(0.0f64..=1.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "{mean}");
    }
}
