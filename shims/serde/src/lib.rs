//! Offline shim for `serde`: the workspace only *derives* `Serialize` /
//! `Deserialize` (no serializer is ever instantiated), so the traits are
//! markers and the derives expand to nothing.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
