//! Offline shim for `crossbeam`: only `crossbeam::thread::scope` and
//! `Scope::spawn`, layered over `std::thread::scope` (stable since Rust
//! 1.63). The spawned closure receives a `&Scope` argument for API
//! parity with crossbeam; panics in workers propagate when joined, and
//! `scope` itself returns `Ok` unless the closure panics (matching how
//! the workspace uses the `Result`).

#![forbid(unsafe_code)]

/// Scoped-thread API, mirroring `crossbeam::thread`.
pub mod thread {
    /// A scope handle; spawned threads may borrow from the enclosing
    /// environment.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Waits for the thread and returns its result (`Err` if it
        /// panicked).
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope (so it
        /// can spawn further threads, as in crossbeam).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || {
                    let scope = Scope { inner: inner_scope };
                    f(&scope)
                }),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-environment threads can be
    /// spawned; all are joined before returning.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scope_joins_and_borrows() {
        let counter = AtomicUsize::new(0);
        let data = vec![1usize, 2, 3, 4];
        let total = crate::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let counter = &counter;
                    let data = &data;
                    scope.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        data[i]
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum::<usize>()
        })
        .expect("scope runs");
        assert_eq!(total, 10);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn worker_panics_surface_on_join() {
        let caught = crate::thread::scope(|scope| {
            let h = scope.spawn(|_| panic!("boom"));
            h.join().is_err()
        })
        .expect("scope itself survives");
        assert!(caught);
    }
}
