//! Offline shim for `proptest`: a deterministic property-testing engine
//! with the API surface the workspace uses — `Strategy` (ranges, tuples,
//! `Just`, `prop_map`, `prop_flat_map`, `Union`), `any::<T>()`,
//! `prop::collection::vec`, `prop::sample::Index`, `ProptestConfig`, and
//! the `proptest!` / `prop_assert*!` / `prop_assume!` / `prop_oneof!`
//! macros.
//!
//! Differences from upstream, by design: no shrinking (the raw failing
//! case is printed instead), no persistence of regression seeds (the
//! checked-in `.proptest-regressions` files are ignored), and each test
//! derives its RNG seed from its own name so runs are reproducible.

#![forbid(unsafe_code)]

pub mod test_runner {
    //! Config, error type, and the case-running loop.

    use super::strategy::Strategy;
    use rand::{RngCore, SeedableRng};
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};

    /// Deterministic RNG handed to strategies.
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// Seeds the stream from a test name (stable across runs).
        pub fn from_name(name: &str) -> Self {
            let mut hasher = DefaultHasher::new();
            name.hash(&mut hasher);
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(hasher.finish()),
            }
        }

        /// Next raw 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.inner.next_u64()
        }

        /// Uniform draw from the inclusive integer range `[lo, hi]`.
        pub fn u64_in(&mut self, lo: u64, hi: u64) -> u64 {
            debug_assert!(lo <= hi);
            if lo == 0 && hi == u64::MAX {
                return self.next_u64();
            }
            lo + self.next_u64() % (hi - lo + 1)
        }

        /// Uniform draw from `[lo, hi]` over `u128`.
        pub fn u128_in(&mut self, lo: u128, hi: u128) -> u128 {
            debug_assert!(lo <= hi);
            let raw = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            if lo == 0 && hi == u128::MAX {
                return raw;
            }
            lo + raw % (hi - lo + 1)
        }

        /// Uniform draw from `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The case violated a `prop_assume!` precondition; try another.
        Reject(String),
        /// The property itself failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Constructs a rejection (assume failure).
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }

        /// Constructs a property failure.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }
    }

    /// Outcome of one generated case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// Runner configuration; only `cases` is honoured by the shim.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config overriding the number of cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Drives one property: generates cases until `config.cases` pass,
    /// panicking on the first failure (printing the offending values).
    pub fn run<S, F>(config: &ProptestConfig, name: &str, strategy: &S, mut check: F)
    where
        S: Strategy,
        F: FnMut(S::Value) -> TestCaseResult,
    {
        let mut rng = TestRng::from_name(name);
        let mut passed: u32 = 0;
        let mut rejected: u64 = 0;
        let reject_budget = u64::from(config.cases.max(1)) * 64;
        while passed < config.cases {
            let value = strategy.generate(&mut rng);
            let shown = format!("{value:?}");
            match check(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > reject_budget {
                        panic!(
                            "proptest shim: `{name}` rejected {rejected} cases \
                             (budget {reject_budget}); loosen the strategy or the assume"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest shim: `{name}` failed after {passed} passing cases\n\
                         \x20 failure: {msg}\n\x20 input:   {shown}\n\
                         (no shrinking in the shim; the input above is the raw case)"
                    );
                }
            }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies and combinators.

    use super::test_runner::TestRng;
    use std::fmt;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeFrom, RangeInclusive};

    /// Generates values of `Self::Value` from an RNG.
    pub trait Strategy {
        /// The value type produced (printable on failure).
        type Value: fmt::Debug;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: fmt::Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { source: self, f }
        }

        /// Type-erases the strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Box::new(self),
            }
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone + fmt::Debug>(pub T);

    impl<T: Clone + fmt::Debug> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        O: fmt::Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.generate(rng))
        }
    }

    /// `prop_flat_map` combinator.
    pub struct FlatMap<S, F> {
        source: S,
        f: F,
    }

    impl<S, T, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        T: Strategy,
        F: Fn(S::Value) -> T,
    {
        type Value = T::Value;
        fn generate(&self, rng: &mut TestRng) -> T::Value {
            (self.f)(self.source.generate(rng)).generate(rng)
        }
    }

    /// Type-erased strategy.
    pub struct BoxedStrategy<T: fmt::Debug> {
        inner: Box<dyn Strategy<Value = T>>,
    }

    impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Uniform choice among alternative strategies (`prop_oneof!`).
    pub struct Union<T: fmt::Debug> {
        choices: Vec<BoxedStrategy<T>>,
    }

    impl<T: fmt::Debug> Union<T> {
        /// Builds a union over already-boxed alternatives.
        pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!choices.is_empty(), "prop_oneof! needs an alternative");
            Union { choices }
        }
    }

    impl<T: fmt::Debug> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.u64_in(0, self.choices.len() as u64 - 1) as usize;
            self.choices[i].generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            // The endpoint carries measure zero; reuse the half-open draw
            // and pin the result into the closed interval.
            let v = self.start() + rng.unit_f64() * (self.end() - self.start());
            v.min(*self.end())
        }
    }

    macro_rules! impl_uint_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    rng.u64_in(self.start as u64, self.end as u64 - 1) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.u64_in(*self.start() as u64, *self.end() as u64) as $t
                }
            }
            impl Strategy for RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.u64_in(self.start as u64, <$t>::MAX as u64) as $t
                }
            }
        )*};
    }
    impl_uint_ranges!(u64, u32, u16, u8, usize);

    macro_rules! impl_int_ranges {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add((rng.u64_in(0, span - 1)) as i64) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = *self.start() as i64;
                    let hi = *self.end() as i64;
                    if lo == i64::MIN && hi == i64::MAX {
                        return rng.next_u64() as i64 as $t;
                    }
                    let span = hi.wrapping_sub(lo) as u64 + 1;
                    lo.wrapping_add(rng.u64_in(0, span - 1) as i64) as $t
                }
            }
        )*};
    }
    impl_int_ranges!(i64, i32);

    impl Strategy for Range<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            assert!(self.start < self.end, "empty range strategy");
            rng.u128_in(self.start, self.end - 1)
        }
    }

    impl Strategy for RangeInclusive<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            rng.u128_in(*self.start(), *self.end())
        }
    }

    impl Strategy for RangeFrom<u128> {
        type Value = u128;
        fn generate(&self, rng: &mut TestRng) -> u128 {
            rng.u128_in(self.start, u128::MAX)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);

    /// Strategy for `any::<T>()`.
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: super::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn any_strategy<T>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod arbitrary {
    //! `Arbitrary` for the primitive types the workspace draws with
    //! `any::<T>()`.

    use super::strategy::Any;
    use super::test_runner::TestRng;
    use std::fmt;

    /// Types with a canonical unconstrained generator.
    pub trait Arbitrary: Sized + fmt::Debug {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy generating unconstrained values of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        super::strategy::any_strategy()
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_uint!(u64, u32, u16, u8, usize, i64, i32);

    impl Arbitrary for u128 {
        fn arbitrary(rng: &mut TestRng) -> u128 {
            (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Reinterpreted random bits: covers the full exponent range,
            // subnormals, infinities, and NaNs, like upstream's any::<f64>().
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    //! `prop::collection::vec` and the size specification it accepts.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive bounds on a generated collection's length.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Generates `Vec`s whose elements come from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.u64_in(self.size.lo as u64, self.size.hi as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! `prop::sample::Index`: a length-agnostic index.

    use super::arbitrary::Arbitrary;
    use super::test_runner::TestRng;

    /// An index drawn before the collection length is known; scale it
    /// with [`Index::index`].
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Maps the draw uniformly onto `0..len` (`len` must be > 0).
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            ((u128::from(self.0) * len as u128) >> 64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// The `prop::` namespace (`prop::collection::vec`, `prop::sample::Index`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests: each `name(binding in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($bind:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                $crate::test_runner::run(&config, stringify!($name), &strategy, |values| {
                    let ($($bind,)+) = values;
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(
            @with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

/// Fails the current case (with an optional formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format_args!($($fmt)+),
            )));
        }
    };
}

/// Fails the current case unless the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), left, right,
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right),
                format_args!($($fmt)+), left, right,
            )));
        }
    }};
}

/// Fails the current case if the two sides compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left == right {
            return Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                left,
            )));
        }
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assume failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u64..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (0.5f64..=2.0).generate(&mut rng);
            assert!((0.5..=2.0).contains(&f));
            let i = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&i));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = crate::collection::vec(0u64..100, 1..=8);
        let mut a = crate::test_runner::TestRng::from_name("same");
        let mut b = crate::test_runner::TestRng::from_name("same");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn macro_pipeline_works(v in prop::collection::vec(1u64..100, 1..6),
                                x in any::<prop::sample::Index>()) {
            prop_assume!(!v.is_empty());
            let picked = v[x.index(v.len())];
            prop_assert!((1..100).contains(&picked));
            prop_assert_eq!(v.len(), v.iter().copied().count());
        }

        #[test]
        fn oneof_and_flat_map(n in (1usize..5).prop_flat_map(|n| {
                prop_oneof![Just(n), Just(n + 1)]
            })) {
            prop_assert!((1..=5).contains(&n));
        }
    }
}
