//! No-op `Serialize` / `Deserialize` derives for the serde shim: the
//! workspace derives the traits but never serializes, so expanding to an
//! empty token stream is sufficient.

use proc_macro::TokenStream;

/// Expands to nothing (the shim trait has no items to implement).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing (the shim trait has no items to implement).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
