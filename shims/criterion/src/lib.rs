//! Offline shim for `criterion`: a minimal wall-clock bench harness with
//! the API surface used by `hetero-bench` (`bench_function`,
//! `benchmark_group`, `bench_with_input`, `sample_size`, `BenchmarkId`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros).
//!
//! Each benchmark is warmed up briefly, then timed over a fixed number of
//! batches; mean and minimum per-iteration times are printed. No
//! statistics, plots, or baselines — just enough to run `cargo bench`
//! offline and compare orders of magnitude.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Declared per-iteration workload, mirroring `criterion::Throughput`.
/// The shim records nothing from it — it exists so benches written
/// against real criterion compile unchanged.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// `<function_name>/<parameter>`.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// Just the parameter as the id.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Per-iteration timing callback target, mirroring `criterion::Bencher`.
pub struct Bencher {
    samples: usize,
    /// Mean and min ns/iter, filled in by `iter`.
    result: Option<(f64, f64)>,
}

impl Bencher {
    /// Times `f`, storing mean/min per-iteration nanoseconds.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warm-up: run until ~2 ms have elapsed to fault in caches.
        let warm_start = Instant::now();
        while warm_start.elapsed() < Duration::from_millis(2) {
            black_box(f());
        }
        // Calibrate batch size so one batch is ≥ ~200 µs.
        let mut batch = 1u64;
        loop {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            if t.elapsed() >= Duration::from_micros(200) || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        let mut mean_sum = 0.0;
        let mut min = f64::INFINITY;
        for _ in 0..self.samples {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            mean_sum += ns;
            min = min.min(ns);
        }
        self.result = Some((mean_sum / self.samples as f64, min));
    }
}

fn run_benchmark(name: &str, samples: usize, f: impl FnOnce(&mut Bencher)) {
    let mut bencher = Bencher {
        samples: samples.clamp(3, 20),
        result: None,
    };
    f(&mut bencher);
    match bencher.result {
        Some((mean, min)) => {
            println!("bench {name:<50} mean {mean:>12.1} ns/iter  min {min:>12.1} ns/iter")
        }
        None => println!("bench {name:<50} (no measurement)"),
    }
}

/// Top-level harness, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, 10, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            samples: 10,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    samples: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n;
        self
    }

    /// Declares the group's per-iteration workload (accepted and
    /// ignored, like the rest of the shim's statistics surface).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Accepts criterion's measurement-time hint (the shim's fixed
    /// batch/sample scheme ignores it).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnOnce(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.samples, f);
        self
    }

    /// Runs one benchmark with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnOnce(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        f: F,
    ) -> &mut Self {
        run_benchmark(&format!("{}/{}", self.name, id), self.samples, |b| {
            f(b, input)
        });
        self
    }

    /// Ends the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main` that runs the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures_something() {
        let mut c = Criterion::default();
        c.bench_function("shim/self_test", |b| {
            b.iter(|| black_box(3u64).wrapping_mul(7))
        });
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("with_input", 4), &4u64, |b, &n| {
            b.iter(|| black_box(n) * 2)
        });
        group.finish();
    }
}
