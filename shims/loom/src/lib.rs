//! Offline shim for `loom`: a schedule-perturbation stress harness with
//! the model checker's API shape.
//!
//! The real loom exhaustively enumerates thread interleavings under a
//! C11-subset memory model. That requires its simulated `UnsafeCell` /
//! lazy-static machinery and is not reproducible offline, so this shim
//! approximates the exploration instead: [`model`] runs the body many
//! times, and every instrumented primitive (`Mutex::lock`,
//! `Condvar::notify_*`, atomic RMW/load/store, `thread::spawn`) injects
//! a deterministic pseudo-random *schedule point* — a yield, a short
//! spin, or nothing — derived from the iteration seed and a global
//! operation counter. Distinct iterations therefore nudge the OS
//! scheduler toward distinct interleavings, which is what surfaces
//! lost-wakeup and ordering bugs in practice on a real SMP host.
//!
//! Caveats, by design:
//!
//! * Coverage is probabilistic, not exhaustive: a pass raises
//!   confidence, it is not a proof.
//! * The memory model is the host's (x86-TSO or ARM), not C11's — the
//!   shim cannot manufacture weak-memory reorderings the hardware does
//!   not perform.
//! * `loom::lazy_static!` and `loom::cell::UnsafeCell` are not
//!   provided; the workspace's pool keeps its `OnceLock` global on
//!   `std` and its tests construct fresh pools inside [`model`].

#![forbid(unsafe_code)]

use std::sync::atomic::{AtomicU64, Ordering as StdOrdering};

/// Per-iteration schedule seed (set by [`model`], read by every
/// schedule point).
static SEED: AtomicU64 = AtomicU64::new(0);
/// Monotone operation counter within one iteration; combined with
/// [`SEED`] it makes each schedule point's decision deterministic for a
/// given (iteration, operation) pair.
static OPS: AtomicU64 = AtomicU64::new(0);

/// SplitMix64 finalizer: a cheap, well-distributed 64-bit mix.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One perturbation point: consult the iteration seed and operation
/// counter, then yield, spin briefly, or fall straight through.
fn schedule_point() {
    let n = OPS.fetch_add(1, StdOrdering::Relaxed);
    let r = mix(SEED.load(StdOrdering::Relaxed) ^ n);
    match r & 0x7 {
        0 | 1 => std::thread::yield_now(),
        2 => {
            // A short, data-dependent spin keeps the thread runnable
            // (unlike a yield) while still shifting relative timing.
            for _ in 0..(r >> 8) & 0x3f {
                std::hint::spin_loop();
            }
        }
        _ => {}
    }
}

/// How many perturbed iterations one [`model`] call runs. Override with
/// `LOOM_SHIM_ITERS` (the real loom's knobs, e.g.
/// `LOOM_MAX_PREEMPTIONS`, have no meaning here and are ignored).
fn iterations() -> u64 {
    std::env::var("LOOM_SHIM_ITERS")
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(64)
}

/// Runs `f` under the perturbation harness: once per iteration, each
/// iteration with a fresh deterministic schedule seed.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    for it in 0..iterations() {
        SEED.store(mix(it), StdOrdering::Relaxed);
        OPS.store(0, StdOrdering::Relaxed);
        f();
    }
}

/// Instrumented `std::thread` subset: `spawn`/`Builder` inject a
/// schedule point on both sides of the spawn so the parent/child order
/// varies across iterations.
pub mod thread {
    pub use std::thread::{yield_now, JoinHandle};

    /// Mirrors `std::thread::spawn`, with schedule perturbation.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        super::schedule_point();
        std::thread::spawn(move || {
            super::schedule_point();
            f()
        })
    }

    /// Mirrors `std::thread::Builder` (the `name` + `spawn` subset the
    /// workspace uses).
    #[derive(Debug)]
    pub struct Builder {
        inner: std::thread::Builder,
    }

    impl Builder {
        pub fn new() -> Self {
            Builder {
                inner: std::thread::Builder::new(),
            }
        }

        pub fn name(self, name: String) -> Self {
            Builder {
                inner: self.inner.name(name),
            }
        }

        pub fn spawn<F, T>(self, f: F) -> std::io::Result<JoinHandle<T>>
        where
            F: FnOnce() -> T + Send + 'static,
            T: Send + 'static,
        {
            super::schedule_point();
            self.inner.spawn(move || {
                super::schedule_point();
                f()
            })
        }
    }

    impl Default for Builder {
        fn default() -> Self {
            Self::new()
        }
    }
}

/// Instrumented `std::sync` subset. The wrappers delegate to `std` and
/// hand back `std`'s own guard types, so code written against this
/// facade keeps compiling unchanged when the `loom` cfg is off.
pub mod sync {
    pub use std::sync::{Arc, LockResult, MutexGuard};

    /// `std::sync::Mutex` with a schedule point before every `lock`.
    #[derive(Debug, Default)]
    pub struct Mutex<T>(std::sync::Mutex<T>);

    impl<T> Mutex<T> {
        pub fn new(t: T) -> Self {
            Mutex(std::sync::Mutex::new(t))
        }

        pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            super::schedule_point();
            self.0.lock()
        }
    }

    /// `std::sync::Condvar` with schedule points around waits and
    /// notifies — the exact sites where lost-wakeup bugs live.
    #[derive(Debug, Default)]
    pub struct Condvar(std::sync::Condvar);

    impl Condvar {
        pub fn new() -> Self {
            Condvar(std::sync::Condvar::new())
        }

        pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
            super::schedule_point();
            self.0.wait(guard)
        }

        pub fn notify_one(&self) {
            super::schedule_point();
            self.0.notify_one();
        }

        pub fn notify_all(&self) {
            super::schedule_point();
            self.0.notify_all();
        }
    }

    /// Instrumented atomics: every access is a schedule point, so the
    /// window between an RMW and the action it guards stretches and
    /// shrinks across iterations.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        /// `std::sync::atomic::AtomicUsize` with schedule points.
        #[derive(Debug, Default)]
        pub struct AtomicUsize(std::sync::atomic::AtomicUsize);

        impl AtomicUsize {
            pub const fn new(v: usize) -> Self {
                AtomicUsize(std::sync::atomic::AtomicUsize::new(v))
            }

            pub fn load(&self, ord: Ordering) -> usize {
                super::super::schedule_point();
                self.0.load(ord)
            }

            pub fn store(&self, v: usize, ord: Ordering) {
                super::super::schedule_point();
                self.0.store(v, ord);
            }

            pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
                super::super::schedule_point();
                self.0.fetch_add(v, ord)
            }

            pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
                super::super::schedule_point();
                self.0.fetch_sub(v, ord)
            }

            pub fn swap(&self, v: usize, ord: Ordering) -> usize {
                super::super::schedule_point();
                self.0.swap(v, ord)
            }
        }

        /// `std::sync::atomic::AtomicBool` with schedule points.
        #[derive(Debug, Default)]
        pub struct AtomicBool(std::sync::atomic::AtomicBool);

        impl AtomicBool {
            pub const fn new(v: bool) -> Self {
                AtomicBool(std::sync::atomic::AtomicBool::new(v))
            }

            pub fn load(&self, ord: Ordering) -> bool {
                super::super::schedule_point();
                self.0.load(ord)
            }

            pub fn store(&self, v: bool, ord: Ordering) {
                super::super::schedule_point();
                self.0.store(v, ord);
            }

            pub fn swap(&self, v: bool, ord: Ordering) -> bool {
                super::super::schedule_point();
                self.0.swap(v, ord)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_runs_the_body_and_seeds_vary() {
        let seeds = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let s = std::sync::Arc::clone(&seeds);
        model(move || {
            s.lock().unwrap().push(SEED.load(StdOrdering::Relaxed));
        });
        let seen = seeds.lock().unwrap();
        assert!(!seen.is_empty(), "model must run the body");
        let distinct: std::collections::BTreeSet<u64> = seen.iter().copied().collect();
        assert_eq!(
            distinct.len(),
            seen.len(),
            "every iteration gets a fresh seed"
        );
    }

    #[test]
    fn instrumented_primitives_behave_like_std() {
        let m = sync::Mutex::new(5usize);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 6);

        let a = sync::atomic::AtomicUsize::new(3);
        assert_eq!(a.fetch_add(4, sync::atomic::Ordering::Relaxed), 3);
        assert_eq!(a.load(sync::atomic::Ordering::Relaxed), 7);

        let b = sync::atomic::AtomicBool::new(false);
        b.store(true, sync::atomic::Ordering::Relaxed);
        assert!(b.load(sync::atomic::Ordering::Relaxed));

        let h = thread::Builder::new()
            .name("loom-shim-test".into())
            .spawn(|| 11usize)
            .unwrap();
        assert_eq!(h.join().unwrap(), 11);
    }

    #[test]
    fn condvar_handoff_works_under_perturbation() {
        SEED.store(mix(1), StdOrdering::Relaxed);
        let pair = sync::Arc::new((sync::Mutex::new(false), sync::Condvar::new()));
        let p2 = sync::Arc::clone(&pair);
        let h = thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock().unwrap() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut ready = m.lock().unwrap();
        while !*ready {
            ready = cv.wait(ready).unwrap();
        }
        drop(ready);
        h.join().unwrap();
    }
}
