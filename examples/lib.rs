// Examples live as [[example]] targets; see quickstart.rs etc.
