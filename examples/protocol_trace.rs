//! Protocol trace: watch a FIFO worksharing round, event by event.
//!
//! ```sh
//! cargo run -p hetero-examples --example protocol_trace
//! ```
//!
//! Builds the optimal FIFO plan for a 3-computer cluster, executes it on
//! the discrete-event simulator, prints the action/time diagram (the
//! paper's Figure 2), and cross-checks the simulation against Theorem 2's
//! closed form.

use hetero_core::{xmeasure, Params, Profile};
use hetero_experiments::gantt;
use hetero_protocol::timeline::gantt_rows;
use hetero_protocol::{alloc, exec};

fn main() {
    // A network slow enough (relative to compute) that the communication
    // phases are visible in the diagram.
    let params = Params::new(0.05, 0.02, 1.0).expect("valid params");
    let profile = Profile::new(vec![1.0, 0.5, 0.25]).expect("valid profile");
    let lifespan = 40.0;

    // Figure 1: the seven-stage pipeline for a single remote computer.
    print!("{}", gantt::render_fig1(&params, 0.5, 10.0));
    println!();

    // The optimal FIFO plan and its execution.
    let plan = alloc::fifo_plan(&params, &profile, lifespan).expect("valid plan");
    println!("optimal FIFO allocation for L = {lifespan}:");
    for (pos, &idx) in plan.order.iter().enumerate() {
        println!(
            "  position {pos}: computer C{n} (ρ = {rho:.2}) ← {w:.3} work units",
            n = idx + 1,
            rho = profile.rho(idx),
            w = plan.work[pos]
        );
    }
    println!("  total = {:.3} units\n", plan.total_work());

    let run = exec::execute(&params, &profile, &plan);

    // Figure 2 as ASCII.
    print!("{}", gantt::render_fig2(&params, &profile, lifespan, 72));

    // Raw span listing for the curious.
    println!("\nfirst events on each entity:");
    for row in gantt_rows(&run, profile.n()) {
        if let Some(first) = row.spans.first() {
            println!(
                "  {:>4}: {:<16} [{:.3}, {:.3})",
                row.name,
                first.label,
                first.start.get(),
                first.end.get()
            );
        }
    }

    // Cross-check against the closed form.
    let simulated = run.work_completed_by(lifespan);
    let closed = xmeasure::work(&params, &profile, lifespan);
    println!(
        "\nsimulated work = {simulated:.6}, Theorem 2 closed form = {closed:.6} \
         (relative gap {:.1e})",
        ((simulated - closed) / closed).abs()
    );
    assert!(((simulated - closed) / closed).abs() < 1e-9);
}
