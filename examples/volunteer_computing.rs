//! Volunteer computing: sizing a SETI@home-style campaign.
//!
//! ```sh
//! cargo run -p hetero-examples --example volunteer_computing
//! ```
//!
//! A volunteer-computing server hands independent work units (the paper's
//! motivating workload: data smoothing, ray tracing, Monte-Carlo runs,
//! chromosome mapping) to whatever donated machines are online. The fleet
//! is wildly heterogeneous. This example uses the library to answer three
//! operator questions:
//!
//! 1. *How powerful is tonight's fleet?* — one number via the HECR.
//! 2. *Is a big diverse fleet worth more than a small uniform one?*
//! 3. *How much work should each volunteer be sent?* — the optimal FIFO
//!    allocation, executed and verified on the simulator.

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_core::{hecr, xmeasure, Params, Profile};
use hetero_protocol::{alloc, exec, validate};

fn main() {
    let params = Params::paper_table1();

    // Tonight's fleet: 40 donated machines, speeds anywhere within a
    // 100× range (seeded so the run is reproducible).
    let mut rng = rng_from_seed(2010);
    let fleet = hetero_clustergen::random_profile(&mut rng, GenConfig::new(40), Shape::Uniform);

    // 1. One-number summary: the fleet computes like this many-computer
    //    homogeneous cluster at speed ρ_C.
    let rate = hecr::hecr(&params, &fleet).expect("HECR exists");
    println!(
        "fleet of {} volunteers ≈ {} machines of speed ρ = {rate:.3} \
         (i.e. each {:.1}× the reference machine)",
        fleet.n(),
        fleet.n(),
        1.0 / rate
    );

    // 2. Diversity vs uniformity at equal aggregate mean speed.
    let uniform = Profile::homogeneous(fleet.n(), fleet.mean()).expect("valid");
    let (x_fleet, x_uniform) = (
        xmeasure::x_measure(&params, &fleet),
        xmeasure::x_measure(&params, &uniform),
    );
    println!(
        "same mean speed, homogeneous: X = {x_uniform:.2} vs diverse fleet X = {x_fleet:.2} → {}",
        if x_fleet > x_uniform {
            "diversity wins (Theorem 5's direction)"
        } else {
            "uniformity wins tonight"
        }
    );

    // 3. Overnight batch: 10 hours, optimal FIFO allocation.
    let lifespan = 10.0 * 3600.0;
    let plan = alloc::fifo_plan(&params, &fleet, lifespan).expect("valid plan");
    let run = exec::execute(&params, &fleet, &plan);
    let violations = validate::validate(&params, &fleet, &run);
    assert!(
        violations.is_empty(),
        "protocol invariants hold: {violations:?}"
    );

    let total = run.work_completed_by(lifespan);
    println!(
        "\novernight ({lifespan} s): {total:.0} work units complete; \
         closed form predicts {:.0}.",
        xmeasure::work(&params, &fleet, lifespan)
    );

    // Per-volunteer assignments: fastest gets the most, slowest the least.
    let mut assignments: Vec<(usize, f64)> =
        plan.order.iter().map(|&i| (i, plan.work_for(i))).collect();
    assignments.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("top volunteers by assignment:");
    for &(i, w) in assignments.iter().take(3) {
        println!("  volunteer {i:2} (ρ = {:.3}) ← {w:.0} units", fleet.rho(i));
    }
    let (last, least) = assignments.last().expect("nonempty");
    println!("  …");
    println!(
        "  volunteer {last:2} (ρ = {:.3}) ← {least:.0} units",
        fleet.rho(*last)
    );
    assert!(assignments.first().expect("nonempty").1 > *least);
}
