//! Quickstart: measure a heterogeneous cluster's computing power.
//!
//! ```sh
//! cargo run -p hetero-examples --example quickstart
//! ```
//!
//! Walks the library's core loop: describe a cluster by its heterogeneity
//! profile, compute its X-measure and HECR, compare it against another
//! cluster, and predict how much work it completes in a day.

use hetero_core::{hecr, xmeasure, Params, Profile};

fn main() {
    // The environment: 1 µs/unit network transit, 10 µs/unit packaging,
    // results as large as inputs (δ = 1) — the paper's Table 1, with time
    // measured in units of the slowest computer's per-unit work time.
    let params = Params::paper_table1();

    // A small shop: one old workstation (ρ = 1, the normalization), two
    // mid-range machines, one fast server. Smaller ρ = faster.
    let mine = Profile::new(vec![1.0, 0.6, 0.6, 0.2]).expect("valid profile");

    // A competitor runs four identical mid-range machines with the *same
    // mean speed* (0.6): a homogeneous cluster.
    let theirs = Profile::homogeneous(4, 0.6).expect("valid profile");
    assert!((mine.mean() - theirs.mean()).abs() < 1e-12);

    println!("profile          mean   var     X(P)      HECR");
    for (name, profile) in [("mine (hetero)", &mine), ("theirs (homog)", &theirs)] {
        let x = xmeasure::x_measure(&params, profile);
        let rate = hecr::hecr(&params, profile).expect("HECR exists");
        println!(
            "{name:<16} {mean:.2}   {var:.3}   {x:>7.3}   {rate:.3}",
            mean = profile.mean(),
            var = profile.variance(),
        );
    }

    // The paper's surprise (Theorem 5 / Corollary 1 direction): at equal
    // mean speed, the heterogeneous cluster is the more powerful one.
    let x_mine = xmeasure::x_measure(&params, &mine);
    let x_theirs = xmeasure::x_measure(&params, &theirs);
    assert!(x_mine > x_theirs);
    println!("\nheterogeneity lends power: X(mine) > X(theirs).");

    // Concrete planning: units of work finished over an 8-hour lifespan
    // (time unit = 1 s per work unit on the slowest machine).
    let lifespan = 8.0 * 3600.0;
    println!(
        "over {lifespan} s, mine completes {:.0} work units vs theirs {:.0}.",
        xmeasure::work(&params, &mine, lifespan),
        xmeasure::work(&params, &theirs, lifespan),
    );
}
