//! Capacity planning: *which computer should I upgrade?*
//!
//! ```sh
//! cargo run -p hetero-examples --example capacity_planning
//! ```
//!
//! You run a render farm with a mixed fleet and budget for exactly one
//! upgrade. The paper's Section 3 answers the question rigorously:
//!
//! * swapping a machine for one that is a fixed amount faster (an
//!   *additive* speedup) → always upgrade the **fastest** (Theorem 3);
//! * swapping for one twice as fast (a *multiplicative* speedup) → upgrade
//!   the fastest *unless* it is already so fast that the network is the
//!   bottleneck (Theorem 4) — then upgrade the slowest.

use hetero_core::speedup::{
    additive_speedup, best_additive_index, best_multiplicative_index, multiplicative_speedup,
    theorem4_choice, Theorem4Choice,
};
use hetero_core::xmeasure::work_ratio;
use hetero_core::{Params, Profile};

fn main() {
    let params = Params::paper_table1();
    // The render farm: ρ in units of the slowest node's per-frame time.
    let farm = Profile::new(vec![1.0, 0.8, 0.5, 0.5, 0.25]).expect("valid profile");
    println!("fleet: {:?}\n", farm.rhos());

    // --- Scenario 1: vendor offers "0.1 faster" modules (additive). ---
    println!("additive upgrade (ρ → ρ − 0.1):");
    let phi = 0.1;
    for i in 0..farm.n() {
        match additive_speedup(&farm, i, phi) {
            Ok(upgraded) => println!(
                "  upgrade node {i} (ρ = {:.2}): throughput ×{:.4}",
                farm.rho(i),
                work_ratio(&params, &upgraded, &farm)
            ),
            Err(_) => println!(
                "  upgrade node {i} (ρ = {:.2}): not possible (ρ ≤ φ)",
                farm.rho(i)
            ),
        }
    }
    let best = best_additive_index(&params, &farm, phi).expect("some node upgradable");
    println!("  → best: node {best} — the fastest, exactly as Theorem 3 proves.\n");
    assert_eq!(best, farm.n() - 1);

    // --- Scenario 2: vendor offers "2× faster" modules (multiplicative). ---
    let psi = 0.5;
    println!("multiplicative upgrade (ρ → ρ/2):");
    for i in 0..farm.n() {
        let upgraded = multiplicative_speedup(&farm, i, psi).expect("valid");
        println!(
            "  upgrade node {i} (ρ = {:.2}): throughput ×{:.4}",
            farm.rho(i),
            work_ratio(&params, &upgraded, &farm)
        );
    }
    let best = best_multiplicative_index(&params, &farm, psi).expect("nonempty");
    println!("  → best: node {best}.");

    // Theorem 4's decision rule, pairwise between slowest and fastest:
    let (slow, fast) = (farm.slowest(), farm.fastest());
    let verdict = match theorem4_choice(&params, slow, fast, psi) {
        Theorem4Choice::Faster => "upgrade the faster (condition 1)",
        Theorem4Choice::Slower => "upgrade the slower (condition 2)",
        Theorem4Choice::Indifferent => "either (boundary)",
    };
    println!(
        "  Theorem 4 on (ρ={slow}, ρ={fast}): ψρᵢρⱼ = {:.3} vs Aτδ/B² = {:.2e} → {verdict}",
        psi * slow * fast,
        params.theorem4_threshold()
    );

    // --- Scenario 3: when does the answer flip? ---
    // On a very fast fleet with a slow network (the paper's Figure 4
    // regime), the multiplicative answer flips to the *slowest* node.
    let fig_params = Params::fig34();
    let fast_fleet = Profile::homogeneous(4, 1.0 / 16.0)
        .expect("valid")
        .with_rho(3, 1.0 / 32.0)
        .expect("valid");
    let best = best_multiplicative_index(&fig_params, &fast_fleet, psi).expect("nonempty");
    println!(
        "\nslow-network regime, fleet {:?}: best multiplicative upgrade is node {best} — the slowest.",
        fast_fleet.rhos()
    );
    assert_eq!(best, 0);
}
