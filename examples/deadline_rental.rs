//! Deadline planning with the Cluster-Rental Problem (the CEP's dual).
//!
//! ```sh
//! cargo run -p hetero-examples --example deadline_rental
//! ```
//!
//! A nightly analytics batch of a fixed size must finish before the
//! morning deadline. The CRP answers the operator's questions directly:
//! *how long will the batch take on this cluster?* and *is this cluster
//! upgrade worth it in minutes saved?* — both via the closed form
//! `L*(W) = W·(τδ + 1/X(P))`, with the schedule executed and checked on
//! the simulator.

use hetero_core::{speedup, Params, Profile};
use hetero_protocol::{exec, rental, validate};

fn main() {
    let params = Params::paper_table1();
    let cluster = Profile::new(vec![1.0, 0.8, 0.5, 0.25]).expect("valid profile");
    let batch = 25_000.0; // work units due by morning

    // How long does tonight's batch take?
    let (plan, lifespan) = rental::rental_plan(&params, &cluster, batch).expect("feasible");
    println!(
        "batch of {batch} units on {:?}: finishes in {:.0} s ({:.2} h)",
        cluster.rhos(),
        lifespan,
        lifespan / 3600.0
    );

    // Trust but verify: execute the schedule and check every invariant.
    let run = exec::execute(&params, &cluster, &plan);
    assert!(validate::validate(&params, &cluster, &run).is_empty());
    let done = run.work_completed_by(lifespan);
    assert!((done - batch).abs() / batch < 1e-9);
    println!("simulator confirms: {done:.1} units complete at the deadline.");

    // Which single upgrade buys the most time? Try halving each node.
    println!("\nupgrade options (halve one node):");
    let mut best: Option<(usize, f64)> = None;
    for i in 0..cluster.n() {
        let upgraded = speedup::multiplicative_speedup(&cluster, i, 0.5).expect("valid");
        let new_l = rental::min_lifespan(&params, &upgraded, batch).expect("feasible");
        let saved_min = (lifespan - new_l) / 60.0;
        println!(
            "  halve node {i} (ρ = {:.2}): batch in {:.2} h, saves {saved_min:.1} min",
            cluster.rho(i),
            new_l / 3600.0
        );
        if best.is_none_or(|(_, s)| saved_min > s) {
            best = Some((i, saved_min));
        }
    }
    let (node, saved) = best.expect("nonempty cluster");
    println!("→ upgrade node {node} (the fastest — Theorem 4 condition (1)): {saved:.1} min saved");
    assert_eq!(node, cluster.n() - 1);

    // Duality sanity: running the CEP for the computed lifespan returns
    // exactly the batch size.
    let cep_work = hetero_core::xmeasure::work(&params, &cluster, lifespan);
    println!("\nduality check: CEP({lifespan:.0} s) completes {cep_work:.1} units (= batch).");
    assert!((cep_work - batch).abs() / batch < 1e-10);
}
