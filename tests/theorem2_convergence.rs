//! Theorem 2 validated behaviourally: the discrete-event simulator and
//! the closed form must agree at every lifespan, for every profile shape,
//! and under every startup order (Theorem 1).

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_core::{xmeasure, Params, Profile};
use hetero_protocol::{alloc, exec, validate};

#[test]
fn simulated_work_equals_closed_form_across_lifespans() {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap();
    for lifespan in [1.0, 10.0, 100.0, 1e4, 1e6] {
        let plan = alloc::fifo_plan(&params, &profile, lifespan).unwrap();
        let run = exec::execute(&params, &profile, &plan);
        let done = run.work_completed_by(lifespan);
        let closed = xmeasure::work(&params, &profile, lifespan);
        assert!(
            (done - closed).abs() / closed < 1e-9,
            "L = {lifespan}: simulated {done} vs closed {closed}"
        );
        // And the rate W/L is lifespan-independent.
        assert!((done / lifespan - xmeasure::work_rate(&params, &profile)).abs() < 1e-9,);
    }
}

#[test]
fn agreement_holds_for_every_parameter_regime() {
    let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
    for params in [
        Params::paper_table1(),
        Params::paper_table1_fine(),
        Params::fig34(),
        Params::new(0.05, 0.02, 0.5).unwrap(), // asymmetric results (δ < 1)
    ] {
        let lifespan = 1000.0;
        let plan = alloc::fifo_plan(&params, &profile, lifespan).unwrap();
        let run = exec::execute(&params, &profile, &plan);
        assert!(validate::validate(&params, &profile, &run).is_empty());
        let done = run.work_completed_by(lifespan);
        let closed = xmeasure::work(&params, &profile, lifespan);
        assert!(
            (done - closed).abs() / closed < 1e-9,
            "{params:?}: {done} vs {closed}"
        );
    }
}

#[test]
fn theorem1_startup_orders_tie_on_random_clusters() {
    let params = Params::paper_table1();
    let mut rng = rng_from_seed(99);
    for trial in 0..5 {
        let profile =
            hetero_clustergen::random_profile(&mut rng, GenConfig::new(6), Shape::Uniform);
        let lifespan = 400.0;
        // Identity, reversed, and a fixed shuffle.
        let orders: [Vec<usize>; 3] = [
            (0..6).collect(),
            (0..6).rev().collect(),
            vec![2, 5, 0, 3, 1, 4],
        ];
        let mut works = Vec::new();
        for order in &orders {
            let plan = alloc::fifo_plan_ordered(&params, &profile, order, lifespan).unwrap();
            let run = exec::execute(&params, &profile, &plan);
            assert!(validate::validate(&params, &profile, &run).is_empty());
            works.push(run.work_completed_by(lifespan));
        }
        for w in &works[1..] {
            assert!(
                (w - works[0]).abs() / works[0] < 1e-9,
                "trial {trial}: {works:?}"
            );
        }
    }
}

#[test]
fn extreme_heterogeneity_still_exact() {
    // A 1000× speed range stresses the allocation recurrence.
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.1, 0.01, 0.001]).unwrap();
    let lifespan = 100.0;
    let plan = alloc::fifo_plan(&params, &profile, lifespan).unwrap();
    let run = exec::execute(&params, &profile, &plan);
    assert!(validate::validate(&params, &profile, &run).is_empty());
    let done = run.work_completed_by(lifespan);
    let closed = xmeasure::work(&params, &profile, lifespan);
    assert!((done - closed).abs() / closed < 1e-9);
    // The fastest machine does ~1000× the slowest's work.
    let w_fast = plan.work_for(3);
    let w_slow = plan.work_for(0);
    assert!(w_fast / w_slow > 500.0, "{w_fast} / {w_slow}");
}

#[test]
fn single_computer_cluster_degenerates_cleanly() {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0]).unwrap();
    let lifespan = 50.0;
    let plan = alloc::fifo_plan(&params, &profile, lifespan).unwrap();
    assert_eq!(plan.work.len(), 1);
    let run = exec::execute(&params, &profile, &plan);
    let done = run.work_completed_by(lifespan);
    let closed = xmeasure::work(&params, &profile, lifespan);
    assert!((done - closed).abs() / closed < 1e-9);
}
