//! Cross-crate checks for the batched X-measure kernels and the
//! persistent worker pool: the lockstep batch must be bit-identical to
//! the scalar recurrence on adversarial inputs (uniform and ragged
//! shapes alike), the parallel exhaustive subset search must return the
//! serial winner at every thread count, and the pinned paper cells must
//! come out byte-for-byte unchanged through the batched drivers.

use hetero_core::selection::{
    best_k_subset, best_k_subset_gray, best_k_subset_par, best_k_subset_par_segments,
};
use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::{hecr, xmeasure, Params, Profile};
use hetero_experiments::{fig34, scaling, table3};
use proptest::prelude::*;

/// Speeds spanning ~18 decades: the Neumaier compensation inside both
/// kernels is exercised hardest when magnitudes differ wildly.
fn adversarial_rho() -> impl Strategy<Value = f64> {
    (1.0f64..2.0, -30i32..31).prop_map(|(m, e)| m * (e as f64).exp2())
}

/// A ragged pile of profiles: between 1 and 12 rows of varying lengths.
fn ragged_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(adversarial_rho(), 1..24), 1..12)
}

/// Uniform-length batches big enough to cross the lockstep lane width.
fn uniform_rows() -> impl Strategy<Value = Vec<Vec<f64>>> {
    (1usize..24).prop_flat_map(|n| {
        prop::collection::vec(prop::collection::vec(adversarial_rho(), n), 9..20)
    })
}

fn load(rows: &[Vec<f64>]) -> ProfileBatch {
    let mut batch = ProfileBatch::new();
    for row in rows {
        batch.push(row);
    }
    batch
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn uniform_batch_x_is_bit_identical_to_scalar(rows in uniform_rows()) {
        let params = Params::paper_table1();
        let xs = xbatch::x_measures(&params, &load(&rows));
        for (row, x) in rows.iter().zip(xs) {
            let scalar = xmeasure::x_measure_of_rhos(&params, row);
            prop_assert_eq!(x.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn ragged_batch_x_is_bit_identical_to_scalar(rows in ragged_rows()) {
        let params = Params::paper_table1();
        let xs = xbatch::x_measures(&params, &load(&rows));
        for (row, x) in rows.iter().zip(xs) {
            let scalar = xmeasure::x_measure_of_rhos(&params, row);
            prop_assert_eq!(x.to_bits(), scalar.to_bits());
        }
    }

    #[test]
    fn batch_hecr_is_bit_identical_to_scalar(rows in ragged_rows()) {
        let params = Params::paper_table1();
        let hs = xbatch::hecrs(&params, &load(&rows));
        for (row, h) in rows.iter().zip(hs) {
            let scalar = hecr::hecr_of_rhos(&params, row);
            match (h, scalar) {
                (Ok(a), Ok(b)) => prop_assert_eq!(a.to_bits(), b.to_bits()),
                (a, b) => prop_assert!(
                    a.is_err() && b.is_err(),
                    "error mismatch: batch {a:?} vs scalar {b:?}"
                ),
            }
        }
    }

    #[test]
    fn parallel_subset_search_matches_serial_at_every_thread_count(
        rhos in prop::collection::vec(adversarial_rho(), 1..15),
        k in 1usize..15,
    ) {
        prop_assume!(k <= rhos.len());
        let params = Params::paper_table1();
        let profile = Profile::from_unsorted(rhos).expect("positive finite speeds");
        // Three routes to the same winner: the exhaustive Gray walk (the
        // oracle), the branch-and-bound default, and the segmented walk
        // driven directly so fan-out is exercised even where the public
        // entry point's single-worker fallback would route it serial.
        let serial = best_k_subset_gray(&params, &profile, k).expect("valid k");
        let bnb = best_k_subset(&params, &profile, k).expect("valid k");
        prop_assert_eq!(bnb.rhos(), serial.rhos(), "branch-and-bound vs walk");
        for threads in 1..=8 {
            let par = best_k_subset_par(&params, &profile, k, threads).expect("valid k");
            prop_assert_eq!(par.rhos(), serial.rhos(), "public, threads = {}", threads);
            let seg =
                best_k_subset_par_segments(&params, &profile, k, threads).expect("valid k");
            prop_assert_eq!(seg.rhos(), serial.rhos(), "segments, threads = {}", threads);
        }
    }
}

/// `best_k_subset_par` only fans out above n = 15; pin the bit-identity
/// there too, on a deterministic 17-computer cluster.
#[test]
fn parallel_subset_search_matches_serial_past_the_fanout_gate() {
    let params = Params::paper_table1();
    let profile = Profile::uniform_spread(17);
    for k in [1, 2, 9, 16, 17] {
        let serial = best_k_subset_gray(&params, &profile, k).expect("valid k");
        for threads in [1, 2, 5, 8] {
            let par = best_k_subset_par(&params, &profile, k, threads).expect("valid k");
            assert_eq!(par.rhos(), serial.rhos(), "k = {k}, threads = {threads}");
            let seg = best_k_subset_par_segments(&params, &profile, k, threads).expect("valid k");
            assert_eq!(
                seg.rhos(),
                serial.rhos(),
                "seg k = {k}, threads = {threads}"
            );
        }
    }
}

/// The pinned Table 3 rows, re-derived through the batched HECR kernel
/// (as the `scaling` driver now does): every cell byte-identical to the
/// scalar table, and the rendered rows byte-identical too.
#[test]
fn table3_through_the_batched_driver_is_byte_identical() {
    let params = Params::paper_table1();
    let scalar = table3::run_paper();
    let batched = scaling::run(&params, &[8, 16, 32]);
    for (a, b) in scalar.rows.iter().zip(&batched.rows) {
        assert_eq!(a.n, b.n);
        assert_eq!(a.hecr_c1.to_bits(), b.hecr_c1.to_bits(), "C1 n = {}", a.n);
        assert_eq!(a.hecr_c2.to_bits(), b.hecr_c2.to_bits(), "C2 n = {}", a.n);
    }
    // The user-visible rendering is pinned byte-for-byte as well.
    let ascii = scalar.table().to_ascii();
    assert!(ascii.contains("0.366") || ascii.contains("0.36"), "{ascii}");
}

/// One pinned Figure 3/4 cell through the batched driver: the final
/// phase-1 round must report the X of ⟨1/16,…,1/16⟩ exactly as the
/// scalar kernel computes it, and the profile itself is the paper's.
#[test]
fn fig34_cells_through_the_batched_driver_are_byte_identical() {
    let f = fig34::run_paper();
    let last = f.phase1.last().expect("16 phase-1 rounds");
    let mut sorted = last.step.speeds.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let scalar = xmeasure::x_measure_of_rhos(&f.params, &sorted);
    assert_eq!(last.step.x.to_bits(), scalar.to_bits());
    for &s in &last.step.speeds {
        assert!((s - 1.0 / 16.0).abs() < 1e-12);
    }
    // Same pin for the final phase-2 cell.
    let last2 = f.phase2.last().expect("4 phase-2 rounds");
    let mut sorted2 = last2.step.speeds.clone();
    sorted2.sort_by(|a, b| b.total_cmp(a));
    let scalar2 = xmeasure::x_measure_of_rhos(&f.params, &sorted2);
    assert_eq!(last2.step.x.to_bits(), scalar2.to_bits());
}
