//! Integration tests for the extension layers: the CEP dual, general
//! orders, integral tasks, selection, certification, and the statistics
//! substrate — each exercised across crate boundaries.

use hetero_core::{selection, xmeasure, Params, Profile};
use hetero_exact::Ratio;
use hetero_protocol::{alloc, exec, general, integral, rental};
use hetero_sim::stats::OnlineStats;
use hetero_symfunc::certify;
use hetero_symfunc::exact_model::ExactParams;

#[test]
fn rental_then_integral_then_execute() {
    // Plan a batch via the CRP, quantize it to whole tasks, execute, and
    // confirm the whole-task schedule still fits the rental lifespan.
    let params = Params::paper_table1();
    let cluster = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
    let batch = 5000.0;
    let (_, lifespan) = rental::rental_plan(&params, &cluster, batch).unwrap();
    let ip = integral::integral_fifo_plan(&params, &cluster, lifespan, 1.0).unwrap();
    let run = exec::execute(&params, &cluster, &ip.plan);
    assert!(run.last_arrival().unwrap().get() <= lifespan * (1.0 + 1e-9));
    // Whole tasks forfeit at most n tasks' worth of the batch.
    assert!(ip.plan.total_work() > batch - 4.0);
}

#[test]
fn certified_upgrade_matches_f64_and_improves_rental_time() {
    let params = Params::paper_table1();
    let exact_params = ExactParams::from_params(&params);
    let cluster = Profile::new(vec![1.0, 0.5, 0.25, 0.2]).unwrap();
    let rhos: Vec<Ratio> = [
        Ratio::one(),
        Ratio::from_frac(1, 2),
        Ratio::from_frac(1, 4),
        Ratio::from_frac(1, 5),
    ]
    .to_vec();
    let phi = Ratio::from_frac(1, 10);
    let certified = certify::certify_best_additive(&exact_params, &rhos, &phi).unwrap();
    assert_eq!(certified, 3, "Theorem 3, certified");

    let before = rental::min_lifespan(&params, &cluster, 1000.0).unwrap();
    let upgraded = hetero_core::speedup::additive_speedup(&cluster, certified, 0.1).unwrap();
    let after = rental::min_lifespan(&params, &upgraded, 1000.0).unwrap();
    assert!(after < before, "the certified upgrade shortens the rental");
}

#[test]
fn certified_hecr_bracket_sandwiches_both_f64_implementations() {
    let params = Params::paper_table1();
    let exact_params = ExactParams::from_params(&params);
    let cluster = Profile::new(vec![1.0, 0.5, 1.0 / 3.0]).unwrap();
    let rhos = hetero_symfunc::exact_model::exact_rhos(&cluster);
    let (lo, hi) =
        certify::certify_hecr_bracket(&exact_params, &rhos, &Ratio::from_frac(1, 10_000_000));
    let closed = hetero_core::hecr::hecr(&params, &cluster).unwrap();
    let bisect = hetero_core::hecr::hecr_bisect(&params, &cluster, 1e-12);
    for v in [closed, bisect] {
        assert!(lo.to_f64() - 1e-7 <= v && v <= hi.to_f64() + 1e-7);
    }
    // Render the certified bounds exactly — no float in the loop.
    let report = format!(
        "ρ_C ∈ [{}, {}]",
        lo.to_decimal_string(8),
        hi.to_decimal_string(8)
    );
    assert!(report.contains("ρ_C ∈ [0."));
}

#[test]
fn lifo_gap_is_consistent_between_solver_and_simulator() {
    let params = Params::new(0.05, 0.005, 1.0).unwrap();
    let cluster = Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap();
    let lifespan = 400.0;
    let fifo = alloc::fifo_plan(&params, &cluster, lifespan).unwrap();
    let lifo = general::lifo_plan(&params, &cluster, lifespan).unwrap();
    // Execute both; each must complete its planned work by the lifespan.
    for plan in [&fifo, &lifo] {
        let run = exec::execute(&params, &cluster, plan);
        let done = run.work_completed_by(lifespan);
        assert!((done - plan.total_work()).abs() / plan.total_work() < 1e-9);
    }
    assert!(lifo.total_work() < fifo.total_work());
}

#[test]
fn selection_agrees_with_rental_economics() {
    // Dropping computers the fleet-sizing analysis calls worthless barely
    // changes the rental time.
    let params = Params::paper_table1();
    let cluster = Profile::harmonic(64);
    let k99 = selection::smallest_fleet_for(&params, &cluster, 0.99).unwrap();
    let trimmed = selection::fastest_k(&cluster, k99).unwrap();
    let full_time = rental::min_lifespan(&params, &cluster, 1000.0).unwrap();
    let trimmed_time = rental::min_lifespan(&params, &trimmed, 1000.0).unwrap();
    assert!(trimmed_time <= full_time / 0.99 + 1e-9);
    // In harmonic(64) the slow tail contributes ~i units of X each out of
    // ~2000 total, so several computers are dispensable at the 99 % mark.
    assert!(k99 < 64, "some of the harmonic tail is dispensable");
}

#[test]
fn online_stats_summarize_execution_sweeps() {
    // The sim-stats substrate aggregates a sweep of executions exactly as
    // a hand-rolled loop would.
    let params = Params::paper_table1();
    let mut stats = OnlineStats::new();
    let mut direct = Vec::new();
    for n in 1..=12 {
        let cluster = Profile::harmonic(n);
        let rate = xmeasure::work_rate(&params, &cluster);
        stats.push(rate);
        direct.push(rate);
    }
    let mean = direct.iter().sum::<f64>() / direct.len() as f64;
    assert_eq!(stats.count(), 12);
    assert!((stats.mean() - mean).abs() < 1e-12);
    assert_eq!(stats.min(), direct[0], "n = 1 is the weakest fleet");
    assert_eq!(stats.max(), *direct.last().unwrap());
}
