//! Fault-injection and recovery contracts across the workspace:
//!
//! 1. an **empty fault plan is a no-op, bit for bit** — both the
//!    oblivious faulted executor and the adaptive replanner reproduce the
//!    pristine execution's spans and arrival times exactly (the fault
//!    machinery adds zero float operations to the fault-free path);
//! 2. under **crash-only** fault plans the replanner's salvaged
//!    throughput **dominates** the oblivious executor's, at every seed
//!    (property-tested: the re-solve's never-grow cap reproduces the
//!    original allocation for survivors, so replanned schedules are
//!    weakly earlier and salvage a superset);
//! 3. the Chrome export of a pinned two-worker mid-run-crash execution is
//!    **byte-identical** to the checked-in golden file;
//! 4. `FaultPlan::sample` is **deterministic**: same seed, same
//!    fingerprint, on any platform or thread.

use hetero_core::{Params, Profile};
use hetero_faults::{FaultConfig, FaultPlan, FaultSpec};
use hetero_protocol::replan::{execute_adaptive, HedgePolicy};
use hetero_protocol::{alloc, exec, fault_exec};
use proptest::prelude::*;

/// Entity names for the Chrome export: C0, C1…Cn, net (matches
/// `obs_export::execution_to_chrome`).
fn entity_names(n: usize) -> Vec<String> {
    (0..=n + 1)
        .map(|entity| {
            if entity == exec::SERVER {
                "C0".to_string()
            } else if entity == exec::channel_entity(n) {
                "net".to_string()
            } else {
                format!("C{entity}")
            }
        })
        .collect()
}

// --- 1. the empty plan is bit-identical -----------------------------------

#[test]
fn empty_fault_plan_is_bit_identical_for_both_executors() {
    let params = Params::paper_table1();
    for n in [1usize, 2, 5, 9] {
        let profile = Profile::harmonic(n);
        let plan = alloc::fifo_plan(&params, &profile, 800.0).unwrap();
        let pristine = exec::execute(&params, &profile, &plan);

        let oblivious =
            fault_exec::execute_with_faults(&params, &profile, &plan, &FaultPlan::empty()).unwrap();
        assert_eq!(oblivious.trace.spans(), pristine.trace.spans(), "n = {n}");
        for (got, want) in oblivious.arrivals.iter().zip(&pristine.arrivals) {
            assert_eq!(
                got.map(|t| t.get().to_bits()),
                Some(want.get().to_bits()),
                "n = {n}"
            );
        }
        assert_eq!(oblivious.lost_messages, 0);
        assert_eq!(oblivious.retransmits, 0);

        let adaptive = execute_adaptive(
            &params,
            &profile,
            &plan,
            &FaultPlan::empty(),
            &HedgePolicy::default(),
        )
        .unwrap();
        assert_eq!(adaptive.trace.spans(), pristine.trace.spans(), "n = {n}");
        for (got, want) in adaptive.arrivals.iter().zip(&pristine.arrivals) {
            assert_eq!(
                got.map(|t| t.get().to_bits()),
                Some(want.get().to_bits()),
                "n = {n}"
            );
        }
        assert_eq!(adaptive.replans, 0);
        assert!(adaptive.topups.is_empty());
    }
}

// --- 2. crash-only dominance, property-tested ------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under pure crash faults (no stragglers, jitter, or losses) the
    /// replanner can only help: skipped sends free the server and
    /// channel earlier, the never-grow cap keeps survivor allocations at
    /// their originals, and the top-up round adds work on top. Salvaged
    /// throughput therefore dominates the oblivious executor at every
    /// seed, and both runs are seed-deterministic.
    #[test]
    fn crash_only_replanning_dominates_oblivious(
        seed in any::<u64>(),
        n in 2usize..8,
        crash_p in 0.1f64..0.9,
    ) {
        let params = Params::paper_table1();
        let profile = Profile::harmonic(n);
        let lifespan = 600.0;
        let plan = alloc::fifo_plan(&params, &profile, lifespan).unwrap();
        let faults = FaultPlan::sample(
            &FaultConfig { crash_p, ..FaultConfig::default() },
            n,
            lifespan,
            seed,
        ).unwrap();
        prop_assert_eq!(
            faults.fingerprint(),
            FaultPlan::sample(
                &FaultConfig { crash_p, ..FaultConfig::default() },
                n,
                lifespan,
                seed,
            ).unwrap().fingerprint(),
            "same-seed sampling must be deterministic"
        );

        let oblivious =
            fault_exec::execute_with_faults(&params, &profile, &plan, &faults).unwrap();
        let policy = HedgePolicy { margin: 0.0, ..HedgePolicy::default() };
        let adaptive = execute_adaptive(&params, &profile, &plan, &faults, &policy).unwrap();

        let ob = oblivious.work_completed_by(lifespan);
        let ad = adaptive.work_completed_by(lifespan);
        prop_assert!(
            ad >= ob - 1e-9 * ob.abs().max(1.0),
            "adaptive {} < oblivious {} under {:?}", ad, ob, faults.specs()
        );

        // Determinism of the executions themselves: replaying the same
        // inputs yields bit-identical traces.
        let replay = execute_adaptive(&params, &profile, &plan, &faults, &policy).unwrap();
        prop_assert_eq!(replay.trace.spans(), adaptive.trace.spans());
    }
}

// --- 3. golden mid-run-crash trace ----------------------------------------

/// The pinned run behind the golden file: Table 1 parameters, two remote
/// computers at ρ = ⟨1, ½⟩, FIFO plan for lifespan 100, worker 1 crashing
/// at t = 50 (mid-compute — its trace ends in a truncated `†crash` span
/// and its results never return).
fn fault2_chrome() -> String {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5]).unwrap();
    let plan = alloc::fifo_plan(&params, &profile, 100.0).unwrap();
    let faults = FaultPlan::new(vec![FaultSpec::Crash {
        worker: 1,
        at: 50.0,
    }])
    .unwrap();
    let run = fault_exec::execute_with_faults(&params, &profile, &plan, &faults).unwrap();
    hetero_obs::chrome::sim_trace_to_chrome(&run.trace, &entity_names(profile.n()))
}

/// Regenerates the golden file after an intentional format change:
/// `cargo test --test fault_recovery -- --ignored regenerate_golden_fault_trace`
#[test]
#[ignore = "writes tests/golden/fault2_trace.json; run explicitly after intentional format changes"]
fn regenerate_golden_fault_trace() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/fault2_trace.json");
    std::fs::write(path, fault2_chrome()).unwrap();
}

#[test]
fn crash_trace_matches_golden_file_byte_for_byte() {
    let doc = fault2_chrome();
    let golden = include_str!("golden/fault2_trace.json");
    assert_eq!(
        doc, golden,
        "faulted Chrome trace drifted from tests/golden/fault2_trace.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn crash_trace_records_the_truncated_span() {
    let doc = fault2_chrome();
    assert!(
        doc.contains("†crash"),
        "the golden run must show the crash marker: {doc}"
    );
}

// --- 4. fingerprint determinism -------------------------------------------

#[test]
fn same_seed_fault_plans_share_a_fingerprint() {
    let cfg = FaultConfig {
        crash_p: 0.4,
        straggler_count: 2,
        straggler_factor: 3.0,
        jitter_p: 0.5,
        jitter_factor: 2.0,
        loss_p: 0.3,
        loss_max: 4,
    };
    let a = FaultPlan::sample(&cfg, 12, 500.0, 0xD5EED).unwrap();
    let b = FaultPlan::sample(&cfg, 12, 500.0, 0xD5EED).unwrap();
    assert_eq!(a, b, "same seed must reproduce the identical plan");
    assert_eq!(a.fingerprint(), b.fingerprint());

    let c = FaultPlan::sample(&cfg, 12, 500.0, 0xD5EED + 1).unwrap();
    assert_ne!(
        a.fingerprint(),
        c.fingerprint(),
        "different seeds must (virtually always) diverge"
    );
}
