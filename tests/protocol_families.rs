//! Cross-family protocol contracts for the resilience suite (PR 9):
//!
//! 1. an **empty fault plan is a no-op, bit for bit** for the two new
//!    families — work exchange and MDS coding reproduce the pristine
//!    executor's spans and arrivals exactly, just as `fault_recovery.rs`
//!    pins for the oblivious and adaptive families;
//! 2. the MDS **any-k decode certificate** holds against the exact
//!    `Ratio` oracle, exhaustively: for every small n, every threshold
//!    k, and every subset of destroyed shares, decode succeeds iff at
//!    least k shares survive, and every surviving k-subset carries at
//!    least the certified job mass (checked in exact rational
//!    arithmetic, so float rounding cannot hide a violation);
//! 3. work exchange **conserves the planned load**: retained + traded
//!    work equals the original allocation to ≤ 1e-12 relative, with
//!    both sides summed through `Ratio` so accumulation order is not a
//!    confound (property-tested over seeded fault plans);
//! 4. the Chrome export of a pinned two-worker mid-run-straggler
//!    exchange is **byte-identical** to the checked-in golden file;
//! 5. both families are **seed-deterministic**: same inputs, same
//!    spans, same ledger, at any repetition.

use hetero_core::{Params, Profile};
use hetero_exact::Ratio;
use hetero_faults::{FaultConfig, FaultPlan, FaultSpec};
use hetero_protocol::coded::{execute_coded, mds_assignment};
use hetero_protocol::exchange::{execute_exchange, ExchangePolicy};
use hetero_protocol::{alloc, exec};
use hetero_sim::SimTime;
use proptest::prelude::*;

/// Entity names for the Chrome export: C0, C1…Cn, net (matches
/// `obs_export::execution_to_chrome`).
fn entity_names(n: usize) -> Vec<String> {
    (0..=n + 1)
        .map(|entity| {
            if entity == exec::SERVER {
                "C0".to_string()
            } else if entity == exec::channel_entity(n) {
                "net".to_string()
            } else {
                format!("C{entity}")
            }
        })
        .collect()
}

/// Exact sum of a float slice: every f64 is a dyadic rational, so the
/// `Ratio` total is the true mathematical sum with no rounding at all.
fn ratio_sum(xs: impl IntoIterator<Item = f64>) -> Ratio {
    let mut total = Ratio::zero();
    for x in xs {
        total += &Ratio::from_f64(x).expect("finite work values");
    }
    total
}

// --- 1. the empty plan is bit-identical -----------------------------------

#[test]
fn empty_fault_plan_is_bit_identical_for_exchange_and_coded() {
    let params = Params::paper_table1();
    for n in [1usize, 2, 5, 9] {
        let profile = Profile::harmonic(n);
        let plan = alloc::fifo_plan(&params, &profile, 800.0).unwrap();
        let pristine = exec::execute(&params, &profile, &plan);

        let exchange = execute_exchange(
            &params,
            &profile,
            &plan,
            &FaultPlan::empty(),
            &ExchangePolicy::default(),
        )
        .unwrap();
        assert!(!exchange.degraded(), "n = {n}");
        assert_eq!(exchange.trace.spans(), pristine.trace.spans(), "n = {n}");
        for (got, want) in exchange.arrivals.iter().zip(&pristine.arrivals) {
            assert_eq!(
                got.map(|t| t.get().to_bits()),
                Some(want.get().to_bits()),
                "n = {n}"
            );
        }
        assert!(exchange.exchanges.is_empty());
        assert_eq!(exchange.final_work, plan.work);
        assert_eq!(exchange.lost_messages, 0);
        assert_eq!(exchange.retransmits, 0);

        let k = (n / 2).max(1);
        let coded = mds_assignment(&params, &profile, 800.0, k).unwrap();
        let pristine_coded = exec::execute(&params, &profile, &coded.plan);
        let run = execute_coded(&params, &profile, &coded, &FaultPlan::empty()).unwrap();
        assert_eq!(run.trace.spans(), pristine_coded.trace.spans(), "n = {n}");
        for (got, want) in run.arrivals.iter().zip(&pristine_coded.arrivals) {
            assert_eq!(
                got.map(|t| t.get().to_bits()),
                Some(want.get().to_bits()),
                "n = {n}"
            );
        }
        assert_eq!(run.lost_messages, 0);
        assert!(!run.missed_deadline(800.0), "n = {n}");
    }
}

// --- 2. the any-k decode certificate, exhaustively vs Ratio ----------------

/// For every cluster size n ≤ 5, every threshold k, and every one of the
/// 2ⁿ subsets of destroyed shares: decode succeeds iff at least k shares
/// survive, the certified job is exactly the sum of the k smallest
/// shares, and — the MDS certificate itself — *every* surviving k-subset
/// carries at least that much coded mass. All mass comparisons run in
/// exact `Ratio` arithmetic.
#[test]
fn coded_decode_matches_the_ratio_oracle_for_every_loss_subset() {
    let params = Params::paper_table1();
    for n in 2usize..=5 {
        let profile = Profile::harmonic(n);
        for k in 1..=n {
            let coded = mds_assignment(&params, &profile, 600.0, k).unwrap();

            // The certificate, re-derived exactly: job = Σ of the k
            // smallest shares, and any k-subset of shares sums to at
            // least that.
            let mut sorted = coded.plan.work.clone();
            sorted.sort_unstable_by(f64::total_cmp);
            let certified = ratio_sum(sorted[..k].iter().copied());
            let job_err = (&Ratio::from_f64(coded.job).unwrap() - &certified).to_f64();
            assert!(
                job_err.abs() <= 1e-12 * coded.job,
                "n = {n}, k = {k}: certified job drifted {job_err} from the exact sum"
            );

            for mask in 0u32..(1 << n) {
                let destroyed: Vec<usize> = (0..n).filter(|i| mask & (1 << i) != 0).collect();
                let survivors = n - destroyed.len();
                let faults = FaultPlan::new(
                    destroyed
                        .iter()
                        .map(|&w| FaultSpec::ResultLoss {
                            worker: w,
                            count: 1,
                        })
                        .collect(),
                )
                .unwrap();
                let run = execute_coded(&params, &profile, &coded, &faults).unwrap();
                assert_eq!(
                    run.arrivals.iter().flatten().count(),
                    survivors,
                    "n = {n}, k = {k}, mask = {mask:b}"
                );
                assert_eq!(run.lost_messages as usize, destroyed.len());

                let surviving_mass = ratio_sum(
                    run.arrivals
                        .iter()
                        .zip(&run.coded.plan.work)
                        .filter_map(|(arr, &w)| arr.map(|_| w)),
                );
                match run.decode() {
                    Ok(d) => {
                        assert!(survivors >= k, "decoded below threshold: mask = {mask:b}");
                        assert_eq!(d.shares_used, k);
                        assert_eq!(d.job.to_bits(), coded.job.to_bits());
                        // The oracle: what survived really does cover
                        // the certified job, exactly.
                        assert!(
                            surviving_mass >= certified,
                            "n = {n}, k = {k}, mask = {mask:b}: surviving mass below certificate"
                        );
                        // Decode happens at the k-th earliest arrival.
                        let mut times: Vec<SimTime> =
                            run.arrivals.iter().flatten().copied().collect();
                        times.sort_unstable();
                        assert_eq!(d.time, times[k - 1]);
                    }
                    Err(e) => {
                        assert!(survivors < k, "failed above threshold: mask = {mask:b}");
                        assert_eq!(e.needed, k);
                        assert_eq!(e.arrived, survivors);
                        let stranded_err =
                            (&Ratio::from_f64(e.stranded_work).unwrap() - &surviving_mass).to_f64();
                        assert!(
                            stranded_err.abs() <= 1e-12 * coded.plan.total_work(),
                            "stranded accounting drifted {stranded_err}"
                        );
                    }
                }
            }
        }
    }
}

// --- 3. exchange conserves the planned load, property-tested ---------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every trade splits a share into retained + residual; nothing is
    /// created or destroyed. Summing both the plan and the post-exchange
    /// ledger through exact `Ratio` arithmetic, the totals agree to
    /// ≤ 1e-12 relative — the only float error budget is the per-trade
    /// `w/f` split itself, never summation order.
    #[test]
    fn exchange_conserves_total_load_against_the_ratio_oracle(
        seed in any::<u64>(),
        n in 2usize..7,
        straggler_count in 1usize..3,
        straggler_factor in 1.5f64..6.0,
        loss_p in 0.0f64..0.4,
    ) {
        let params = Params::paper_table1();
        let profile = Profile::harmonic(n);
        let lifespan = 600.0;
        let plan = alloc::fifo_plan(&params, &profile, lifespan).unwrap();
        let faults = FaultPlan::sample(
            &FaultConfig {
                straggler_count,
                straggler_factor,
                loss_p,
                loss_max: 2,
                ..FaultConfig::default()
            },
            n,
            lifespan,
            seed,
        ).unwrap();
        let run = execute_exchange(
            &params,
            &profile,
            &plan,
            &faults,
            &ExchangePolicy::default(),
        ).unwrap();
        // A degraded run replays under the adaptive replanner, whose
        // top-up rounds deliberately ADD work; conservation is an
        // exchange-ledger contract.
        if !run.degraded() {
            let planned = ratio_sum(plan.work.iter().copied());
            let ledger = ratio_sum(run.final_work.iter().copied())
                + ratio_sum(run.exchanges.iter().map(|x| x.work));
            let drift = (&ledger - &planned).to_f64().abs();
            prop_assert!(
                drift <= 1e-12 * plan.total_work(),
                "ledger drifted {} from the plan under {:?}",
                drift,
                faults.specs()
            );
            // Each individual split is exact to the same budget.
            for x in &run.exchanges {
                let w = plan.work[x.from];
                let split = (&(&Ratio::from_f64(run.final_work[x.from]).unwrap()
                    + &Ratio::from_f64(x.work).unwrap())
                    - &Ratio::from_f64(w).unwrap())
                    .to_f64();
                prop_assert!(split.abs() <= 1e-12 * w, "split drifted {}", split);
            }
        }
    }
}

// --- 4. golden mid-run-straggler exchange trace ----------------------------

/// The pinned run behind the golden file: Table 1 parameters, two remote
/// computers at ρ = ⟨1, ½⟩, FIFO plan for lifespan 500, worker 1
/// running 4× slow from t = 0 — detected at its send boundary, it keeps
/// the quarter-share that still fits its schedule and trades the
/// residual to worker 0 (`xpack→C1`, `xmit:xchg:C2→C1`, the donor's
/// second compute block, `recv←C1·xchg`).
fn exchange2_chrome() -> String {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5]).unwrap();
    let plan = alloc::fifo_plan(&params, &profile, 500.0).unwrap();
    let faults = FaultPlan::new(vec![FaultSpec::Slowdown {
        worker: 1,
        factor: 4.0,
        from: 0.0,
        until: 1e6,
    }])
    .unwrap();
    let run = execute_exchange(
        &params,
        &profile,
        &plan,
        &faults,
        &ExchangePolicy::default(),
    )
    .unwrap();
    assert!(!run.degraded());
    assert_eq!(run.exchanges.len(), 1);
    hetero_obs::chrome::sim_trace_to_chrome(&run.trace, &entity_names(profile.n()))
}

/// Regenerates the golden file after an intentional format change:
/// `cargo test --test protocol_families -- --ignored regenerate_golden_exchange_trace`
#[test]
#[ignore = "writes tests/golden/exchange2_trace.json; run explicitly after intentional format changes"]
fn regenerate_golden_exchange_trace() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/exchange2_trace.json");
    std::fs::write(path, exchange2_chrome()).unwrap();
}

#[test]
fn exchange_trace_matches_golden_file_byte_for_byte() {
    let doc = exchange2_chrome();
    let golden = include_str!("golden/exchange2_trace.json");
    assert_eq!(
        doc, golden,
        "exchange Chrome trace drifted from tests/golden/exchange2_trace.json; \
         if the change is intentional, regenerate the golden file"
    );
}

#[test]
fn exchange_trace_records_the_transfer_machinery() {
    let doc = exchange2_chrome();
    for needle in ["xpack→C1", "xmit:xchg:C2→C1", "recv←C1·xchg"] {
        assert!(doc.contains(needle), "missing {needle} in: {doc}");
    }
}

// --- 5. seed determinism for both families ---------------------------------

#[test]
fn both_families_replay_bit_identically_under_sampled_plans() {
    let params = Params::paper_table1();
    let n = 6;
    let profile = Profile::harmonic(n);
    let lifespan = 600.0;
    let plan = alloc::fifo_plan(&params, &profile, lifespan).unwrap();
    let coded = mds_assignment(&params, &profile, lifespan, 3).unwrap();
    let cfg = FaultConfig {
        crash_p: 0.2,
        straggler_count: 2,
        straggler_factor: 3.0,
        loss_p: 0.3,
        loss_max: 2,
        ..FaultConfig::default()
    };
    for seed in [0u64, 0x9E22, u64::MAX] {
        let faults = FaultPlan::sample(&cfg, n, lifespan, seed).unwrap();
        assert_eq!(
            faults.fingerprint(),
            FaultPlan::sample(&cfg, n, lifespan, seed)
                .unwrap()
                .fingerprint(),
            "seed {seed}: sampling must be deterministic"
        );

        let x1 = execute_exchange(
            &params,
            &profile,
            &plan,
            &faults,
            &ExchangePolicy::default(),
        )
        .unwrap();
        let x2 = execute_exchange(
            &params,
            &profile,
            &plan,
            &faults,
            &ExchangePolicy::default(),
        )
        .unwrap();
        assert_eq!(x1.trace.spans(), x2.trace.spans(), "seed {seed}");
        assert_eq!(x1.exchanges, x2.exchanges, "seed {seed}");
        assert_eq!(x1.degraded(), x2.degraded(), "seed {seed}");

        let c1 = execute_coded(&params, &profile, &coded, &faults).unwrap();
        let c2 = execute_coded(&params, &profile, &coded, &faults).unwrap();
        assert_eq!(c1.trace.spans(), c2.trace.spans(), "seed {seed}");
        assert_eq!(c1.decode(), c2.decode(), "seed {seed}");
    }
}
