//! Chrome trace-export edge cases, byte-pinned against golden files.
//!
//! The exporter is part of the reproducibility surface: the same trace
//! must render the same bytes on every run, including the awkward
//! shapes real executions produce —
//!
//! * **zero-duration spans** (instantaneous markers such as `skip→C*`
//!   sends): must still emit a `"ph":"X"` event with `dur` 0, not be
//!   dropped;
//! * **out-of-order completion** (recording order ≠ timestamp order, as
//!   when a fast worker finishes before an earlier-started slow one):
//!   events stay in recording order — the viewer sorts by `ts`, the
//!   bytes must not depend on completion timing;
//! * **more than 64 entity lanes**: lane ids are plain `tid` integers,
//!   so nothing breaks past the bit-width of any mask (PR 7 lifted the
//!   n = 63 selection cap; traces follow).
//!
//! Any drift is a deliberate, golden-updating change:
//! `cargo test --test chrome_edge -- --ignored regenerate_chrome_edge_goldens`

use hetero_obs::chrome::sim_trace_to_chrome;
use hetero_obs::json;
use hetero_sim::{SimTime, Trace};

fn t(v: f64) -> SimTime {
    SimTime::new(v)
}

/// A server lane with an instantaneous marker between two real spans.
fn zero_duration_trace() -> String {
    let mut tr = Trace::new();
    tr.record(0, "pack→C1", t(0.0), t(0.5));
    tr.record(0, "skip→C2", t(0.5), t(0.5));
    tr.record(0, "pack→C3", t(0.5), t(1.25));
    sim_trace_to_chrome(&tr, &["C0".into()])
}

/// Recording order deliberately disagrees with timestamp order: the
/// later-starting span completes (and is recorded) first.
fn out_of_order_trace() -> String {
    let mut tr = Trace::new();
    tr.record(2, "compute", t(4.0), t(5.0));
    tr.record(1, "compute", t(0.0), t(8.0));
    tr.record(0, "recv←C2", t(5.0), t(5.5));
    tr.record(0, "recv←C1", t(8.0), t(8.5));
    sim_trace_to_chrome(&tr, &["C0".into(), "C1".into(), "C2".into()])
}

/// Seventy entity lanes — past the 64-bit mask width that bounded the
/// old subset walk. Entities 0–67 are named; 68–69 take `E<i>`
/// fallbacks.
fn many_lanes_trace() -> String {
    let mut tr = Trace::new();
    for e in 0..70usize {
        let start = e as f64 * 0.25;
        tr.record(e, format!("compute#{e}"), t(start), t(start + 1.0));
    }
    let names: Vec<String> = (0..68).map(|i| format!("C{i}")).collect();
    sim_trace_to_chrome(&tr, &names)
}

/// Regenerates the three golden files after an intentional format
/// change.
#[test]
#[ignore = "writes tests/golden/chrome_*.json; run explicitly after intentional format changes"]
fn regenerate_chrome_edge_goldens() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/golden");
    std::fs::write(
        format!("{dir}/chrome_zero_duration.json"),
        zero_duration_trace(),
    )
    .unwrap();
    std::fs::write(
        format!("{dir}/chrome_out_of_order.json"),
        out_of_order_trace(),
    )
    .unwrap();
    std::fs::write(format!("{dir}/chrome_many_lanes.json"), many_lanes_trace()).unwrap();
}

#[test]
fn zero_duration_spans_survive_export_byte_for_byte() {
    let doc = zero_duration_trace();
    assert_eq!(doc, include_str!("golden/chrome_zero_duration.json"));
    let v = json::parse(&doc).unwrap();
    let Some(json::Value::Arr(events)) = v.get("traceEvents").cloned() else {
        panic!("traceEvents must be an array");
    };
    let marker = events
        .iter()
        .find(|e| e.get("name").and_then(json::Value::as_str) == Some("skip→C2"))
        .expect("instantaneous marker must not be dropped");
    assert_eq!(marker.get("dur").and_then(json::Value::as_f64), Some(0.0));
    assert_eq!(marker.get("ph").and_then(json::Value::as_str), Some("X"));
}

#[test]
fn out_of_order_completion_keeps_recording_order_byte_for_byte() {
    let doc = out_of_order_trace();
    assert_eq!(doc, include_str!("golden/chrome_out_of_order.json"));
    let v = json::parse(&doc).unwrap();
    let Some(json::Value::Arr(events)) = v.get("traceEvents").cloned() else {
        panic!("traceEvents must be an array");
    };
    let ts: Vec<f64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("X"))
        .filter_map(|e| e.get("ts").and_then(json::Value::as_f64))
        .collect();
    // Recording order, not timestamp order: 4.0, 0.0, 5.0, 8.0 sim
    // units, exported at 1000 µs per unit.
    assert_eq!(ts, vec![4000.0, 0.0, 5000.0, 8000.0]);
}

#[test]
fn more_than_64_lanes_export_byte_for_byte() {
    let doc = many_lanes_trace();
    assert_eq!(doc, include_str!("golden/chrome_many_lanes.json"));
    let v = json::parse(&doc).unwrap();
    let Some(json::Value::Arr(events)) = v.get("traceEvents").cloned() else {
        panic!("traceEvents must be an array");
    };
    let lanes = events
        .iter()
        .filter(|e| e.get("ph").and_then(json::Value::as_str) == Some("M"))
        .count();
    assert_eq!(lanes, 70, "every entity past the 64-bit width gets a lane");
    assert!(doc.contains("\"C67\""), "explicit names still apply");
    assert!(doc.contains("\"E69\""), "fallback names fill the gaps");
    let max_tid = events
        .iter()
        .filter_map(|e| e.get("tid").and_then(json::Value::as_f64))
        .fold(0.0f64, f64::max);
    assert_eq!(max_tid, 69.0);
}
