//! Section 4.3's empirical claims as integration tests: the variance
//! predictor's exactness at n = 2, its degradation at larger n, and the
//! threshold structure.

use hetero_core::Params;
use hetero_experiments::threshold::{self, ThresholdConfig};
use hetero_experiments::variance::{self, PairGenerator, TrialOutcome, VarianceConfig};

#[test]
fn n2_biconditional_over_many_seeds() {
    // Theorem 5(2): no bad pairs at n = 2, ever.
    let params = Params::paper_table1();
    for seed in 0..500u64 {
        for gen in [PairGenerator::SameUniform, PairGenerator::DiverseShapes] {
            let outcome = variance::one_trial(&params, 2, gen, seed);
            assert_ne!(outcome, TrialOutcome::Bad, "seed {seed} gen {gen:?}");
        }
    }
}

#[test]
fn bad_fraction_grows_from_zero_then_plateaus_below_half() {
    let cfg = VarianceConfig {
        sizes: vec![2, 4, 16, 128, 512],
        trials: 600,
        seed: 31337,
        threads: 4,
        generator: PairGenerator::DiverseShapes,
        ..VarianceConfig::default()
    };
    let e = variance::run(&cfg);
    assert_eq!(e.rows[0].bad, 0, "n = 2 exact");
    assert!(e.rows[1].bad > 0, "errors appear by n = 4");
    // Plateau: large-n rates stay in a narrow band well below 50 %.
    let large: Vec<f64> = e.rows[3..].iter().map(|r| r.bad_fraction).collect();
    for f in &large {
        assert!(*f < 0.5 && *f > 0.0, "{large:?}");
    }
    assert!(
        (large[0] - large[1]).abs() < 0.1,
        "plateau is flat-ish: {large:?}"
    );
}

#[test]
fn harder_generator_has_higher_bad_rate() {
    let mut cfg = VarianceConfig {
        sizes: vec![128],
        trials: 800,
        seed: 5150,
        threads: 4,
        ..VarianceConfig::default()
    };
    cfg.generator = PairGenerator::SameUniform;
    let hard = variance::run(&cfg).rows[0].bad_fraction;
    cfg.generator = PairGenerator::DiverseShapes;
    let easy = variance::run(&cfg).rows[0].bad_fraction;
    assert!(hard > easy);
    // The paper's 23 % plateau falls inside our generator family's range.
    assert!(easy < 0.23 && hard > 0.23, "easy {easy}, hard {hard}");
}

#[test]
fn threshold_separates_errors_from_large_gaps() {
    let cfg = ThresholdConfig {
        sizes: vec![8, 64],
        trials_per_combo: 400,
        seed: 1234,
        threads: 4,
        ..ThresholdConfig::default()
    };
    let e = threshold::run(&cfg);
    // A nonempty experiment with both correct and incorrect samples.
    assert!(e.samples.iter().any(|s| s.correct));
    assert!(e.samples.iter().any(|s| !s.correct));
    // θ is the sup of erring gaps: everything above it is correct.
    for s in &e.samples {
        if s.gap > e.theta {
            assert!(s.correct);
        }
    }
    // And the paper's qualitative finding: errors concentrate at small
    // gaps — the mean erring gap is below the mean correct gap.
    let mean = |it: Vec<f64>| -> f64 {
        let n = it.len() as f64;
        it.iter().sum::<f64>() / n
    };
    let err_gaps = mean(
        e.samples
            .iter()
            .filter(|s| !s.correct)
            .map(|s| s.gap)
            .collect(),
    );
    let ok_gaps = mean(
        e.samples
            .iter()
            .filter(|s| s.correct)
            .map(|s| s.gap)
            .collect(),
    );
    assert!(
        err_gaps < ok_gaps,
        "errors are small-gap: {err_gaps} vs {ok_gaps}"
    );
}

#[test]
fn theta_is_on_the_papers_scale() {
    // The paper found θ = 0.167 for its generator; ours lands on the same
    // order of magnitude (0.02–0.5). A θ of 0 (no errors at all) or ≥ the
    // maximum possible variance (0.25 for [0,1]-bounded speeds... times 4
    // for gaps) would both signal a broken experiment.
    let cfg = ThresholdConfig {
        sizes: vec![8, 32, 128],
        trials_per_combo: 600,
        seed: 777,
        threads: 4,
        ..ThresholdConfig::default()
    };
    let e = threshold::run(&cfg);
    assert!(e.theta > 0.02 && e.theta < 0.5, "θ = {}", e.theta);
}
