//! Reproducibility guarantees: every randomized experiment is a pure
//! function of its seed, independent of thread count, and stable across
//! repeated runs in one process.

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_experiments::{threshold, variance};
use hetero_par::{seed, Executor};

#[test]
fn profile_generation_is_seed_deterministic() {
    let cfg = GenConfig::new(64);
    for shape in [Shape::Uniform, Shape::Bimodal, Shape::Concentrated] {
        let a = hetero_clustergen::random_profile(&mut rng_from_seed(11), cfg, shape);
        let b = hetero_clustergen::random_profile(&mut rng_from_seed(11), cfg, shape);
        assert_eq!(a.rhos(), b.rhos());
    }
}

#[test]
fn variance_experiment_identical_at_1_and_16_threads() {
    let mut cfg = variance::VarianceConfig {
        sizes: vec![4, 32, 256],
        trials: 400,
        seed: 2024,
        threads: 1,
        ..variance::VarianceConfig::default()
    };
    let serial = variance::run(&cfg);
    cfg.threads = 16;
    let parallel = variance::run(&cfg);
    assert_eq!(serial.rows, parallel.rows);
}

#[test]
fn threshold_experiment_identical_across_threads() {
    let mut cfg = threshold::ThresholdConfig {
        sizes: vec![16],
        trials_per_combo: 200,
        seed: 555,
        threads: 1,
        ..threshold::ThresholdConfig::default()
    };
    let a = threshold::run(&cfg);
    cfg.threads = 12;
    let b = threshold::run(&cfg);
    assert_eq!(a.theta, b.theta);
    assert_eq!(a.samples, b.samples);
}

#[test]
fn different_seeds_give_different_streams() {
    let cfg = GenConfig::new(32);
    let a = hetero_clustergen::random_profile(&mut rng_from_seed(1), cfg, Shape::Uniform);
    let b = hetero_clustergen::random_profile(&mut rng_from_seed(2), cfg, Shape::Uniform);
    assert_ne!(a.rhos(), b.rhos());
}

#[test]
fn par_map_result_order_matches_serial_on_heavy_mixed_load() {
    // The executor contract that determinism rests on: input order out,
    // any thread count, uneven workloads.
    let items: Vec<u64> = (0..2_000).collect();
    let work = |_: usize, &x: &u64| -> u64 {
        let mut acc = seed::derive(x, x);
        let spin = (x % 37) * 50;
        for _ in 0..spin {
            acc = seed::mix(acc);
        }
        acc
    };
    let expect: Vec<u64> = items.iter().enumerate().map(|(i, x)| work(i, x)).collect();
    for threads in [1, 3, 8, 32] {
        assert_eq!(Executor::new(threads).map(&items, work), expect);
    }
}
