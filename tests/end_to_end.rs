//! End-to-end integration: the full pipeline from random cluster
//! generation through measurement, planning, simulation, and validation —
//! every workspace crate in one flow.

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_core::{hecr, xmeasure, Params, Profile};
use hetero_experiments::{fig34, table3, table4};
use hetero_protocol::{alloc, baseline, exec, validate};
use hetero_symfunc::exact_model::{compare_power, exact_rhos, ExactParams};

#[test]
fn generate_measure_plan_execute_validate() {
    let params = Params::paper_table1();
    let mut rng = rng_from_seed(424242);

    for n in [1usize, 2, 5, 20, 100] {
        let fleet = hetero_clustergen::random_profile(&mut rng, GenConfig::new(n), Shape::Uniform);

        // Measure.
        let x = xmeasure::x_measure(&params, &fleet);
        assert!(x > 0.0 && x < xmeasure::x_supremum(&params));
        let rate = hecr::hecr(&params, &fleet).expect("HECR exists");
        assert!(rate >= fleet.fastest() * (1.0 - 1e-9));
        assert!(rate <= fleet.slowest() * (1.0 + 1e-9));

        // Plan & execute.
        let lifespan = 500.0;
        let plan = alloc::fifo_plan(&params, &fleet, lifespan).expect("plan");
        let run = exec::execute(&params, &fleet, &plan);

        // Validate invariants and Theorem 2 agreement.
        assert!(
            validate::validate(&params, &fleet, &run).is_empty(),
            "n = {n}"
        );
        let done = run.work_completed_by(lifespan);
        let closed = xmeasure::work(&params, &fleet, lifespan);
        assert!((done - closed).abs() / closed < 1e-9, "n = {n}");
    }
}

#[test]
fn exact_and_float_paths_agree_end_to_end() {
    let params = Params::paper_table1();
    let exact_params = ExactParams::from_params(&params);
    let mut rng = rng_from_seed(7);

    for _ in 0..10 {
        let a = hetero_clustergen::random_profile(&mut rng, GenConfig::new(12), Shape::Uniform);
        let b = hetero_clustergen::random_profile(&mut rng, GenConfig::new(12), Shape::Bimodal);
        let float_order = xmeasure::x_measure(&params, &a)
            .partial_cmp(&xmeasure::x_measure(&params, &b))
            .expect("finite");
        let exact_order = compare_power(&exact_params, &exact_rhos(&a), &exact_rhos(&b));
        // Distinct random profiles essentially never tie in X; when f64
        // can see a difference it must agree with the exact order.
        let fx = xmeasure::x_measure(&params, &a);
        let fy = xmeasure::x_measure(&params, &b);
        if (fx - fy).abs() / fx.max(fy) > 1e-12 {
            assert_eq!(float_order, exact_order);
        }
    }
}

#[test]
fn optimal_beats_baselines_across_cluster_shapes() {
    let params = Params::paper_table1();
    let lifespan = 300.0;
    for profile in [
        Profile::harmonic(5),
        Profile::uniform_spread(6),
        Profile::new(vec![1.0, 0.05]).expect("valid"),
    ] {
        let optimal = alloc::fifo_plan(&params, &profile, lifespan)
            .expect("plan")
            .total_work();
        let equal = baseline::equal_split_plan(&params, &profile, lifespan)
            .expect("plan")
            .total_work();
        assert!(optimal > equal, "{:?}", profile.rhos());
    }
}

#[test]
fn experiments_reproduce_paper_artifacts() {
    // Table 3 shape.
    let t3 = table3::run_paper();
    assert_eq!(t3.rows.len(), 3);
    assert!(t3.rows.iter().all(|r| r.hecr_c2 < r.hecr_c1));

    // Table 4 shape.
    let t4 = table4::run_paper();
    assert!(t4.rows.windows(2).all(|w| w[1].ratio > w[0].ratio));

    // Figures 3–4 phase structure.
    let f = fig34::run_paper();
    assert_eq!(
        f.phase1.iter().map(|s| s.step.chosen).collect::<Vec<_>>(),
        [3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0]
    );
    assert_eq!(
        f.phase2.iter().map(|s| s.step.chosen).collect::<Vec<_>>(),
        [3, 2, 1, 0]
    );
}

#[test]
fn cli_renderings_are_nonempty_and_parseable() {
    // The render layer is the user-facing surface; make sure every
    // experiment renders both ASCII and CSV.
    let t3 = table3::run_paper().table();
    assert!(t3.to_ascii().lines().count() >= 7);
    let csv = t3.to_csv();
    assert_eq!(csv.lines().count(), 4, "header + 3 rows");
    for line in csv.lines() {
        assert_eq!(line.split(',').count(), 6);
    }
}
