//! Observability-stream contracts across the workspace:
//!
//! 1. the Chrome trace export of a pinned two-computer FIFO run is
//!    byte-identical to the checked-in golden file (the export is part of
//!    the reproducibility surface — any drift is a deliberate,
//!    golden-updating change);
//! 2. two identical runs produce identical counter snapshots (the
//!    collector never injects nondeterminism);
//! 3. every line of a JSONL stream honours the `{event, name, value}`
//!    contract — including, when `OBS_JSONL` points at a file written by
//!    `hetero-cli --obs-json`, the stream produced by the real binary
//!    (this is the CI validation hook).

use std::sync::Mutex;

use hetero_core::{Params, Profile};
use hetero_experiments::{obs_export, scaling};
use hetero_obs::sink::validate_jsonl_line;

/// Serializes the tests that flip the process-global collector.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// The pinned run behind the golden file: Table 1 parameters, two remote
/// computers at ρ = ⟨1, ½⟩, FIFO plan sized for lifespan 100.
fn fifo2_chrome() -> String {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5]).unwrap();
    let run = obs_export::fig2_execution(&params, &profile, 100.0);
    obs_export::execution_to_chrome(&run, profile.n())
}

/// Regenerates the golden file after an intentional format change:
/// `cargo test --test obs_stream -- --ignored regenerate_golden_trace`
#[test]
#[ignore = "writes tests/golden/fifo2_trace.json; run explicitly after intentional format changes"]
fn regenerate_golden_trace() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/fifo2_trace.json");
    std::fs::write(path, fifo2_chrome()).unwrap();
}

#[test]
fn chrome_trace_matches_golden_file_byte_for_byte() {
    let doc = fifo2_chrome();
    let golden = include_str!("golden/fifo2_trace.json");
    assert_eq!(
        doc, golden,
        "Chrome trace drifted from tests/golden/fifo2_trace.json; if the \
         change is intentional, regenerate the golden file"
    );
}

#[test]
fn chrome_trace_is_valid_json_with_expected_rows() {
    let doc = fifo2_chrome();
    let v = hetero_obs::json::parse(&doc).expect("golden trace parses as JSON");
    assert_eq!(
        v.get("displayTimeUnit").and_then(|u| u.as_str()),
        Some("ms")
    );
    for row in ["\"C0\"", "\"C1\"", "\"C2\"", "\"net\""] {
        assert!(doc.contains(row), "missing gantt row {row}");
    }
}

#[test]
fn identical_runs_produce_identical_counter_snapshots() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let params = Params::paper_table1();
    let sizes = [8usize, 16, 32];

    hetero_obs::reset();
    hetero_obs::enable();
    let _ = scaling::run(&params, &sizes);
    let first = hetero_obs::snapshot();

    hetero_obs::reset();
    let _ = scaling::run(&params, &sizes);
    let second = hetero_obs::snapshot();
    hetero_obs::disable();
    hetero_obs::reset();

    assert_eq!(
        first.counter_fingerprint(),
        second.counter_fingerprint(),
        "same-seed runs must produce identical counters and gauges"
    );
    assert!(
        first.counter("xengine.rebuild") > 0,
        "scaling must exercise the xengine"
    );
}

#[test]
fn every_jsonl_line_honours_the_event_name_value_contract() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hetero_obs::reset();
    hetero_obs::enable();
    let _ = scaling::run(&Params::paper_table1(), &[8, 16]);
    hetero_obs::count("demo.counter", 3);
    hetero_obs::observe("demo.value", 1.5);
    hetero_obs::observe_hist("demo.hist", 0.5, 0.0, 1.0, 4);
    let snapshot = hetero_obs::snapshot();
    hetero_obs::disable();
    hetero_obs::reset();

    let stream = snapshot.to_jsonl();
    assert!(!stream.is_empty());
    for line in stream.lines() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
    }
}

/// CI hook: when `OBS_JSONL` names a file (written by
/// `hetero-cli all --obs-json`), every line of it must parse and carry
/// the `{event, name, value}` keys. Without the variable the test is a
/// no-op, so local `cargo test` stays hermetic.
#[test]
fn external_obs_stream_validates_when_provided() {
    let Ok(path) = std::env::var("OBS_JSONL") else {
        return;
    };
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("OBS_JSONL={path} is not readable: {e}"));
    let mut lines = 0usize;
    for line in body.lines() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        lines += 1;
    }
    assert!(lines > 0, "OBS_JSONL={path} is empty");
    // A full CLI run must close with the manifest record.
    let last = body.lines().last().unwrap();
    let v = hetero_obs::json::parse(last).unwrap();
    assert_eq!(
        v.get("event").and_then(|e| e.as_str()),
        Some("manifest"),
        "stream must end with the run manifest"
    );
}
