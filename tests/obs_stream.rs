//! Observability-stream contracts across the workspace:
//!
//! 1. the Chrome trace export of a pinned two-computer FIFO run is
//!    byte-identical to the checked-in golden file (the export is part of
//!    the reproducibility surface — any drift is a deliberate,
//!    golden-updating change);
//! 2. two identical runs produce identical counter snapshots (the
//!    collector never injects nondeterminism);
//! 3. every line of a JSONL stream honours the `{event, name, value}`
//!    contract — including, when `OBS_JSONL` points at a file written by
//!    `hetero-cli --obs-json`, the stream produced by the real binary
//!    (this is the CI validation hook).

use std::sync::Mutex;

use hetero_core::{Params, Profile};
use hetero_experiments::{obs_export, scaling};
use hetero_obs::sink::validate_jsonl_line;

/// Serializes the tests that flip the process-global collector.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

/// The pinned run behind the golden file: Table 1 parameters, two remote
/// computers at ρ = ⟨1, ½⟩, FIFO plan sized for lifespan 100.
fn fifo2_chrome() -> String {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5]).unwrap();
    let run = obs_export::fig2_execution(&params, &profile, 100.0);
    obs_export::execution_to_chrome(&run, profile.n())
}

/// Regenerates the golden file after an intentional format change:
/// `cargo test --test obs_stream -- --ignored regenerate_golden_trace`
#[test]
#[ignore = "writes tests/golden/fifo2_trace.json; run explicitly after intentional format changes"]
fn regenerate_golden_trace() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/golden/fifo2_trace.json");
    std::fs::write(path, fifo2_chrome()).unwrap();
}

#[test]
fn chrome_trace_matches_golden_file_byte_for_byte() {
    let doc = fifo2_chrome();
    let golden = include_str!("golden/fifo2_trace.json");
    assert_eq!(
        doc, golden,
        "Chrome trace drifted from tests/golden/fifo2_trace.json; if the \
         change is intentional, regenerate the golden file"
    );
}

#[test]
fn chrome_trace_is_valid_json_with_expected_rows() {
    let doc = fifo2_chrome();
    let v = hetero_obs::json::parse(&doc).expect("golden trace parses as JSON");
    assert_eq!(
        v.get("displayTimeUnit").and_then(|u| u.as_str()),
        Some("ms")
    );
    for row in ["\"C0\"", "\"C1\"", "\"C2\"", "\"net\""] {
        assert!(doc.contains(row), "missing gantt row {row}");
    }
}

#[test]
fn identical_runs_produce_identical_counter_snapshots() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let params = Params::paper_table1();
    let sizes = [8usize, 16, 32];

    hetero_obs::reset();
    hetero_obs::enable();
    let _ = scaling::run(&params, &sizes);
    let first = hetero_obs::snapshot();

    hetero_obs::reset();
    let _ = scaling::run(&params, &sizes);
    let second = hetero_obs::snapshot();
    hetero_obs::disable();
    hetero_obs::reset();

    assert_eq!(
        first.counter_fingerprint(),
        second.counter_fingerprint(),
        "same-seed runs must produce identical counters and gauges"
    );
    assert!(
        first.counter("xengine.rebuild") > 0,
        "scaling must exercise the xengine"
    );
}

#[test]
fn every_jsonl_line_honours_the_event_name_value_contract() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hetero_obs::reset();
    hetero_obs::enable();
    let _ = scaling::run(&Params::paper_table1(), &[8, 16]);
    hetero_obs::count("demo.counter", 3);
    hetero_obs::observe("demo.value", 1.5);
    hetero_obs::observe_hist("demo.hist", 0.5, 0.0, 1.0, 4);
    let snapshot = hetero_obs::snapshot();
    hetero_obs::disable();
    hetero_obs::reset();

    let stream = snapshot.to_jsonl();
    assert!(!stream.is_empty());
    for line in stream.lines() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
    }
}

/// PR 8 acceptance: the causal chain ending at the pinned FIFO run's
/// last result transmission reproduces the analytic lifespan bound. The
/// plan is sized for L = 100, so Theorem 1 makes the chain to the last
/// arrival temporally contiguous from t = 0 — its weight *is* L and its
/// end *is* the last arrival, bit for bit.
#[test]
fn critical_path_of_the_pinned_fifo2_run_reproduces_the_lifespan_bound() {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5]).unwrap();
    let run = obs_export::fig2_execution(&params, &profile, 100.0);
    let path = hetero_obs::causal::critical_path_where(&run.trace, |i| {
        run.trace.spans()[i].label.starts_with("xmit:result")
    })
    .expect("the run transmits results");
    let last_arrival = run.last_arrival().expect("results arrived").get();
    assert_eq!(
        path.end.to_bits(),
        last_arrival.to_bits(),
        "the heaviest result chain must end at the last arrival"
    );
    assert!(
        (path.weight - 100.0).abs() <= 1e-9 * 100.0,
        "contiguous chain weight {} must equal the lifespan bound 100",
        path.weight
    );
    assert!(
        path.slack.abs() <= 1e-9 * 100.0,
        "Theorem 1 chain must be gap-free, got slack {}",
        path.slack
    );
    assert_eq!(path.start, 0.0, "the chain is anchored at t = 0");
    // The folded rendering of the same trace carries every frame the
    // chain names, so flamegraph width agrees with the extractor.
    let names: Vec<String> = vec!["C0".into(), "C1".into(), "C2".into(), "net".into()];
    let folded = hetero_obs::folded::trace_to_folded(&run.trace, &names);
    for label in path.span_ids.iter().map(|&i| &run.trace.spans()[i].label) {
        assert!(
            folded.contains(label.as_str()),
            "folded output lost {label}"
        );
    }
}

/// Causal parents never change the spans themselves: the parent-id
/// vector rides alongside, so the golden Chrome trace (which renders
/// spans only) is untouched by PR 8's causality threading — and every
/// span's parent is recorded before it.
#[test]
fn causal_parents_are_well_formed_on_the_pinned_run() {
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5]).unwrap();
    let run = obs_export::fig2_execution(&params, &profile, 100.0);
    let n = run.trace.spans().len();
    assert_eq!(run.trace.parents().len(), n);
    let mut roots = 0;
    for i in 0..n {
        match run.trace.parent(i) {
            None => roots += 1,
            Some(p) => assert!(p < i, "parent {p} of span {i} must be recorded first"),
        }
    }
    assert_eq!(roots, 1, "one FIFO run grows from a single causal root");
}

/// An instrumented protocol execution now also feeds the mergeable
/// quantile sketches; their lines validate under the stream contract.
#[test]
fn sketch_events_join_the_instrumented_stream() {
    let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    hetero_obs::reset();
    hetero_obs::enable();
    let params = Params::paper_table1();
    let profile = Profile::new(vec![1.0, 0.5]).unwrap();
    let _ = obs_export::fig2_execution(&params, &profile, 100.0);
    let snapshot = hetero_obs::snapshot();
    hetero_obs::disable();
    hetero_obs::reset();

    let stream = snapshot.to_jsonl();
    let sketch_lines: Vec<&str> = stream
        .lines()
        .filter(|l| l.contains("\"sketch\""))
        .collect();
    assert!(
        !sketch_lines.is_empty(),
        "protocol phases must feed the sketches"
    );
    for line in stream.lines() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
    }
    assert!(
        !snapshot.sketches.is_empty(),
        "snapshot must expose the sketches for the manifest"
    );
}

/// CI hook: when `OBS_JSONL` names a file (written by
/// `hetero-cli all --obs-json`), every line of it must parse and carry
/// the `{event, name, value}` keys. Without the variable the test is a
/// no-op, so local `cargo test` stays hermetic.
#[test]
fn external_obs_stream_validates_when_provided() {
    let Ok(path) = std::env::var("OBS_JSONL") else {
        return;
    };
    let body = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("OBS_JSONL={path} is not readable: {e}"));
    let mut lines = 0usize;
    for line in body.lines() {
        validate_jsonl_line(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
        lines += 1;
    }
    assert!(lines > 0, "OBS_JSONL={path} is empty");
    // A full CLI run must close with the manifest record.
    let last = body.lines().last().unwrap();
    let v = hetero_obs::json::parse(last).unwrap();
    assert_eq!(
        v.get("event").and_then(|e| e.as_str()),
        Some("manifest"),
        "stream must end with the run manifest"
    );
}
