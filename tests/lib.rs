//! Integration tests live in the sibling *.rs files as [[test]]-discovered targets.
