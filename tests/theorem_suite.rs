//! The paper's theorems, verified across crates — f64 decision rules
//! checked against exact rational arithmetic so no assertion rests on
//! floating-point luck.

use std::cmp::Ordering;

use hetero_core::{speedup, xmeasure, Params, Profile};
use hetero_exact::Ratio;
use hetero_symfunc::exact_model::{compare_power, exact_rhos, x_exact, ExactParams};
use hetero_symfunc::lemma1::{claim1_holds, x_via_lemma1, FieldParams};
use hetero_symfunc::{moments, predictors};

fn fparams() -> Params {
    Params::paper_table1()
}

fn eparams() -> ExactParams {
    ExactParams::from_params(&fparams())
}

/// A deterministic battery of test profiles with varied shapes.
fn battery() -> Vec<Profile> {
    vec![
        Profile::new(vec![1.0, 0.5]).unwrap(),
        Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap(),
        Profile::harmonic(7),
        Profile::uniform_spread(9),
        Profile::new(vec![1.0, 0.99, 0.98, 0.02]).unwrap(),
        Profile::new(vec![1.0, 0.125, 0.125, 0.125]).unwrap(),
    ]
}

#[test]
fn proposition2_exact_any_single_speedup_helps() {
    let ep = eparams();
    for profile in battery() {
        let rhos = exact_rhos(&profile);
        let base = x_exact(&ep, &rhos);
        for i in 0..rhos.len() {
            let mut up = rhos.clone();
            up[i] = &up[i] * &Ratio::from_frac(9, 10);
            assert!(
                x_exact(&ep, &up) > base,
                "exact Prop. 2 at index {i} of {:?}",
                profile.rhos()
            );
        }
    }
}

#[test]
fn theorem1_part2_exact_permutation_invariance() {
    let ep = eparams();
    for profile in battery() {
        let rhos = exact_rhos(&profile);
        let base = x_exact(&ep, &rhos);
        let mut rev = rhos.clone();
        rev.reverse();
        assert_eq!(base, x_exact(&ep, &rev), "{:?}", profile.rhos());
        // A rotation, too.
        let mut rot = rhos.clone();
        let k = 1.min(rot.len() - 1);
        rot.rotate_left(k);
        assert_eq!(base, x_exact(&ep, &rot));
    }
}

#[test]
fn theorem3_exact_fastest_is_best_additive_upgrade() {
    let ep = eparams();
    for profile in battery() {
        if profile.n() < 2 {
            continue;
        }
        let rhos = exact_rhos(&profile);
        let phi = Ratio::from_f64(profile.fastest()).unwrap() * Ratio::from_frac(1, 2);
        // Exact X for each candidate upgrade.
        let mut best_idx = 0;
        let mut best_x = Ratio::zero();
        for i in 0..rhos.len() {
            let mut up = rhos.clone();
            up[i] = &up[i] - &phi;
            assert!(up[i].is_positive(), "φ < ρ_i for every computer");
            let x = x_exact(&ep, &up);
            if x >= best_x {
                best_x = x;
                best_idx = i;
            }
        }
        assert_eq!(
            best_idx,
            rhos.len() - 1,
            "Theorem 3 (exact) on {:?}",
            profile.rhos()
        );
    }
}

#[test]
fn theorem4_exact_discriminant_decides() {
    // The discriminant Ξ⁽ʲ⁾ − Ξ⁽ⁱ⁾ = (B²ψρᵢρⱼ − Aτδ)·B·(1−ψ)(ρᵢ−ρⱼ):
    // its sign must match the exact X comparison for both parameter
    // regimes (condition 1 under Table 1, condition 2 under fig34 with
    // fast computers).
    for (params, rho_i, rho_j) in [
        (Params::paper_table1(), 1.0, 0.5),
        (Params::fig34(), 1.0, 1.0 / 16.0),
        (Params::fig34(), 1.0 / 16.0, 1.0 / 32.0),
    ] {
        let ep = ExactParams::from_params(&params);
        let psi = Ratio::from_frac(1, 2);
        let ri = Ratio::from_f64(rho_i).unwrap();
        let rj = Ratio::from_f64(rho_j).unwrap();

        let speed_slower = vec![&psi * &ri, rj.clone()];
        let speed_faster = vec![ri.clone(), &psi * &rj];
        let exact_order = x_exact(&ep, &speed_faster).cmp(&x_exact(&ep, &speed_slower));

        let b = ep.b();
        let lhs = &(&b * &b) * &(&psi * &(&ri * &rj));
        let rhs = ep.a() * ep.tau_delta();
        let predicted = lhs.cmp(&rhs);
        assert_eq!(
            exact_order, predicted,
            "Theorem 4 exact at ρ=({rho_i},{rho_j}) under {params:?}"
        );

        // And the f64 rule in hetero-core agrees.
        let f64_rule = speedup::theorem4_choice(&params, rho_i, rho_j, 0.5);
        match predicted {
            Ordering::Greater => assert_eq!(f64_rule, speedup::Theorem4Choice::Faster),
            Ordering::Less => assert_eq!(f64_rule, speedup::Theorem4Choice::Slower),
            Ordering::Equal => assert_eq!(f64_rule, speedup::Theorem4Choice::Indifferent),
        }
    }
}

#[test]
fn theorem5_part1_dominance_with_equal_means_forces_variance_order() {
    // Construct equal-mean pairs where P1 dominates; variance must be
    // larger for P1.
    let pairs = [
        (vec![(1i64, 1u64), (1, 2)], vec![(3, 4), (3, 4)]),
        (vec![(1, 1), (1, 3)], vec![(2, 3), (2, 3)]),
        (vec![(9, 10), (1, 10)], vec![(1, 2), (1, 2)]),
    ];
    for (p1, p2) in pairs {
        let p1: Vec<Ratio> = p1.iter().map(|&(n, d)| Ratio::from_frac(n, d)).collect();
        let p2: Vec<Ratio> = p2.iter().map(|&(n, d)| Ratio::from_frac(n, d)).collect();
        assert_eq!(moments::mean(&p1), moments::mean(&p2));
        assert!(predictors::prop3_dominates(&p1, &p2));
        assert!(
            moments::variance(&p1) > moments::variance(&p2),
            "Theorem 5(1)"
        );
    }
}

#[test]
fn corollary1_exhaustive_over_a_grid() {
    // Heterogeneity lends power: for every equal-mean (hetero, homo)
    // 2-computer pair on a rational grid, the heterogeneous cluster wins
    // — exactly.
    let ep = eparams();
    for mean_num in 2..=9i64 {
        let mean = Ratio::from_frac(mean_num, 10);
        for spread_num in 1..=(mean_num.min(10 - mean_num)) {
            let d = Ratio::from_frac(spread_num, 11);
            let hetero = vec![&mean + &d, &mean - &d];
            if !hetero[1].is_positive() {
                continue;
            }
            let homo = vec![mean.clone(), mean.clone()];
            assert_eq!(
                compare_power(&ep, &hetero, &homo),
                Ordering::Greater,
                "mean {mean_num}/10 spread {spread_num}/11"
            );
        }
    }
}

#[test]
fn lemma1_and_claim1_hold_for_every_battery_profile() {
    let ep = eparams();
    let fp = FieldParams::from_exact(&ep);
    for profile in battery() {
        let rhos = exact_rhos(&profile);
        assert_eq!(
            x_via_lemma1(&fp, &rhos),
            x_exact(&ep, &rhos),
            "Lemma 1 exact on {:?}",
            profile.rhos()
        );
        assert!(claim1_holds(&fp, profile.n()));
    }
}

#[test]
fn minorization_implies_exact_dominance_and_prop3_certifies() {
    let ep = eparams();
    let slow = Profile::new(vec![1.0, 0.5, 0.5]).unwrap();
    let fast = Profile::new(vec![0.875, 0.5, 0.375]).unwrap();
    assert!(fast.minorizes(&slow));
    let (rf, rs) = (exact_rhos(&fast), exact_rhos(&slow));
    assert_eq!(compare_power(&ep, &rf, &rs), Ordering::Greater);
    assert!(predictors::prop3_dominates(&rf, &rs));
}

#[test]
fn hecr_ranks_clusters_the_same_way_x_does() {
    let fp = fparams();
    let battery = battery();
    for a in &battery {
        for b in &battery {
            if a.n() != b.n() {
                continue;
            }
            let (xa, xb) = (xmeasure::x_measure(&fp, a), xmeasure::x_measure(&fp, b));
            let (ra, rb) = (
                hetero_core::hecr::hecr(&fp, a).unwrap(),
                hetero_core::hecr::hecr(&fp, b).unwrap(),
            );
            if (xa - xb).abs() / xa.max(xb) > 1e-9 {
                assert_eq!(xa > xb, ra < rb, "HECR must rank opposite to X");
            }
        }
    }
}
