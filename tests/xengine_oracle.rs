//! Cross-check of the incremental xengine against the exact rational
//! oracle in `hetero-symfunc`: an O(1) replacement query must agree with
//! the mathematically exact X-measure of the updated cluster — not merely
//! with another f64 evaluation that could share its rounding errors.

use hetero_core::xengine::XScan;
use hetero_core::Params;
use hetero_exact::Ratio;
use hetero_symfunc::exact_model::{x_exact, ExactParams};
use proptest::prelude::*;

/// Speeds spread over ~8 decades, small denominators kept by drawing
/// dyadic mantissas (exact arithmetic cost stays bounded).
fn spread_rho() -> impl Strategy<Value = f64> {
    (1.0f64..2.0, -26i32..1).prop_map(|(m, e)| m * (e as f64).exp2())
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

fn exact_x_of(params: &Params, rhos: &[f64]) -> f64 {
    let ep = ExactParams::from_params(params);
    let exact: Vec<Ratio> = rhos
        .iter()
        .map(|&r| Ratio::from_f64(r).expect("finite"))
        .collect();
    x_exact(&ep, &exact).to_f64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replacement_queries_match_the_exact_oracle(
        rhos in prop::collection::vec(spread_rho(), 1..9),
        which in any::<prop::sample::Index>(),
        new_rho in spread_rho(),
    ) {
        let params = Params::paper_table1();
        let mut scan = XScan::new(&params, &rhos).unwrap();
        let k = which.index(rhos.len());

        // O(1) incremental answer vs the exact rational evaluation of the
        // updated cluster.
        let incremental = scan.replace(k, new_rho).unwrap();
        let mut updated = rhos;
        updated[k] = new_rho;
        let exact = exact_x_of(&params, &updated);
        prop_assert!(
            rel_err(incremental, exact) <= 1e-12,
            "k = {k}: incremental {incremental} vs exact {exact}"
        );

        // The committed scan must agree just as tightly.
        scan.commit(k, new_rho).unwrap();
        prop_assert!(rel_err(scan.x(), exact) <= 1e-12);
    }
}
