//! Property suite for the PR 7 streaming/pruning layers, cross-checked
//! against both a from-scratch float evaluation and the exact rational
//! oracle:
//!
//! * **Churn ≡ rebuild.** Any interleaving of insert/delete/replace on a
//!   [`ChurnScan`] must track the flat `x_measure_of_rhos` of its live
//!   membership to ≤ 1e-12 relative after *every* operation — the scan
//!   reassociates (segmented prefix scans, swap-with-tail deletes), so
//!   bit-identity is not the contract, but tight agreement is.
//! * **Ratio-oracle spot checks.** The final churned state must agree
//!   with the mathematically exact X of its membership via
//!   `hetero-exact`'s `Ratio` arithmetic — not merely with another f64
//!   path that could share its rounding errors. Dyadic speeds keep the
//!   exact denominators bounded.
//! * **B&B ≡ Gray.** The branch-and-bound search must return the
//!   *bit-identical* winner of the exhaustive Gray-code walk — max X by
//!   `total_cmp`, ties to the lowest mask — on adversarial profiles
//!   drawn from a tiny speed pool so duplicate runs force exact X ties
//!   the dominance canonicalization has to resolve the same way.
//! * **Compression certificates.** Every [`SummaryTree`] node's stored
//!   log-residual must sit within its own error certificate
//!   (`certification_slack ≤ 1`), and the Proposition 1 compressed fleet
//!   must reproduce the flat X within the tree's certified X bound.

use hetero_core::hcompress::SummaryTree;
use hetero_core::selection::{best_k_subset_gray, best_k_subset_with_stats};
use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::xstream::{ChurnScan, WorkerId};
use hetero_core::{Params, Profile};
use hetero_exact::Ratio;
use hetero_symfunc::exact_model::{x_exact, ExactParams};
use proptest::prelude::*;

/// Dyadic speeds over ~8 decades: exact `Ratio` denominators stay
/// bounded while the compensated sums still see wild magnitude spreads.
fn dyadic_rho() -> impl Strategy<Value = f64> {
    (1.0f64..2.0, -26i32..1).prop_map(|(m, e)| m * (e as f64).exp2())
}

/// One churn step: insert a worker, delete the live worker at a rotating
/// offset, or replace one with a new speed.
#[derive(Debug, Clone)]
enum Churn {
    Insert(f64),
    Delete(usize),
    Replace(usize, f64),
}

fn churn_step() -> impl Strategy<Value = Churn> {
    prop_oneof![
        dyadic_rho().prop_map(Churn::Insert),
        any::<prop::sample::Index>().prop_map(|i| Churn::Delete(i.index(1 << 16))),
        (any::<prop::sample::Index>(), dyadic_rho())
            .prop_map(|(i, rho)| Churn::Replace(i.index(1 << 16), rho)),
    ]
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

fn exact_x_of(params: &Params, rhos: &[f64]) -> f64 {
    let ep = ExactParams::from_params(params);
    let exact: Vec<Ratio> = rhos
        .iter()
        .map(|&r| Ratio::from_f64(r).expect("finite"))
        .collect();
    x_exact(&ep, &exact).to_f64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn churned_scan_tracks_the_flat_rebuild_after_every_op(
        initial in prop::collection::vec(dyadic_rho(), 1..40),
        ops in prop::collection::vec(churn_step(), 1..40),
    ) {
        let params = Params::paper_table1();
        let (mut scan, ids) = ChurnScan::from_rhos(&params, &initial).expect("valid speeds");
        let mut live: Vec<WorkerId> = ids;
        for op in &ops {
            match *op {
                Churn::Insert(rho) => {
                    live.push(scan.insert(rho).expect("valid rho"));
                }
                Churn::Delete(i) => {
                    if live.len() > 1 {
                        let id = live.swap_remove(i % live.len());
                        scan.delete(id).expect("live handle");
                    }
                }
                Churn::Replace(i, rho) => {
                    let id = live[i % live.len()];
                    scan.replace(id, rho).expect("live handle");
                }
            }
            let flat = x_measure_of_rhos(&params, &scan.to_rhos());
            prop_assert!(
                rel_err(scan.x(), flat) <= 1e-12,
                "after {op:?}: scan {} vs rebuild {flat}",
                scan.x()
            );
        }

        // Exact-oracle spot check on the final membership: the churned
        // value must agree with rational arithmetic, not just another
        // float path.
        let exact = exact_x_of(&params, &scan.to_rhos());
        prop_assert!(
            rel_err(scan.x(), exact) <= 1e-12,
            "final: scan {} vs exact {exact}",
            scan.x()
        );
    }

    #[test]
    fn branch_and_bound_winner_is_bit_identical_to_the_gray_walk(
        // Indices into a 4-value pool: duplicate runs are the common
        // case, forcing exact X ties (same multiset, different masks)
        // that both searches must break to the identical lowest mask.
        picks in prop::collection::vec(0usize..4, 1..25),
        pool in prop::collection::vec(dyadic_rho(), 4),
        k in 1usize..25,
    ) {
        prop_assume!(k <= picks.len());
        let params = Params::paper_table1();
        let rhos: Vec<f64> = picks.iter().map(|&i| pool[i]).collect();
        let profile = Profile::from_unsorted(rhos).expect("positive finite speeds");
        let walk = best_k_subset_gray(&params, &profile, k).expect("valid k");
        let (bnb, stats) = best_k_subset_with_stats(&params, &profile, k).expect("valid k");
        for (a, b) in bnb.rhos().iter().zip(walk.rhos()) {
            prop_assert_eq!(a.to_bits(), b.to_bits(), "bnb {:?} vs walk {:?}", bnb, walk);
        }
        prop_assert!(stats.leaves_evaluated > 0);
    }

    #[test]
    fn summary_tree_certificates_hold_on_adversarial_fleets(
        rhos in prop::collection::vec(dyadic_rho(), 1..700),
    ) {
        let params = Params::paper_table1();
        let tree = SummaryTree::with_leaf_size(&params, &rhos, 16).expect("valid speeds");
        // Every node within its own certificate.
        prop_assert!(
            tree.certification_slack() <= 1.0,
            "per-node bound violated: slack {}",
            tree.certification_slack()
        );
        // The root-level X within the certified bound of the flat
        // evaluation (plus the flat path's own few-ulp rounding).
        let flat = x_measure_of_rhos(&params, &rhos);
        prop_assert!(
            (tree.x() - flat).abs() <= tree.x_error_bound() + 1e-12 * flat.abs(),
            "tree {} vs flat {flat}, bound {}",
            tree.x(),
            tree.x_error_bound()
        );
        // Proposition 1 compression: collapsing to homogeneous
        // equivalents is exact in ℝ, so the float fleet must sit inside
        // the same certified envelope.
        let fleet = tree.compress(8).expect("valid budget");
        prop_assert!(fleet.num_clusters() <= 8);
        prop_assert_eq!(fleet.n(), rhos.len());
        prop_assert!(
            (fleet.x() - flat).abs() <= tree.x_error_bound() + 1e-11 * flat.abs(),
            "compressed {} vs flat {flat}",
            fleet.x()
        );
    }
}
