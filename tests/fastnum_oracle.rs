//! Certification of the fast numeric mode (DESIGN.md §17) against the
//! exact rational oracle: every fast kernel — the single-division
//! algebraic reform and the divide-free reciprocal-Newton path — must
//! stay within its *analytic* per-element error budget of the
//! mathematically exact X-measure, not merely close to another f64
//! evaluation that could share its rounding errors.

use hetero_core::fastnum::{self, x_budget_1div, x_budget_rcp};
use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::{NumericMode, Params};
use hetero_exact::Ratio;
use hetero_symfunc::exact_model::{x_exact, ExactParams};
use proptest::prelude::*;

/// Speeds spread over ~8 decades, small denominators kept by drawing
/// dyadic mantissas (exact arithmetic cost stays bounded).
fn spread_rho() -> impl Strategy<Value = f64> {
    (1.0f64..2.0, -26i32..1).prop_map(|(m, e)| m * (e as f64).exp2())
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

fn exact_x_of(params: &Params, rhos: &[f64]) -> f64 {
    let ep = ExactParams::from_params(params);
    let exact: Vec<Ratio> = rhos
        .iter()
        .map(|&r| Ratio::from_f64(r).expect("finite"))
        .collect();
    x_exact(&ep, &exact).to_f64()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The scalar single-division reform holds its certified budget
    /// against exact rational arithmetic.
    #[test]
    fn fast_1div_is_within_budget_of_exact(
        rhos in prop::collection::vec(spread_rho(), 1..24),
    ) {
        let params = Params::paper_table1();
        let fast = fastnum::x_fast_1div(&params, &rhos);
        let exact = exact_x_of(&params, &rhos);
        let budget = x_budget_1div(rhos.len());
        prop_assert!(
            rel_err(fast, exact) <= budget,
            "n = {}: fast {fast} vs exact {exact} (budget {budget:e})",
            rhos.len()
        );
    }

    /// The portable reciprocal-Newton path holds its (looser) budget.
    #[test]
    fn fast_rcp_is_within_budget_of_exact(
        rhos in prop::collection::vec(spread_rho(), 1..24),
    ) {
        let params = Params::paper_table1();
        let fast = fastnum::x_fast_rcp(&params, &rhos);
        let exact = exact_x_of(&params, &rhos);
        let budget = x_budget_rcp(rhos.len());
        prop_assert!(
            rel_err(fast, exact) <= budget,
            "n = {}: fast {fast} vs exact {exact} (budget {budget:e})",
            rhos.len()
        );
    }

    /// The lockstep batch fast kernel (SIMD reciprocal where the host
    /// supports it, portable Newton otherwise) holds the rcp budget on
    /// every row — including the sub-LANES scalar tail.
    #[test]
    fn batch_fast_rows_are_within_budget_of_exact(
        rows in prop::collection::vec(
            prop::collection::vec(spread_rho(), 11..12), 1..19),
    ) {
        let params = Params::paper_table1();
        let n = rows[0].len();
        let mut batch = ProfileBatch::with_capacity(rows.len(), rows.len() * n);
        for row in &rows {
            batch.push(row);
        }
        let fast = xbatch::x_measures_mode(&params, &batch, NumericMode::Fast);
        let budget = x_budget_rcp(n);
        for (row, &x) in rows.iter().zip(&fast) {
            let exact = exact_x_of(&params, row);
            prop_assert!(
                rel_err(x, exact) <= budget,
                "fast {x} vs exact {exact} (budget {budget:e})"
            );
        }
    }
}

/// Measured relative error at the BENCH configuration (n = 1024),
/// asserted against the analytic budgets. The exact-rational reference
/// is computed for the bench speed spread itself (one row — the exact
/// pass costs minutes at this length, which is why the test is
/// `--ignored`); the adversarial spreads are then swept cheaply against
/// the strict kernel, whose own distance to exact is bounded by the
/// same-shape Neumaier analysis, so `fast-vs-strict + strict-vs-exact`
/// stays a valid envelope. Run with `--ignored --nocapture` when
/// regenerating `BENCH_pr10.json`.
#[test]
#[ignore = "exact-oracle pass at n = 1024 costs minutes; run when regenerating BENCH_pr10.json"]
fn measured_worst_case_error_at_bench_n() {
    let params = Params::paper_table1();
    let n = 1024;
    // A full lane block of the bench row first — fewer than LANES rows
    // would route the whole batch through the scalar-tail fallback and
    // never touch the lockstep rcp kernel under measurement — then
    // adversarial spreads (strict reference): dyadic decades and a
    // near-flat fleet.
    let bench_row: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
    let mut rows: Vec<Vec<f64>> = vec![bench_row; hetero_core::xbatch::LANES];
    rows.push((0..n).map(|i| ((i % 53) as f64 - 26.0).exp2()).collect());
    rows.push((0..n).map(|i| 1.0 + (i as f64) * 1e-6).collect());
    let mut batch = ProfileBatch::with_capacity(rows.len(), rows.len() * n);
    for r in &rows {
        batch.push(r);
    }
    let fast_batch = xbatch::x_measures_mode(&params, &batch, NumericMode::Fast);

    let exact = exact_x_of(&params, &rows[0]);
    let e_1div = rel_err(fastnum::x_fast_1div(&params, &rows[0]), exact);
    let e_rcp = rel_err(fastnum::x_fast_rcp(&params, &rows[0]), exact);
    let e_batch = rel_err(fast_batch[0], exact);
    println!("budget_1div(1024) = {:e}", x_budget_1div(n));
    println!("budget_rcp(1024)  = {:e}", x_budget_rcp(n));
    println!("bench row vs exact: 1div {e_1div:e}  rcp {e_rcp:e}  batch {e_batch:e}");

    let mut w_strict = 0.0f64;
    for (row, &xb) in rows.iter().zip(&fast_batch) {
        let strict = hetero_core::xmeasure::x_measure_of_rhos(&params, row);
        w_strict = w_strict.max(rel_err(xb, strict));
        w_strict = w_strict.max(rel_err(fastnum::x_fast_1div(&params, row), strict));
    }
    println!("worst fast-vs-strict over adversarial spreads: {w_strict:e}");

    assert!(e_1div <= x_budget_1div(n));
    assert!(e_rcp <= x_budget_rcp(n));
    assert!(e_batch <= x_budget_rcp(n));
    assert!(w_strict <= x_budget_rcp(n) + x_budget_1div(n));
}

/// Generator for the EXPERIMENTS.md accuracy-ablation table: relative
/// error of each evaluation method against the exact rational value on
/// the bench speed spread. `--ignored` because the exact pass is slow;
/// run with `--ignored --nocapture` when regenerating the table.
#[test]
#[ignore = "exact-oracle ablation sweep; run when regenerating the EXPERIMENTS.md table"]
fn accuracy_ablation_table() {
    let params = Params::paper_table1();
    for n in [64usize, 256] {
        let rhos: Vec<f64> = (0..n).map(|i| 1.0 / (1.0 + i as f64)).collect();
        let exact = exact_x_of(&params, &rhos);
        let naive = hetero_core::xmeasure::x_measure_naive(&params, &rhos);
        let strict = hetero_core::xmeasure::x_measure_of_rhos(&params, &rhos);
        let f1 = fastnum::x_fast_1div(&params, &rhos);
        let fr = fastnum::x_fast_rcp(&params, &rhos);
        println!("n = {n}");
        println!("  naive      {:e}", rel_err(naive, exact));
        println!("  kahan      {:e}", rel_err(strict, exact));
        println!(
            "  fast_1div  {:e}  (budget {:e})",
            rel_err(f1, exact),
            x_budget_1div(n)
        );
        println!(
            "  fast_rcp   {:e}  (budget {:e})",
            rel_err(fr, exact),
            x_budget_rcp(n)
        );
    }
}

/// Fast mode is deterministic run to run (the dispatch decision is
/// per-process-stable, so two evaluations must agree bit for bit).
#[test]
fn fast_mode_is_bit_deterministic() {
    let params = Params::paper_table1();
    let mut batch = ProfileBatch::new();
    for i in 0..20 {
        let row: Vec<f64> = (0..64)
            .map(|j| 1.0 / (1.0 + ((i * 64 + j) % 97) as f64))
            .collect();
        batch.push(&row);
    }
    let a = xbatch::x_measures_mode(&params, &batch, NumericMode::Fast);
    let b = xbatch::x_measures_mode(&params, &batch, NumericMode::Fast);
    assert_eq!(a.len(), b.len());
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.to_bits(), y.to_bits());
    }
}

/// Strict mode through the mode-dispatch entry points is bit-identical
/// to the historical strict kernels — the `--numeric strict` golden
/// contract at the API level.
#[test]
fn strict_mode_dispatch_is_bit_identical_to_the_strict_kernels() {
    let params = Params::paper_table1();
    let mut batch = ProfileBatch::new();
    for n in [1usize, 7, 16, 33] {
        let row: Vec<f64> = (0..n).map(|j| 1.0 / (1.0 + j as f64)).collect();
        batch.push(&row);
    }
    let via_mode = xbatch::x_measures_mode(&params, &batch, NumericMode::Strict);
    let direct = xbatch::x_measures(&params, &batch);
    for (a, b) in via_mode.iter().zip(&direct) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let hecr_mode = xbatch::hecrs_mode(&params, &batch, NumericMode::Strict);
    let hecr_direct = xbatch::hecrs(&params, &batch);
    for (a, b) in hecr_mode.iter().zip(&hecr_direct) {
        let (a, b) = (a.as_ref().expect("valid"), b.as_ref().expect("valid"));
        assert_eq!(a.to_bits(), b.to_bits());
    }
}
