//! `hetero-cli` — regenerate every table and figure of the paper.
//!
//! ```text
//! hetero-cli <command> [options]
//!
//! commands:
//!   params                  Tables 1–2: model parameters and A/B values
//!   table3                  Table 3: HECRs of the C1/C2 families
//!   table4                  Table 4: additive-speedup work ratios
//!   fig3                    Figure 3: greedy speedup phase 1 snapshots
//!   fig4                    Figure 4: greedy speedup phase 2 snapshots
//!   variance [--trials N] [--max-n N] [--seed S] [--hard]
//!                           §4.3: variance-predictor bad-pair rates
//!   threshold [--trials N] [--seed S]
//!                           §4.3: the 100%-correct variance-gap θ
//!   minorize                §4 examples: mean misleads, Corollary 1
//!   protocol                Theorems 1–2 on the discrete-event simulator
//!   gantt                   Figures 1–2: action/time diagrams
//!   moments [--trials N]    extension: scoring moment + index predictors
//!   lifo                    Theorem 1 quantified: FIFO vs LIFO vs heuristics
//!   sensitivity             extension: τ sweep across the three regimes
//!   scaling [--bench-scaling] [--trials R] [--max-n N]
//!                           extension: §2.5 families up to n = 2¹⁶; with
//!                           --bench-scaling, time greedy rounds at growing
//!                           n (incremental xengine vs from-scratch)
//!   majorize-ext [--trials N] [--seed S]
//!                           extension: majorization explains the bad pairs
//!   granularity             extension: integral-task quantization cost
//!   robustness [--trials N] extension: planning under estimation error
//!   faults [--smoke] [--trials N] [--seed S] [--plan FILE]
//!                           extension: fault injection vs adaptive
//!                           replanning (E18); --smoke runs a small,
//!                           CI-sized sweep; --plan replays one pinned
//!                           JSON fault plan through all four protocol
//!                           families instead of sweeping
//!   protocols [--smoke] [--trials N] [--seed S]
//!                           extension: protocol families under faults
//!                           (E22) — oblivious vs adaptive vs work
//!                           exchange vs MDS coding on identical fault
//!                           plans, with per-cell dominance frontiers;
//!                           --smoke runs a small, CI-sized grid
//!   fleet                   extension: fleet sizing vs X saturation
//!   select [--smoke] [--exact --k K --n N]
//!                           extension: exact best-k selection by
//!                           branch-and-bound (E20); the sweep reports
//!                           nodes pruned vs the 2^n enumeration plus a
//!                           10^6-worker compression demo; --exact solves
//!                           one (n, k) instance — any n, far past the
//!                           n = 63 walk cap
//!   critpath [--csv]        extension: E21 causal critical paths —
//!                           oblivious FIFO vs adaptive replanning on the
//!                           E18 fault grid, one seeded trial per cell
//!   all                     everything above with default settings
//!
//!   obsdiff <run-a> <run-b> [--rel R] [--span-rel R] [--quantile-rel R]
//!           [--ignore PREFIX]... [--json]
//!                           perf-regression observatory: diff two
//!                           `--obs-json` streams (or BENCH json
//!                           documents), exit nonzero when any span mean
//!                           or sketch quantile regresses past the noise
//!                           thresholds (counters drift two-sided);
//!                           `--ignore` drops metrics by name prefix
//!                           (e.g. scheduling-dependent pool counters)
//! ```
//!
//! Add `--csv` to any table-producing command to print CSV instead of the
//! aligned ASCII table.
//!
//! `--threads N` caps the worker-pool fan-out of the sweep commands
//! (`variance`, `threshold`, `faults`). The default is the
//! `HETERO_THREADS` environment variable when set, else one worker per
//! core; results are bit-identical at every thread count.
//!
//! Observability (see DESIGN.md "Observability"):
//!
//! ```text
//!   --obs                   print a metrics summary + run manifest after
//!                           the command's normal output
//!   --obs-json PATH         write the metric stream as JSON lines
//!                           (one {event, name, value} object per line)
//!   --obs-trace PATH        write a Chrome trace-event JSON file
//!                           (load in Perfetto / chrome://tracing):
//!                           `protocol` exports the Figure 1 execution,
//!                           `gantt` the Figure 2 execution, any other
//!                           command its per-command wall spans
//! ```
//!
//! `--obs-json` and `--obs-trace` imply `--obs` collection.
//!
//! `--numeric {strict|fast}` selects the numeric mode of the batched
//! X-measure kernels (DESIGN.md §17). `strict` (the default) is the
//! bit-reproducible reference; `fast` is the certified divide-free
//! mode, accurate within its documented ulp budget. The chosen mode is
//! recorded in the `--obs` run manifest. Commands built on incremental
//! scans (`protocol`, `select`, …) are strict-only and ignore the flag.

use std::process::ExitCode;

use hetero_core::{NumericMode, Params};
use hetero_experiments::{
    critpath, examples42, fault_sweep, fifo_lifo, fig34, fleet, gantt, granularity,
    majorization_ext, moments_ext, obs_export, protocol_check, protocol_sweep, robustness, scaling,
    selection_sweep, sensitivity, table3, table4, threshold, variance,
};

/// Parsed command-line options.
struct Opts {
    csv: bool,
    trials: Option<usize>,
    max_n: Option<usize>,
    seed: Option<u64>,
    hard: bool,
    threads: usize,
    bench_scaling: bool,
    smoke: bool,
    exact: bool,
    k: Option<usize>,
    n: Option<usize>,
    obs: bool,
    obs_json: Option<String>,
    obs_trace: Option<String>,
    plan: Option<String>,
    numeric: NumericMode,
}

impl Opts {
    /// Whether metric collection should be switched on for this run
    /// (`--obs-json`/`--obs-trace` imply `--obs`).
    fn obs_active(&self) -> bool {
        self.obs || self.obs_json.is_some() || self.obs_trace.is_some()
    }
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        csv: false,
        trials: None,
        max_n: None,
        seed: None,
        hard: false,
        threads: hetero_par::configured_threads(),
        bench_scaling: false,
        smoke: false,
        exact: false,
        k: None,
        n: None,
        obs: false,
        obs_json: None,
        obs_trace: None,
        plan: None,
        numeric: NumericMode::Strict,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => opts.csv = true,
            "--hard" => opts.hard = true,
            "--bench-scaling" => opts.bench_scaling = true,
            "--smoke" => opts.smoke = true,
            "--exact" => opts.exact = true,
            "--k" => {
                let v = it.next().ok_or("--k needs a value")?;
                opts.k = Some(v.parse().map_err(|_| format!("bad --k {v}"))?);
            }
            "--n" => {
                let v = it.next().ok_or("--n needs a value")?;
                opts.n = Some(v.parse().map_err(|_| format!("bad --n {v}"))?);
            }
            "--obs" => opts.obs = true,
            "--obs-json" => {
                let v = it.next().ok_or("--obs-json needs a path")?;
                opts.obs_json = Some(v.clone());
            }
            "--obs-trace" => {
                let v = it.next().ok_or("--obs-trace needs a path")?;
                opts.obs_trace = Some(v.clone());
            }
            "--plan" => {
                let v = it.next().ok_or("--plan needs a path")?;
                opts.plan = Some(v.clone());
            }
            "--numeric" => {
                let v = it.next().ok_or("--numeric needs strict or fast")?;
                opts.numeric = NumericMode::parse(v)?;
            }
            "--trials" => {
                let v = it.next().ok_or("--trials needs a value")?;
                opts.trials = Some(v.parse().map_err(|_| format!("bad --trials {v}"))?);
            }
            "--max-n" => {
                let v = it.next().ok_or("--max-n needs a value")?;
                opts.max_n = Some(v.parse().map_err(|_| format!("bad --max-n {v}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                opts.seed = Some(v.parse().map_err(|_| format!("bad --seed {v}"))?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let t: usize = v.parse().map_err(|_| format!("bad --threads {v}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                opts.threads = t;
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(opts)
}

fn print_table(t: &hetero_experiments::render::Table, csv: bool) {
    if csv {
        print!("{}", t.to_csv());
    } else {
        print!("{}", t.to_ascii());
    }
}

fn cmd_params(opts: &Opts) {
    let mut t = hetero_experiments::render::Table::new(
        "Tables 1–2 — model parameters",
        &[
            "configuration",
            "τ",
            "π",
            "δ",
            "A = π+τ",
            "B = 1+(1+δ)π",
            "Aτδ/B²",
        ],
    );
    for (name, p) in [
        ("coarse tasks (1 s)", Params::paper_table1()),
        ("fine tasks (0.1 s)", Params::paper_table1_fine()),
        ("figures 3–4", Params::fig34()),
    ] {
        t.row(vec![
            name.to_string(),
            format!("{:e}", p.tau()),
            format!("{:e}", p.pi()),
            format!("{}", p.delta()),
            format!("{:e}", p.a()),
            format!("{:.6}", p.b()),
            format!("{:.3e}", p.theorem4_threshold()),
        ]);
    }
    print_table(&t, opts.csv);
}

fn variance_sizes(max_n: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut n = 4;
    while n <= max_n {
        sizes.push(n);
        n *= 2;
    }
    sizes
}

fn cmd_variance(opts: &Opts) {
    let cfg = variance::VarianceConfig {
        sizes: variance_sizes(opts.max_n.unwrap_or(1024)),
        trials: opts.trials.unwrap_or(2000),
        seed: opts.seed.unwrap_or(0xC0FFEE),
        generator: if opts.hard {
            variance::PairGenerator::SameUniform
        } else {
            variance::PairGenerator::DiverseShapes
        },
        threads: opts.threads,
        numeric: opts.numeric,
        ..variance::VarianceConfig::default()
    };
    print_table(&variance::run(&cfg).table(), opts.csv);
    println!(
        "(paper: ~23% bad plateau with its own generator; ours brackets it — see EXPERIMENTS.md)"
    );
}

fn cmd_threshold(opts: &Opts) {
    let cfg = threshold::ThresholdConfig {
        trials_per_combo: opts.trials.unwrap_or(1500),
        seed: opts.seed.unwrap_or(0xBEEF),
        threads: opts.threads,
        numeric: opts.numeric,
        ..threshold::ThresholdConfig::default()
    };
    let e = threshold::run(&cfg);
    print_table(&e.table(), opts.csv);
    println!(
        "overall accuracy {:.1}%  |  empirical θ = {:.3} (paper: 0.167)",
        100.0 * e.overall_accuracy(),
        e.theta
    );
}

fn bench_sizes(max_n: usize) -> Vec<usize> {
    let mut sizes = Vec::new();
    let mut n = 64;
    while n <= max_n {
        sizes.push(n);
        n *= 4;
    }
    if sizes.last() != Some(&max_n) && max_n >= 64 {
        sizes.push(max_n);
    }
    sizes
}

fn cmd_bench_scaling(opts: &Opts) {
    let sizes = bench_sizes(opts.max_n.unwrap_or(16_384).max(64));
    let rounds = opts.trials.unwrap_or(8);
    let rows = scaling::greedy_bench(&Params::paper_table1(), &sizes, rounds);
    print_table(&scaling::greedy_bench_table(&rows), opts.csv);
    println!("(per-round time of the xengine-backed greedy vs re-evaluating every candidate from scratch)");
}

fn cmd_select(opts: &Opts) -> Result<(), String> {
    if opts.exact {
        let n = opts.n.ok_or("select --exact needs --n")?;
        let k = opts.k.ok_or("select --exact needs --k")?;
        let params = Params::paper_table1();
        let profile = hetero_core::Profile::harmonic(n);
        let (winner, stats) =
            hetero_core::selection::best_k_subset_with_stats(&params, &profile, k)
                .map_err(|e| format!("select --exact: {e}"))?;
        let fastest =
            hetero_core::selection::fastest_k(&profile, k).map_err(|e| format!("select: {e}"))?;
        let is_fastest = winner
            .rhos()
            .iter()
            .zip(fastest.rhos())
            .all(|(a, b)| a.to_bits() == b.to_bits());
        let mut t = hetero_experiments::render::Table::new(
            "exact best-k subset (branch-and-bound, harmonic profile)",
            &[
                "n",
                "k",
                "X(winner)",
                "nodes visited",
                "nodes pruned",
                "pruned %",
                "winner = fastest-k",
            ],
        );
        t.row(vec![
            n.to_string(),
            k.to_string(),
            hetero_experiments::render::fmt_f(
                hetero_core::xmeasure::x_measure_of_rhos(&params, winner.rhos()),
                4,
            ),
            stats.nodes_visited.to_string(),
            stats.nodes_pruned.to_string(),
            hetero_experiments::render::fmt_f(100.0 * stats.pruned_fraction(n), 12),
            if is_fastest { "yes" } else { "tie" }.to_string(),
        ]);
        print_table(&t, opts.csv);
    } else {
        let s = if opts.smoke {
            selection_sweep::run_smoke()
        } else {
            selection_sweep::run_paper()
        };
        print_table(&s.table(), opts.csv);
        print_table(&s.demo_table(), opts.csv);
        println!("(exact winners past the n = 63 enumeration cap; pruning stats also land in the obs manifest counters)");
    }
    Ok(())
}

/// `faults --plan FILE` — replays one pinned JSON fault plan through
/// all four protocol families on a canonical harmonic cluster, so a
/// failure scenario found by a sweep can be pinned to disk and
/// re-examined protocol by protocol.
fn cmd_faults_plan(path: &str, opts: &Opts) -> Result<(), String> {
    use hetero_protocol::{alloc, coded, exchange, fault_exec, replan, ExchangePolicy};

    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let faults = hetero_faults::FaultPlan::from_json(&text).map_err(|e| format!("{path}: {e}"))?;

    let params = Params::paper_table1();
    let n = 8;
    let lifespan = 600.0;
    let margin = 0.1;
    let profile = hetero_core::Profile::harmonic(n);
    let optimum = hetero_core::xmeasure::work(&params, &profile, lifespan);

    let plan = alloc::fifo_plan(&params, &profile, lifespan).map_err(|e| format!("plan: {e}"))?;
    let hedge = replan::HedgePolicy {
        margin,
        ..replan::HedgePolicy::default()
    };
    let hedged_plan = alloc::fifo_plan(&params, &profile, lifespan / (1.0 + margin))
        .map_err(|e| format!("plan: {e}"))?;
    let oblivious = fault_exec::execute_with_faults(&params, &profile, &plan, &faults)
        .map_err(|e| format!("oblivious: {e}"))?;
    let adaptive = replan::execute_adaptive(&params, &profile, &plan, &faults, &hedge)
        .map_err(|e| format!("adaptive: {e}"))?;
    let xchg = exchange::execute_exchange(
        &params,
        &profile,
        &hedged_plan,
        &faults,
        &ExchangePolicy {
            fallback: hedge,
            ..ExchangePolicy::default()
        },
    )
    .map_err(|e| format!("exchange: {e}"))?;
    let assignment = coded::mds_assignment(&params, &profile, lifespan, n / 2)
        .map_err(|e| format!("coded: {e}"))?;
    let mds = coded::execute_coded(&params, &profile, &assignment, &faults)
        .map_err(|e| format!("coded: {e}"))?;

    let mut t = hetero_experiments::render::Table::new(
        format!(
            "fault-plan replay — {} specs, harmonic n = {}, L = {}",
            faults.specs().len(),
            n,
            lifespan
        ),
        &["family", "work by L", "fraction %", "missed", "notes"],
    );
    let fmt = hetero_experiments::render::fmt_f;
    let mut row = |family: &str, work: f64, missed: bool, notes: String| {
        t.row(vec![
            family.to_string(),
            fmt(work, 2),
            fmt(100.0 * work / optimum, 2),
            if missed { "yes" } else { "no" }.to_string(),
            notes,
        ]);
    };
    row(
        "oblivious",
        oblivious.work_completed_by(lifespan),
        oblivious.missed_deadline(lifespan),
        format!("{} lost msgs", oblivious.lost_messages),
    );
    row(
        "adaptive",
        adaptive.work_completed_by(lifespan),
        adaptive.missed_deadline(lifespan),
        format!(
            "{} replans, {} topups",
            adaptive.replans,
            adaptive.topups.len()
        ),
    );
    row(
        "exchange",
        xchg.work_completed_by(lifespan),
        xchg.missed_deadline(lifespan),
        if xchg.degraded() {
            "degraded to adaptive".to_string()
        } else {
            format!("{} transfers", xchg.exchanges.len())
        },
    );
    row(
        "coded",
        mds.work_completed_by(lifespan),
        mds.missed_deadline(lifespan),
        match mds.decode() {
            Ok(d) => format!("decoded from {} shares", d.shares_used),
            Err(e) => format!("{} of {} shares survived", e.arrived, e.needed),
        },
    );
    print_table(&t, opts.csv);
    println!("plan fingerprint: {:#018x}", faults.fingerprint());
    Ok(())
}

fn run_command(cmd: &str, opts: &Opts) -> Result<(), String> {
    match cmd {
        "params" => cmd_params(opts),
        "table3" => print_table(&table3::run_paper().table(), opts.csv),
        "table4" => print_table(&table4::run_paper().table(), opts.csv),
        "fig3" => {
            let f = fig34::run_paper_mode(opts.numeric);
            print!("{}", f.render_phase(&f.phase1, 1.0));
        }
        "fig4" => {
            let f = fig34::run_paper_mode(opts.numeric);
            print!("{}", f.render_phase(&f.phase2, 1.0 / 16.0));
        }
        "variance" => cmd_variance(opts),
        "threshold" => cmd_threshold(opts),
        "minorize" => print_table(&examples42::run_paper().table(), opts.csv),
        "protocol" => {
            let c = protocol_check::run_paper();
            print_table(&c.table(), opts.csv);
            println!(
                "startup-order totals (Theorem 1.2, must agree): {:?}",
                c.order_totals
            );
            println!("protocol-invariant violations: {}", c.violations);
        }
        "gantt" => {
            let p = Params::paper_table1();
            print!("{}", gantt::render_fig1(&p, 0.5, 100.0));
            println!();
            let profile = hetero_core::Profile::new(vec![1.0, 0.5, 1.0 / 3.0]).expect("valid");
            print!("{}", gantt::render_fig2(&p, &profile, 100.0, 72));
        }
        "lifo" => print_table(&fifo_lifo::run_paper().table(), opts.csv),
        "granularity" => print_table(&granularity::run_paper().table(), opts.csv),
        "fleet" => print_table(&fleet::run_paper().table(), opts.csv),
        "select" => cmd_select(opts)?,
        "robustness" => {
            let cfg = robustness::RobustnessConfig {
                trials: opts.trials.unwrap_or(200),
                seed: opts.seed.unwrap_or(0xEB0B),
                ..robustness::RobustnessConfig::default()
            };
            print_table(&robustness::run(&cfg).table(), opts.csv);
        }
        "faults" if opts.plan.is_some() => {
            let path = opts.plan.clone().expect("guarded by match arm");
            cmd_faults_plan(&path, opts)?;
        }
        "faults" => {
            let mut cfg = fault_sweep::FaultSweepConfig {
                trials: opts.trials.unwrap_or(100),
                seed: opts.seed.unwrap_or(0xFA17),
                threads: opts.threads,
                ..fault_sweep::FaultSweepConfig::default()
            };
            if opts.smoke {
                cfg.n = 6;
                cfg.crash_ps = vec![0.0, 0.2];
                cfg.straggler_factors = vec![3.0];
                cfg.margins = vec![0.0, 0.1];
                cfg.trials = opts.trials.unwrap_or(25);
            }
            print_table(&fault_sweep::run(&cfg).table(), opts.csv);
            println!("(adaptive replanning vs oblivious FIFO vs equal split under seeded crash/straggler injection)");
        }
        "protocols" => {
            let mut cfg = protocol_sweep::ProtocolSweepConfig {
                trials: opts.trials.unwrap_or(60),
                seed: opts.seed.unwrap_or(0x9E22),
                threads: opts.threads,
                ..protocol_sweep::ProtocolSweepConfig::default()
            };
            if opts.smoke {
                cfg.n = 6;
                cfg.crash_ps = vec![0.0, 0.2];
                cfg.straggler_factors = vec![3.0];
                cfg.spreads = vec![0.5];
                cfg.margins = vec![0.0, 0.1];
                cfg.k_slack = 3;
                cfg.trials = opts.trials.unwrap_or(25);
            }
            print_table(&protocol_sweep::run(&cfg).table(), opts.csv);
            println!("(four protocol families on identical seeded fault plans; frontier = not dominated on miss rate + throughput)");
        }
        "critpath" => {
            let e = if opts.smoke {
                critpath::run_smoke()
            } else {
                critpath::run_paper()
            };
            print_table(&e.table(), opts.csv);
            println!("(heaviest result-delivering causal chain per arm; a missed deadline is a chain ending past L)");
        }
        "sensitivity" => print_table(&sensitivity::run_paper().table(), opts.csv),
        "scaling" => {
            if opts.bench_scaling {
                cmd_bench_scaling(opts);
            } else {
                print_table(&scaling::run_paper_mode(opts.numeric).table(), opts.csv)
            }
        }
        "majorize-ext" => {
            let cfg = majorization_ext::MajorizationConfig {
                trials: opts.trials.unwrap_or(2000),
                seed: opts.seed.unwrap_or(0x5EED),
                ..majorization_ext::MajorizationConfig::default()
            };
            print_table(&majorization_ext::run(&cfg).table(), opts.csv);
        }
        "moments" => {
            let cfg = moments_ext::MomentsConfig {
                trials: opts.trials.unwrap_or(2000),
                seed: opts.seed.unwrap_or(0xA11CE),
                ..moments_ext::MomentsConfig::default()
            };
            print_table(&moments_ext::run(&cfg).table(), opts.csv);
        }
        "all" => {
            for c in [
                "params",
                "table3",
                "table4",
                "fig3",
                "fig4",
                "variance",
                "threshold",
                "minorize",
                "protocol",
                "gantt",
                "moments",
                "lifo",
                "sensitivity",
                "scaling",
                "majorize-ext",
                "granularity",
                "robustness",
                "faults",
                "protocols",
                "fleet",
                "select",
                "critpath",
            ] {
                println!("──────────────────────────────────────── {c}");
                run_command(c, opts)?;
                println!();
            }
        }
        other => return Err(format!("unknown command {other}")),
    }
    Ok(())
}

/// Builds the Chrome trace document for `--obs-trace`: the Figure 1
/// execution for `protocol`, the Figure 2 execution for `gantt`, and the
/// per-command wall spans for everything else.
fn obs_trace_document(cmd: &str, snapshot: &hetero_obs::Snapshot) -> String {
    let p = Params::paper_table1();
    match cmd {
        "protocol" => {
            let run = obs_export::fig1_execution(&p);
            obs_export::execution_to_chrome(&run, 1)
        }
        "gantt" => {
            let profile = hetero_core::Profile::new(vec![1.0, 0.5, 1.0 / 3.0]).expect("valid");
            let run = obs_export::fig2_execution(&p, &profile, 100.0);
            obs_export::execution_to_chrome(&run, profile.n())
        }
        _ => hetero_obs::chrome::wall_spans_to_chrome(&snapshot.spans),
    }
}

/// The causal critical path of the command's canonical execution as a
/// `spantree` JSONL event (`protocol` → the Figure 1 run, `gantt` → the
/// Figure 2 run; other commands execute no protocol run, so no line).
/// The folded rendering names entities like the Chrome export
/// (`C0`…`Cn`, `net`).
fn obs_spantree_line(cmd: &str) -> Option<String> {
    use hetero_obs::json::Value;
    let p = Params::paper_table1();
    let (run, n) = match cmd {
        "protocol" => (obs_export::fig1_execution(&p), 1),
        "gantt" => {
            let profile = hetero_core::Profile::new(vec![1.0, 0.5, 1.0 / 3.0]).expect("valid");
            let n = profile.n();
            (obs_export::fig2_execution(&p, &profile, 100.0), n)
        }
        _ => return None,
    };
    let path = hetero_obs::causal::critical_path(&run.trace)?;
    // Entity layout of `exec`: 0 = server (`C0`), 1..=n = remote
    // computers, n + 1 = the channel (`net`) — same as the Chrome export.
    let names: Vec<String> = (0..=n + 1)
        .map(|entity| {
            if entity == n + 1 {
                "net".to_string()
            } else {
                format!("C{entity}")
            }
        })
        .collect();
    let obj = Value::Obj(vec![
        ("event".into(), Value::Str("spantree".into())),
        ("name".into(), Value::Str(cmd.into())),
        (
            "value".into(),
            Value::Obj(vec![
                ("weight".into(), Value::Num(path.weight)),
                ("start".into(), Value::Num(path.start)),
                ("end".into(), Value::Num(path.end)),
                ("slack".into(), Value::Num(path.slack)),
                ("frames".into(), Value::Str(path.folded_frames(&run.trace))),
                (
                    "folded".into(),
                    Value::Str(hetero_obs::folded::trace_to_folded(&run.trace, &names)),
                ),
            ]),
        ),
    ]);
    Some(obj.render())
}

/// Drains the collector into the requested sinks after an instrumented run.
fn obs_finalize(cmd: &str, opts: &Opts, wall_ms: f64) -> Result<(), String> {
    let snapshot = hetero_obs::snapshot();
    let p = Params::paper_table1();
    let mut counters = snapshot.counters.clone();
    counters.extend(snapshot.gauges.iter().cloned());
    let manifest = hetero_obs::RunManifest {
        command: cmd.to_string(),
        seed: opts.seed.unwrap_or(0),
        trials: opts.trials.unwrap_or(0),
        max_n: opts.max_n.unwrap_or(0),
        threads: opts.threads,
        numeric: opts.numeric.as_str().to_string(),
        params: vec![
            ("tau".to_string(), p.tau()),
            ("pi".to_string(), p.pi()),
            ("delta".to_string(), p.delta()),
        ],
        wall_ms,
        counters,
        sketches: snapshot.sketches.clone(),
        host: hetero_obs::HostContext::detect(),
    };
    if opts.obs {
        println!();
        print!("{}", snapshot.summary());
        print!("{}", manifest.footer());
    }
    if let Some(path) = &opts.obs_json {
        let mut stream = snapshot.to_jsonl();
        if let Some(line) = obs_spantree_line(cmd) {
            stream.push_str(&line);
            stream.push('\n');
        }
        stream.push_str(&manifest.to_jsonl_line());
        stream.push('\n');
        std::fs::write(path, stream).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.obs_trace {
        let doc = obs_trace_document(cmd, &snapshot);
        std::fs::write(path, doc).map_err(|e| format!("writing {path}: {e}"))?;
    }
    Ok(())
}

/// `hetero-cli obsdiff <run-a> <run-b>` — the perf-regression
/// observatory. Loads two runs (`--obs-json` streams or BENCH json
/// documents, auto-detected), diffs them under the noise thresholds,
/// prints the report, and exits nonzero iff any metric *regressed*
/// (slower span/quantile, or a counter drifting either way past the
/// counter threshold).
fn cmd_obsdiff(args: &[String]) -> Result<bool, String> {
    let mut thr = hetero_obs::diff::DiffThresholds::default();
    let mut json = false;
    let mut ignore: Vec<String> = Vec::new();
    let mut paths: Vec<&String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => json = true,
            "--ignore" => {
                let v = it.next().ok_or("--ignore needs a metric-name prefix")?;
                ignore.push(v.clone());
            }
            "--rel" => {
                let v = it.next().ok_or("--rel needs a value")?;
                let r: f64 = v.parse().map_err(|_| format!("bad --rel {v}"))?;
                thr.counter_rel = r;
                thr.span_rel = r;
                thr.quantile_rel = r;
            }
            "--span-rel" => {
                let v = it.next().ok_or("--span-rel needs a value")?;
                thr.span_rel = v.parse().map_err(|_| format!("bad --span-rel {v}"))?;
            }
            "--quantile-rel" => {
                let v = it.next().ok_or("--quantile-rel needs a value")?;
                thr.quantile_rel = v.parse().map_err(|_| format!("bad --quantile-rel {v}"))?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown obsdiff option {other}"));
            }
            _ => paths.push(a),
        }
    }
    let [path_a, path_b] = paths[..] else {
        return Err("obsdiff needs exactly two run files: obsdiff <run-a> <run-b>".to_string());
    };
    let text_a = std::fs::read_to_string(path_a).map_err(|e| format!("reading {path_a}: {e}"))?;
    let text_b = std::fs::read_to_string(path_b).map_err(|e| format!("reading {path_b}: {e}"))?;
    let mut a = hetero_obs::diff::load_run(&text_a).map_err(|e| format!("{path_a}: {e}"))?;
    let mut b = hetero_obs::diff::load_run(&text_b).map_err(|e| format!("{path_b}: {e}"))?;
    a.strip_prefixes(&ignore);
    b.strip_prefixes(&ignore);
    let report = hetero_obs::diff::diff(&a, &b, &thr);
    if json {
        println!("{}", report.to_json().render());
    } else {
        print!("{}", report.human());
    }
    Ok(report.regressions() == 0)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("usage: hetero-cli <command> [options]; see `hetero-cli help`");
        return ExitCode::FAILURE;
    };
    if cmd == "help" || cmd == "--help" || cmd == "-h" {
        println!(
            "commands: params table3 table4 fig3 fig4 variance threshold minorize \
             protocol gantt moments lifo sensitivity scaling majorize-ext \
             granularity robustness faults protocols fleet select critpath all"
        );
        println!(
            "options:  --csv --trials N --max-n N --seed S --threads N --hard \
             --bench-scaling --smoke --exact --k K --n N --numeric strict|fast \
             --obs --obs-json PATH --obs-trace PATH --plan FILE"
        );
        println!(
            "obsdiff:  hetero-cli obsdiff <run-a> <run-b> [--rel R] [--span-rel R] \
             [--quantile-rel R] [--ignore PREFIX]... [--json]  (exit 1 = regression detected)"
        );
        return ExitCode::SUCCESS;
    }
    // `obsdiff` takes positional file arguments, which `parse_opts`
    // rejects by design — handle it before option parsing.
    if cmd == "obsdiff" {
        return match cmd_obsdiff(rest) {
            Ok(true) => ExitCode::SUCCESS,
            Ok(false) => ExitCode::FAILURE,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::from(2)
            }
        };
    }
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.obs_active() {
        hetero_obs::reset();
        hetero_obs::enable();
    }
    let wall_start = std::time::Instant::now();
    let result = {
        let span = hetero_obs::timed(format!("cmd.{cmd}"));
        let r = run_command(cmd, &opts);
        span.finish();
        r
    };
    let result = result.and_then(|()| {
        if opts.obs_active() {
            obs_finalize(cmd, &opts, wall_start.elapsed().as_secs_f64() * 1e3)
        } else {
            Ok(())
        }
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_opts_defaults() {
        let o = parse_opts(&[]).unwrap();
        assert!(!o.csv && !o.hard && !o.bench_scaling && !o.smoke && !o.obs && !o.exact);
        assert!(o.trials.is_none() && o.max_n.is_none() && o.seed.is_none());
        assert!(o.k.is_none() && o.n.is_none());
        assert!(o.obs_json.is_none() && o.obs_trace.is_none());
        assert!(!o.obs_active());
    }

    #[test]
    fn obs_sinks_imply_collection() {
        let o = parse_opts(&["--obs-json".into(), "out.jsonl".into()]).unwrap();
        assert!(!o.obs && o.obs_active());
        assert_eq!(o.obs_json.as_deref(), Some("out.jsonl"));
        let o = parse_opts(&["--obs-trace".into(), "trace.json".into()]).unwrap();
        assert!(!o.obs && o.obs_active());
        assert_eq!(o.obs_trace.as_deref(), Some("trace.json"));
        let o = parse_opts(&["--obs".into()]).unwrap();
        assert!(o.obs && o.obs_active());
        assert!(parse_opts(&["--obs-json".into()]).is_err());
        assert!(parse_opts(&["--obs-trace".into()]).is_err());
    }

    #[test]
    fn parse_opts_all_flags() {
        let args: Vec<String> = [
            "--csv",
            "--hard",
            "--bench-scaling",
            "--smoke",
            "--trials",
            "42",
            "--max-n",
            "128",
            "--seed",
            "7",
            "--threads",
            "3",
            "--exact",
            "--k",
            "5",
            "--n",
            "80",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let o = parse_opts(&args).unwrap();
        assert!(o.csv && o.hard && o.bench_scaling && o.smoke && o.exact);
        assert_eq!(o.trials, Some(42));
        assert_eq!(o.max_n, Some(128));
        assert_eq!(o.seed, Some(7));
        assert_eq!(o.threads, 3);
        assert_eq!(o.k, Some(5));
        assert_eq!(o.n, Some(80));
        assert!(parse_opts(&["--k".into()]).is_err());
        assert!(parse_opts(&["--n".into(), "abc".into()]).is_err());
    }

    #[test]
    fn threads_defaults_to_the_configured_pool_width() {
        let o = parse_opts(&[]).unwrap();
        assert_eq!(o.threads, hetero_par::configured_threads());
        assert!(parse_opts(&["--threads".into()]).is_err());
        assert!(parse_opts(&["--threads".into(), "0".into()]).is_err());
        assert!(parse_opts(&["--threads".into(), "abc".into()]).is_err());
    }

    #[test]
    fn bench_sizes_grow_to_and_include_max() {
        assert_eq!(bench_sizes(16_384), vec![64, 256, 1024, 4096, 16_384]);
        assert_eq!(bench_sizes(100), vec![64, 100]);
        assert_eq!(bench_sizes(64), vec![64]);
    }

    #[test]
    fn bench_scaling_command_runs() {
        let opts = Opts {
            csv: true,
            trials: Some(1),
            max_n: Some(64),
            seed: None,
            hard: false,
            threads: 1,
            bench_scaling: true,
            smoke: false,
            exact: false,
            k: None,
            n: None,
            obs: false,
            obs_json: None,
            numeric: NumericMode::Strict,
            obs_trace: None,
            plan: None,
        };
        run_command("scaling", &opts).unwrap();
    }

    #[test]
    fn faults_smoke_command_runs() {
        let opts = Opts {
            csv: true,
            trials: Some(5),
            max_n: None,
            seed: Some(42),
            hard: false,
            threads: 2,
            bench_scaling: false,
            smoke: true,
            exact: false,
            k: None,
            n: None,
            obs: false,
            obs_json: None,
            numeric: NumericMode::Strict,
            obs_trace: None,
            plan: None,
        };
        run_command("faults", &opts).unwrap();
    }

    #[test]
    fn select_commands_run() {
        let mut opts = Opts {
            csv: true,
            trials: None,
            max_n: None,
            seed: None,
            hard: false,
            threads: 1,
            bench_scaling: false,
            smoke: true,
            exact: false,
            k: None,
            n: None,
            obs: false,
            obs_json: None,
            numeric: NumericMode::Strict,
            obs_trace: None,
            plan: None,
        };
        run_command("select", &opts).unwrap();
        // --exact solves a single instance well past the n = 63 walk cap.
        opts.exact = true;
        opts.k = Some(4);
        opts.n = Some(80);
        run_command("select", &opts).unwrap();
        opts.k = None;
        assert!(run_command("select", &opts).is_err());
        opts.k = Some(4);
        opts.n = None;
        assert!(run_command("select", &opts).is_err());
    }

    #[test]
    fn protocols_smoke_command_runs() {
        let opts = Opts {
            csv: true,
            trials: Some(5),
            max_n: None,
            seed: Some(42),
            hard: false,
            threads: 2,
            bench_scaling: false,
            smoke: true,
            exact: false,
            k: None,
            n: None,
            obs: false,
            obs_json: None,
            numeric: NumericMode::Strict,
            obs_trace: None,
            plan: None,
        };
        run_command("protocols", &opts).unwrap();
    }

    #[test]
    fn faults_replays_a_pinned_plan_and_rejects_malformed_ones() {
        let dir = std::env::temp_dir();
        let good = dir.join("hetero_cli_plan_ok.json");
        let plan = hetero_faults::FaultPlan::new(vec![
            hetero_faults::FaultSpec::Slowdown {
                worker: 1,
                factor: 4.0,
                from: 0.0,
                until: 600.0,
            },
            hetero_faults::FaultSpec::ResultLoss {
                worker: 2,
                count: 1,
            },
        ])
        .unwrap();
        std::fs::write(&good, plan.to_json()).unwrap();
        let mut opts = Opts {
            csv: true,
            trials: None,
            max_n: None,
            seed: None,
            hard: false,
            threads: 1,
            bench_scaling: false,
            smoke: false,
            exact: false,
            k: None,
            n: None,
            obs: false,
            obs_json: None,
            numeric: NumericMode::Strict,
            obs_trace: None,
            plan: Some(good.to_string_lossy().into_owned()),
        };
        run_command("faults", &opts).unwrap();

        // A malformed plan surfaces the typed JSON error, not a panic.
        let bad = dir.join("hetero_cli_plan_bad.json");
        std::fs::write(&bad, "{\"faults\":[{\"kind\":\"meteor\"}]}").unwrap();
        opts.plan = Some(bad.to_string_lossy().into_owned());
        let err = run_command("faults", &opts).unwrap_err();
        assert!(err.contains("unknown kind"), "{err}");
        let _ = std::fs::remove_file(&good);
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn parse_opts_rejects_bad_input() {
        assert!(parse_opts(&["--bogus".into()]).is_err());
        assert!(parse_opts(&["--trials".into()]).is_err());
        assert!(parse_opts(&["--trials".into(), "abc".into()]).is_err());
    }

    #[test]
    fn numeric_mode_parses_and_defaults_to_strict() {
        assert_eq!(parse_opts(&[]).unwrap().numeric, NumericMode::Strict);
        let o = parse_opts(&["--numeric".into(), "fast".into()]).unwrap();
        assert_eq!(o.numeric, NumericMode::Fast);
        let o = parse_opts(&["--numeric".into(), "strict".into()]).unwrap();
        assert_eq!(o.numeric, NumericMode::Strict);
        assert!(parse_opts(&["--numeric".into()]).is_err());
        assert!(parse_opts(&["--numeric".into(), "sloppy".into()]).is_err());
    }

    #[test]
    fn variance_sizes_are_powers_of_two() {
        assert_eq!(variance_sizes(64), vec![4, 8, 16, 32, 64]);
        assert_eq!(variance_sizes(3), Vec::<usize>::new());
    }

    #[test]
    fn every_quick_command_runs() {
        let opts = Opts {
            csv: false,
            trials: Some(50),
            max_n: Some(8),
            seed: Some(1),
            hard: false,
            threads: 2,
            bench_scaling: false,
            smoke: false,
            exact: false,
            k: None,
            n: None,
            obs: false,
            obs_json: None,
            numeric: NumericMode::Strict,
            obs_trace: None,
            plan: None,
        };
        for c in [
            "params",
            "table3",
            "table4",
            "fig3",
            "fig4",
            "minorize",
            "protocol",
            "gantt",
            "lifo",
            "sensitivity",
        ] {
            run_command(c, &opts).unwrap_or_else(|e| panic!("{c}: {e}"));
        }
        assert!(run_command("nope", &opts).is_err());
    }
}
