//! End-to-end tests of the `obsdiff` subcommand against the real binary:
//! a self-diff must pass clean (exit 0), an injected 10% slowdown must
//! be detected (exit 1), and usage errors must exit 2 — the contract the
//! CI perf gate scripts rely on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hetero-cli")
}

fn tmp(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("hetero-obsdiff-{}-{name}", std::process::id()));
    p
}

fn run(args: &[&str]) -> Output {
    Command::new(bin()).args(args).output().expect("spawn CLI")
}

/// A small obs JSONL stream; `scale` multiplies span durations and
/// sketch quantiles, so `scale = 1.1` is a 10% slowdown.
fn stream(scale: f64) -> String {
    let mut s = String::new();
    s.push_str("{\"event\":\"counter\",\"name\":\"sim.events\",\"value\":42}\n");
    s.push_str(&format!(
        "{{\"event\":\"sketch\",\"name\":\"protocol.compute\",\"value\":{{\"count\":100,\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{}}}}}\n",
        1.0 * scale,
        9.0 * scale,
        4.0 * scale,
        8.0 * scale,
        8.8 * scale,
    ));
    s.push_str(&format!(
        "{{\"event\":\"span\",\"name\":\"cmd.protocol\",\"value\":{{\"start_us\":0,\"dur_us\":{}}}}}\n",
        1500.0 * scale,
    ));
    s
}

#[test]
fn self_diff_exits_zero_and_injected_slowdown_exits_one() {
    let a = tmp("base.jsonl");
    let b = tmp("slow.jsonl");
    std::fs::write(&a, stream(1.0)).unwrap();
    std::fs::write(&b, stream(1.1)).unwrap();

    let clean = run(&["obsdiff", a.to_str().unwrap(), a.to_str().unwrap()]);
    assert!(
        clean.status.success(),
        "self-diff must pass clean: {}",
        String::from_utf8_lossy(&clean.stdout)
    );
    let out = String::from_utf8_lossy(&clean.stdout);
    assert!(out.contains("obsdiff"), "report header expected: {out}");

    let slow = run(&["obsdiff", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert_eq!(
        slow.status.code(),
        Some(1),
        "10% slowdown must fail the gate: {}",
        String::from_utf8_lossy(&slow.stdout)
    );
    let out = String::from_utf8_lossy(&slow.stdout);
    assert!(
        !out.contains("0 regressions"),
        "header must count the regressions: {out}"
    );
    assert!(
        out.contains("cmd.protocol/mean_us"),
        "report must name the slowed span: {out}"
    );

    // The same pair passes when the caller raises the noise thresholds
    // above the injected drift.
    let tolerant = run(&[
        "obsdiff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--rel",
        "0.25",
    ]);
    assert!(
        tolerant.status.success(),
        "25% thresholds must absorb a 10% drift: {}",
        String::from_utf8_lossy(&tolerant.stdout)
    );

    // ...and when every drifting metric namespace is ignored by prefix
    // (the CI recipe for scheduling-dependent counters).
    let ignored = run(&[
        "obsdiff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--ignore",
        "cmd.",
        "--ignore",
        "protocol.",
    ]);
    assert!(
        ignored.status.success(),
        "--ignore must drop the drifting span and sketch: {}",
        String::from_utf8_lossy(&ignored.stdout)
    );

    let json = run(&[
        "obsdiff",
        a.to_str().unwrap(),
        b.to_str().unwrap(),
        "--json",
    ]);
    assert_eq!(json.status.code(), Some(1));
    let doc = String::from_utf8_lossy(&json.stdout);
    assert!(
        doc.trim_start().starts_with('{') && doc.contains("\"regressions\""),
        "--json must emit a machine-readable report: {doc}"
    );

    std::fs::remove_file(&a).ok();
    std::fs::remove_file(&b).ok();
}

#[test]
fn usage_and_io_errors_exit_two() {
    let missing = run(&["obsdiff", "/nonexistent-a", "/nonexistent-b"]);
    assert_eq!(missing.status.code(), Some(2));
    let one_file = run(&["obsdiff", "/nonexistent-a"]);
    assert_eq!(one_file.status.code(), Some(2));
    let bad_flag = run(&["obsdiff", "--bogus"]);
    assert_eq!(bad_flag.status.code(), Some(2));
}
