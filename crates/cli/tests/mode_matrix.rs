//! The `--numeric` mode matrix against pre-PR goldens: the default run
//! and an explicit `--numeric strict` must reproduce the pinned outputs
//! byte for byte (the strict mode's golden contract), and `--numeric
//! fast` must run every mode-aware command cleanly. The goldens under
//! `tests/golden/pr10_*.txt` were captured from the build immediately
//! before the fast numeric mode landed.

use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_hetero-cli")
}

const FLAGS: &[&str] = &[
    "--trials",
    "20",
    "--max-n",
    "16",
    "--seed",
    "5",
    "--threads",
    "2",
];

fn run(cmd: &str, extra: &[&str]) -> Output {
    Command::new(bin())
        .arg(cmd)
        .args(FLAGS)
        .args(extra)
        .env("HETERO_THREADS", "2")
        .output()
        .expect("spawn CLI")
}

fn golden(name: &str) -> String {
    let path = format!(
        "{}/tests/golden/pr10_{name}_t20_n16_s5.txt",
        env!("CARGO_MANIFEST_DIR")
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

const COMMANDS: &[&str] = &["variance", "threshold", "scaling", "fig3", "fig4", "all"];

#[test]
fn default_mode_is_byte_identical_to_the_pre_fastnum_goldens() {
    for cmd in COMMANDS {
        let out = run(cmd, &[]);
        assert!(out.status.success(), "{cmd} failed");
        let got = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            got,
            golden(cmd),
            "{cmd}: default output drifted from golden"
        );
    }
}

#[test]
fn explicit_strict_matches_the_goldens_too() {
    for cmd in COMMANDS {
        let out = run(cmd, &["--numeric", "strict"]);
        assert!(out.status.success(), "{cmd} --numeric strict failed");
        let got = String::from_utf8_lossy(&out.stdout);
        assert_eq!(
            got,
            golden(cmd),
            "{cmd}: --numeric strict drifted from golden"
        );
    }
}

#[test]
fn fast_mode_runs_every_mode_aware_command() {
    for cmd in &["variance", "threshold", "scaling", "fig3", "fig4"] {
        let out = run(cmd, &["--numeric", "fast"]);
        assert!(
            out.status.success(),
            "{cmd} --numeric fast failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        assert!(
            !out.stdout.is_empty(),
            "{cmd} --numeric fast printed nothing"
        );
    }
}

#[test]
fn fast_mode_is_recorded_in_the_obs_manifest() {
    let out = run("scaling", &["--numeric", "fast", "--obs"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("numeric  fast"),
        "manifest footer must record the mode:\n{text}"
    );
}

#[test]
fn bad_numeric_mode_is_rejected() {
    let out = run("scaling", &["--numeric", "sloppy"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("numeric"), "{err}");
}
