//! Property tests for the protocol layer: plans, executions, and the
//! Theorem 1/2 identities on random clusters, lifespans, and orders.

use hetero_core::{xmeasure, Params, Profile};
use hetero_protocol::{alloc, exec, general, rental, validate};
use proptest::prelude::*;

fn profile_strategy() -> impl Strategy<Value = Profile> {
    prop::collection::vec(0.01f64..=1.0, 0..10).prop_map(|mut v| {
        v.push(1.0);
        Profile::from_unsorted(v).expect("valid")
    })
}

fn params_strategy() -> impl Strategy<Value = Params> {
    (1e-7f64..0.05, 0.0f64..0.05, 0.1f64..=1.0)
        .prop_map(|(tau, pi, delta)| Params::new(tau, pi, delta).expect("valid"))
}

fn shuffled_order(n: usize, seed: u64) -> Vec<usize> {
    // Deterministic Fisher–Yates from a seed (no rand dependency needed).
    let mut order: Vec<usize> = (0..n).collect();
    let mut state = seed | 1;
    for i in (1..n).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        order.swap(i, j);
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fifo_plan_is_positive_and_exact(p in params_strategy(), c in profile_strategy(),
                                       lifespan in 1.0f64..1e5) {
        prop_assume!(alloc::fifo_feasible(&p, &c));
        let plan = alloc::fifo_plan(&p, &c, lifespan).unwrap();
        prop_assert!(plan.work.iter().all(|&w| w > 0.0));
        let closed = xmeasure::work(&p, &c, lifespan);
        prop_assert!((plan.total_work() - closed).abs() / closed < 1e-10);
    }

    #[test]
    fn execution_meets_lifespan_and_invariants(p in params_strategy(), c in profile_strategy(),
                                               lifespan in 1.0f64..1e4) {
        prop_assume!(alloc::fifo_feasible(&p, &c));
        let plan = alloc::fifo_plan(&p, &c, lifespan).unwrap();
        let run = exec::execute(&p, &c, &plan);
        prop_assert!(validate::validate(&p, &c, &run).is_empty());
        let last = run.last_arrival().unwrap().get();
        prop_assert!((last - lifespan).abs() / lifespan < 1e-9,
            "optimal plans use the whole lifespan: {last} vs {lifespan}");
    }

    #[test]
    fn random_startup_orders_tie(p in params_strategy(), c in profile_strategy(),
                                 seed in any::<u64>()) {
        let lifespan = 500.0;
        prop_assume!(alloc::fifo_feasible(&p, &c));
        let base = alloc::fifo_plan(&p, &c, lifespan).unwrap().total_work();
        let order = shuffled_order(c.n(), seed);
        let plan = alloc::fifo_plan_ordered(&p, &c, &order, lifespan).unwrap();
        prop_assert!((plan.total_work() - base).abs() / base < 1e-10);
    }

    #[test]
    fn general_solver_agrees_with_closed_form_on_fifo(p in params_strategy(),
                                                      c in profile_strategy(),
                                                      seed in any::<u64>()) {
        let lifespan = 300.0;
        prop_assume!(alloc::fifo_feasible(&p, &c));
        let order = shuffled_order(c.n(), seed);
        let via_system = general::general_plan(&p, &c, &order, &order, lifespan).unwrap();
        let via_closed = alloc::fifo_plan_ordered(&p, &c, &order, lifespan).unwrap();
        for (a, b) in via_system.work.iter().zip(&via_closed.work) {
            prop_assert!((a - b).abs() <= 1e-8 * b.max(1e-3), "{a} vs {b}");
        }
    }

    #[test]
    fn feasible_general_plans_never_beat_fifo(p in params_strategy(), c in profile_strategy(),
                                              s1 in any::<u64>(), s2 in any::<u64>()) {
        let lifespan = 200.0;
        prop_assume!(alloc::fifo_feasible(&p, &c));
        let fifo = alloc::fifo_plan(&p, &c, lifespan).unwrap().total_work();
        let startup = shuffled_order(c.n(), s1);
        let finishing = shuffled_order(c.n(), s2);
        if let Ok(plan) = general::general_plan(&p, &c, &startup, &finishing, lifespan) {
            prop_assert!(plan.total_work() <= fifo * (1.0 + 1e-9),
                "Theorem 1: Σ={startup:?} Φ={finishing:?}");
        }
    }

    #[test]
    fn rental_duality(p in params_strategy(), c in profile_strategy(),
                      work in 1.0f64..1e5) {
        prop_assume!(alloc::fifo_feasible(&p, &c));
        let lifespan = rental::min_lifespan(&p, &c, work).unwrap();
        let (plan, _) = rental::rental_plan(&p, &c, work).unwrap();
        prop_assert!((plan.total_work() - work).abs() / work < 1e-10);
        // CEP at that lifespan yields back the work.
        let w2 = xmeasure::work(&p, &c, lifespan);
        prop_assert!((w2 - work).abs() / work < 1e-10);
    }

    #[test]
    fn work_completed_is_monotone_in_time(p in params_strategy(), c in profile_strategy()) {
        let lifespan = 100.0;
        prop_assume!(alloc::fifo_feasible(&p, &c));
        let plan = alloc::fifo_plan(&p, &c, lifespan).unwrap();
        let run = exec::execute(&p, &c, &plan);
        let mut prev = 0.0;
        for k in 1..=10 {
            let t = lifespan * k as f64 / 10.0;
            let w = run.work_completed_by(t);
            prop_assert!(w >= prev);
            prev = w;
        }
        prop_assert!((prev - plan.total_work()).abs() < 1e-9 * plan.total_work());
    }
}
