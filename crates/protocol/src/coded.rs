//! MDS-coded execution: redundancy replaces retransmission.
//!
//! The third protocol family, after oblivious retransmission
//! ([`crate::fault_exec`]) and adaptive replanning ([`crate::replan`]),
//! follows the coded-computation discipline of Reisizadeh et al.
//! (arXiv:1701.05973): the server encodes the job with an (n, k) MDS
//! code and ships one coded share to every worker, sized to its speed —
//! *any* k completed shares reconstruct the job, so stragglers, crashes
//! and lost messages up to `n − k` of them cost nothing but the coding
//! overhead.
//!
//! Mapped onto Rosenberg–Chiang's CEP model:
//!
//! * **Assignment** ([`mds_assignment`]) — the shares are the FIFO
//!   worksharing allocation itself (the no-gap recurrence already sizes
//!   each worker's load to its ρ so everything lands by the lifespan).
//!   The *certified job size* is the sum of the k **smallest** shares:
//!   every k-subset of shares carries at least that much coded mass, so
//!   a job of that size decodes from any k survivors — the worst case
//!   is exactly the k smallest. [`CodedPlan::overhead`] reports the
//!   redundancy paid for that certificate.
//! * **Execution** ([`execute_coded`]) — the DES replay is the oblivious
//!   executor's, with one deliberate difference: a result message lost
//!   in transit is **never retransmitted**. The share is simply gone;
//!   the code absorbs it. (This is what makes the family strictly
//!   faster than retransmission under lossy channels: no recovery
//!   round-trips ever extend the schedule.)
//! * **Decode** ([`CodedExecution::decode`]) — succeeds at the k-th
//!   earliest share arrival; with fewer than k survivors it returns the
//!   typed [`DecodeFailed`] carrying the certified accounting of what
//!   was assigned, what survived, and what was stranded.
//!
//! With an empty fault plan the trace is bit-identical to the pristine
//! executor run on the same plan (the no-retransmission branch is never
//! reached when nothing is lost), which `tests/protocol_families.rs`
//! pins.

use std::fmt;

use hetero_core::{Params, Profile};
use hetero_faults::FaultPlan;
use hetero_sim::{EventQueue, SimTime, Trace, UnitResource};

use crate::alloc::{fifo_plan, Plan};
use crate::error::ProtocolError;
use crate::exec::{channel_entity, worker_entity, SERVER};
use crate::fault_exec::ExecError;

/// An (n, k) MDS share assignment over a heterogeneous cluster.
#[derive(Debug, Clone)]
pub struct CodedPlan {
    /// The share sizes and startup order (the FIFO worksharing
    /// allocation — each share is sized to its worker's ρ).
    pub plan: Plan,
    /// Decode threshold: any `k` completed shares reconstruct the job.
    pub k: usize,
    /// Certified decodable job size: the sum of the k smallest shares.
    /// Any k-subset of shares totals at least this much coded mass.
    pub job: f64,
}

impl CodedPlan {
    /// Redundancy paid for the any-k certificate:
    /// `total assigned work / certified job − 1`. Zero only when every
    /// share is equal and k = n (no coding at all).
    pub fn overhead(&self) -> f64 {
        self.plan.total_work() / self.job - 1.0
    }
}

/// Builds the heterogeneity-aware (n, k) MDS assignment for `profile`:
/// the FIFO worksharing allocation provides the per-ρ share sizes, and
/// the certified job is the sum of the k smallest shares.
///
/// Returns [`ProtocolError::InvalidK`] unless `1 ≤ k ≤ n`, and
/// propagates any allocation failure from [`fifo_plan`].
pub fn mds_assignment(
    params: &Params,
    profile: &Profile,
    lifespan: f64,
    k: usize,
) -> Result<CodedPlan, ProtocolError> {
    let n = profile.n();
    if k == 0 || k > n {
        return Err(ProtocolError::InvalidK { k, n });
    }
    let plan = fifo_plan(params, profile, lifespan)?;
    let mut shares = plan.work.clone();
    shares.sort_unstable_by(f64::total_cmp);
    // hetero-check: allow(float-accum) — k smallest shares in sorted order; the certificate test re-derives this sum in exact Ratio arithmetic
    let job: f64 = shares[..k].iter().sum();
    Ok(CodedPlan { plan, k, job })
}

/// The typed decode failure: fewer than k shares survived.
#[derive(Debug, Clone, PartialEq)]
pub struct DecodeFailed {
    /// The decode threshold the assignment was built for.
    pub needed: usize,
    /// How many shares actually returned.
    pub arrived: usize,
    /// Total coded work assigned across all n shares.
    pub assigned_work: f64,
    /// Coded mass that returned but cannot be decoded — certified
    /// overhead accounting for the sub-threshold outcome: the cluster
    /// burned this much work for zero decodable output.
    pub stranded_work: f64,
}

impl fmt::Display for DecodeFailed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "MDS decode failed: {} of {} required shares survived ({} of {} assigned work units stranded undecodable)",
            self.arrived, self.needed, self.stranded_work, self.assigned_work
        )
    }
}

impl std::error::Error for DecodeFailed {}

/// A successful reconstruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodedDecode {
    /// When the k-th share arrived — the moment the job decodes.
    pub time: SimTime,
    /// Decoded job size (the certified `job` of the assignment).
    pub job: f64,
    /// Shares that had arrived by the decode instant (exactly k).
    pub shares_used: usize,
}

/// The outcome of a coded execution: the trace plus the share ledger.
#[derive(Debug, Clone)]
pub struct CodedExecution {
    /// Action/time record (crash-truncated phases carry a `†crash`
    /// suffix; lost transits a `†lost` one — with no retransmission
    /// ever following them).
    pub trace: Trace,
    /// Share arrival per startup position — `None` when the fault plan
    /// destroyed the share (crash before packaging, or a transit loss,
    /// which this family never recovers).
    pub arrivals: Vec<Option<SimTime>>,
    /// The executed assignment.
    pub coded: CodedPlan,
    /// Result messages that vanished in transit (each one a share
    /// permanently sacrificed to the code).
    pub lost_messages: u32,
}

impl CodedExecution {
    /// Reconstructs the job from the surviving shares: succeeds at the
    /// k-th earliest arrival, or reports the typed [`DecodeFailed`]
    /// with the certified overhead accounting.
    pub fn decode(&self) -> Result<CodedDecode, DecodeFailed> {
        let mut times: Vec<SimTime> = self.arrivals.iter().flatten().copied().collect();
        times.sort_unstable();
        if times.len() < self.coded.k {
            // hetero-check: allow(float-accum) — diagnostic total over the fixed position order
            let stranded: f64 = self
                .arrivals
                .iter()
                .zip(&self.coded.plan.work)
                .filter_map(|(arr, w)| arr.map(|_| w))
                .sum();
            return Err(DecodeFailed {
                needed: self.coded.k,
                arrived: times.len(),
                assigned_work: self.coded.plan.total_work(),
                stranded_work: stranded,
            });
        }
        Ok(CodedDecode {
            time: times[self.coded.k - 1],
            job: self.coded.job,
            shares_used: self.coded.k,
        })
    }

    /// Decodable work by time `t`: the certified job iff the k-th share
    /// had arrived by then, else zero. MDS reconstruction is
    /// all-or-nothing — partial share sets carry no decodable mass,
    /// which is the price the family pays next to worksharing's
    /// per-position salvage.
    pub fn work_completed_by(&self, t: f64) -> f64 {
        let cutoff = t * (1.0 + 1e-9);
        match self.decode() {
            Ok(d) if d.time.get() <= cutoff => d.job,
            _ => 0.0,
        }
    }

    /// `true` when the job did not decode by the lifespan — either
    /// fewer than k shares ever returned, or the k-th arrived late.
    /// (Shares arriving after the decode instant are irrelevant; the
    /// code has already reconstructed without them.)
    pub fn missed_deadline(&self, lifespan: f64) -> bool {
        let cutoff = lifespan * (1.0 + 1e-9);
        !matches!(self.decode(), Ok(d) if d.time.get() <= cutoff)
    }

    /// The latest share arrival among those that returned at all.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.arrivals.iter().flatten().copied().max()
    }

    /// The end of the last recorded activity.
    pub fn makespan(&self) -> SimTime {
        self.trace.makespan()
    }
}

/// The coded protocol's events — the oblivious executor's, minus any
/// recovery: a lost transit is terminal for its share.
#[derive(Debug, Clone, Copy)]
enum Event {
    StartSend {
        pos: usize,
        cause: Option<usize>,
    },
    WorkArrived {
        pos: usize,
        cause: usize,
    },
    ResultsReady {
        pos: usize,
        cause: usize,
    },
    TransitDone {
        pos: usize,
        lost: bool,
        cause: usize,
    },
}

struct CExecState<'f> {
    params: Params,
    rhos: Vec<f64>, // by position
    work: Vec<f64>, // by position
    order: Vec<usize>,
    server: UnitResource,
    channel: UnitResource,
    trace: Trace,
    arrivals: Vec<Option<SimTime>>, // by position
    faults: &'f FaultPlan,
    crash_by_pos: Vec<Option<f64>>,
    losses_left: Vec<u32>, // by position
    lost_messages: u32,
    error: Option<ExecError>,
}

/// Executes the coded assignment on `profile` while injecting `faults`.
///
/// The replay is the oblivious executor's — same phase structure, same
/// crash/slowdown/jitter semantics — except that lost result messages
/// are never retransmitted: the share is sacrificed and the MDS code is
/// expected to absorb it at decode time. With an empty fault plan the
/// trace is bit-identical to [`crate::exec::execute`] on `coded.plan`.
pub fn execute_coded(
    params: &Params,
    profile: &Profile,
    coded: &CodedPlan,
    faults: &FaultPlan,
) -> Result<CodedExecution, ExecError> {
    if !crate::alloc::is_permutation(&coded.plan.order, profile.n()) {
        return Err(ExecError::MalformedPlan);
    }
    let n = profile.n();
    let mut state = CExecState {
        params: *params,
        rhos: coded.plan.order.iter().map(|&i| profile.rho(i)).collect(),
        work: coded.plan.work.clone(),
        order: coded.plan.order.clone(),
        server: UnitResource::new(),
        channel: UnitResource::new(),
        trace: Trace::new(),
        arrivals: vec![None; n],
        faults,
        crash_by_pos: coded
            .plan
            .order
            .iter()
            .map(|&i| faults.crash_time(i))
            .collect(),
        losses_left: coded
            .plan
            .order
            .iter()
            .map(|&i| faults.result_losses(i))
            .collect(),
        lost_messages: 0,
        error: None,
    };
    for pos in 0..n {
        if let Some(tc) = state.crash_by_pos[pos] {
            let at = SimTime::try_new(tc)?;
            let ent = worker_entity(state.order[pos]);
            state.trace.try_record(ent, "†crash", at, at)?;
        }
    }
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule_at(
        SimTime::ZERO,
        Event::StartSend {
            pos: 0,
            cause: None,
        },
    );

    hetero_sim::run(&mut state, &mut queue, |st, q, now, ev| {
        if st.error.is_some() {
            return;
        }
        if let Err(e) = handle_event(st, q, now, ev) {
            st.error = Some(e);
        }
    });
    if let Some(e) = state.error.take() {
        return Err(e);
    }

    if hetero_obs::enabled() {
        crate::exec::observe_trace(
            &state.trace,
            &state.server,
            &state.channel,
            queue.dispatched(),
            queue.high_water(),
            n,
        );
        let survivors = state.arrivals.iter().flatten().count();
        if survivors >= coded.k {
            hetero_obs::counters::PROTOCOL_CODED_DECODES.bump();
        } else {
            hetero_obs::counters::PROTOCOL_CODED_DECODE_FAILURES.bump();
        }
        hetero_obs::observe("protocol.coded.overhead", coded.overhead());
        if !faults.is_empty() {
            hetero_obs::counters::FAULTS_INJECTED.add(faults.specs().len() as u64);
            hetero_obs::counters::FAULTS_LOST_MESSAGES.add(u64::from(state.lost_messages));
        }
    }

    Ok(CodedExecution {
        trace: state.trace,
        arrivals: state.arrivals,
        coded: coded.clone(),
        lost_messages: state.lost_messages,
    })
}

fn handle_event(
    st: &mut CExecState<'_>,
    q: &mut EventQueue<Event>,
    now: SimTime,
    ev: Event,
) -> Result<(), ExecError> {
    let (pi, tau, delta) = (st.params.pi(), st.params.tau(), st.params.delta());
    match ev {
        Event::StartSend { pos, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            // Coded sends are oblivious by design: redundancy, not
            // reaction, is the family's whole answer to faults.
            let pack = st.server.try_acquire(now, pi * w)?;
            let pack_id = st.trace.try_record_caused(
                SERVER,
                format!("pack→C{}", target + 1),
                pack.start,
                pack.end,
                cause,
            )?;
            let transit = {
                let prospective = pack.end.max(st.channel.next_free());
                let base = tau * w;
                let dur = match st.faults.channel_factor(prospective.get()) {
                    Some(f) => f * base,
                    None => base,
                };
                st.channel.try_acquire(pack.end, dur)?
            };
            let xmit_id = st.trace.try_record_caused(
                channel_entity(st.order.len()),
                format!("xmit:work:C{}", target + 1),
                transit.start,
                transit.end,
                Some(pack_id),
            )?;
            q.schedule_at(
                transit.end,
                Event::WorkArrived {
                    pos,
                    cause: xmit_id,
                },
            );
            if pos + 1 < st.order.len() {
                q.schedule_at(
                    transit.end,
                    Event::StartSend {
                        pos: pos + 1,
                        cause: Some(xmit_id),
                    },
                );
            }
        }
        Event::WorkArrived { pos, cause } => {
            let w = st.work[pos];
            let rho = st.rhos[pos];
            let target = st.order[pos];
            let ent = worker_entity(target);
            let crash = st.crash_by_pos[pos];
            let phases = [
                ("unpack", pi * rho * w),
                ("compute", rho * w),
                ("pack", pi * rho * delta * w),
            ];
            let mut t = now;
            let mut died = false;
            let mut prev = cause;
            for (label, base) in phases {
                let dur = match st.faults.slowdown_factor(target, t.get()) {
                    Some(f) => f * base,
                    None => base,
                };
                let end = t.try_add(dur)?;
                if let Some(tc) = crash {
                    if tc < end.get() {
                        let cut = SimTime::try_new(tc)?;
                        if cut > t {
                            st.trace.try_record_caused(
                                ent,
                                format!("{label}†crash"),
                                t,
                                cut,
                                Some(prev),
                            )?;
                        }
                        died = true;
                        break;
                    }
                }
                prev = st.trace.try_record_caused(ent, label, t, end, Some(prev))?;
                t = end;
            }
            if !died {
                q.schedule_at(t, Event::ResultsReady { pos, cause: prev });
            }
        }
        Event::ResultsReady { pos, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            let base = tau * delta * w;
            let transit = {
                let prospective = now.max(st.channel.next_free());
                let dur = match st.faults.channel_factor(prospective.get()) {
                    Some(f) => f * base,
                    None => base,
                };
                st.channel.try_acquire(now, dur)?
            };
            let wait_threshold = 1e-9 * (1.0 + now.get().abs());
            let mut xmit_cause = cause;
            if transit.start - now > wait_threshold {
                xmit_cause = st.trace.try_record_caused(
                    worker_entity(target),
                    "wait:channel",
                    now,
                    transit.start,
                    Some(cause),
                )?;
            }
            let lost = st.losses_left[pos] > 0;
            let label = if lost {
                st.losses_left[pos] -= 1;
                format!("xmit:result:C{}†lost", target + 1)
            } else {
                format!("xmit:result:C{}", target + 1)
            };
            let xmit_id = st.trace.try_record_caused(
                channel_entity(st.order.len()),
                label,
                transit.start,
                transit.end,
                Some(xmit_cause),
            )?;
            q.schedule_at(
                transit.end,
                Event::TransitDone {
                    pos,
                    lost,
                    cause: xmit_id,
                },
            );
        }
        Event::TransitDone { pos, lost, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            if lost {
                // Terminal: the share is sacrificed to the code. No
                // retransmission ever follows — this one branch is the
                // family's entire departure from the oblivious replay.
                st.lost_messages += 1;
            } else {
                st.arrivals[pos] = Some(now);
                let unpack = st.server.try_acquire(now, pi * delta * w)?;
                st.trace.try_record_caused(
                    SERVER,
                    format!("recv←C{}", target + 1),
                    unpack.start,
                    unpack.end,
                    Some(cause),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use hetero_faults::FaultSpec;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn assignment_certifies_the_k_smallest_shares() {
        let p = params();
        let profile = Profile::harmonic(5);
        let coded = mds_assignment(&p, &profile, 600.0, 3).unwrap();
        let mut shares = coded.plan.work.clone();
        shares.sort_unstable_by(f64::total_cmp);
        assert!((coded.job - (shares[0] + shares[1] + shares[2])).abs() < 1e-12);
        assert!(coded.overhead() > 0.0);
        // k = n certifies the whole allocation: zero slack against loss,
        // zero overhead — no coding at all.
        let full = mds_assignment(&p, &profile, 600.0, 5).unwrap();
        let total = full.plan.total_work();
        assert!((full.job - total).abs() <= 1e-12 * total);
        assert!(full.overhead().abs() <= 1e-12);
    }

    #[test]
    fn invalid_k_is_a_typed_error() {
        let p = params();
        let profile = Profile::harmonic(3);
        assert!(matches!(
            mds_assignment(&p, &profile, 600.0, 0),
            Err(ProtocolError::InvalidK { k: 0, n: 3 })
        ));
        assert!(matches!(
            mds_assignment(&p, &profile, 600.0, 4),
            Err(ProtocolError::InvalidK { k: 4, n: 3 })
        ));
    }

    #[test]
    fn empty_plan_reproduces_the_pristine_execution() {
        let p = params();
        let profile = Profile::harmonic(5);
        let coded = mds_assignment(&p, &profile, 700.0, 4).unwrap();
        let pristine = execute(&p, &profile, &coded.plan);
        let run = execute_coded(&p, &profile, &coded, &FaultPlan::empty()).unwrap();
        assert_eq!(run.trace.spans(), pristine.trace.spans());
        let arrivals: Vec<SimTime> = run.arrivals.iter().map(|a| a.unwrap()).collect();
        assert_eq!(arrivals, pristine.arrivals);
        assert_eq!(run.lost_messages, 0);
        let d = run.decode().unwrap();
        assert_eq!(d.shares_used, 4);
        assert!(!run.missed_deadline(700.0));
        assert!((run.work_completed_by(700.0) - coded.job).abs() < 1e-12);
    }

    #[test]
    fn decode_survives_up_to_n_minus_k_losses() {
        let p = params();
        let profile = Profile::harmonic(5);
        let coded = mds_assignment(&p, &profile, 600.0, 3).unwrap();
        // Two shares destroyed (= n − k): still decodes, on time.
        let faults = FaultPlan::new(vec![
            FaultSpec::ResultLoss {
                worker: 0,
                count: 1,
            },
            FaultSpec::Crash { worker: 2, at: 1.0 },
        ])
        .unwrap();
        let run = execute_coded(&p, &profile, &coded, &faults).unwrap();
        assert_eq!(run.lost_messages, 1);
        assert_eq!(run.arrivals.iter().flatten().count(), 3);
        let d = run.decode().unwrap();
        assert!((d.job - coded.job).abs() < 1e-12);
        assert!(!run.missed_deadline(600.0));
    }

    #[test]
    fn losses_are_never_retransmitted() {
        let p = params();
        let profile = Profile::harmonic(4);
        let coded = mds_assignment(&p, &profile, 500.0, 3).unwrap();
        let faults = FaultPlan::new(vec![FaultSpec::ResultLoss {
            worker: 1,
            count: 3,
        }])
        .unwrap();
        let run = execute_coded(&p, &profile, &coded, &faults).unwrap();
        // One loss consumed, the share is gone; the remaining loss
        // budget never fires because nothing is ever resent.
        assert_eq!(run.lost_messages, 1);
        assert_eq!(
            run.arrivals[run.coded.plan.order.iter().position(|&i| i == 1).unwrap()],
            None
        );
        assert_eq!(
            run.trace
                .spans()
                .iter()
                .filter(|s| s.label.ends_with("†lost"))
                .count(),
            1
        );
    }

    #[test]
    fn sub_threshold_survival_is_a_typed_decode_failure() {
        let p = params();
        let profile = Profile::harmonic(4);
        let coded = mds_assignment(&p, &profile, 500.0, 3).unwrap();
        let faults = FaultPlan::new(vec![
            FaultSpec::Crash { worker: 0, at: 0.0 },
            FaultSpec::ResultLoss {
                worker: 1,
                count: 1,
            },
        ])
        .unwrap();
        let run = execute_coded(&p, &profile, &coded, &faults).unwrap();
        let err = run.decode().unwrap_err();
        assert_eq!(err.needed, 3);
        assert_eq!(err.arrived, 2);
        assert!((err.assigned_work - coded.plan.total_work()).abs() < 1e-12);
        assert!(err.stranded_work > 0.0 && err.stranded_work < err.assigned_work);
        assert!(err.to_string().contains("2 of 3"));
        assert_eq!(run.work_completed_by(500.0), 0.0);
        assert!(run.missed_deadline(500.0));
    }

    #[test]
    fn malformed_plan_is_a_typed_error() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let coded = CodedPlan {
            plan: Plan {
                order: vec![0, 0],
                work: vec![1.0, 1.0],
                lifespan: 10.0,
            },
            k: 1,
            job: 1.0,
        };
        assert_eq!(
            execute_coded(&p, &profile, &coded, &FaultPlan::empty()).unwrap_err(),
            ExecError::MalformedPlan
        );
    }
}
