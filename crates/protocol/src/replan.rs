//! Adaptive replanning: reacting to detected faults at send boundaries.
//!
//! [`execute_adaptive`] runs the same DES protocol as
//! [`crate::fault_exec::execute_with_faults`], but gives the server a
//! failure detector with **send-boundary granularity**: each time it is
//! about to package the next position's work, it learns which of the
//! still-unserved workers have crashed or are straggling *as of that
//! moment*, and reacts:
//!
//! * **Drop** — sends to known-crashed workers are skipped outright
//!   (the oblivious executor wastes `(π+τ)w` of server and channel time
//!   on each doomed package).
//! * **Re-solve** — when new faults were detected since the last solve,
//!   the remaining workload is re-optimized over the surviving suffix:
//!   the live X-measure is maintained by a streaming [`ChurnScan`], so
//!   each boundary syncs by *diff* — sent positions and newly detected
//!   crashes are O(log n) `delete`s, detected slowdowns are O(log n)
//!   `replace`s, top-up positions are O(log n) `insert`s — never a
//!   from-scratch solver construction over the whole suffix. The no-gap
//!   recurrence then re-sizes the suffix to the *hedged* window.
//!   Allocations **never grow** past the original plan — under pure
//!   crashes the re-solve reproduces the original sizes exactly, which
//!   is what makes replanned throughput provably ≥ oblivious throughput
//!   (pinned by a property test).
//! * **Hedge** — [`HedgePolicy`] shaves the deadline to
//!   [`hedged_lifespan`]`(L, margin)` so perturbation noise lands in the
//!   margin instead of past the deadline, bounds retransmission attempts
//!   with optional backoff, and (graceful degradation) skips sends whose
//!   best-case return would already overshoot the hedged deadline.
//! * **Top-up** — once every planned position has resolved, leftover
//!   hedged window is refilled with a bonus round over *proven-alive*
//!   workers (those whose results actually returned), recovering
//!   throughput that crashes destroyed.
//!
//! With an empty fault plan nothing is ever detected, so the adaptive
//! executor performs the exact schedule — bit-identical trace — of the
//! pristine one.
//!
//! [`ChurnScan`]: hetero_core::xstream::ChurnScan

use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::xstream::{ChurnScan, WorkerId};
use hetero_core::{Params, Profile};
use hetero_faults::FaultPlan;
use hetero_sim::{EventQueue, SimTime, Trace, UnitResource};

use crate::alloc::Plan;
use crate::exec::{channel_entity, worker_entity, SERVER};
use crate::fault_exec::ExecError;

/// The deadline a margin-hedging planner actually plans for:
/// `L / (1 + margin)`.
///
/// E17 measures the mean makespan *overrun factor* `actual/L` under
/// ρ-estimation error; planning for `hedged_lifespan(L, overrun)` absorbs
/// exactly that factor, turning the knife-edge deadline into a safety
/// band. The replanner applies the same transform to its re-solved
/// windows, so the two layers hedge identically.
pub fn hedged_lifespan(lifespan: f64, margin: f64) -> f64 {
    lifespan / (1.0 + margin)
}

/// How aggressively the adaptive executor hedges against faults.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HedgePolicy {
    /// Safety margin on the lifespan: all replanned work is sized to
    /// [`hedged_lifespan`]`(L, margin)`. Zero plans to the knife edge.
    pub margin: f64,
    /// Retransmission budget per position for lost result messages.
    pub max_retries: u32,
    /// Backoff factor between retries: retry `k` (1-based) waits
    /// `backoff · k · τδw` before retransmitting. Zero retransmits
    /// immediately, like the oblivious executor.
    pub retry_backoff: f64,
    /// Graceful degradation: skip a send whose best-case result return
    /// (`(π+τ)w + Bρw + τδw` from now, at the detected effective speed)
    /// already overshoots the hedged deadline.
    pub degrade: bool,
    /// Refill leftover hedged window with a bonus round over
    /// proven-alive workers once every planned position has resolved.
    pub topup: bool,
}

impl Default for HedgePolicy {
    fn default() -> Self {
        HedgePolicy {
            margin: 0.0,
            max_retries: 3,
            retry_backoff: 0.0,
            degrade: true,
            topup: true,
        }
    }
}

/// One extra package delivered by the top-up round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TopupResult {
    /// Profile index of the proven-alive worker that served it.
    pub worker: usize,
    /// Work units in the bonus package.
    pub work: f64,
    /// When its results returned (`None` if a late fault destroyed it).
    pub arrival: Option<SimTime>,
}

/// The outcome of an adaptive execution.
#[derive(Debug, Clone)]
pub struct AdaptiveExecution {
    /// Action/time record (skipped sends appear as zero-width `skip→C*`
    /// marker spans on the server).
    pub trace: Trace,
    /// Result arrival per *original* position (`None` = destroyed or
    /// skipped).
    pub arrivals: Vec<Option<SimTime>>,
    /// The original plan the run started from.
    pub plan: Plan,
    /// Post-replan package sizes per original position (≤ the planned
    /// sizes — allocations never grow).
    pub final_work: Vec<f64>,
    /// Bonus packages delivered by the top-up round.
    pub topups: Vec<TopupResult>,
    /// Suffix re-optimizations performed.
    pub replans: u32,
    /// Sends skipped (known-crashed targets + degradation).
    pub skipped_sends: u32,
    /// Result messages lost in transit.
    pub lost_messages: u32,
    /// Retransmissions performed.
    pub retransmits: u32,
    /// The hedged deadline the run planned to.
    pub hedged_lifespan: f64,
}

impl AdaptiveExecution {
    /// Work units (original + top-up) whose results were back by `t`.
    pub fn work_completed_by(&self, t: f64) -> f64 {
        let cutoff = t * (1.0 + 1e-9);
        // hetero-check: allow(float-accum) — fixed worker order, mirrors Execution::work_completed_by bit-for-bit
        let original: f64 = self
            .arrivals
            .iter()
            .zip(&self.final_work)
            .filter_map(|(arr, w)| arr.filter(|a| a.get() <= cutoff).map(|_| w))
            .sum();
        // hetero-check: allow(float-accum) — top-ups are recorded in deterministic replan order; goldens pin the total
        let bonus: f64 = self
            .topups
            .iter()
            .filter_map(|r| r.arrival.filter(|a| a.get() <= cutoff).map(|_| r.work))
            .sum();
        original + bonus
    }

    /// Total work whose results returned at all.
    pub fn salvaged_work(&self) -> f64 {
        let original: f64 = self
            .arrivals
            .iter()
            .zip(&self.final_work)
            .filter(|(arr, _)| arr.is_some())
            .map(|(_, w)| w)
            .sum();
        let bonus: f64 = self
            .topups
            .iter()
            .filter(|r| r.arrival.is_some())
            .map(|r| r.work)
            .sum();
        original + bonus
    }

    /// `true` when any result (original or top-up) arrived after the
    /// *unhedged* lifespan.
    pub fn missed_deadline(&self, lifespan: f64) -> bool {
        let cutoff = lifespan * (1.0 + 1e-9);
        self.arrivals
            .iter()
            .flatten()
            .chain(self.topups.iter().filter_map(|r| r.arrival.as_ref()))
            .any(|arr| arr.get() > cutoff)
    }

    /// The latest arrival among everything that returned.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.arrivals
            .iter()
            .flatten()
            .chain(self.topups.iter().filter_map(|r| r.arrival.as_ref()))
            .copied()
            .max()
    }
}

/// The adaptive protocol's events, keyed by (possibly extended)
/// position. `cause` carries the span id whose completion scheduled the
/// event, so adaptive traces record the same causality DAG as the other
/// executors (top-up rounds start fresh causal roots).
#[derive(Debug, Clone, Copy)]
enum Event {
    StartSend {
        pos: usize,
        cause: Option<usize>,
    },
    WorkArrived {
        pos: usize,
        cause: usize,
    },
    ResultsReady {
        pos: usize,
        cause: usize,
    },
    TransitDone {
        pos: usize,
        lost: bool,
        cause: usize,
    },
}

struct AdaptState<'f> {
    params: Params,
    policy: HedgePolicy,
    hedged_l: f64,
    // Per position (original positions first, top-up positions appended):
    order: Vec<usize>,
    work: Vec<f64>,
    rhos: Vec<f64>,
    eff_rhos: Vec<f64>, // detected-slowdown-rescaled speeds
    crash_by_pos: Vec<Option<f64>>,
    known_crashed: Vec<bool>,
    detected_slow: Vec<bool>,
    arrivals: Vec<Option<SimTime>>,
    retries_used: Vec<u32>,
    // Per worker (profile index):
    losses_left: Vec<u32>,
    // Engine state:
    server: UnitResource,
    channel: UnitResource,
    trace: Trace,
    faults: &'f FaultPlan,
    scan: ChurnScan,
    scan_ids: Vec<Option<WorkerId>>, // per position: live churn-scan handle
    dirty: bool,
    original_n: usize,
    resolved: usize,
    topup_done: bool,
    replans: u32,
    skipped_sends: u32,
    lost_messages: u32,
    retransmits: u32,
    error: Option<ExecError>,
}

/// Executes `plan` under `faults` with boundary-granularity replanning.
///
/// See the module docs for the reaction rules. With an empty fault plan
/// the result is bit-identical to the oblivious (and pristine) executor.
pub fn execute_adaptive(
    params: &Params,
    profile: &Profile,
    plan: &Plan,
    faults: &FaultPlan,
    policy: &HedgePolicy,
) -> Result<AdaptiveExecution, ExecError> {
    if !crate::alloc::is_permutation(&plan.order, profile.n()) {
        return Err(ExecError::MalformedPlan);
    }
    let n = profile.n();
    let mut state = AdaptState {
        params: *params,
        policy: *policy,
        hedged_l: hedged_lifespan(plan.lifespan, policy.margin),
        order: plan.order.clone(),
        work: plan.work.clone(),
        rhos: plan.order.iter().map(|&i| profile.rho(i)).collect(),
        eff_rhos: plan.order.iter().map(|&i| profile.rho(i)).collect(),
        crash_by_pos: plan.order.iter().map(|&i| faults.crash_time(i)).collect(),
        known_crashed: vec![false; n],
        detected_slow: vec![false; n],
        arrivals: vec![None; n],
        retries_used: vec![0; n],
        losses_left: (0..n).map(|i| faults.result_losses(i)).collect(),
        server: UnitResource::new(),
        channel: UnitResource::new(),
        trace: Trace::new(),
        faults,
        scan: ChurnScan::new(params),
        scan_ids: vec![None; n],
        dirty: false,
        original_n: n,
        resolved: 0,
        topup_done: false,
        replans: 0,
        skipped_sends: 0,
        lost_messages: 0,
        retransmits: 0,
        error: None,
    };
    for pos in 0..n {
        if let Some(tc) = state.crash_by_pos[pos] {
            let at = SimTime::try_new(tc)?;
            state
                .trace
                .try_record(worker_entity(state.order[pos]), "†crash", at, at)?;
        }
    }
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule_at(
        SimTime::ZERO,
        Event::StartSend {
            pos: 0,
            cause: None,
        },
    );

    hetero_sim::run(&mut state, &mut queue, |st, q, now, ev| {
        if st.error.is_some() {
            return;
        }
        if let Err(e) = handle_event(st, q, now, ev) {
            st.error = Some(e);
        }
    });
    if let Some(e) = state.error.take() {
        return Err(e);
    }

    if hetero_obs::enabled() {
        hetero_obs::count("sim.events", queue.dispatched());
        hetero_obs::gauge_max("sim.queue_high_water", queue.high_water() as u64);
        if !faults.is_empty() {
            hetero_obs::counters::FAULTS_INJECTED.add(faults.specs().len() as u64);
            hetero_obs::counters::FAULTS_LOST_MESSAGES.add(u64::from(state.lost_messages));
        }
    }

    let topups = (n..state.order.len())
        .map(|pos| TopupResult {
            worker: state.order[pos],
            work: state.work[pos],
            arrival: state.arrivals[pos],
        })
        .collect();
    state.arrivals.truncate(n);
    state.work.truncate(n);
    Ok(AdaptiveExecution {
        trace: state.trace,
        arrivals: state.arrivals,
        plan: plan.clone(),
        final_work: state.work,
        topups,
        replans: state.replans,
        skipped_sends: state.skipped_sends,
        lost_messages: state.lost_messages,
        retransmits: state.retransmits,
        hedged_lifespan: state.hedged_l,
    })
}

/// Boundary-time failure detection over the unsent positions `pos..`.
/// Returns `true` when anything new was learned.
fn detect(st: &mut AdaptState<'_>, pos: usize, now: SimTime) -> bool {
    let mut learned = false;
    for j in pos..st.order.len() {
        if !st.known_crashed[j] {
            if let Some(tc) = st.crash_by_pos[j] {
                if tc <= now.get() {
                    st.known_crashed[j] = true;
                    learned = true;
                }
            }
        }
        if !st.detected_slow[j] {
            if let Some(f) = st.faults.slowdown_factor(st.order[j], now.get()) {
                st.eff_rhos[j] = st.rhos[j] * f;
                st.detected_slow[j] = true;
                learned = true;
            }
        }
    }
    learned
}

/// Re-optimizes the unsent suffix `pos..` over its surviving members:
/// no-gap recurrence sized to the hedged window, allocations capped at
/// their current values (never-grow).
fn resolve_suffix(st: &mut AdaptState<'_>, pos: usize, now: SimTime) -> Result<(), ExecError> {
    let survivors: Vec<usize> = (pos..st.order.len())
        .filter(|&j| !st.known_crashed[j])
        .collect();
    let remaining = st.hedged_l - now.get();
    if survivors.is_empty() || remaining <= 0.0 {
        return Ok(());
    }
    let _span = hetero_obs::timed("faults.replan");
    hetero_obs::counters::FAULTS_REPLANS.bump();
    // Suffix re-solve depth: how many surviving positions each boundary
    // re-optimization spans (the `obsdiff` observatory tracks its mean).
    hetero_obs::observe("faults.replan.suffix_depth", survivors.len() as f64);
    st.replans += 1;
    // Streaming X-measure maintenance: sync the churn scan to the
    // surviving suffix by diff. Sent and newly crashed positions leave
    // (O(log n) deletes), detected slowdowns rescale in place (O(log n)
    // replaces), top-up positions join (O(log n) inserts) — membership
    // changes never trigger an O(n) from-scratch re-solve.
    for j in 0..pos.min(st.order.len()) {
        if let Some(id) = st.scan_ids[j].take() {
            st.scan.delete(id)?;
        }
    }
    for j in pos..st.order.len() {
        if st.known_crashed[j] {
            if let Some(id) = st.scan_ids[j].take() {
                st.scan.delete(id)?;
            }
        } else {
            match st.scan_ids[j] {
                Some(id) => {
                    if st.scan.rho_of(id)?.to_bits() != st.eff_rhos[j].to_bits() {
                        st.scan.replace(id, st.eff_rhos[j])?;
                    }
                }
                None => st.scan_ids[j] = Some(st.scan.insert(st.eff_rhos[j])?),
            }
        }
    }
    let x = st.scan.x();
    let (a, b, td) = (st.params.a(), st.params.b(), st.params.tau_delta());
    let c = remaining / (1.0 + td * x);
    let mut product = 1.0f64;
    for &j in &survivors {
        let rho = st.eff_rhos[j];
        let denom = b * rho + a;
        let resolved = c * product / denom;
        product *= (b * rho + td) / denom;
        if resolved < st.work[j] {
            st.work[j] = resolved;
        }
    }
    Ok(())
}

/// Marks one more position as resolved (arrived, destroyed, or skipped)
/// and fires the top-up round once everything planned has resolved.
fn mark_resolved(
    st: &mut AdaptState<'_>,
    q: &mut EventQueue<Event>,
    now: SimTime,
) -> Result<(), ExecError> {
    st.resolved += 1;
    if !st.policy.topup || st.topup_done || st.resolved < st.order.len() {
        return Ok(());
    }
    st.topup_done = true;
    // The bonus round can only start once the server has finished
    // unpacking the last result and the channel has drained — sizing the
    // window from `now` would overshoot the hedged deadline by exactly
    // that busy tail.
    let start = now.max(st.server.next_free()).max(st.channel.next_free());
    let window = st.hedged_l - start.get();
    if window <= 1e-6 * st.hedged_l {
        return Ok(());
    }
    // Proven-alive workers: original positions whose results came back.
    let alive: Vec<usize> = (0..st.original_n)
        .filter(|&p| st.arrivals[p].is_some())
        .collect();
    if alive.is_empty() {
        return Ok(());
    }
    // The bonus round is a one-shot flat solve over a different member
    // set; the churn scan keeps tracking the planned suffix, and the new
    // positions join it through resolve_suffix's insert diff.
    let rhos: Vec<f64> = alive.iter().map(|&p| st.eff_rhos[p]).collect();
    let x = x_measure_of_rhos(&st.params, &rhos);
    let (a, b, td) = (st.params.a(), st.params.b(), st.params.tau_delta());
    let c = window / (1.0 + td * x);
    let first_new = st.order.len();
    let mut product = 1.0f64;
    for &p in &alive {
        let rho = st.eff_rhos[p];
        let denom = b * rho + a;
        let w = c * product / denom;
        product *= (b * rho + td) / denom;
        if !(w.is_finite() && w > 0.0) {
            continue;
        }
        let worker = st.order[p];
        st.order.push(worker);
        st.work.push(w);
        st.rhos.push(st.rhos[p]);
        st.eff_rhos.push(st.eff_rhos[p]);
        st.crash_by_pos.push(st.crash_by_pos[p]);
        st.known_crashed.push(false);
        st.detected_slow.push(st.detected_slow[p]);
        st.arrivals.push(None);
        st.retries_used.push(0);
        st.scan_ids.push(None);
    }
    if st.order.len() > first_new {
        // The bonus round is a fresh causal root: no single span caused
        // it — it starts when *everything* planned has resolved.
        q.schedule_at(
            start,
            Event::StartSend {
                pos: first_new,
                cause: None,
            },
        );
    }
    Ok(())
}

fn handle_event(
    st: &mut AdaptState<'_>,
    q: &mut EventQueue<Event>,
    now: SimTime,
    ev: Event,
) -> Result<(), ExecError> {
    let (pi, tau, delta) = (st.params.pi(), st.params.tau(), st.params.delta());
    match ev {
        Event::StartSend { pos, cause } => {
            if detect(st, pos, now) {
                st.dirty = true;
            }
            if st.dirty {
                resolve_suffix(st, pos, now)?;
                st.dirty = false;
            }
            let target = st.order[pos];
            let chain_next = |q: &mut EventQueue<Event>, at: SimTime, from: Option<usize>| {
                if pos + 1 < st.order.len() {
                    q.schedule_at(
                        at,
                        Event::StartSend {
                            pos: pos + 1,
                            cause: from,
                        },
                    );
                }
            };
            let skip = if st.known_crashed[pos] {
                true
            } else if st.policy.degrade {
                // Best-case return time at the detected effective speed;
                // anything that cannot make the hedged deadline even
                // unobstructed is dead channel weight.
                let w = st.work[pos];
                let best = (pi + tau) * w + st.params.b() * st.eff_rhos[pos] * w + tau * delta * w;
                now.get() + best > st.hedged_l * (1.0 + 1e-9)
            } else {
                false
            };
            if skip {
                st.skipped_sends += 1;
                hetero_obs::counters::FAULTS_SKIPPED_SENDS.bump();
                let skip_id = st.trace.try_record_caused(
                    SERVER,
                    format!("skip→C{}", target + 1),
                    now,
                    now,
                    cause,
                )?;
                chain_next(q, now, Some(skip_id));
                mark_resolved(st, q, now)?;
                return Ok(());
            }
            let w = st.work[pos];
            let pack = st.server.try_acquire(now, pi * w)?;
            let pack_id = st.trace.try_record_caused(
                SERVER,
                format!("pack→C{}", target + 1),
                pack.start,
                pack.end,
                cause,
            )?;
            let transit = {
                let prospective = pack.end.max(st.channel.next_free());
                let base = tau * w;
                let dur = match st.faults.channel_factor(prospective.get()) {
                    Some(f) => f * base,
                    None => base,
                };
                st.channel.try_acquire(pack.end, dur)?
            };
            let xmit_id = st.trace.try_record_caused(
                channel_entity(st.original_n),
                format!("xmit:work:C{}", target + 1),
                transit.start,
                transit.end,
                Some(pack_id),
            )?;
            q.schedule_at(
                transit.end,
                Event::WorkArrived {
                    pos,
                    cause: xmit_id,
                },
            );
            chain_next(q, transit.end, Some(xmit_id));
        }
        Event::WorkArrived { pos, cause } => {
            let w = st.work[pos];
            let rho = st.rhos[pos];
            let target = st.order[pos];
            let ent = worker_entity(target);
            let crash = st.crash_by_pos[pos];
            let phases = [
                ("unpack", pi * rho * w),
                ("compute", rho * w),
                ("pack", pi * rho * delta * w),
            ];
            let mut t = now;
            let mut died = false;
            let mut prev = cause;
            for (label, base) in phases {
                let dur = match st.faults.slowdown_factor(target, t.get()) {
                    Some(f) => f * base,
                    None => base,
                };
                let end = t.try_add(dur)?;
                if let Some(tc) = crash {
                    if tc < end.get() {
                        let cut = SimTime::try_new(tc)?;
                        if cut > t {
                            st.trace.try_record_caused(
                                ent,
                                format!("{label}†crash"),
                                t,
                                cut,
                                Some(prev),
                            )?;
                        }
                        died = true;
                        break;
                    }
                }
                prev = st.trace.try_record_caused(ent, label, t, end, Some(prev))?;
                t = end;
            }
            if died {
                mark_resolved(st, q, t)?;
            } else {
                q.schedule_at(t, Event::ResultsReady { pos, cause: prev });
            }
        }
        Event::ResultsReady { pos, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            let base = tau * delta * w;
            let transit = {
                let prospective = now.max(st.channel.next_free());
                let dur = match st.faults.channel_factor(prospective.get()) {
                    Some(f) => f * base,
                    None => base,
                };
                st.channel.try_acquire(now, dur)?
            };
            let wait_threshold = 1e-9 * (1.0 + now.get().abs());
            let mut xmit_cause = cause;
            if transit.start - now > wait_threshold {
                xmit_cause = st.trace.try_record_caused(
                    worker_entity(target),
                    "wait:channel",
                    now,
                    transit.start,
                    Some(cause),
                )?;
            }
            let lost = st.losses_left[target] > 0;
            let label = if lost {
                st.losses_left[target] -= 1;
                format!("xmit:result:C{}†lost", target + 1)
            } else {
                format!("xmit:result:C{}", target + 1)
            };
            let xmit_id = st.trace.try_record_caused(
                channel_entity(st.original_n),
                label,
                transit.start,
                transit.end,
                Some(xmit_cause),
            )?;
            q.schedule_at(
                transit.end,
                Event::TransitDone {
                    pos,
                    lost,
                    cause: xmit_id,
                },
            );
        }
        Event::TransitDone { pos, lost, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            if lost {
                st.lost_messages += 1;
                let alive = st.crash_by_pos[pos].is_none_or(|tc| tc > now.get());
                if alive && st.retries_used[pos] < st.policy.max_retries {
                    st.retries_used[pos] += 1;
                    st.retransmits += 1;
                    let delay =
                        st.policy.retry_backoff * f64::from(st.retries_used[pos]) * tau * delta * w;
                    let at = if delay > 0.0 {
                        now.try_add(delay)?
                    } else {
                        now
                    };
                    // The recovery chains off the lost transit.
                    q.schedule_at(at, Event::ResultsReady { pos, cause });
                } else {
                    mark_resolved(st, q, now)?;
                }
            } else {
                st.arrivals[pos] = Some(now);
                let unpack = st.server.try_acquire(now, pi * delta * w)?;
                st.trace.try_record_caused(
                    SERVER,
                    format!("recv←C{}", target + 1),
                    unpack.start,
                    unpack.end,
                    Some(cause),
                )?;
                mark_resolved(st, q, now)?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::fifo_plan;
    use crate::exec::execute;
    use crate::fault_exec::execute_with_faults;
    use hetero_faults::FaultSpec;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn hedged_lifespan_shaves_the_margin() {
        assert_eq!(hedged_lifespan(600.0, 0.0), 600.0);
        assert!((hedged_lifespan(600.0, 0.2) - 500.0).abs() < 1e-12);
        assert!(hedged_lifespan(600.0, 0.05) < 600.0);
    }

    #[test]
    fn fault_free_adaptive_is_bit_identical_to_pristine() {
        let p = params();
        let profile = Profile::harmonic(6);
        let plan = fifo_plan(&p, &profile, 700.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        let run = execute_adaptive(
            &p,
            &profile,
            &plan,
            &FaultPlan::empty(),
            &HedgePolicy::default(),
        )
        .unwrap();
        assert_eq!(run.trace.spans(), pristine.trace.spans());
        let arrivals: Vec<SimTime> = run.arrivals.iter().map(|a| a.unwrap()).collect();
        assert_eq!(arrivals, pristine.arrivals);
        assert_eq!(run.replans, 0);
        assert_eq!(run.skipped_sends, 0);
        assert!(run.topups.is_empty());
        assert_eq!(run.final_work, plan.work);
    }

    #[test]
    fn detected_crash_skips_the_send_and_replans() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let plan = fifo_plan(&p, &profile, 500.0).unwrap();
        // Worker 2 (position 2, fastest) crashes at t = 0: every boundary
        // detects it before its send.
        let faults = FaultPlan::new(vec![FaultSpec::Crash { worker: 2, at: 0.0 }]).unwrap();
        let run = execute_adaptive(&p, &profile, &plan, &faults, &HedgePolicy::default()).unwrap();
        assert!(run.skipped_sends >= 1);
        assert!(run.replans >= 1);
        assert_eq!(run.arrivals[2], None);
        assert!(run.arrivals[0].is_some() && run.arrivals[1].is_some());
        assert!(run
            .trace
            .spans()
            .iter()
            .any(|s| s.label == "skip→C3" && s.entity == SERVER));
        // The oblivious executor wastes the send; adaptive salvages no
        // less work and never delivers late.
        let oblivious = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert!(run.salvaged_work() >= oblivious.salvaged_work() - 1e-9);
        assert!(!run.missed_deadline(500.0));
    }

    #[test]
    fn detected_straggler_shrinks_its_package_to_fit_the_hedge() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let lifespan = 500.0;
        let plan = fifo_plan(&p, &profile, lifespan).unwrap();
        // Worker 1 runs 4x slow for the whole run — chronic straggler,
        // detectable at the very first boundary.
        let faults = FaultPlan::new(vec![FaultSpec::Slowdown {
            worker: 1,
            factor: 4.0,
            from: 0.0,
            until: lifespan,
        }])
        .unwrap();
        let policy = HedgePolicy {
            margin: 0.05,
            ..HedgePolicy::default()
        };
        let oblivious = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert!(oblivious.missed_deadline(lifespan), "oblivious is late");
        let run = execute_adaptive(&p, &profile, &plan, &faults, &policy).unwrap();
        assert!(!run.missed_deadline(lifespan), "replanned fits");
        assert!(run.replans >= 1);
        assert!(run.final_work[1] < plan.work[1], "straggler package shrank");
    }

    #[test]
    fn topup_refills_the_window_after_losses() {
        // Fat result transits (τδ = 0.2): the last position's arrival sits
        // a real fraction of the lifespan after the first's, so its death
        // frees a window the top-up round can actually use. Under the
        // paper's τδ ~ 1e-6 every arrival clusters at L and there is
        // nothing to refill — which the guard correctly detects.
        let p = Params::new(0.2, 0.01, 1.0).unwrap();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let lifespan = 500.0;
        let plan = fifo_plan(&p, &profile, lifespan).unwrap();
        // Worker 1 (the last position) dies mid-compute; worker 0 returns
        // fine well before the deadline, leaving the freed tail window.
        let faults = FaultPlan::new(vec![FaultSpec::Crash {
            worker: 1,
            at: 100.0,
        }])
        .unwrap();
        let run = execute_adaptive(&p, &profile, &plan, &faults, &HedgePolicy::default()).unwrap();
        assert!(
            !run.topups.is_empty(),
            "proven-alive worker 0 gets bonus work"
        );
        for t in &run.topups {
            assert_eq!(t.worker, 0);
            assert!(t.work > 0.0);
        }
        assert!(!run.missed_deadline(lifespan));
        let oblivious = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert!(
            run.work_completed_by(lifespan) > oblivious.work_completed_by(lifespan),
            "top-up strictly beats oblivious salvage"
        );
    }

    #[test]
    fn retry_budget_bounds_retransmissions() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &profile, 400.0).unwrap();
        let faults = FaultPlan::new(vec![FaultSpec::ResultLoss {
            worker: 0,
            count: 10,
        }])
        .unwrap();
        let policy = HedgePolicy {
            max_retries: 2,
            topup: false,
            ..HedgePolicy::default()
        };
        let run = execute_adaptive(&p, &profile, &plan, &faults, &policy).unwrap();
        assert_eq!(run.retransmits, 2);
        assert_eq!(run.lost_messages, 3); // initial send + 2 retries, all lost
        assert_eq!(run.arrivals[0], None);
    }

    #[test]
    fn backoff_delays_retransmission() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &profile, 400.0).unwrap();
        let faults = FaultPlan::new(vec![FaultSpec::ResultLoss {
            worker: 0,
            count: 1,
        }])
        .unwrap();
        let eager = execute_adaptive(&p, &profile, &plan, &faults, &HedgePolicy::default())
            .unwrap()
            .arrivals[0]
            .unwrap();
        let lazy = execute_adaptive(
            &p,
            &profile,
            &plan,
            &faults,
            &HedgePolicy {
                retry_backoff: 2.0,
                ..HedgePolicy::default()
            },
        )
        .unwrap()
        .arrivals[0]
            .unwrap();
        assert!(lazy > eager, "backoff postpones the recovered arrival");
    }

    #[test]
    fn crash_only_never_grows_allocations() {
        // The dominance cap: under pure crashes the re-solve reproduces
        // the original allocation for every survivor.
        let p = params();
        let profile = Profile::harmonic(5);
        let plan = fifo_plan(&p, &profile, 600.0).unwrap();
        let faults = FaultPlan::new(vec![
            FaultSpec::Crash { worker: 1, at: 0.0 },
            FaultSpec::Crash {
                worker: 3,
                at: 50.0,
            },
        ])
        .unwrap();
        let run = execute_adaptive(&p, &profile, &plan, &faults, &HedgePolicy::default()).unwrap();
        for (pos, (&w, &orig)) in run.final_work.iter().zip(&plan.work).enumerate() {
            assert!(
                w <= orig * (1.0 + 1e-9),
                "position {pos} grew: {w} > {orig}"
            );
        }
        for pos in [0usize, 2, 4] {
            assert!(
                (run.final_work[pos] - plan.work[pos]).abs() / plan.work[pos] < 1e-9,
                "survivor {pos} resized under crash-only faults"
            );
        }
    }

    #[test]
    fn malformed_plan_is_rejected() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = Plan {
            order: vec![1, 1],
            work: vec![1.0, 1.0],
            lifespan: 10.0,
        };
        assert_eq!(
            execute_adaptive(
                &p,
                &profile,
                &plan,
                &FaultPlan::empty(),
                &HedgePolicy::default()
            )
            .unwrap_err(),
            ExecError::MalformedPlan
        );
    }
}
