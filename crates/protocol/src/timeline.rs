//! Action/time diagrams (the paper's Figures 1–2).
//!
//! [`fig1_stages`] reproduces the seven-stage pipeline of Figure 1 for a
//! single remote computer; [`gantt_rows`] groups an execution's trace into
//! per-entity rows ready for rendering (the ASCII renderer lives in
//! `hetero-experiments`).

use hetero_core::Params;
use hetero_sim::Span;

use crate::exec::{channel_entity, Execution, SERVER};

/// One stage of the Figure 1 pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct Stage {
    /// Stage label, matching the paper's notation.
    pub label: &'static str,
    /// Stage duration for `w` units of work.
    pub duration: f64,
}

/// The Figure 1 stage durations for sharing `w` units with a single
/// remote computer of speed `rho`:
/// `π0·w | τ·w | πi·w | ρi·w | πi·δ·w | τ·δ·w | π0·δ·w`
/// (with the architectural-balance convention `π_i = π·ρ_i`, `π_0 = π`).
pub fn fig1_stages(params: &Params, rho: f64, w: f64) -> Vec<Stage> {
    let (pi, tau, delta) = (params.pi(), params.tau(), params.delta());
    vec![
        Stage {
            label: "π0·w (server packages)",
            duration: pi * w,
        },
        Stage {
            label: "τ·w (work transits)",
            duration: tau * w,
        },
        Stage {
            label: "πi·w (worker unpackages)",
            duration: pi * rho * w,
        },
        Stage {
            label: "ρi·w (worker computes)",
            duration: rho * w,
        },
        Stage {
            label: "πi·δw (worker packages)",
            duration: pi * rho * delta * w,
        },
        Stage {
            label: "τ·δw (results transit)",
            duration: tau * delta * w,
        },
        Stage {
            label: "π0·δw (server unpackages)",
            duration: pi * delta * w,
        },
    ]
}

/// A named row of spans for Gantt rendering.
#[derive(Debug, Clone)]
pub struct GanttRow {
    /// Row heading (`C0`, `C1`, …, `net`).
    pub name: String,
    /// The row's spans in start order.
    pub spans: Vec<Span>,
}

/// Groups an execution's trace into rows: server, workers 1…n, network.
pub fn gantt_rows(run: &Execution, n: usize) -> Vec<GanttRow> {
    let name_of = move |entity: usize| -> String {
        if entity == SERVER {
            "C0".to_string()
        } else if entity == channel_entity(n) {
            "net".to_string()
        } else {
            format!("C{entity}")
        }
    };
    let mut rows: Vec<GanttRow> = (0..=n + 1)
        .map(|e| GanttRow {
            name: name_of(e),
            spans: Vec::new(),
        })
        .collect();
    for span in run.trace.spans() {
        rows[span.entity].spans.push(span.clone());
    }
    for row in &mut rows {
        row.spans.sort_by_key(|s| s.start);
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::fifo_plan;
    use crate::exec::execute;
    use hetero_core::Profile;

    #[test]
    fn fig1_stage_sum_is_the_end_to_end_latency() {
        let p = Params::paper_table1();
        let (rho, w) = (0.5, 20.0);
        let stages = fig1_stages(&p, rho, w);
        assert_eq!(stages.len(), 7);
        let total: f64 = stages.iter().map(|s| s.duration).sum();
        // π·w + τ·w + Bρ·w + τδ·w + πδ·w.
        let expect = p.a() * w + p.b() * rho * w + p.tau_delta() * w + p.pi() * p.delta() * w;
        assert!((total - expect).abs() < 1e-12);
    }

    #[test]
    fn fig1_compute_stage_dominates_for_coarse_tasks() {
        let p = Params::paper_table1();
        let stages = fig1_stages(&p, 1.0, 1.0);
        let compute = stages
            .iter()
            .find(|s| s.label.contains("computes"))
            .unwrap();
        for s in &stages {
            if s.label != compute.label {
                assert!(compute.duration > 100.0 * s.duration, "{}", s.label);
            }
        }
    }

    #[test]
    fn gantt_rows_cover_every_span() {
        let p = Params::paper_table1();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let plan = fifo_plan(&p, &profile, 100.0).unwrap();
        let run = execute(&p, &profile, &plan);
        let rows = gantt_rows(&run, 3);
        assert_eq!(rows.len(), 5); // C0, C1..C3, net
        assert_eq!(rows[0].name, "C0");
        assert_eq!(rows[4].name, "net");
        let total: usize = rows.iter().map(|r| r.spans.len()).sum();
        assert_eq!(total, run.trace.spans().len());
        for row in &rows {
            for pair in row.spans.windows(2) {
                assert!(pair[0].start <= pair[1].start, "rows sorted by start");
            }
        }
    }
}
