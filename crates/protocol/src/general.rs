//! General worksharing protocols: independent startup and finishing
//! orders.
//!
//! The paper's protocols (§2.2) are parameterized by a startup indexing Σ
//! (who receives work when) *and* a finishing indexing Φ (who returns
//! results when); FIFO is the special case Σ = Φ, and Theorem 1 states
//! FIFO is optimal. This module makes that claim *observable* by
//! constructing the gap-free schedule for **any** (Σ, Φ) pair:
//!
//! * sends are back-to-back in Σ order;
//! * result transmissions are back-to-back in Φ order, each starting the
//!   instant its worker finishes packaging;
//! * the last results finish transiting exactly at the lifespan `L`.
//!
//! These tightness conditions are an `n × n` linear system in the
//! allocations `w` (solved with `hetero-linalg`); orders whose system has
//! no positive solution cannot run gap-free and are reported
//! [`ProtocolError::InfeasibleOrders`]. Sweeping all (Σ, Φ) pairs shows
//! every feasible non-FIFO pair completes strictly less work — Theorem 1
//! in action (see the tests and `hetero-experiments`).

use hetero_core::{Params, Profile};
use hetero_linalg::{lu_solve, Matrix};

use crate::alloc::{is_permutation, Plan};
use crate::ProtocolError;

/// Builds the gap-free plan for startup order `startup` and finishing
/// order `finishing` over `lifespan`.
///
/// Returns [`ProtocolError::InfeasibleOrders`] when the orders admit no
/// gap-free schedule (some allocation would have to be negative), and
/// [`ProtocolError::InvalidOrder`] for malformed permutations.
pub fn general_plan(
    params: &Params,
    profile: &Profile,
    startup: &[usize],
    finishing: &[usize],
    lifespan: f64,
) -> Result<Plan, ProtocolError> {
    if !(lifespan.is_finite() && lifespan > 0.0) {
        return Err(ProtocolError::InvalidLifespan { lifespan });
    }
    let n = profile.n();
    if !is_permutation(startup, n) || !is_permutation(finishing, n) {
        return Err(ProtocolError::InvalidOrder);
    }
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());

    // Position of each computer in the startup order.
    let mut pos_in_startup = vec![0usize; n];
    for (p, &i) in startup.iter().enumerate() {
        pos_in_startup[i] = p;
    }

    // ready(i) = Σ_{q ≤ posΣ(i)} A·w_{s_q} + Bρ_i·w_i, as a coefficient
    // row over the unknowns w_0..w_{n−1} (indexed by computer).
    let ready_row = |i: usize| -> Vec<f64> {
        let mut row = vec![0.0; n];
        for &j in &startup[..=pos_in_startup[i]] {
            row[j] += a;
        }
        row[i] += b * profile.rho(i);
        row
    };

    // n equations: (n−1) chaining equations + the lifespan equation.
    let mut rows: Vec<Vec<f64>> = Vec::with_capacity(n);
    let mut rhs = vec![0.0; n];
    for k in 1..n {
        // ready(f_k) − ready(f_{k−1}) − τδ·w_{f_{k−1}} = 0.
        let mut row = ready_row(finishing[k]);
        for (c, p) in row.iter_mut().zip(ready_row(finishing[k - 1])) {
            // hetero-check: allow(float-accum) — elementwise row difference in pinned column order while assembling the linear system
            *c -= p;
        }
        // hetero-check: allow(float-accum) — single coefficient adjustment, not an accumulation chain
        row[finishing[k - 1]] -= td;
        rows.push(row);
    }
    // ready(f_n) + τδ·w_{f_n} = L.
    let mut last = ready_row(finishing[n - 1]);
    last[finishing[n - 1]] += td;
    rows.push(last);
    rhs[n - 1] = lifespan;

    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let matrix = Matrix::from_rows(&row_refs);
    let w_by_computer = lu_solve(&matrix, &rhs).map_err(|_| ProtocolError::InfeasibleOrders)?;

    // Gap-free schedules require strictly positive allocations.
    if w_by_computer.iter().any(|&w| !(w.is_finite() && w > 0.0)) {
        return Err(ProtocolError::InfeasibleOrders);
    }

    // ... and the first results transmission must not collide with the
    // tail of the work sends: ready(f₁) ≥ S_n (cf. `alloc::fifo_feasible`,
    // which is this check specialized to Σ = Φ).
    // hetero-check: allow(float-accum) — feasibility check over the solver's fixed output order; not part of the returned plan
    let total: f64 = w_by_computer.iter().sum();
    let send_end = a * total;
    let f1 = finishing[0];
    // hetero-check: allow(float-accum) — prefix sum over the fixed startup order; mirrors alloc::fifo_feasible exactly
    let ready_f1: f64 = startup[..=pos_in_startup[f1]]
        .iter()
        .map(|&j| a * w_by_computer[j])
        .sum::<f64>()
        + b * profile.rho(f1) * w_by_computer[f1];
    if ready_f1 < send_end * (1.0 - 1e-12) {
        return Err(ProtocolError::InfeasibleOrders);
    }

    Ok(Plan {
        order: startup.to_vec(),
        work: startup.iter().map(|&i| w_by_computer[i]).collect(),
        lifespan,
    })
}

/// The LIFO plan: work served in the given order, results returned in the
/// *reverse* order (the first-served computer reports last). Uses the
/// identity startup order.
pub fn lifo_plan(params: &Params, profile: &Profile, lifespan: f64) -> Result<Plan, ProtocolError> {
    let startup: Vec<usize> = (0..profile.n()).collect();
    let finishing: Vec<usize> = (0..profile.n()).rev().collect();
    general_plan(params, profile, &startup, &finishing, lifespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{fifo_plan, fifo_plan_ordered};
    use crate::exec::execute;
    use crate::validate::validate;

    fn params() -> Params {
        Params::paper_table1()
    }

    /// All permutations of 0..n (n small).
    fn permutations(n: usize) -> Vec<Vec<usize>> {
        if n == 1 {
            return vec![vec![0]];
        }
        let mut out = Vec::new();
        for p in permutations(n - 1) {
            for slot in 0..=p.len() {
                let mut q = p.clone();
                q.insert(slot, n - 1);
                out.push(q);
            }
        }
        out
    }

    #[test]
    fn coincident_orders_reproduce_the_fifo_closed_form() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap();
        for order in permutations(4) {
            let via_system = general_plan(&p, &profile, &order, &order, 600.0).unwrap();
            let via_closed = fifo_plan_ordered(&p, &profile, &order, 600.0).unwrap();
            assert_eq!(via_system.order, via_closed.order);
            for (a, b) in via_system.work.iter().zip(&via_closed.work) {
                assert!((a - b).abs() / b < 1e-9, "{order:?}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn theorem1_fifo_is_optimal_over_all_order_pairs() {
        // Exhaustive over (Σ, Φ) for a 3-computer cluster: the maximum
        // work production is attained exactly by the coincident pairs.
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let lifespan = 300.0;
        let fifo_work = fifo_plan(&p, &profile, lifespan).unwrap().total_work();
        let perms = permutations(3);
        let mut feasible = 0;
        for s in &perms {
            for f in &perms {
                match general_plan(&p, &profile, s, f, lifespan) {
                    Ok(plan) => {
                        feasible += 1;
                        let w = plan.total_work();
                        if s == f {
                            assert!((w - fifo_work).abs() / fifo_work < 1e-9);
                        } else {
                            assert!(
                                w < fifo_work * (1.0 + 1e-12),
                                "Σ={s:?} Φ={f:?}: {w} vs FIFO {fifo_work}"
                            );
                        }
                    }
                    Err(ProtocolError::InfeasibleOrders) => {}
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        assert!(
            feasible >= perms.len(),
            "at least the FIFO pairs are feasible"
        );
    }

    #[test]
    fn lifo_executes_validly_but_underperforms() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap();
        let lifespan = 500.0;
        let lifo = lifo_plan(&p, &profile, lifespan).unwrap();
        let fifo = fifo_plan(&p, &profile, lifespan).unwrap();
        assert!(lifo.total_work() < fifo.total_work());

        // The LIFO schedule really runs: all invariants hold and the whole
        // lifespan is used.
        let run = execute(&p, &profile, &lifo);
        assert!(validate(&p, &profile, &run).is_empty());
        let last = run.last_arrival().unwrap().get();
        assert!((last - lifespan).abs() / lifespan < 1e-9);
        // And results really return in reverse startup order.
        let arrivals = &run.arrivals;
        for k in 1..arrivals.len() {
            assert!(
                arrivals[k] < arrivals[k - 1],
                "LIFO: later-served returns earlier"
            );
        }
    }

    #[test]
    fn communication_bound_regimes_are_rejected_consistently() {
        // Under the Figure 3/4 parameters with two 1000×-faster
        // computers, A·X(P) > 1: the server cannot feed the cluster, so
        // the paper's gap-free schedules do not exist for *any* (Σ, Φ).
        // Both entry points must refuse rather than emit schedules whose
        // results silently overrun the lifespan (which is what the naive
        // closed form would produce — our simulator caught exactly that).
        let p = Params::fig34();
        let profile = Profile::new(vec![1.0, 0.9, 1e-3, 1e-3]).unwrap();
        assert!(!crate::alloc::fifo_feasible(&p, &profile));
        assert!(matches!(
            fifo_plan(&p, &profile, 100.0),
            Err(ProtocolError::CommunicationBound { .. })
        ));
        // Every *coincident* (FIFO) pair must be rejected — consistently
        // with `fifo_plan`. Some non-FIFO pairs remain feasible: a
        // finishing order that starts with a slow computer naturally waits
        // out the send tail. Those schedules must actually run cleanly.
        let perms = permutations(4);
        let mut feasible_nonfifo = 0usize;
        for s in &perms {
            for f in &perms {
                match general_plan(&p, &profile, s, f, 100.0) {
                    Err(ProtocolError::InfeasibleOrders) => {}
                    Ok(plan) => {
                        assert_ne!(s, f, "FIFO pairs are communication-bound here");
                        feasible_nonfifo += 1;
                        let run = execute(&p, &profile, &plan);
                        assert!(validate(&p, &profile, &run).is_empty());
                        let last = run.last_arrival().unwrap().get();
                        assert!((last - 100.0).abs() < 1e-6, "uses the lifespan: {last}");
                    }
                    Err(e) => panic!("unexpected error {e}"),
                }
            }
        }
        for s in &perms {
            assert!(
                matches!(
                    general_plan(&p, &profile, s, s, 100.0),
                    Err(ProtocolError::InfeasibleOrders)
                ),
                "coincident pair {s:?}"
            );
        }
        assert!(feasible_nonfifo > 0, "some slow-first orders survive");

        // The same profile under µs-scale Table 1 parameters is deep in
        // the computation-dominated regime: every order pair is feasible.
        let easy = params();
        assert!(crate::alloc::fifo_feasible(&easy, &profile));
        for s in &perms {
            for f in &perms {
                assert!(general_plan(&easy, &profile, s, f, 100.0).is_ok());
            }
        }
    }

    #[test]
    fn malformed_orders_rejected() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        assert!(matches!(
            general_plan(&p, &profile, &[0, 0], &[0, 1], 10.0),
            Err(ProtocolError::InvalidOrder)
        ));
        assert!(matches!(
            general_plan(&p, &profile, &[0, 1], &[1], 10.0),
            Err(ProtocolError::InvalidOrder)
        ));
        assert!(matches!(
            general_plan(&p, &profile, &[0, 1], &[0, 1], -5.0),
            Err(ProtocolError::InvalidLifespan { .. })
        ));
    }

    #[test]
    fn single_computer_general_equals_fifo() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let g = general_plan(&p, &profile, &[0], &[0], 50.0).unwrap();
        let f = fifo_plan(&p, &profile, 50.0).unwrap();
        assert!((g.total_work() - f.total_work()).abs() / f.total_work() < 1e-12);
    }
}
