//! Discrete-event execution of worksharing plans under injected faults.
//!
//! [`execute_with_faults`] is a superset of [`crate::exec::execute`]: it
//! replays the same protocol on the same engine, but consults a
//! [`FaultPlan`] at every event boundary and compiles its specs into the
//! schedule:
//!
//! * **Crash** — the worker dies at `t_c`. A package whose *result
//!   packaging* has not completed by then (`t_c < pack_end`) is lost:
//!   its phase spans are truncated at `t_c` with a `†crash` marker and
//!   no results ever arrive. Results packaged strictly before the crash
//!   persist and still transit (the network, not the worker, carries
//!   them) — but a crashed worker cannot *re*-transmit a lost message.
//!   The executor itself stays oblivious: the server keeps sending to
//!   crashed workers exactly as planned (reacting is the job of
//!   [`crate::replan`]).
//! * **Slowdown** — each worker phase whose start falls inside the
//!   window takes `factor` times as long.
//! * **Channel jitter** — each network transit whose (queue-adjusted)
//!   start falls inside the window takes `factor` times as long.
//! * **Result loss** — the first `count` result messages from a worker
//!   occupy the channel, then vanish; the worker retransmits from its
//!   stored package immediately on discovery.
//!
//! Every fault query is `Option`-shaped and every perturbation multiplies
//! only when a fault is *active*, so executing an **empty** plan performs
//! the exact float-operation sequence of the pristine executor — the
//! result is bit-identical, which `tests/fault_recovery.rs` pins.
//!
//! Fault-perturbed durations are arbitrary products, so this path uses
//! the fallible engine API throughout ([`UnitResource::try_acquire`],
//! [`SimTime::try_add`], [`Trace::try_record`]) and surfaces failures as
//! typed [`ExecError`]s instead of panicking.
//!
//! [`UnitResource::try_acquire`]: hetero_sim::UnitResource::try_acquire
//! [`SimTime::try_add`]: hetero_sim::SimTime::try_add
//! [`Trace::try_record`]: hetero_sim::Trace::try_record

use std::fmt;

use hetero_core::{Params, Profile};
use hetero_faults::FaultPlan;
use hetero_sim::{
    BackwardsSpan, EventQueue, GrantError, NonFiniteTime, SimTime, Trace, UnitResource,
};

use crate::alloc::Plan;
use crate::exec::{channel_entity, worker_entity, SERVER};

/// Why a faulted execution could not run to completion.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecError {
    /// The plan's order is not a permutation of the profile's indices.
    MalformedPlan,
    /// A fault-perturbed occupancy was rejected by a resource.
    Grant(GrantError),
    /// A fault-perturbed schedule left the finite clock range.
    Time(NonFiniteTime),
    /// A fault-perturbed span ended before it started.
    Span(BackwardsSpan),
    /// The replanner's suffix re-solve was rejected by the model layer
    /// (e.g. a slowdown factor drove an effective ρ out of range).
    Model(hetero_core::ModelError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MalformedPlan => {
                write!(f, "plan order must be a permutation of the profile indices")
            }
            ExecError::Grant(e) => write!(f, "resource grant failed: {e}"),
            ExecError::Time(e) => write!(f, "schedule overflowed the clock: {e}"),
            ExecError::Span(e) => write!(f, "trace rejected a span: {e}"),
            ExecError::Model(e) => write!(f, "suffix re-solve rejected: {e}"),
        }
    }
}

impl std::error::Error for ExecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ExecError::MalformedPlan => None,
            ExecError::Grant(e) => Some(e),
            ExecError::Time(e) => Some(e),
            ExecError::Span(e) => Some(e),
            ExecError::Model(e) => Some(e),
        }
    }
}

impl From<hetero_core::ModelError> for ExecError {
    fn from(e: hetero_core::ModelError) -> Self {
        ExecError::Model(e)
    }
}

impl From<GrantError> for ExecError {
    fn from(e: GrantError) -> Self {
        ExecError::Grant(e)
    }
}

impl From<NonFiniteTime> for ExecError {
    fn from(e: NonFiniteTime) -> Self {
        ExecError::Time(e)
    }
}

impl From<BackwardsSpan> for ExecError {
    fn from(e: BackwardsSpan) -> Self {
        ExecError::Span(e)
    }
}

/// The faulted protocol's events, keyed by startup position. As in the
/// pristine executor, each event carries the span id that caused it so
/// the trace records the causality DAG — retransmissions chain off the
/// lost transit, making recovery paths visible in the span tree.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Server starts packaging the work for `pos`.
    StartSend { pos: usize, cause: Option<usize> },
    /// Work for `pos` finished its network transit; worker begins.
    WorkArrived { pos: usize, cause: usize },
    /// Worker at `pos` has packaged results ready to transmit (initial
    /// send and retransmissions alike).
    ResultsReady { pos: usize, cause: usize },
    /// A result transit for `pos` ended — delivered, or vanished.
    TransitDone {
        pos: usize,
        lost: bool,
        cause: usize,
    },
}

struct FExecState<'f> {
    params: Params,
    rhos: Vec<f64>, // by position
    work: Vec<f64>, // by position
    order: Vec<usize>,
    server: UnitResource,
    channel: UnitResource,
    trace: Trace,
    arrivals: Vec<Option<SimTime>>, // by position; None = results never returned
    faults: &'f FaultPlan,
    crash_by_pos: Vec<Option<f64>>, // earliest crash of the worker at each position
    losses_left: Vec<u32>,          // result messages still to lose, by position
    realized_service: Vec<f64>,     // actual worker busy time, by position
    lost_messages: u32,
    retransmits: u32,
    error: Option<ExecError>,
}

/// The outcome of a faulted execution: the trace plus the fault ledger.
#[derive(Debug, Clone)]
pub struct FaultedExecution {
    /// Action/time record of every entity (crash-truncated phases carry a
    /// `†crash` label suffix; lost transits a `†lost` one).
    pub trace: Trace,
    /// When each position's results finished transiting back to the
    /// server, by startup position — `None` when the fault plan destroyed
    /// them (crash before packaging, or an unretransmittable loss).
    pub arrivals: Vec<Option<SimTime>>,
    /// The executed plan.
    pub plan: Plan,
    /// Realized worker busy time per position — the fault-inflated
    /// (slowdowns) or crash-truncated time actually spent serving the
    /// package, against which the planned `Bρw` can be compared.
    pub realized_service: Vec<f64>,
    /// Result messages that vanished in transit.
    pub lost_messages: u32,
    /// Retransmissions performed to recover lost messages.
    pub retransmits: u32,
}

impl FaultedExecution {
    /// The latest result arrival among positions that returned at all.
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.arrivals.iter().flatten().copied().max()
    }

    /// Total work units whose results made it back to the server — the
    /// paper's completion criterion applied to the surviving positions.
    pub fn salvaged_work(&self) -> f64 {
        self.arrivals
            .iter()
            .zip(&self.plan.work)
            .filter(|(arr, _)| arr.is_some())
            .map(|(_, w)| w)
            .sum()
    }

    /// Total work units whose results the fault plan destroyed.
    pub fn lost_work(&self) -> f64 {
        self.plan.total_work() - self.salvaged_work()
    }

    /// Work units whose results had arrived by time `t` (same boundary
    /// tolerance as [`Execution::work_completed_by`]).
    ///
    /// [`Execution::work_completed_by`]: crate::exec::Execution::work_completed_by
    pub fn work_completed_by(&self, t: f64) -> f64 {
        let cutoff = t * (1.0 + 1e-9);
        // hetero-check: allow(float-accum) — same fixed worker order as Execution::work_completed_by; the two must agree bit-for-bit
        self.arrivals
            .iter()
            .zip(&self.plan.work)
            .filter_map(|(arr, w)| arr.filter(|a| a.get() <= cutoff).map(|_| w))
            .sum()
    }

    /// `true` when some results arrived *after* the lifespan — late work
    /// the paper's completion criterion refuses to count. Destroyed
    /// results are lost throughput, not a deadline miss; the distinction
    /// keeps the two sweep metrics (throughput, miss rate) independent.
    pub fn missed_deadline(&self, lifespan: f64) -> bool {
        let cutoff = lifespan * (1.0 + 1e-9);
        self.arrivals.iter().flatten().any(|arr| arr.get() > cutoff)
    }

    /// The end of the last recorded activity.
    pub fn makespan(&self) -> SimTime {
        self.trace.makespan()
    }
}

/// Executes `plan` on `profile` while injecting `faults`.
///
/// With an empty fault plan this is bit-identical to
/// [`crate::exec::execute`] (every arrival `Some`, every span equal);
/// with faults it records what actually happened — truncated phases,
/// inflated service times, lost and retransmitted messages — without ever
/// reacting to them. The adaptive counterpart lives in [`crate::replan`].
pub fn execute_with_faults(
    params: &Params,
    profile: &Profile,
    plan: &Plan,
    faults: &FaultPlan,
) -> Result<FaultedExecution, ExecError> {
    if !crate::alloc::is_permutation(&plan.order, profile.n()) {
        return Err(ExecError::MalformedPlan);
    }
    let n = profile.n();
    let mut state = FExecState {
        params: *params,
        rhos: plan.order.iter().map(|&i| profile.rho(i)).collect(),
        work: plan.work.clone(),
        order: plan.order.clone(),
        server: UnitResource::new(),
        channel: UnitResource::new(),
        trace: Trace::new(),
        arrivals: vec![None; n],
        faults,
        crash_by_pos: plan.order.iter().map(|&i| faults.crash_time(i)).collect(),
        losses_left: plan
            .order
            .iter()
            .map(|&i| faults.result_losses(i))
            .collect(),
        realized_service: vec![0.0; n],
        lost_messages: 0,
        retransmits: 0,
        error: None,
    };
    // Crash markers: one zero-width span per doomed worker, recorded up
    // front so traces show the fault plan even for positions whose work
    // never reaches the worker.
    for pos in 0..n {
        if let Some(tc) = state.crash_by_pos[pos] {
            let at = SimTime::try_new(tc)?;
            let ent = worker_entity(state.order[pos]);
            state.trace.try_record(ent, "†crash", at, at)?;
        }
    }
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule_at(
        SimTime::ZERO,
        Event::StartSend {
            pos: 0,
            cause: None,
        },
    );

    hetero_sim::run(&mut state, &mut queue, |st, q, now, ev| {
        if st.error.is_some() {
            return;
        }
        if let Err(e) = handle_event(st, q, now, ev) {
            st.error = Some(e);
        }
    });
    if let Some(e) = state.error.take() {
        return Err(e);
    }

    if hetero_obs::enabled() {
        hetero_obs::count("sim.events", queue.dispatched());
        hetero_obs::gauge_max("sim.queue_high_water", queue.high_water() as u64);
        if !faults.is_empty() {
            hetero_obs::counters::FAULTS_INJECTED.add(faults.specs().len() as u64);
            hetero_obs::counters::FAULTS_LOST_MESSAGES.add(u64::from(state.lost_messages));
        }
    }

    Ok(FaultedExecution {
        trace: state.trace,
        arrivals: state.arrivals,
        plan: plan.clone(),
        realized_service: state.realized_service,
        lost_messages: state.lost_messages,
        retransmits: state.retransmits,
    })
}

/// Scales a nominal worker-phase duration by whatever slowdown windows
/// are active at its start; the fault-free path returns `base` untouched
/// (no multiplication — bit-identity with the pristine executor).
fn scaled_phase(st: &FExecState<'_>, target: usize, start: SimTime, base: f64) -> f64 {
    match st.faults.slowdown_factor(target, start.get()) {
        Some(f) => f * base,
        None => base,
    }
}

/// Acquires the channel for a transit of nominal length `base`,
/// stretching it by any jitter window active at the transit's actual
/// (queue-adjusted) start.
fn jittered_transit(
    st: &mut FExecState<'_>,
    ready: SimTime,
    base: f64,
) -> Result<hetero_sim::Grant, ExecError> {
    let prospective = ready.max(st.channel.next_free());
    let dur = match st.faults.channel_factor(prospective.get()) {
        Some(f) => f * base,
        None => base,
    };
    Ok(st.channel.try_acquire(ready, dur)?)
}

fn handle_event(
    st: &mut FExecState<'_>,
    q: &mut EventQueue<Event>,
    now: SimTime,
    ev: Event,
) -> Result<(), ExecError> {
    let (pi, tau, delta) = (st.params.pi(), st.params.tau(), st.params.delta());
    match ev {
        Event::StartSend { pos, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            // Oblivious by construction: the server packages and sends to
            // `target` even if it has already crashed — it has no way to
            // know. Skipping doomed sends is the replanner's edge.
            let pack = st.server.try_acquire(now, pi * w)?;
            let pack_id = st.trace.try_record_caused(
                SERVER,
                format!("pack→C{}", target + 1),
                pack.start,
                pack.end,
                cause,
            )?;
            let transit = jittered_transit(st, pack.end, tau * w)?;
            let xmit_id = st.trace.try_record_caused(
                channel_entity(st.order.len()),
                format!("xmit:work:C{}", target + 1),
                transit.start,
                transit.end,
                Some(pack_id),
            )?;
            q.schedule_at(
                transit.end,
                Event::WorkArrived {
                    pos,
                    cause: xmit_id,
                },
            );
            if pos + 1 < st.order.len() {
                q.schedule_at(
                    transit.end,
                    Event::StartSend {
                        pos: pos + 1,
                        cause: Some(xmit_id),
                    },
                );
            }
        }
        Event::WorkArrived { pos, cause } => {
            let w = st.work[pos];
            let rho = st.rhos[pos];
            let target = st.order[pos];
            let ent = worker_entity(target);
            let crash = st.crash_by_pos[pos];
            // The worker's three back-to-back phases, each stretched by
            // whatever slowdown windows cover its start, each truncated
            // by a crash. Results persist only once packaging completes.
            let phases = [
                ("unpack", pi * rho * w),
                ("compute", rho * w),
                ("pack", pi * rho * delta * w),
            ];
            let mut t = now;
            let mut died = false;
            let mut prev = cause;
            for (label, base) in phases {
                let end = t.try_add(scaled_phase(st, target, t, base))?;
                if let Some(tc) = crash {
                    if tc < end.get() {
                        let cut = SimTime::try_new(tc)?;
                        if cut > t {
                            st.trace.try_record_caused(
                                ent,
                                format!("{label}†crash"),
                                t,
                                cut,
                                Some(prev),
                            )?;
                            st.realized_service[pos] += cut - t;
                        }
                        died = true;
                        break;
                    }
                }
                prev = st.trace.try_record_caused(ent, label, t, end, Some(prev))?;
                st.realized_service[pos] += end - t;
                t = end;
            }
            if !died {
                q.schedule_at(t, Event::ResultsReady { pos, cause: prev });
            }
        }
        Event::ResultsReady { pos, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            let transit = jittered_transit(st, now, tau * delta * w)?;
            let wait_threshold = 1e-9 * (1.0 + now.get().abs());
            let mut xmit_cause = cause;
            if transit.start - now > wait_threshold {
                xmit_cause = st.trace.try_record_caused(
                    worker_entity(target),
                    "wait:channel",
                    now,
                    transit.start,
                    Some(cause),
                )?;
            }
            // Whether *this* transmission vanishes is decided at send
            // time: the worker's first `losses_left` messages are doomed.
            let lost = st.losses_left[pos] > 0;
            let label = if lost {
                st.losses_left[pos] -= 1;
                format!("xmit:result:C{}†lost", target + 1)
            } else {
                format!("xmit:result:C{}", target + 1)
            };
            let xmit_id = st.trace.try_record_caused(
                channel_entity(st.order.len()),
                label,
                transit.start,
                transit.end,
                Some(xmit_cause),
            )?;
            q.schedule_at(
                transit.end,
                Event::TransitDone {
                    pos,
                    lost,
                    cause: xmit_id,
                },
            );
        }
        Event::TransitDone { pos, lost, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            if lost {
                st.lost_messages += 1;
                // The package is stored at the worker, so a live worker
                // retransmits the moment the loss is discovered; a crashed
                // one cannot, and the results are gone for good. The
                // retransmission chains off the lost transit, so recovery
                // shows up as a longer causal path through `†lost`.
                let alive = st.crash_by_pos[pos].is_none_or(|tc| tc > now.get());
                if alive {
                    st.retransmits += 1;
                    q.schedule_at(now, Event::ResultsReady { pos, cause });
                }
            } else {
                st.arrivals[pos] = Some(now);
                let unpack = st.server.try_acquire(now, pi * delta * w)?;
                st.trace.try_record_caused(
                    SERVER,
                    format!("recv←C{}", target + 1),
                    unpack.start,
                    unpack.end,
                    Some(cause),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::fifo_plan;
    use crate::exec::execute;
    use hetero_faults::FaultSpec;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn empty_plan_reproduces_the_pristine_execution() {
        let p = params();
        let profile = Profile::harmonic(5);
        let plan = fifo_plan(&p, &profile, 700.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        let faulted = execute_with_faults(&p, &profile, &plan, &FaultPlan::empty()).unwrap();
        assert_eq!(faulted.trace.spans(), pristine.trace.spans());
        let arrivals: Vec<SimTime> = faulted.arrivals.iter().map(|a| a.unwrap()).collect();
        assert_eq!(arrivals, pristine.arrivals);
        assert_eq!(faulted.lost_messages, 0);
        assert_eq!(faulted.retransmits, 0);
        assert!((faulted.salvaged_work() - plan.total_work()).abs() < 1e-12);
        assert_eq!(faulted.lost_work(), 0.0);
        assert!(!faulted.missed_deadline(700.0));
    }

    #[test]
    fn early_crash_destroys_the_package_and_marks_the_trace() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = fifo_plan(&p, &profile, 400.0).unwrap();
        // Crash worker 0 before its work even arrives.
        let faults = FaultPlan::new(vec![FaultSpec::Crash {
            worker: 0,
            at: 1e-6,
        }])
        .unwrap();
        let run = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert_eq!(run.arrivals[0], None);
        assert!(run.arrivals[1].is_some());
        assert_eq!(run.realized_service[0], 0.0);
        assert!((run.lost_work() - plan.work[0]).abs() < 1e-12);
        assert!(run
            .trace
            .spans()
            .iter()
            .any(|s| s.label == "†crash" && s.entity == crate::exec::worker_entity(0)));
        // No worker phase spans for the dead worker beyond the marker.
        assert!(!run
            .trace
            .spans()
            .iter()
            .any(|s| s.entity == crate::exec::worker_entity(0) && s.label == "compute"));
    }

    #[test]
    fn mid_phase_crash_truncates_and_loses_only_that_position() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = fifo_plan(&p, &profile, 400.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        // Crash worker 0 in the middle of its compute phase.
        let compute = pristine
            .trace
            .spans()
            .iter()
            .find(|s| s.entity == crate::exec::worker_entity(0) && s.label == "compute")
            .unwrap();
        let tc = 0.5 * (compute.start.get() + compute.end.get());
        let faults = FaultPlan::new(vec![FaultSpec::Crash { worker: 0, at: tc }]).unwrap();
        let run = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert_eq!(run.arrivals[0], None);
        let cut = run
            .trace
            .spans()
            .iter()
            .find(|s| s.label == "compute†crash")
            .unwrap();
        assert_eq!(cut.end.get(), tc);
        // Realized service = full unpack + the truncated compute slice.
        let unpack = pristine
            .trace
            .spans()
            .iter()
            .find(|s| s.entity == crate::exec::worker_entity(0) && s.label == "unpack")
            .unwrap();
        let expect = unpack.duration() + (tc - compute.start.get());
        assert!((run.realized_service[0] - expect).abs() < 1e-9);
        // The surviving worker is untouched.
        assert_eq!(run.arrivals[1], pristine.arrivals.get(1).copied());
    }

    #[test]
    fn post_packaging_crash_still_delivers_results() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &profile, 300.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        let pack_end = pristine
            .trace
            .spans()
            .iter()
            .find(|s| s.label == "pack")
            .unwrap()
            .end;
        // Crash exactly at packaging completion: the loss window is
        // [0, pack_end), so the results persist and transit normally.
        let faults = FaultPlan::new(vec![FaultSpec::Crash {
            worker: 0,
            at: pack_end.get(),
        }])
        .unwrap();
        let run = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert_eq!(run.arrivals[0], Some(pristine.arrivals[0]));
    }

    #[test]
    fn slowdown_inflates_service_and_delays_the_arrival() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = fifo_plan(&p, &profile, 400.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        // The window must cover the *inflated* schedule too: phases of a
        // 3x-slowed worker start well past the original lifespan.
        let faults = FaultPlan::new(vec![FaultSpec::Slowdown {
            worker: 1,
            factor: 3.0,
            from: 0.0,
            until: 1e6,
        }])
        .unwrap();
        let run = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        // Worker 1 (position 1) took 3x its planned service time.
        let planned = p.b() * profile.rho(1) * plan.work[1];
        assert!((run.realized_service[1] - 3.0 * planned).abs() / planned < 1e-9);
        assert!(run.arrivals[1].unwrap() > pristine.arrivals[1]);
        assert!(run.missed_deadline(400.0));
        // Worker 0's own phases are unaffected (though its result transit
        // may queue behind the straggler's).
        assert!((run.realized_service[0] - p.b() * profile.rho(0) * plan.work[0]).abs() < 1e-9);
    }

    #[test]
    fn channel_jitter_stretches_covered_transits() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &profile, 300.0).unwrap();
        // Cover the whole run: every transit is doubled.
        let faults = FaultPlan::new(vec![FaultSpec::ChannelJitter {
            factor: 2.0,
            from: 0.0,
            until: 1e6,
        }])
        .unwrap();
        let run = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        let w = plan.work[0];
        let xmit_work = run
            .trace
            .spans()
            .iter()
            .find(|s| s.label.starts_with("xmit:work"))
            .unwrap();
        assert!((xmit_work.duration() - 2.0 * p.tau() * w).abs() < 1e-12);
        let xmit_result = run
            .trace
            .spans()
            .iter()
            .find(|s| s.label.starts_with("xmit:result"))
            .unwrap();
        assert!((xmit_result.duration() - 2.0 * p.tau() * p.delta() * w).abs() < 1e-12);
    }

    #[test]
    fn lost_results_are_retransmitted_by_live_workers() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &profile, 300.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        let faults = FaultPlan::new(vec![FaultSpec::ResultLoss {
            worker: 0,
            count: 2,
        }])
        .unwrap();
        let run = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert_eq!(run.lost_messages, 2);
        assert_eq!(run.retransmits, 2);
        // Two extra transits of τδw each push the arrival back exactly.
        let extra = 2.0 * p.tau() * p.delta() * plan.work[0];
        let expect = pristine.arrivals[0].get() + extra;
        assert!((run.arrivals[0].unwrap().get() - expect).abs() < 1e-9);
        assert_eq!(
            run.trace
                .spans()
                .iter()
                .filter(|s| s.label.ends_with("†lost"))
                .count(),
            2
        );
    }

    #[test]
    fn a_crashed_worker_cannot_retransmit() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &profile, 300.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        // Crash after packaging (results persist, first transit happens)
        // but before the loss is discovered: no retransmission possible.
        let pack_end = pristine
            .trace
            .spans()
            .iter()
            .find(|s| s.label == "pack")
            .unwrap()
            .end;
        let faults = FaultPlan::new(vec![
            FaultSpec::Crash {
                worker: 0,
                at: pack_end.get(),
            },
            FaultSpec::ResultLoss {
                worker: 0,
                count: 1,
            },
        ])
        .unwrap();
        let run = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert_eq!(run.lost_messages, 1);
        assert_eq!(run.retransmits, 0);
        assert_eq!(run.arrivals[0], None);
        assert_eq!(run.salvaged_work(), 0.0);
    }

    #[test]
    fn malformed_plan_is_a_typed_error() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = Plan {
            order: vec![0, 0],
            work: vec![1.0, 1.0],
            lifespan: 10.0,
        };
        assert_eq!(
            execute_with_faults(&p, &profile, &plan, &FaultPlan::empty()).unwrap_err(),
            ExecError::MalformedPlan
        );
    }

    #[test]
    fn absurd_fault_factors_surface_grant_errors() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &profile, 300.0).unwrap();
        // Two overlapping maximal windows: their product overflows to
        // infinity, which the time arithmetic must reject, not absorb.
        let huge = FaultSpec::Slowdown {
            worker: 0,
            factor: f64::MAX,
            from: 0.0,
            until: 1e9,
        };
        let faults = FaultPlan::new(vec![huge, huge]).unwrap();
        let err = execute_with_faults(&p, &profile, &plan, &faults).unwrap_err();
        assert!(matches!(err, ExecError::Time(_) | ExecError::Grant(_)));
    }
}
