//! Suboptimal allocation baselines.
//!
//! Theorem 1 says FIFO protocols with the closed-form allocation are
//! *optimal*. To observe that claim (rather than assume it), these
//! baselines build plans from naive allocation policies and size them to
//! the same lifespan by bisection against the simulator:
//!
//! * [`equal_split_plan`] — every computer gets the same amount of work
//!   (ignores heterogeneity entirely);
//! * [`speed_proportional_plan`] — work proportional to `1/ρ` (the
//!   folk heuristic: feed computers in proportion to their speed, ignoring
//!   communication).
//!
//! Both complete strictly less work than the optimal FIFO plan on any
//! genuinely heterogeneous cluster, quantifying the value of the paper's
//! analysis.

use hetero_core::{Params, Profile};

use crate::alloc::Plan;
use crate::exec::execute;
use crate::ProtocolError;

/// Builds a plan with the given per-computer work *weights* (any positive
/// numbers; only ratios matter), scaled by bisection to the largest total
/// work whose execution completes within `lifespan`.
pub fn weighted_plan(
    params: &Params,
    profile: &Profile,
    weights: &[f64],
    lifespan: f64,
) -> Result<Plan, ProtocolError> {
    if !(lifespan.is_finite() && lifespan > 0.0) {
        return Err(ProtocolError::InvalidLifespan { lifespan });
    }
    if weights.len() != profile.n() || weights.iter().any(|&w| !(w.is_finite() && w > 0.0)) {
        return Err(ProtocolError::InvalidOrder);
    }
    let order: Vec<usize> = (0..profile.n()).collect();
    // hetero-check: allow(float-accum) — normalisation over the caller's fixed weight order; golden protocol tables pin it
    let weight_sum: f64 = weights.iter().sum();
    let unit: Vec<f64> = weights.iter().map(|w| w / weight_sum).collect();

    let completes_within = |total: f64| -> bool {
        let plan = Plan {
            order: order.clone(),
            work: unit.iter().map(|u| u * total).collect(),
            lifespan,
        };
        let run = execute(params, profile, &plan);
        // hetero-check: allow(expect) — weights.len() == profile.n() ≥ 1 was validated above, so the run is nonempty
        run.last_arrival().expect("nonempty plan").get() <= lifespan
    };

    // Bracket the feasible total: the arrival time is monotone increasing
    // in the total work, so plain bisection applies.
    let mut lo = 0.0f64;
    let mut hi = lifespan; // generous: ≥ 1 time unit per work unit overall
    while completes_within(hi) {
        hi *= 2.0;
    }
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if completes_within(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok(Plan {
        order,
        work: unit.iter().map(|u| u * lo).collect(),
        lifespan,
    })
}

/// Equal work for every computer, sized to the lifespan.
pub fn equal_split_plan(
    params: &Params,
    profile: &Profile,
    lifespan: f64,
) -> Result<Plan, ProtocolError> {
    weighted_plan(params, profile, &vec![1.0; profile.n()], lifespan)
}

/// Work proportional to computer speed (`1/ρ`), sized to the lifespan.
pub fn speed_proportional_plan(
    params: &Params,
    profile: &Profile,
    lifespan: f64,
) -> Result<Plan, ProtocolError> {
    let weights: Vec<f64> = profile.rhos().iter().map(|&r| 1.0 / r).collect();
    weighted_plan(params, profile, &weights, lifespan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::fifo_plan;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn baselines_fit_the_lifespan() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let lifespan = 200.0;
        for plan in [
            equal_split_plan(&p, &profile, lifespan).unwrap(),
            speed_proportional_plan(&p, &profile, lifespan).unwrap(),
        ] {
            let run = execute(&p, &profile, &plan);
            let last = run.last_arrival().unwrap().get();
            assert!(last <= lifespan * (1.0 + 1e-9), "{last}");
            // And the sizing is tight: within 0.1 % of the boundary.
            assert!(last >= lifespan * 0.999, "sizing not tight: {last}");
        }
    }

    #[test]
    fn theorem1_fifo_beats_baselines() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap();
        let lifespan = 500.0;
        let optimal = fifo_plan(&p, &profile, lifespan).unwrap().total_work();
        let equal = equal_split_plan(&p, &profile, lifespan)
            .unwrap()
            .total_work();
        let prop = speed_proportional_plan(&p, &profile, lifespan)
            .unwrap()
            .total_work();
        assert!(
            optimal > equal * 1.01,
            "optimal {optimal} should clearly beat equal split {equal}"
        );
        assert!(optimal > prop, "optimal {optimal} vs proportional {prop}");
        // Speed-proportional is the smarter heuristic of the two.
        assert!(prop > equal);
    }

    #[test]
    fn on_homogeneous_clusters_the_gap_nearly_closes() {
        // With identical computers, equal split ≈ optimal (they differ
        // only by the staggered communication slots).
        let p = params();
        let profile = Profile::homogeneous(4, 1.0).unwrap();
        let lifespan = 100.0;
        let optimal = fifo_plan(&p, &profile, lifespan).unwrap().total_work();
        let equal = equal_split_plan(&p, &profile, lifespan)
            .unwrap()
            .total_work();
        assert!(
            (optimal - equal).abs() / optimal < 1e-3,
            "{optimal} vs {equal}"
        );
    }

    #[test]
    fn weighted_plan_validates() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        assert!(weighted_plan(&p, &profile, &[1.0], 10.0).is_err());
        assert!(weighted_plan(&p, &profile, &[1.0, 0.0], 10.0).is_err());
        assert!(weighted_plan(&p, &profile, &[1.0, 1.0], -1.0).is_err());
    }
}
