//! Work allocation for FIFO worksharing protocols.
//!
//! ## Derivation (from the paper's §2.2–2.3 and [1])
//!
//! Fix a startup order `Σ = ⟨s_1,…,s_n⟩` and let `w_i` abbreviate
//! `w_{s_i}`, `ρ_i` abbreviate `ρ_{s_i}`. In the FIFO protocol with no
//! idle gaps:
//!
//! * the server's sends are back-to-back: send `i` ends at
//!   `S_i = (π+τ)(w_1 + … + w_i)`;
//! * worker `i`'s results are packaged and ready at
//!   `F_i = S_i + Bρ_i·w_i` (unpackage + compute + package);
//! * results transmissions are back-to-back and in the same order, each
//!   starting exactly when its worker finishes: `F_i = F_{i−1} + τδ·w_{i−1}`.
//!
//! Substituting gives the recurrence
//!
//! ```text
//! (A + Bρ_i)·w_i = (Bρ_{i−1} + τδ)·w_{i−1}
//! ```
//!
//! whose solution is `w_i = c·x_i` with `x_i` the `i`-th summand of the
//! X-measure. The lifespan condition — the last results finish transiting
//! at `L` — fixes `c = L/(1 + τδ·X(P))`, so the total completed work is
//!
//! ```text
//! W = c·X(P) = L / (1/X(P) + τδ)
//! ```
//!
//! — precisely Theorem 2. The identity `total_work ≡ W(L;P)` is asserted
//! in this module's tests, and the *executed* schedule is re-validated
//! event-by-event in [`crate::exec`].

use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::{Params, Profile};

use crate::ProtocolError;

/// A fully specified worksharing plan: who gets work in what order, and
/// how much.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Startup order: `order[pos]` is the profile index (0-based) of the
    /// computer served at position `pos`. FIFO protocols return results in
    /// the same order.
    pub order: Vec<usize>,
    /// Work allocated to each position (aligned with `order`), in work
    /// units.
    pub work: Vec<f64>,
    /// The lifespan the plan was sized for.
    pub lifespan: f64,
}

impl Plan {
    /// Total work across all computers.
    pub fn total_work(&self) -> f64 {
        self.work.iter().sum()
    }

    /// Work assigned to profile index `i` (0 if unassigned).
    pub fn work_for(&self, index: usize) -> f64 {
        self.order
            .iter()
            .position(|&o| o == index)
            .map_or(0.0, |pos| self.work[pos])
    }
}

/// Checks that `order` is a permutation of `0..n`.
pub fn is_permutation(order: &[usize], n: usize) -> bool {
    if order.len() != n {
        return false;
    }
    let mut seen = vec![false; n];
    for &o in order {
        if o >= n || seen[o] {
            return false;
        }
        seen[o] = true;
    }
    true
}

/// Whether the gap-free FIFO schedule exists for this cluster and
/// environment: **`A·X(P) ≤ 1`**.
///
/// Derivation: with allocations `w_i = c·x_i`, the first finisher's
/// results are ready at `F₁ = (A + Bρ_{s₁})·w₁ = c`, while the server's
/// sends occupy the channel until `S_n = A·ΣW = A·X(P)·c`. The FIFO
/// schedule (results chaining right behind the sends with no collisions)
/// therefore exists iff `A·X(P) ≤ 1` — i.e. iff the server can *feed* the
/// cluster faster than the cluster absorbs work. The paper's Theorem 2
/// implicitly assumes this computation-dominated regime; under its
/// Table 1 parameters `A·X < 10⁻⁴·n`, comfortably feasible for any
/// realistic size. The condition is order-independent (Theorem 1(2)).
pub fn fifo_feasible(params: &Params, profile: &Profile) -> bool {
    params.a() * x_measure_of_rhos(params, profile.rhos()) <= 1.0 + 1e-12
}

/// The optimal FIFO plan with the identity startup order `⟨0,1,…,n−1⟩`
/// (slowest computer served first; by Theorem 1(2) the order is
/// production-neutral).
pub fn fifo_plan(params: &Params, profile: &Profile, lifespan: f64) -> Result<Plan, ProtocolError> {
    let order: Vec<usize> = (0..profile.n()).collect();
    fifo_plan_ordered(params, profile, &order, lifespan)
}

/// The optimal FIFO plan under an explicit startup order.
pub fn fifo_plan_ordered(
    params: &Params,
    profile: &Profile,
    order: &[usize],
    lifespan: f64,
) -> Result<Plan, ProtocolError> {
    if !(lifespan.is_finite() && lifespan > 0.0) {
        return Err(ProtocolError::InvalidLifespan { lifespan });
    }
    if !is_permutation(order, profile.n()) {
        return Err(ProtocolError::InvalidOrder);
    }
    if !fifo_feasible(params, profile) {
        return Err(ProtocolError::CommunicationBound {
            a_times_x: params.a() * x_measure_of_rhos(params, profile.rhos()),
        });
    }
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let rhos: Vec<f64> = order.iter().map(|&i| profile.rho(i)).collect();

    // The X summands x_i = (1/(A+Bρ_i))·Π_{j<i}(Bρ_j+τδ)/(A+Bρ_j), and
    // the scale c = L/(1 + τδ·X).
    let x = x_measure_of_rhos(params, &rhos);
    let c = lifespan / (1.0 + td * x);
    let mut work = Vec::with_capacity(rhos.len());
    let mut product = 1.0f64;
    for &rho in &rhos {
        let denom = b * rho + a;
        work.push(c * product / denom);
        product *= (b * rho + td) / denom;
    }
    Ok(Plan {
        order: order.to_vec(),
        work,
        lifespan,
    })
}

/// The closed-form work total the plan must achieve (Theorem 2):
/// `W(L;P) = L / (τδ + 1/X(P))`.
pub fn theorem2_work(params: &Params, profile: &Profile, lifespan: f64) -> f64 {
    hetero_core::xmeasure::work(params, profile, lifespan)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn plan_rejects_bad_arguments() {
        let p = params();
        let c = Profile::new(vec![1.0, 0.5]).unwrap();
        assert!(matches!(
            fifo_plan(&p, &c, 0.0),
            Err(ProtocolError::InvalidLifespan { .. })
        ));
        assert!(matches!(
            fifo_plan(&p, &c, f64::INFINITY),
            Err(ProtocolError::InvalidLifespan { .. })
        ));
        assert!(matches!(
            fifo_plan_ordered(&p, &c, &[0, 0], 10.0),
            Err(ProtocolError::InvalidOrder)
        ));
        assert!(matches!(
            fifo_plan_ordered(&p, &c, &[0], 10.0),
            Err(ProtocolError::InvalidOrder)
        ));
        assert!(matches!(
            fifo_plan_ordered(&p, &c, &[0, 2], 10.0),
            Err(ProtocolError::InvalidOrder)
        ));
    }

    #[test]
    fn allocations_are_positive() {
        let p = params();
        let c = Profile::harmonic(6);
        let plan = fifo_plan(&p, &c, 1000.0).unwrap();
        for &w in &plan.work {
            assert!(w > 0.0);
        }
    }

    #[test]
    fn total_work_matches_theorem2_exactly() {
        let p = params();
        for profile in [
            Profile::new(vec![1.0]).unwrap(),
            Profile::new(vec![1.0, 0.5, 0.25]).unwrap(),
            Profile::uniform_spread(16),
            Profile::harmonic(9),
        ] {
            for lifespan in [1.0, 60.0, 86_400.0] {
                let plan = fifo_plan(&p, &profile, lifespan).unwrap();
                let closed = theorem2_work(&p, &profile, lifespan);
                assert!(
                    (plan.total_work() - closed).abs() / closed < 1e-12,
                    "n={} L={lifespan}: {} vs {closed}",
                    profile.n(),
                    plan.total_work()
                );
            }
        }
    }

    #[test]
    fn recurrence_holds_between_positions() {
        // (A + Bρ_i)·w_i = (Bρ_{i−1} + τδ)·w_{i−1}.
        let p = params();
        let c = Profile::new(vec![1.0, 0.7, 0.3, 0.1]).unwrap();
        let plan = fifo_plan(&p, &c, 500.0).unwrap();
        let (a, b, td) = (p.a(), p.b(), p.tau_delta());
        for i in 1..plan.work.len() {
            let lhs = (a + b * c.rho(plan.order[i])) * plan.work[i];
            let rhs = (b * c.rho(plan.order[i - 1]) + td) * plan.work[i - 1];
            assert!((lhs - rhs).abs() / rhs < 1e-12, "position {i}");
        }
    }

    #[test]
    fn total_work_is_order_invariant() {
        // Theorem 1(2) at the allocation level.
        let p = params();
        let c = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap();
        let orders: [&[usize]; 4] = [&[0, 1, 2, 3], &[3, 2, 1, 0], &[1, 3, 0, 2], &[2, 0, 3, 1]];
        let base = fifo_plan_ordered(&p, &c, orders[0], 777.0)
            .unwrap()
            .total_work();
        for order in &orders[1..] {
            let w = fifo_plan_ordered(&p, &c, order, 777.0)
                .unwrap()
                .total_work();
            assert!((w - base).abs() / base < 1e-12, "order {order:?}");
        }
    }

    #[test]
    fn faster_computers_get_more_work() {
        // Under FIFO the faster computer receives strictly more work
        // whenever B ≫ A (our regimes): its summand has the smaller
        // denominator and the products differ negligibly.
        let p = params();
        let c = Profile::new(vec![1.0, 0.25]).unwrap();
        let plan = fifo_plan(&p, &c, 100.0).unwrap();
        assert!(plan.work_for(1) > plan.work_for(0));
    }

    #[test]
    fn work_for_unknown_index_is_zero() {
        let p = params();
        let c = Profile::new(vec![1.0]).unwrap();
        let plan = fifo_plan(&p, &c, 10.0).unwrap();
        assert_eq!(plan.work_for(5), 0.0);
    }

    #[test]
    fn work_scales_linearly_with_lifespan() {
        let p = params();
        let c = Profile::harmonic(4);
        let w1 = fifo_plan(&p, &c, 100.0).unwrap().total_work();
        let w2 = fifo_plan(&p, &c, 300.0).unwrap().total_work();
        assert!((w2 - 3.0 * w1).abs() / w2 < 1e-12);
    }

    #[test]
    fn permutation_checker() {
        assert!(is_permutation(&[2, 0, 1], 3));
        assert!(!is_permutation(&[0, 1], 3));
        assert!(!is_permutation(&[0, 1, 1], 3));
        assert!(!is_permutation(&[0, 1, 3], 3));
        assert!(is_permutation(&[], 0));
    }
}
