//! Protocol-invariant validation.
//!
//! An [`Execution`](crate::exec::Execution) is checked against the model's
//! ground rules:
//!
//! 1. **single message in transit** — no two network spans overlap;
//! 2. **serial entities** — the server and each worker do one thing at a
//!    time;
//! 3. **lifespan** — every result arrives by `L`;
//! 4. **conservation** — every position's work appears as exactly one
//!    unpack/compute/pack triple of the right durations.

use hetero_core::{Params, Profile};

use crate::exec::{channel_entity, Execution};

/// A violated protocol invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum Violation {
    /// Two messages were in transit simultaneously.
    ChannelConflict {
        /// Labels of the colliding spans.
        labels: (String, String),
    },
    /// An entity had two overlapping activities.
    EntityConflict {
        /// The busy entity.
        entity: usize,
    },
    /// A result arrived after the lifespan.
    LifespanExceeded {
        /// Startup position of the late result.
        position: usize,
        /// Its arrival time.
        arrival: f64,
    },
    /// A worker's compute span does not match `ρ·w`.
    WrongComputeTime {
        /// Profile index of the worker.
        index: usize,
    },
}

/// Runs every check; returns all violations (empty = valid).
pub fn validate(_params: &Params, profile: &Profile, run: &Execution) -> Vec<Violation> {
    let mut out = Vec::new();
    let chan = channel_entity(profile.n());

    // 1. Single message in transit.
    if let Some((a, b)) = run.trace.find_labelled_conflict(|l| l.starts_with("xmit:")) {
        out.push(Violation::ChannelConflict {
            labels: (a.label.clone(), b.label.clone()),
        });
    }

    // 2. Serial entities (the channel entity is covered by check 1).
    if let Some((a, _)) = run.trace.find_entity_conflict() {
        if a.entity != chan {
            out.push(Violation::EntityConflict { entity: a.entity });
        }
    }

    // 3. Lifespan.
    for (position, arrival) in run.arrivals.iter().enumerate() {
        if arrival.get() > run.plan.lifespan * (1.0 + 1e-9) {
            out.push(Violation::LifespanExceeded {
                position,
                arrival: arrival.get(),
            });
        }
    }

    // 4. Compute spans have duration ρ·w.
    for (pos, &index) in run.plan.order.iter().enumerate() {
        let expected = profile.rho(index) * run.plan.work[pos];
        let ok = run
            .trace
            .entity_spans(crate::exec::worker_entity(index))
            .filter(|s| s.label == "compute")
            .any(|s| (s.duration() - expected).abs() <= 1e-9 * expected.max(1.0));
        if !ok {
            out.push(Violation::WrongComputeTime { index });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::fifo_plan;
    use crate::baseline::equal_split_plan;
    use crate::exec::execute;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn optimal_executions_are_valid() {
        let p = params();
        for profile in [
            Profile::new(vec![1.0]).unwrap(),
            Profile::harmonic(6),
            Profile::uniform_spread(10),
        ] {
            let plan = fifo_plan(&p, &profile, 400.0).unwrap();
            let run = execute(&p, &profile, &plan);
            assert_eq!(validate(&p, &profile, &run), vec![], "n = {}", profile.n());
        }
    }

    #[test]
    fn baseline_executions_are_valid_too() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let plan = equal_split_plan(&p, &profile, 300.0).unwrap();
        let run = execute(&p, &profile, &plan);
        assert_eq!(validate(&p, &profile, &run), vec![]);
    }

    #[test]
    fn oversized_plan_is_flagged() {
        // Hand-build a plan that cannot finish by its claimed lifespan.
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let mut plan = fifo_plan(&p, &profile, 100.0).unwrap();
        plan.lifespan = 50.0; // lie about the lifespan
        let run = execute(&p, &profile, &plan);
        let violations = validate(&p, &profile, &run);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::LifespanExceeded { .. })));
    }

    #[test]
    fn channel_conflicts_would_be_caught() {
        // Sanity for the checker itself: a doctored trace trips it.
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = fifo_plan(&p, &profile, 100.0).unwrap();
        let mut run = execute(&p, &profile, &plan);
        let chan = channel_entity(2);
        let t0 = hetero_sim::SimTime::ZERO;
        let t1 = hetero_sim::SimTime::new(run.plan.lifespan);
        run.trace.record(chan, "xmit:rogue", t0, t1);
        let violations = validate(&p, &profile, &run);
        assert!(violations
            .iter()
            .any(|v| matches!(v, Violation::ChannelConflict { .. })));
    }
}
