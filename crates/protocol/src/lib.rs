//! # hetero-protocol — worksharing protocols for the CEP
//!
//! The paper's Cluster-Exploitation Problem (§1.2): a server `C0` must
//! complete as many units of work as possible on cluster `C` within a
//! lifespan of `L` time units, where a unit is complete once its results
//! are back at `C0`, and **at most one intercomputer message is in transit
//! at a time**. This crate turns the paper's protocol description (§2.2,
//! Figures 1–2) into executable artifacts:
//!
//! * [`alloc`] — the optimal FIFO work allocation in closed form, derived
//!   from the no-gap conditions (`(A + Bρ_{s_i})·w_{s_i} =
//!   (Bρ_{s_{i−1}} + τδ)·w_{s_{i−1}}`), whose total reproduces Theorem 2's
//!   `W(L;P) = L/(τδ + 1/X(P))` *identically*, not just asymptotically.
//! * [`exec`] — a discrete-event execution of any plan on the
//!   `hetero-sim` engine, producing a full action/time [`Trace`] with the
//!   server, every worker, and the network as separate entities.
//! * [`baseline`] — suboptimal allocations (equal split,
//!   speed-proportional) sized to the same lifespan by bisection against
//!   the simulator, so Theorem 1's optimality claim can be *observed*.
//! * [`validate`] — checks that executions respect the protocol's
//!   invariants (single message in transit, serial entities, completion
//!   within the lifespan).
//!
//! ```
//! use hetero_core::{Params, Profile};
//! use hetero_protocol::{alloc, exec};
//!
//! let params = Params::paper_table1();
//! let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
//! let plan = alloc::fifo_plan(&params, &profile, 3600.0).unwrap();
//! let run = exec::execute(&params, &profile, &plan);
//! // Everything arrives by the lifespan, and the completed work matches
//! // the Theorem 2 closed form.
//! assert!(run.last_arrival().unwrap().get() <= 3600.0 * (1.0 + 1e-12));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alloc;
pub mod baseline;
pub mod coded;
pub mod exchange;
pub mod exec;
pub mod fault_exec;
pub mod general;
pub mod integral;
pub mod rental;
pub mod replan;
pub mod timeline;
pub mod validate;

mod error;

pub use coded::{CodedExecution, CodedPlan, DecodeFailed};
pub use error::ProtocolError;
pub use exchange::{ExchangeExecution, ExchangePolicy};
pub use fault_exec::{ExecError, FaultedExecution};
pub use hetero_sim::{Span, Trace};
