//! Work exchange: peer-to-peer residual-load transfer on straggler
//! detection.
//!
//! The fourth protocol family follows the work-exchange discipline of
//! Attia & Tandon (arXiv:1711.08452): instead of the *server* resizing
//! future packages (adaptive replanning) or coding redundancy in up
//! front (MDS), the *workers* trade load — a detected straggler keeps
//! only the slice it can still finish on schedule and ships the residual
//! to a healthy peer as a package of its own, through the same
//! single-message-in-transit channel every other message fights for.
//!
//! Mapped onto Rosenberg–Chiang's CEP model:
//!
//! * **Detection** — the server's failure detector runs at send
//!   boundaries with exactly [`crate::replan`]'s granularity and rules
//!   (crashes by `t_c ≤ now`, stragglers by an active slowdown window
//!   rescaling the effective ρ). The exchange family piggy-backs the
//!   verdicts onto the work package: a worker that learns it is running
//!   `f×` slow keeps `w/f` — the slice whose inflated compute time
//!   `ρ·(w/f)·f = ρw` still lands on the planned schedule — and
//!   re-packages the residual `w − w/f` for its donor.
//! * **Transfer** — the residual is a real DES citizen: an `xpack→C*`
//!   packaging phase on the straggler (crash-truncatable), an
//!   `xmit:xchg:C*→C*` transit occupying the shared channel (jitter
//!   applies), then the donor's own unpack/compute/pack at *its* ρ,
//!   serialized after whatever the donor was already obligated to do.
//!   Exchange rounds are bounded by [`ExchangePolicy::max_rounds`] and
//!   each position trades at most once.
//! * **Degradation** — when a straggler finds no donor (every peer is
//!   itself straggling, crashed, or there is no peer at all) the run
//!   degrades gracefully: the whole execution is replayed under
//!   [`crate::replan::execute_adaptive`] with
//!   [`ExchangePolicy::fallback`], and the result reports
//!   [`ExchangeExecution::degraded`].
//!
//! Conservation invariant: every exchange splits `w` into `w/f` and
//! `w − w/f` exactly, so retained + transferred work equals the planned
//! allocation to the last bit — `tests/protocol_families.rs` checks the
//! ledger against the exact `Ratio` oracle.
//!
//! With an empty fault plan nothing is ever detected, no exchange fires,
//! and the trace is bit-identical to the pristine executor's.

use hetero_core::{Params, Profile};
use hetero_faults::FaultPlan;
use hetero_sim::{EventQueue, SimTime, Trace, UnitResource};

use crate::alloc::Plan;
use crate::exec::{channel_entity, worker_entity, SERVER};
use crate::fault_exec::ExecError;
use crate::replan::{execute_adaptive, AdaptiveExecution, HedgePolicy};

/// How the exchange family trades and when it gives up.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExchangePolicy {
    /// Total residual transfers the run may perform; once exhausted,
    /// later stragglers just run slow. Bounds the recovery traffic a
    /// fault storm can inject into the shared channel.
    pub max_rounds: u32,
    /// The adaptive policy used when the run degrades (a straggler with
    /// no available donor).
    pub fallback: HedgePolicy,
}

impl Default for ExchangePolicy {
    fn default() -> Self {
        ExchangePolicy {
            max_rounds: 4,
            fallback: HedgePolicy::default(),
        }
    }
}

/// One residual-load transfer, as recorded in the exchange ledger.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exchange {
    /// Straggler's startup position (the load's planned owner).
    pub from: usize,
    /// Donor's startup position (who actually computed it).
    pub to: usize,
    /// Work units transferred.
    pub work: f64,
    /// When the residual's results reached the server (`None` = a later
    /// fault destroyed the parcel en route or at the donor).
    pub arrival: Option<SimTime>,
}

/// The outcome of a work-exchange execution.
#[derive(Debug, Clone)]
pub struct ExchangeExecution {
    /// Action/time record. Exchange traffic appears as `xpack→C*` on
    /// the straggler, `xmit:xchg:C*→C*` on the channel, the donor's
    /// second unpack/compute/pack block, and `recv←C*·xchg` on the
    /// server. When the run degraded this is the adaptive trace.
    pub trace: Trace,
    /// Result arrival of each position's *retained* share (`None` =
    /// destroyed).
    pub arrivals: Vec<Option<SimTime>>,
    /// The original plan the run started from.
    pub plan: Plan,
    /// Post-exchange retained share per position (`= plan.work` for
    /// positions that never traded).
    pub final_work: Vec<f64>,
    /// The transfer ledger, in trigger order.
    pub exchanges: Vec<Exchange>,
    /// Result messages lost in transit.
    pub lost_messages: u32,
    /// Retransmissions performed to recover lost messages.
    pub retransmits: u32,
    /// Present when the run degraded to adaptive replanning (a
    /// straggler found no donor); all accounting methods delegate to it.
    pub fallback: Option<Box<AdaptiveExecution>>,
}

impl ExchangeExecution {
    /// `true` when the run fell back to adaptive replanning.
    pub fn degraded(&self) -> bool {
        self.fallback.is_some()
    }

    /// Work units (retained + exchanged) whose results were back by `t`.
    pub fn work_completed_by(&self, t: f64) -> f64 {
        if let Some(fb) = &self.fallback {
            return fb.work_completed_by(t);
        }
        let cutoff = t * (1.0 + 1e-9);
        // hetero-check: allow(float-accum) — fixed position order, mirrors Execution::work_completed_by bit-for-bit
        let retained: f64 = self
            .arrivals
            .iter()
            .zip(&self.final_work)
            .filter_map(|(arr, w)| arr.filter(|a| a.get() <= cutoff).map(|_| w))
            .sum();
        // hetero-check: allow(float-accum) — ledger is in deterministic trigger order
        let traded: f64 = self
            .exchanges
            .iter()
            .filter_map(|x| x.arrival.filter(|a| a.get() <= cutoff).map(|_| x.work))
            .sum();
        retained + traded
    }

    /// Total work whose results returned at all.
    pub fn salvaged_work(&self) -> f64 {
        if let Some(fb) = &self.fallback {
            return fb.salvaged_work();
        }
        let retained: f64 = self
            .arrivals
            .iter()
            .zip(&self.final_work)
            .filter(|(arr, _)| arr.is_some())
            .map(|(_, w)| w)
            .sum();
        let traded: f64 = self
            .exchanges
            .iter()
            .filter(|x| x.arrival.is_some())
            .map(|x| x.work)
            .sum();
        retained + traded
    }

    /// `true` when any result — retained or exchanged — arrived after
    /// the lifespan.
    pub fn missed_deadline(&self, lifespan: f64) -> bool {
        if let Some(fb) = &self.fallback {
            return fb.missed_deadline(lifespan);
        }
        let cutoff = lifespan * (1.0 + 1e-9);
        self.arrivals
            .iter()
            .flatten()
            .chain(self.exchanges.iter().filter_map(|x| x.arrival.as_ref()))
            .any(|arr| arr.get() > cutoff)
    }

    /// The latest arrival among everything that returned.
    pub fn last_arrival(&self) -> Option<SimTime> {
        if let Some(fb) = &self.fallback {
            return fb.last_arrival();
        }
        self.arrivals
            .iter()
            .flatten()
            .chain(self.exchanges.iter().filter_map(|x| x.arrival.as_ref()))
            .copied()
            .max()
    }

    /// The end of the last recorded activity.
    pub fn makespan(&self) -> SimTime {
        self.trace.makespan()
    }
}

/// The exchange protocol's events: the oblivious executor's four, plus
/// the parcel lifecycle (`id` indexes the transfer ledger).
#[derive(Debug, Clone, Copy)]
enum Event {
    StartSend {
        pos: usize,
        cause: Option<usize>,
    },
    WorkArrived {
        pos: usize,
        cause: usize,
    },
    ResultsReady {
        pos: usize,
        cause: usize,
    },
    TransitDone {
        pos: usize,
        lost: bool,
        cause: usize,
    },
    /// A residual parcel finished its peer-to-peer transit.
    ParcelArrived {
        id: usize,
        cause: usize,
    },
    /// The donor packaged the parcel's results.
    ParcelReady {
        id: usize,
        cause: usize,
    },
    /// A parcel-result transit ended — delivered, or vanished.
    ParcelDone {
        id: usize,
        lost: bool,
        cause: usize,
    },
}

struct XState<'f> {
    params: Params,
    // Per position:
    order: Vec<usize>,
    work: Vec<f64>, // retained share (shrinks when a position trades)
    rhos: Vec<f64>,
    eff_rhos: Vec<f64>,
    known_crashed: Vec<bool>,
    detected_slow: Vec<bool>,
    exchanged: Vec<bool>,
    done: Vec<bool>, // own three phases completed (donor preference)
    crash_by_pos: Vec<Option<f64>>,
    arrivals: Vec<Option<SimTime>>,
    // Per worker (profile index):
    losses_left: Vec<u32>,
    worker_free: Vec<SimTime>, // serialization horizon for parcel phases
    // Engine state:
    server: UnitResource,
    channel: UnitResource,
    trace: Trace,
    faults: &'f FaultPlan,
    parcels: Vec<Exchange>,
    rounds_left: u32,
    lost_messages: u32,
    retransmits: u32,
    no_donor: bool,
    error: Option<ExecError>,
}

/// Executes `plan` under `faults` with peer-to-peer work exchange.
///
/// See the module docs for the trade rules. With an empty fault plan the
/// result is bit-identical to the pristine executor; when a straggler
/// finds no donor the run degrades to [`execute_adaptive`] under
/// `policy.fallback`.
pub fn execute_exchange(
    params: &Params,
    profile: &Profile,
    plan: &Plan,
    faults: &FaultPlan,
    policy: &ExchangePolicy,
) -> Result<ExchangeExecution, ExecError> {
    if !crate::alloc::is_permutation(&plan.order, profile.n()) {
        return Err(ExecError::MalformedPlan);
    }
    let n = profile.n();
    let mut state = XState {
        params: *params,
        order: plan.order.clone(),
        work: plan.work.clone(),
        rhos: plan.order.iter().map(|&i| profile.rho(i)).collect(),
        eff_rhos: plan.order.iter().map(|&i| profile.rho(i)).collect(),
        known_crashed: vec![false; n],
        detected_slow: vec![false; n],
        exchanged: vec![false; n],
        done: vec![false; n],
        crash_by_pos: plan.order.iter().map(|&i| faults.crash_time(i)).collect(),
        arrivals: vec![None; n],
        losses_left: (0..n).map(|i| faults.result_losses(i)).collect(),
        worker_free: vec![SimTime::ZERO; n],
        server: UnitResource::new(),
        channel: UnitResource::new(),
        trace: Trace::new(),
        faults,
        parcels: Vec::new(),
        rounds_left: policy.max_rounds,
        lost_messages: 0,
        retransmits: 0,
        no_donor: false,
        error: None,
    };
    for pos in 0..n {
        if let Some(tc) = state.crash_by_pos[pos] {
            let at = SimTime::try_new(tc)?;
            let ent = worker_entity(state.order[pos]);
            state.trace.try_record(ent, "†crash", at, at)?;
        }
    }
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule_at(
        SimTime::ZERO,
        Event::StartSend {
            pos: 0,
            cause: None,
        },
    );

    hetero_sim::run(&mut state, &mut queue, |st, q, now, ev| {
        if st.error.is_some() || st.no_donor {
            return;
        }
        if let Err(e) = handle_event(st, q, now, ev) {
            st.error = Some(e);
        }
    });
    if let Some(e) = state.error.take() {
        return Err(e);
    }

    if state.no_donor {
        // Graceful degradation: nobody can absorb the residual, so the
        // server-side replanner is strictly the better reaction. The
        // partial exchange trace is discarded and the run replayed.
        let fb = execute_adaptive(params, profile, plan, faults, &policy.fallback)?;
        if hetero_obs::enabled() {
            hetero_obs::counters::PROTOCOL_EXCHANGE_DEGRADED.bump();
        }
        return Ok(ExchangeExecution {
            trace: fb.trace.clone(),
            arrivals: fb.arrivals.clone(),
            plan: plan.clone(),
            final_work: fb.final_work.clone(),
            exchanges: Vec::new(),
            lost_messages: fb.lost_messages,
            retransmits: fb.retransmits,
            fallback: Some(Box::new(fb)),
        });
    }

    if hetero_obs::enabled() {
        crate::exec::observe_trace(
            &state.trace,
            &state.server,
            &state.channel,
            queue.dispatched(),
            queue.high_water(),
            n,
        );
        hetero_obs::counters::PROTOCOL_EXCHANGE_TRANSFERS.add(state.parcels.len() as u64);
        for parcel in &state.parcels {
            hetero_obs::observe("protocol.exchange.transfer_work", parcel.work);
        }
        if !faults.is_empty() {
            hetero_obs::counters::FAULTS_INJECTED.add(faults.specs().len() as u64);
            hetero_obs::counters::FAULTS_LOST_MESSAGES.add(u64::from(state.lost_messages));
        }
    }

    Ok(ExchangeExecution {
        trace: state.trace,
        arrivals: state.arrivals,
        plan: plan.clone(),
        final_work: state.work,
        exchanges: state.parcels,
        lost_messages: state.lost_messages,
        retransmits: state.retransmits,
        fallback: None,
    })
}

/// Boundary-time failure detection over the unsent positions `pos..` —
/// [`crate::replan`]'s detector verbatim: same granularity, same rules.
fn detect(st: &mut XState<'_>, pos: usize, now: SimTime) {
    for j in pos..st.order.len() {
        if !st.known_crashed[j] {
            if let Some(tc) = st.crash_by_pos[j] {
                if tc <= now.get() {
                    st.known_crashed[j] = true;
                }
            }
        }
        if !st.detected_slow[j] {
            if let Some(f) = st.faults.slowdown_factor(st.order[j], now.get()) {
                st.eff_rhos[j] = st.rhos[j] * f;
                st.detected_slow[j] = true;
            }
        }
    }
}

/// Picks the donor for a straggler at `straggler`: the fastest peer not
/// known-crashed and not itself straggling, preferring peers whose own
/// obligations already completed (trading onto a still-loaded peer only
/// queues the parcel behind them). Ties break to the lowest position.
fn pick_donor(st: &XState<'_>, straggler: usize) -> Option<usize> {
    let candidate = |j: usize| {
        j != straggler && !st.known_crashed[j] && !st.detected_slow[j] && !st.exchanged[j]
    };
    let best_of = |only_done: bool| {
        let mut best: Option<usize> = None;
        for j in 0..st.order.len() {
            if !candidate(j) || (only_done && !st.done[j]) {
                continue;
            }
            best = match best {
                Some(b) if st.eff_rhos[j] >= st.eff_rhos[b] => Some(b),
                _ => Some(j),
            };
        }
        best
    };
    best_of(true).or_else(|| best_of(false))
}

/// One crash-truncatable, slowdown-stretchable worker phase. Returns
/// `true` when the worker died mid-phase (the caller abandons the rest
/// of its sequence).
#[allow(clippy::too_many_arguments)]
fn worker_phase(
    st: &mut XState<'_>,
    ent: usize,
    target: usize,
    crash: Option<f64>,
    label: &str,
    base: f64,
    t: &mut SimTime,
    prev: &mut usize,
) -> Result<bool, ExecError> {
    let dur = match st.faults.slowdown_factor(target, t.get()) {
        Some(f) => f * base,
        None => base,
    };
    let end = t.try_add(dur)?;
    if let Some(tc) = crash {
        if tc < end.get() {
            let cut = SimTime::try_new(tc)?;
            if cut > *t {
                st.trace
                    .try_record_caused(ent, format!("{label}†crash"), *t, cut, Some(*prev))?;
            }
            return Ok(true);
        }
    }
    *prev = st
        .trace
        .try_record_caused(ent, label, *t, end, Some(*prev))?;
    *t = end;
    Ok(false)
}

/// Acquires the channel for a transit of nominal length `base`,
/// stretched by any jitter window active at its queue-adjusted start.
fn jittered_transit(
    st: &mut XState<'_>,
    ready: SimTime,
    base: f64,
) -> Result<hetero_sim::Grant, ExecError> {
    let prospective = ready.max(st.channel.next_free());
    let dur = match st.faults.channel_factor(prospective.get()) {
        Some(f) => f * base,
        None => base,
    };
    Ok(st.channel.try_acquire(ready, dur)?)
}

fn handle_event(
    st: &mut XState<'_>,
    q: &mut EventQueue<Event>,
    now: SimTime,
    ev: Event,
) -> Result<(), ExecError> {
    let (pi, tau, delta) = (st.params.pi(), st.params.tau(), st.params.delta());
    let n = st.order.len();
    match ev {
        Event::StartSend { pos, cause } => {
            // Detection happens here, at the send boundary; the verdict
            // travels with the package and is acted on at arrival. The
            // send itself stays oblivious — the exchange family reacts
            // worker-side, not server-side.
            detect(st, pos, now);
            let w = st.work[pos];
            let target = st.order[pos];
            let pack = st.server.try_acquire(now, pi * w)?;
            let pack_id = st.trace.try_record_caused(
                SERVER,
                format!("pack→C{}", target + 1),
                pack.start,
                pack.end,
                cause,
            )?;
            let transit = jittered_transit(st, pack.end, tau * w)?;
            let xmit_id = st.trace.try_record_caused(
                channel_entity(n),
                format!("xmit:work:C{}", target + 1),
                transit.start,
                transit.end,
                Some(pack_id),
            )?;
            q.schedule_at(
                transit.end,
                Event::WorkArrived {
                    pos,
                    cause: xmit_id,
                },
            );
            if pos + 1 < n {
                q.schedule_at(
                    transit.end,
                    Event::StartSend {
                        pos: pos + 1,
                        cause: Some(xmit_id),
                    },
                );
            }
        }
        Event::WorkArrived { pos, cause } => {
            let w_in = st.work[pos];
            let rho = st.rhos[pos];
            let target = st.order[pos];
            let ent = worker_entity(target);
            let crash = st.crash_by_pos[pos];
            // Trade decision: a detected straggler keeps the slice that
            // still fits its planned schedule and ships the rest.
            let mut parcel: Option<(usize, usize)> = None; // (ledger id, donor pos)
            if st.detected_slow[pos] && !st.exchanged[pos] && st.rounds_left > 0 {
                let f = st.eff_rhos[pos] / st.rhos[pos];
                let keep = w_in / f;
                let residual = w_in - keep;
                if residual > 0.0 {
                    match pick_donor(st, pos) {
                        Some(d) => {
                            st.rounds_left -= 1;
                            st.exchanged[pos] = true;
                            st.work[pos] = keep;
                            let id = st.parcels.len();
                            st.parcels.push(Exchange {
                                from: pos,
                                to: d,
                                work: residual,
                                arrival: None,
                            });
                            parcel = Some((id, d));
                        }
                        None => {
                            // Nobody can take the load: degrade the
                            // whole run to adaptive replanning.
                            st.no_donor = true;
                            return Ok(());
                        }
                    }
                }
            }
            let mut t = now.max(st.worker_free[target]);
            let mut prev = cause;
            let mut died = worker_phase(
                st,
                ent,
                target,
                crash,
                "unpack",
                pi * rho * w_in,
                &mut t,
                &mut prev,
            )?;
            if !died {
                if let Some((id, d)) = parcel {
                    // Residual re-packaging and peer-to-peer transit:
                    // a work-shaped package (δ does not apply — this is
                    // input, not results) at the straggler's speed.
                    let residual = st.parcels[id].work;
                    let donor_target = st.order[d];
                    let label = format!("xpack→C{}", donor_target + 1);
                    died = worker_phase(
                        st,
                        ent,
                        target,
                        crash,
                        &label,
                        pi * rho * residual,
                        &mut t,
                        &mut prev,
                    )?;
                    if !died {
                        let transit = jittered_transit(st, t, tau * residual)?;
                        let xmit_id = st.trace.try_record_caused(
                            channel_entity(n),
                            format!("xmit:xchg:C{}→C{}", target + 1, donor_target + 1),
                            transit.start,
                            transit.end,
                            Some(prev),
                        )?;
                        q.schedule_at(transit.end, Event::ParcelArrived { id, cause: xmit_id });
                    }
                }
            }
            if !died {
                let keep = st.work[pos];
                died = worker_phase(
                    st,
                    ent,
                    target,
                    crash,
                    "compute",
                    rho * keep,
                    &mut t,
                    &mut prev,
                )?;
            }
            if !died {
                let keep = st.work[pos];
                died = worker_phase(
                    st,
                    ent,
                    target,
                    crash,
                    "pack",
                    pi * rho * delta * keep,
                    &mut t,
                    &mut prev,
                )?;
            }
            st.worker_free[target] = st.worker_free[target].max(t);
            if !died {
                st.done[pos] = true;
                q.schedule_at(t, Event::ResultsReady { pos, cause: prev });
            }
        }
        Event::ResultsReady { pos, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            let transit = jittered_transit(st, now, tau * delta * w)?;
            let wait_threshold = 1e-9 * (1.0 + now.get().abs());
            let mut xmit_cause = cause;
            if transit.start - now > wait_threshold {
                xmit_cause = st.trace.try_record_caused(
                    worker_entity(target),
                    "wait:channel",
                    now,
                    transit.start,
                    Some(cause),
                )?;
            }
            let lost = st.losses_left[target] > 0;
            let label = if lost {
                st.losses_left[target] -= 1;
                format!("xmit:result:C{}†lost", target + 1)
            } else {
                format!("xmit:result:C{}", target + 1)
            };
            let xmit_id = st.trace.try_record_caused(
                channel_entity(n),
                label,
                transit.start,
                transit.end,
                Some(xmit_cause),
            )?;
            q.schedule_at(
                transit.end,
                Event::TransitDone {
                    pos,
                    lost,
                    cause: xmit_id,
                },
            );
        }
        Event::TransitDone { pos, lost, cause } => {
            let w = st.work[pos];
            let target = st.order[pos];
            if lost {
                st.lost_messages += 1;
                let alive = st.crash_by_pos[pos].is_none_or(|tc| tc > now.get());
                if alive {
                    st.retransmits += 1;
                    q.schedule_at(now, Event::ResultsReady { pos, cause });
                }
            } else {
                st.arrivals[pos] = Some(now);
                let unpack = st.server.try_acquire(now, pi * delta * w)?;
                st.trace.try_record_caused(
                    SERVER,
                    format!("recv←C{}", target + 1),
                    unpack.start,
                    unpack.end,
                    Some(cause),
                )?;
            }
        }
        Event::ParcelArrived { id, cause } => {
            let Exchange { to: d, work: r, .. } = st.parcels[id];
            let donor_target = st.order[d];
            let ent = worker_entity(donor_target);
            let rho = st.rhos[d];
            let crash = st.crash_by_pos[d];
            // The donor serves the parcel after its own obligations —
            // one worker, one pipeline.
            let mut t = now.max(st.worker_free[donor_target]);
            let mut prev = cause;
            let mut died = false;
            for (label, base) in [
                ("unpack", pi * rho * r),
                ("compute", rho * r),
                ("pack", pi * rho * delta * r),
            ] {
                if worker_phase(st, ent, donor_target, crash, label, base, &mut t, &mut prev)? {
                    died = true;
                    break;
                }
            }
            st.worker_free[donor_target] = st.worker_free[donor_target].max(t);
            if !died {
                q.schedule_at(t, Event::ParcelReady { id, cause: prev });
            }
        }
        Event::ParcelReady { id, cause } => {
            let Exchange { to: d, work: r, .. } = st.parcels[id];
            let donor_target = st.order[d];
            let transit = jittered_transit(st, now, tau * delta * r)?;
            let wait_threshold = 1e-9 * (1.0 + now.get().abs());
            let mut xmit_cause = cause;
            if transit.start - now > wait_threshold {
                xmit_cause = st.trace.try_record_caused(
                    worker_entity(donor_target),
                    "wait:channel",
                    now,
                    transit.start,
                    Some(cause),
                )?;
            }
            let lost = st.losses_left[donor_target] > 0;
            let label = if lost {
                st.losses_left[donor_target] -= 1;
                format!("xmit:result:C{}†lost", donor_target + 1)
            } else {
                format!("xmit:result:C{}", donor_target + 1)
            };
            let xmit_id = st.trace.try_record_caused(
                channel_entity(n),
                label,
                transit.start,
                transit.end,
                Some(xmit_cause),
            )?;
            q.schedule_at(
                transit.end,
                Event::ParcelDone {
                    id,
                    lost,
                    cause: xmit_id,
                },
            );
        }
        Event::ParcelDone { id, lost, cause } => {
            let Exchange { to: d, work: r, .. } = st.parcels[id];
            let donor_target = st.order[d];
            if lost {
                st.lost_messages += 1;
                let alive = st.crash_by_pos[d].is_none_or(|tc| tc > now.get());
                if alive {
                    st.retransmits += 1;
                    q.schedule_at(now, Event::ParcelReady { id, cause });
                }
            } else {
                st.parcels[id].arrival = Some(now);
                let unpack = st.server.try_acquire(now, pi * delta * r)?;
                st.trace.try_record_caused(
                    SERVER,
                    format!("recv←C{}·xchg", donor_target + 1),
                    unpack.start,
                    unpack.end,
                    Some(cause),
                )?;
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::fifo_plan;
    use crate::exec::execute;
    use crate::fault_exec::execute_with_faults;
    use hetero_faults::FaultSpec;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn empty_plan_reproduces_the_pristine_execution() {
        let p = params();
        let profile = Profile::harmonic(5);
        let plan = fifo_plan(&p, &profile, 700.0).unwrap();
        let pristine = execute(&p, &profile, &plan);
        let run = execute_exchange(
            &p,
            &profile,
            &plan,
            &FaultPlan::empty(),
            &ExchangePolicy::default(),
        )
        .unwrap();
        assert!(!run.degraded());
        assert_eq!(run.trace.spans(), pristine.trace.spans());
        let arrivals: Vec<SimTime> = run.arrivals.iter().map(|a| a.unwrap()).collect();
        assert_eq!(arrivals, pristine.arrivals);
        assert!(run.exchanges.is_empty());
        assert_eq!(run.final_work, plan.work);
    }

    #[test]
    fn detected_straggler_trades_its_residual() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let lifespan = 500.0;
        let plan = fifo_plan(&p, &profile, lifespan).unwrap();
        let factor = 4.0;
        let faults = FaultPlan::new(vec![FaultSpec::Slowdown {
            worker: 1,
            factor,
            from: 0.0,
            until: 1e6,
        }])
        .unwrap();
        let run =
            execute_exchange(&p, &profile, &plan, &faults, &ExchangePolicy::default()).unwrap();
        assert!(!run.degraded());
        assert_eq!(run.exchanges.len(), 1);
        let x = &run.exchanges[0];
        // Worker 1 sits at position 1 (fifo keeps profile order).
        let pos = plan.order.iter().position(|&i| i == 1).unwrap();
        assert_eq!(x.from, pos);
        assert_ne!(x.to, pos);
        // Exact split: keep = w/f, residual = w − w/f.
        let w = plan.work[pos];
        assert_eq!(run.final_work[pos], w / factor);
        assert_eq!(x.work, w - w / factor);
        assert!(x.arrival.is_some(), "residual results returned");
        // The ledger conserves the plan: retained + traded = planned.
        let total: f64 =
            run.final_work.iter().sum::<f64>() + run.exchanges.iter().map(|x| x.work).sum::<f64>();
        assert!((total - plan.total_work()).abs() <= 1e-12 * plan.total_work());
        // The trace shows the transfer machinery.
        assert!(run
            .trace
            .spans()
            .iter()
            .any(|s| s.label.starts_with("xpack→")));
        assert!(run
            .trace
            .spans()
            .iter()
            .any(|s| s.label.starts_with("xmit:xchg:")));
        assert!(run
            .trace
            .spans()
            .iter()
            .any(|s| s.label.starts_with("recv←") && s.label.ends_with("·xchg")));
        // The trade pays in completion time: the oblivious executor
        // grinds the full package at 4x, while the exchange run finishes
        // the same total work strictly earlier (retained slice on the
        // planned schedule, residual at the donor's healthy speed).
        let oblivious = execute_with_faults(&p, &profile, &plan, &faults).unwrap();
        assert!(run.last_arrival().unwrap() < oblivious.last_arrival().unwrap());
        assert!(run.work_completed_by(lifespan) >= oblivious.work_completed_by(lifespan));
        assert!((run.salvaged_work() - plan.total_work()).abs() <= 1e-9 * plan.total_work());
    }

    #[test]
    fn straggler_without_donor_degrades_to_adaptive() {
        let p = params();
        // Single worker: a straggler can never find a peer.
        let profile = Profile::new(vec![1.0]).unwrap();
        let lifespan = 400.0;
        let plan = fifo_plan(&p, &profile, lifespan).unwrap();
        let faults = FaultPlan::new(vec![FaultSpec::Slowdown {
            worker: 0,
            factor: 3.0,
            from: 0.0,
            until: 1e6,
        }])
        .unwrap();
        let policy = ExchangePolicy {
            fallback: HedgePolicy {
                margin: 0.05,
                ..HedgePolicy::default()
            },
            ..ExchangePolicy::default()
        };
        let run = execute_exchange(&p, &profile, &plan, &faults, &policy).unwrap();
        assert!(run.degraded());
        assert!(run.exchanges.is_empty());
        let adaptive = execute_adaptive(&p, &profile, &plan, &faults, &policy.fallback).unwrap();
        assert_eq!(run.trace.spans(), adaptive.trace.spans());
        assert_eq!(
            run.work_completed_by(lifespan),
            adaptive.work_completed_by(lifespan)
        );
        assert_eq!(
            run.missed_deadline(lifespan),
            adaptive.missed_deadline(lifespan)
        );
    }

    #[test]
    fn rounds_budget_bounds_the_transfers() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.8, 0.6, 0.4]).unwrap();
        let plan = fifo_plan(&p, &profile, 500.0).unwrap();
        // Two chronic stragglers; a budget of one lets only the first
        // (earliest-arriving) trade — the second just runs slow.
        let faults = FaultPlan::new(vec![
            FaultSpec::Slowdown {
                worker: 0,
                factor: 3.0,
                from: 0.0,
                until: 1e6,
            },
            FaultSpec::Slowdown {
                worker: 1,
                factor: 3.0,
                from: 0.0,
                until: 1e6,
            },
        ])
        .unwrap();
        let policy = ExchangePolicy {
            max_rounds: 1,
            ..ExchangePolicy::default()
        };
        let run = execute_exchange(&p, &profile, &plan, &faults, &policy).unwrap();
        assert!(!run.degraded());
        assert_eq!(run.exchanges.len(), 1);
    }

    #[test]
    fn crashed_and_straggling_peers_are_never_donors() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let plan = fifo_plan(&p, &profile, 500.0).unwrap();
        // Worker 2 (the fastest — the natural donor) is crashed from the
        // start; worker 1 straggles. The only legal donor is worker 0.
        let faults = FaultPlan::new(vec![
            FaultSpec::Crash { worker: 2, at: 0.0 },
            FaultSpec::Slowdown {
                worker: 1,
                factor: 4.0,
                from: 0.0,
                until: 1e6,
            },
        ])
        .unwrap();
        let run =
            execute_exchange(&p, &profile, &plan, &faults, &ExchangePolicy::default()).unwrap();
        assert!(!run.degraded());
        assert_eq!(run.exchanges.len(), 1);
        let donor_pos = run.exchanges[0].to;
        assert_eq!(plan.order[donor_pos], 0);
    }

    #[test]
    fn malformed_plan_is_a_typed_error() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = Plan {
            order: vec![0, 0],
            work: vec![1.0, 1.0],
            lifespan: 10.0,
        };
        assert_eq!(
            execute_exchange(
                &p,
                &profile,
                &plan,
                &FaultPlan::empty(),
                &ExchangePolicy::default()
            )
            .unwrap_err(),
            ExecError::MalformedPlan
        );
    }
}
