//! Protocol-layer errors.

use std::fmt;

use hetero_core::ModelError;

/// Why a plan could not be constructed.
#[derive(Debug, Clone, PartialEq)]
pub enum ProtocolError {
    /// The underlying model rejected an argument.
    Model(ModelError),
    /// The lifespan must be positive and finite.
    InvalidLifespan {
        /// The offending value.
        lifespan: f64,
    },
    /// The startup order must be a permutation of `0..n`.
    InvalidOrder,
    /// The requested (Σ, Φ) order pair admits no gap-free schedule with
    /// positive allocations.
    InfeasibleOrders,
    /// The environment is communication-bound — `A·X(P) > 1` — so the
    /// server cannot feed the cluster and the paper's gap-free FIFO
    /// schedule (hence Theorem 2's closed form) does not exist.
    CommunicationBound {
        /// The offending `A·X(P)` value.
        a_times_x: f64,
    },
    /// The MDS decode threshold is outside `1 ..= n`: with `k = 0` the
    /// job is empty, with `k > n` no completion set can ever decode.
    InvalidK {
        /// The requested decode threshold.
        k: usize,
        /// The cluster size it was requested against.
        n: usize,
    },
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Model(e) => write!(f, "model error: {e}"),
            ProtocolError::InvalidLifespan { lifespan } => {
                write!(f, "lifespan {lifespan} must be positive and finite")
            }
            ProtocolError::InvalidOrder => {
                write!(
                    f,
                    "startup order must be a permutation of the computer indices"
                )
            }
            ProtocolError::InfeasibleOrders => {
                write!(
                    f,
                    "order pair admits no gap-free schedule with positive allocations"
                )
            }
            ProtocolError::CommunicationBound { a_times_x } => {
                write!(
                    f,
                    "communication-bound regime: A·X(P) = {a_times_x} > 1, the server cannot feed the cluster"
                )
            }
            ProtocolError::InvalidK { k, n } => {
                write!(
                    f,
                    "MDS decode threshold k = {k} must satisfy 1 ≤ k ≤ n = {n}"
                )
            }
        }
    }
}

impl std::error::Error for ProtocolError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ProtocolError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ModelError> for ProtocolError {
    fn from(e: ModelError) -> Self {
        ProtocolError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e = ProtocolError::from(ModelError::EmptyProfile);
        assert!(e.to_string().contains("model error"));
        assert!(e.source().is_some());
        let e = ProtocolError::InvalidLifespan { lifespan: -3.0 };
        assert!(e.to_string().contains("-3"));
        assert!(e.source().is_none());
    }
}
