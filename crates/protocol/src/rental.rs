//! The Cluster-Rental Problem — the CEP's dual (paper footnote 3).
//!
//! CRP: complete `W` units of work on cluster `C` in as few time units as
//! possible. The paper cites [1]'s result that an optimal CEP solution
//! converts efficiently into an optimal CRP solution; with the exact
//! (not just asymptotic) work identity `W(L) = L/(τδ + 1/X(P))` of our
//! FIFO allocation, the conversion is the closed form
//!
//! ```text
//! L*(W) = W · (τδ + 1/X(P))
//! ```
//!
//! [`min_lifespan`] computes it, [`rental_plan`] builds the witnessing
//! schedule, and the tests confirm minimality behaviourally: the plan
//! completes exactly `W` by `L*`, and any shorter lifespan completes
//! strictly less.

use hetero_core::xmeasure;
use hetero_core::{Params, Profile};

use crate::alloc::{fifo_plan, Plan};
use crate::ProtocolError;

/// The minimum lifespan in which `work` units can be completed on the
/// cluster (the CRP optimum).
pub fn min_lifespan(params: &Params, profile: &Profile, work: f64) -> Result<f64, ProtocolError> {
    if !(work.is_finite() && work > 0.0) {
        return Err(ProtocolError::InvalidLifespan { lifespan: work });
    }
    let x = xmeasure::x_measure(params, profile);
    Ok(work * (params.tau_delta() + 1.0 / x))
}

/// The optimal CRP schedule: a FIFO plan sized to complete exactly `work`
/// units, returned together with its (minimal) lifespan.
pub fn rental_plan(
    params: &Params,
    profile: &Profile,
    work: f64,
) -> Result<(Plan, f64), ProtocolError> {
    let lifespan = min_lifespan(params, profile, work)?;
    let plan = fifo_plan(params, profile, lifespan)?;
    Ok((plan, lifespan))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn rental_plan_completes_exactly_the_requested_work() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        for work in [1.0, 100.0, 12_345.6] {
            let (plan, lifespan) = rental_plan(&p, &profile, work).unwrap();
            assert!((plan.total_work() - work).abs() / work < 1e-12);
            let run = execute(&p, &profile, &plan);
            assert!((run.work_completed_by(lifespan) - work).abs() / work < 1e-9);
        }
    }

    #[test]
    fn shorter_lifespans_cannot_complete_the_work() {
        // Minimality, observed: at 99.9 % of L* the optimal protocol
        // finishes strictly less than W.
        let p = params();
        let profile = Profile::harmonic(5);
        let work = 500.0;
        let lifespan = min_lifespan(&p, &profile, work).unwrap();
        let shorter = fifo_plan(&p, &profile, lifespan * 0.999).unwrap();
        assert!(shorter.total_work() < work);
    }

    #[test]
    fn duality_roundtrip() {
        // CEP(L) produces W; CRP(W) must return exactly L.
        let p = params();
        let profile = Profile::uniform_spread(6);
        let lifespan = 777.0;
        let w = xmeasure::work(&p, &profile, lifespan);
        let back = min_lifespan(&p, &profile, w).unwrap();
        assert!((back - lifespan).abs() / lifespan < 1e-12);
    }

    #[test]
    fn faster_clusters_need_less_time() {
        let p = params();
        let slow = Profile::new(vec![1.0, 0.5]).unwrap();
        let fast = Profile::new(vec![1.0, 0.25]).unwrap();
        let work = 1000.0;
        assert!(min_lifespan(&p, &fast, work).unwrap() < min_lifespan(&p, &slow, work).unwrap());
    }

    #[test]
    fn rejects_nonpositive_work() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        assert!(min_lifespan(&p, &profile, 0.0).is_err());
        assert!(min_lifespan(&p, &profile, f64::NAN).is_err());
    }
}
