//! Integral tasks: quantizing the divisible-load idealization.
//!
//! The paper's workload is "`W` units of work consisting of mutually
//! independent *tasks* of equal sizes" (§1.2) — the continuous allocation
//! analysis is an idealization of a problem whose packages must contain
//! whole tasks. This module quantizes the optimal FIFO allocation to a
//! task granularity `g` (work units per task) and measures what the
//! idealization hides:
//!
//! * floor-rounding each computer's allocation to whole tasks keeps the
//!   schedule feasible (less work everywhere means every deadline is
//!   met early) but forfeits up to `n·g` units;
//! * a greedy redistribution pass hands back whole tasks wherever they
//!   still fit within the lifespan, recovering most of the loss.
//!
//! The quantization loss as a function of `g` is the library's account of
//! the paper's own Table 2 distinction between *coarse* (1 s) and *fine*
//! (0.1 s) tasks.

use hetero_core::{Params, Profile};

use crate::alloc::{fifo_plan, Plan};
use crate::exec::execute;
use crate::ProtocolError;

/// An integral plan plus its provenance.
#[derive(Debug, Clone)]
pub struct IntegralPlan {
    /// The quantized plan (every allocation a whole multiple of `g`).
    pub plan: Plan,
    /// Task granularity (work units per task).
    pub granularity: f64,
    /// Whole tasks assigned per startup position.
    pub tasks: Vec<u64>,
    /// The divisible-load optimum this was quantized from.
    pub divisible_work: f64,
}

impl IntegralPlan {
    /// Total whole tasks assigned.
    pub fn total_tasks(&self) -> u64 {
        self.tasks.iter().sum()
    }

    /// Work forfeited relative to the divisible optimum.
    pub fn quantization_loss(&self) -> f64 {
        self.divisible_work - self.plan.total_work()
    }

    /// Loss as a fraction of the divisible optimum.
    pub fn loss_fraction(&self) -> f64 {
        self.quantization_loss() / self.divisible_work
    }
}

/// Quantizes the optimal FIFO plan to whole tasks of `granularity` work
/// units: floor-round, then greedily hand back one task at a time (to the
/// computer whose results chain still fits the lifespan) until no task
/// fits.
pub fn integral_fifo_plan(
    params: &Params,
    profile: &Profile,
    lifespan: f64,
    granularity: f64,
) -> Result<IntegralPlan, ProtocolError> {
    if !(granularity.is_finite() && granularity > 0.0) {
        return Err(ProtocolError::InvalidLifespan {
            lifespan: granularity,
        });
    }
    let divisible = fifo_plan(params, profile, lifespan)?;
    let divisible_work = divisible.total_work();

    let mut tasks: Vec<u64> = divisible
        .work
        .iter()
        .map(|w| (w / granularity).floor() as u64)
        .collect();

    let completes = |tasks: &[u64]| -> bool {
        let plan = Plan {
            order: divisible.order.clone(),
            work: tasks.iter().map(|&t| t as f64 * granularity).collect(),
            lifespan,
        };
        // hetero-check: allow(float-eq) — whole-task allocations sum to exactly 0.0 iff every task count is 0
        if plan.total_work() == 0.0 {
            return true;
        }
        let run = execute(params, profile, &plan);
        run.last_arrival().is_none_or(|t| t.get() <= lifespan)
    };
    debug_assert!(completes(&tasks), "floor-rounding keeps feasibility");

    // Greedy hand-back: try to add one task to each position, fastest
    // (largest allocation) first, until nothing fits.
    let mut order_by_alloc: Vec<usize> = (0..tasks.len()).collect();
    order_by_alloc.sort_by(|&a, &b| divisible.work[b].total_cmp(&divisible.work[a]));
    let mut progress = true;
    while progress {
        progress = false;
        for &pos in &order_by_alloc {
            tasks[pos] += 1;
            if completes(&tasks) {
                progress = true;
            } else {
                tasks[pos] -= 1;
            }
        }
    }

    let work: Vec<f64> = tasks.iter().map(|&t| t as f64 * granularity).collect();
    Ok(IntegralPlan {
        plan: Plan {
            order: divisible.order.clone(),
            work,
            lifespan,
        },
        granularity,
        tasks,
        divisible_work,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::validate::validate;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn integral_plan_is_feasible_and_whole() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let ip = integral_fifo_plan(&p, &profile, 500.0, 1.0).unwrap();
        for (&t, &w) in ip.tasks.iter().zip(&ip.plan.work) {
            assert_eq!(t as f64, w, "whole tasks at g = 1");
        }
        let run = execute(&p, &profile, &ip.plan);
        assert!(validate(&p, &profile, &run).is_empty());
        assert!(run.last_arrival().unwrap().get() <= 500.0);
    }

    #[test]
    fn loss_is_bounded_by_one_task_per_computer() {
        // After the hand-back pass the residual loss is below n·g (and in
        // practice far below).
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap();
        for g in [0.1, 1.0, 10.0] {
            let ip = integral_fifo_plan(&p, &profile, 1000.0, g).unwrap();
            assert!(ip.quantization_loss() >= -1e-9, "never exceeds divisible");
            assert!(
                ip.quantization_loss() < profile.n() as f64 * g,
                "g = {g}: loss {}",
                ip.quantization_loss()
            );
        }
    }

    #[test]
    fn finer_tasks_lose_less() {
        let p = params();
        let profile = Profile::harmonic(4);
        let coarse = integral_fifo_plan(&p, &profile, 300.0, 10.0).unwrap();
        let fine = integral_fifo_plan(&p, &profile, 300.0, 0.1).unwrap();
        assert!(fine.loss_fraction() <= coarse.loss_fraction());
        assert!(fine.loss_fraction() < 1e-3, "fine tasks ≈ divisible");
    }

    #[test]
    fn handback_recovers_work_over_plain_flooring() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let g = 25.0; // brutally coarse
        let ip = integral_fifo_plan(&p, &profile, 500.0, g).unwrap();
        let floored: f64 = fifo_plan(&p, &profile, 500.0)
            .unwrap()
            .work
            .iter()
            .map(|w| (w / g).floor() * g)
            .sum();
        assert!(ip.plan.total_work() >= floored);
    }

    #[test]
    fn rejects_bad_granularity() {
        let p = params();
        let profile = Profile::new(vec![1.0]).unwrap();
        assert!(integral_fifo_plan(&p, &profile, 100.0, 0.0).is_err());
        assert!(integral_fifo_plan(&p, &profile, 100.0, f64::NAN).is_err());
    }

    #[test]
    fn huge_granularity_degenerates_gracefully() {
        // Tasks bigger than anyone's allocation: zero work, loss = 100 %.
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let ip = integral_fifo_plan(&p, &profile, 10.0, 1e9).unwrap();
        assert_eq!(ip.total_tasks(), 0);
        assert!((ip.loss_fraction() - 1.0).abs() < 1e-12);
    }
}
