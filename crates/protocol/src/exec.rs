//! Discrete-event execution of worksharing plans.
//!
//! The executor replays the paper's protocol (§2.2) literally on the
//! `hetero-sim` engine:
//!
//! 1. the server packages and transmits each position's work package
//!    seriatim — each send is a contiguous `(π+τ)w` block, matching the
//!    `C0` row of Figure 2;
//! 2. a worker receiving `w` units unpackages (`πρw`), computes (`ρw`),
//!    and packages results (`πρδw`) back to back — the `Bρw` block;
//! 3. results transit the network (`τδw`) under the *single message in
//!    transit* constraint (one [`UnitResource`] carries every message,
//!    work and results alike), then the server unpackages them (`πδw`).
//!
//! Entity layout in the produced [`Trace`]: `0` = server, `1..=n` =
//! workers (`1 + profile index`), `n+1` = the network channel.
//!
//! [`UnitResource`]: hetero_sim::UnitResource

use hetero_core::{Params, Profile};
use hetero_obs::sketch::QuantileSketch;
use hetero_sim::stats::OnlineStats;
use hetero_sim::{EventQueue, SimTime, Trace, UnitResource};

use crate::alloc::Plan;

/// Entity id of the server in execution traces.
pub const SERVER: usize = 0;

/// Entity id of worker with profile index `i`.
pub fn worker_entity(index: usize) -> usize {
    index + 1
}

/// Entity id of the network channel for an `n`-computer cluster.
pub fn channel_entity(n: usize) -> usize {
    n + 1
}

/// The protocol's events, keyed by startup position. Each event carries
/// the span id of the activity that caused it (`cause`), so the trace
/// records the full causality DAG: every span's parent is the span
/// whose completion triggered it.
#[derive(Debug, Clone, Copy)]
enum Event {
    /// Server starts packaging the work for `pos`.
    StartSend { pos: usize, cause: Option<usize> },
    /// Work for `pos` finished its network transit; worker begins.
    WorkArrived { pos: usize, cause: usize },
    /// Worker at `pos` finished packaging its results.
    ResultsReady { pos: usize, cause: usize },
    /// Results of `pos` arrived back at the server.
    TransitDone { pos: usize, cause: usize },
}

struct ExecState {
    params: Params,
    rhos: Vec<f64>, // by position
    work: Vec<f64>, // by position
    order: Vec<usize>,
    server: UnitResource,
    channel: UnitResource,
    trace: Trace,
    arrivals: Vec<Option<SimTime>>, // result-transit end, by position
}

/// The outcome of executing a plan: the full trace plus per-position
/// result arrival times.
#[derive(Debug, Clone)]
pub struct Execution {
    /// Action/time record of every entity.
    pub trace: Trace,
    /// When each position's results finished transiting back to the
    /// server (the paper's completion criterion), by startup position.
    pub arrivals: Vec<SimTime>,
    /// The executed plan.
    pub plan: Plan,
}

impl Execution {
    /// The latest result arrival (completion time of the whole batch).
    pub fn last_arrival(&self) -> Option<SimTime> {
        self.arrivals.iter().copied().max()
    }

    /// Total work units whose results had arrived by time `t` (with a
    /// relative tolerance for float round-off at the lifespan boundary).
    pub fn work_completed_by(&self, t: f64) -> f64 {
        let cutoff = t * (1.0 + 1e-9);
        // hetero-check: allow(float-accum) — diagnostic total over the fixed worker order; pinned CLI goldens cover these bits
        self.arrivals
            .iter()
            .zip(&self.plan.work)
            .filter(|(arr, _)| arr.get() <= cutoff)
            .map(|(_, w)| w)
            .sum()
    }

    /// The end of the last recorded activity (including the server's final
    /// unpackaging, which the completion criterion does not count).
    pub fn makespan(&self) -> SimTime {
        self.trace.makespan()
    }
}

/// Executes `plan` on `profile` and returns the full [`Execution`].
///
/// # Panics
/// Panics if the plan's order is not a permutation of the profile's
/// indices (construct plans through [`crate::alloc`] / [`crate::baseline`]
/// to avoid this).
pub fn execute(params: &Params, profile: &Profile, plan: &Plan) -> Execution {
    assert!(
        crate::alloc::is_permutation(&plan.order, profile.n()),
        "plan order must be a permutation of the profile indices"
    );
    let n = profile.n();
    let mut state = ExecState {
        params: *params,
        rhos: plan.order.iter().map(|&i| profile.rho(i)).collect(),
        work: plan.work.clone(),
        order: plan.order.clone(),
        server: UnitResource::new(),
        channel: UnitResource::new(),
        trace: Trace::new(),
        arrivals: vec![None; n],
    };
    let mut queue: EventQueue<Event> = EventQueue::new();
    queue.schedule_at(
        SimTime::ZERO,
        Event::StartSend {
            pos: 0,
            cause: None,
        },
    );

    hetero_sim::run(&mut state, &mut queue, |st, q, now, ev| {
        let (pi, tau, delta) = (st.params.pi(), st.params.tau(), st.params.delta());
        match ev {
            Event::StartSend { pos, cause } => {
                let w = st.work[pos];
                let target = st.order[pos];
                // Server packages (πw), then the message transits (τw);
                // the channel is claimed as soon as packaging ends.
                let pack = st.server.acquire(now, pi * w);
                let pack_id = st.trace.record_caused(
                    SERVER,
                    format!("pack→C{}", target + 1),
                    pack.start,
                    pack.end,
                    cause,
                );
                let transit = st.channel.acquire(pack.end, tau * w);
                let xmit_id = st.trace.record_caused(
                    channel_entity(st.order.len()),
                    format!("xmit:work:C{}", target + 1),
                    transit.start,
                    transit.end,
                    Some(pack_id),
                );
                q.schedule_at(
                    transit.end,
                    Event::WorkArrived {
                        pos,
                        cause: xmit_id,
                    },
                );
                if pos + 1 < st.order.len() {
                    // "It immediately prepares and sends w₂ via the same
                    // process": the next (π+τ)w block starts when this
                    // transit ends, keeping the C0 row gap-free.
                    q.schedule_at(
                        transit.end,
                        Event::StartSend {
                            pos: pos + 1,
                            cause: Some(xmit_id),
                        },
                    );
                }
            }
            Event::WorkArrived { pos, cause } => {
                let w = st.work[pos];
                let rho = st.rhos[pos];
                let target = st.order[pos];
                let ent = worker_entity(target);
                let unpack_end = now + pi * rho * w;
                let compute_end = unpack_end + rho * w;
                let pack_end = compute_end + pi * rho * delta * w;
                let unpack_id = st
                    .trace
                    .record_caused(ent, "unpack", now, unpack_end, Some(cause));
                let compute_id = st.trace.record_caused(
                    ent,
                    "compute",
                    unpack_end,
                    compute_end,
                    Some(unpack_id),
                );
                let pack_id =
                    st.trace
                        .record_caused(ent, "pack", compute_end, pack_end, Some(compute_id));
                q.schedule_at(
                    pack_end,
                    Event::ResultsReady {
                        pos,
                        cause: pack_id,
                    },
                );
            }
            Event::ResultsReady { pos, cause } => {
                let w = st.work[pos];
                let target = st.order[pos];
                let transit = st.channel.acquire(now, tau * delta * w);
                // In the optimal plan the channel frees *exactly* when the
                // worker is ready; f64 round-off can leave an ulp-scale gap
                // that is not a real wait, so only genuine stalls are
                // recorded.
                let wait_threshold = 1e-9 * (1.0 + now.get().abs());
                let mut xmit_cause = cause;
                if transit.start - now > wait_threshold {
                    xmit_cause = st.trace.record_caused(
                        worker_entity(target),
                        "wait:channel",
                        now,
                        transit.start,
                        Some(cause),
                    );
                }
                let xmit_id = st.trace.record_caused(
                    channel_entity(st.order.len()),
                    format!("xmit:result:C{}", target + 1),
                    transit.start,
                    transit.end,
                    Some(xmit_cause),
                );
                q.schedule_at(
                    transit.end,
                    Event::TransitDone {
                        pos,
                        cause: xmit_id,
                    },
                );
            }
            Event::TransitDone { pos, cause } => {
                let w = st.work[pos];
                let target = st.order[pos];
                st.arrivals[pos] = Some(now);
                let unpack = st.server.acquire(now, pi * delta * w);
                st.trace.record_caused(
                    SERVER,
                    format!("recv←C{}", target + 1),
                    unpack.start,
                    unpack.end,
                    Some(cause),
                );
            }
        }
    });

    if hetero_obs::enabled() {
        observe_execution(&state, &queue, n);
    }

    Execution {
        trace: state.trace,
        arrivals: state
            .arrivals
            .into_iter()
            // hetero-check: allow(expect) — the event loop schedules a TransitDone for every position, filling each slot
            .map(|a| a.expect("every position's results arrive"))
            .collect(),
        plan: plan.clone(),
    }
}

/// Fallible form of [`execute`]: rejects malformed plans with a typed
/// error instead of panicking, and surfaces any engine-level failure
/// (invalid grant durations, clock overflow, backwards spans) as an
/// [`ExecError`](crate::fault_exec::ExecError).
///
/// Routes through the fault-aware executor with an empty
/// [`FaultPlan`](hetero_faults::FaultPlan), whose fault-free path is
/// bit-identical to [`execute`] — so the two forms cannot drift apart.
pub fn try_execute(
    params: &Params,
    profile: &Profile,
    plan: &Plan,
) -> Result<Execution, crate::fault_exec::ExecError> {
    let faulted = crate::fault_exec::execute_with_faults(
        params,
        profile,
        plan,
        &hetero_faults::FaultPlan::empty(),
    )?;
    Ok(Execution {
        trace: faulted.trace,
        arrivals: faulted
            .arrivals
            .into_iter()
            // hetero-check: allow(expect) — an empty fault plan loses no results, so every slot is filled
            .map(|a| a.expect("empty fault plan loses no results"))
            .collect(),
        plan: faulted.plan,
    })
}

/// Folds one finished execution into the global collector: simulator
/// load, resource utilization per entity, and per-phase span timing
/// (send = server packaging + work transit; compute = the worker's
/// `Bρw` block; receive = result transit + server unpackaging).
fn observe_execution(state: &ExecState, queue: &EventQueue<Event>, n: usize) {
    observe_trace(
        &state.trace,
        &state.server,
        &state.channel,
        queue.dispatched(),
        queue.high_water(),
        n,
    );
}

/// Executor-agnostic form of the fold above, shared with the
/// fault-aware protocol families ([`crate::exchange`], [`crate::coded`])
/// so every family feeds the same per-phase sketches and utilization
/// series regardless of which extra span labels it mints.
pub(crate) fn observe_trace(
    trace: &Trace,
    server: &UnitResource,
    channel: &UnitResource,
    dispatched: u64,
    high_water: usize,
    n: usize,
) {
    if !hetero_obs::enabled() {
        // One atomic load while disabled — the span walk below is O(n)
        // and must not run when nobody is listening.
        return;
    }
    let horizon = trace.makespan();
    // Fold the per-span phase timings into local accumulators first: a
    // sweep lands here once per trial, and paying the collector lock
    // plus a name lookup per span made full recording cost more than
    // the execution itself. One trace pass, five local accumulators
    // (Welford + quantile sketch per phase), one lock at the end.
    const PHASES: [&str; 5] = [
        "protocol.compute",
        "protocol.wait",
        "protocol.send",
        "protocol.receive",
        "protocol.other",
    ];
    let mut stats: [OnlineStats; 5] = Default::default();
    let mut sketches: [QuantileSketch; 5] = std::array::from_fn(|_| QuantileSketch::new());
    // Workers are not UnitResources (their schedule is closed-form), so
    // their utilization is busy time over the makespan, read off the trace.
    let mut worker_busy = vec![0.0f64; n];
    for span in trace.spans() {
        let phase = match span.label.as_str() {
            "unpack" | "compute" | "pack" => {
                let idx = span.entity.wrapping_sub(1);
                if let Some(busy) = worker_busy.get_mut(idx) {
                    *busy += span.duration();
                }
                0
            }
            "wait:channel" => 1,
            l if l.starts_with("pack→")
                || l.starts_with("xpack→")
                || l.starts_with("xmit:work")
                || l.starts_with("xmit:xchg") =>
            {
                2
            }
            l if l.starts_with("xmit:result") || l.starts_with("recv←") => 3,
            _ => 4,
        };
        let d = span.duration();
        stats[phase].push(d);
        // The same phase durations also feed the mergeable quantile
        // sketches, so the JSONL stream and manifest can report
        // p50/p90/p99 latencies instead of just Welford moments.
        sketches[phase].record(d);
    }
    hetero_obs::with_collector(|c| {
        c.count("sim.events", dispatched);
        c.gauge_max("sim.queue_high_water", high_water as u64);
        c.observe("protocol.util.server", server.utilization(horizon));
        c.observe("protocol.util.channel", channel.utilization(horizon));
        for (i, phase) in PHASES.iter().enumerate() {
            c.merge_observations(phase, &stats[i]);
            c.merge_sketch(phase, &sketches[i]);
        }
        if horizon.get() > 0.0 {
            for busy in &worker_busy {
                c.observe("protocol.util.worker", busy / horizon.get());
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::{fifo_plan, fifo_plan_ordered, theorem2_work};

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn single_worker_timeline_matches_fig1() {
        // Figure 1: π0w | τw | πiw | ρiw | πiδw | τδw | π0δw.
        let p = params();
        let profile = Profile::new(vec![0.5]).unwrap();
        let w = 10.0;
        let plan = Plan {
            order: vec![0],
            work: vec![w],
            lifespan: 1e9,
        };
        let run = execute(&p, &profile, &plan);
        let rho = 0.5;
        let expect_arrival = p.pi() * w + p.tau() * w + p.b() * rho * w + p.tau() * p.delta() * w;
        assert!((run.arrivals[0].get() - expect_arrival).abs() < 1e-9);
        // Makespan additionally includes the server's final unpackaging.
        let expect_makespan = expect_arrival + p.pi() * p.delta() * w;
        assert!((run.makespan().get() - expect_makespan).abs() < 1e-9);
    }

    #[test]
    fn optimal_plan_finishes_exactly_at_lifespan() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let lifespan = 3600.0;
        let plan = fifo_plan(&p, &profile, lifespan).unwrap();
        let run = execute(&p, &profile, &plan);
        let last = run.last_arrival().unwrap().get();
        assert!(
            (last - lifespan).abs() / lifespan < 1e-9,
            "no-gap optimum uses the whole lifespan: {last} vs {lifespan}"
        );
    }

    #[test]
    fn executed_work_matches_theorem2() {
        // Theorem 2 validated behaviourally: the event-driven execution of
        // the closed-form plan completes exactly W(L;P) work by L.
        let p = params();
        for profile in [
            Profile::harmonic(5),
            Profile::uniform_spread(8),
            Profile::new(vec![1.0, 0.9, 0.2, 0.01]).unwrap(),
        ] {
            let lifespan = 1000.0;
            let plan = fifo_plan(&p, &profile, lifespan).unwrap();
            let run = execute(&p, &profile, &plan);
            let done = run.work_completed_by(lifespan);
            let closed = theorem2_work(&p, &profile, lifespan);
            assert!(
                (done - closed).abs() / closed < 1e-9,
                "n={}: {done} vs {closed}",
                profile.n()
            );
        }
    }

    #[test]
    fn theorem1_all_startup_orders_equally_productive() {
        // Executed, not just computed: every startup order of the FIFO
        // protocol completes the same work by L.
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap();
        let lifespan = 250.0;
        let orders: [&[usize]; 4] = [&[0, 1, 2, 3], &[3, 2, 1, 0], &[2, 0, 3, 1], &[1, 3, 0, 2]];
        let mut totals = Vec::new();
        for order in orders {
            let plan = fifo_plan_ordered(&p, &profile, order, lifespan).unwrap();
            let run = execute(&p, &profile, &plan);
            assert!(run.last_arrival().unwrap().get() <= lifespan * (1.0 + 1e-9));
            totals.push(run.work_completed_by(lifespan));
        }
        for w in &totals[1..] {
            assert!((w - totals[0]).abs() / totals[0] < 1e-9, "{totals:?}");
        }
    }

    #[test]
    fn workers_never_wait_for_the_channel_in_the_optimal_plan() {
        // The no-gap conditions mean each worker's results transmission
        // starts the moment packaging finishes.
        let p = params();
        let profile = Profile::harmonic(6);
        let plan = fifo_plan(&p, &profile, 500.0).unwrap();
        let run = execute(&p, &profile, &plan);
        assert!(
            !run.trace.spans().iter().any(|s| s.label == "wait:channel"),
            "optimal plan has no channel waits"
        );
    }

    #[test]
    fn work_completed_by_respects_cutoff() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = fifo_plan(&p, &profile, 100.0).unwrap();
        let run = execute(&p, &profile, &plan);
        // Before the first arrival nothing is complete; after the last,
        // everything is.
        assert_eq!(run.work_completed_by(0.5), 0.0);
        let all = run.work_completed_by(100.0);
        assert!((all - plan.total_work()).abs() < 1e-9);
        // Between the two arrivals exactly the first position counts.
        let first = run.arrivals[0].get();
        let second = run.arrivals[1].get();
        assert!(first < second);
        let partial = run.work_completed_by(0.5 * (first + second));
        assert!((partial - plan.work[0]).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn execute_rejects_malformed_plan() {
        let p = params();
        let profile = Profile::new(vec![1.0, 0.5]).unwrap();
        let plan = Plan {
            order: vec![0, 0],
            work: vec![1.0, 1.0],
            lifespan: 10.0,
        };
        let _ = execute(&p, &profile, &plan);
    }
}
