//! Span recording for action/time diagrams.
//!
//! The paper presents protocols as action/time diagrams (its Figures 1–2):
//! one row per entity, one labelled box per activity. [`Trace`] records
//! those boxes during a simulation; `hetero-experiments` renders them as an
//! ASCII Gantt chart.
//!
//! Spans optionally carry a *causal parent*: the span whose completion
//! enabled this one (the message that triggered a computation, the pack
//! that fed a transmission). Parent links live in a parallel vector —
//! [`Span`] itself stays the plain interval record the Gantt renderers
//! and byte-pinned Chrome goldens compare — and turn a trace into a
//! causality forest that `hetero-obs` walks for critical-path
//! extraction.

use std::error::Error;
use std::fmt;

use crate::SimTime;

/// One recorded activity interval.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Row identifier (e.g. computer index; 0 is the server).
    pub entity: usize,
    /// Activity label (e.g. `"send→C2"`, `"compute"`).
    pub label: String,
    /// Start of the activity.
    pub start: SimTime,
    /// End of the activity.
    pub end: SimTime,
}

impl Span {
    /// Duration of the span.
    pub fn duration(&self) -> f64 {
        self.end - self.start
    }

    /// `true` iff this span overlaps `other` on the open interval.
    pub fn overlaps(&self, other: &Span) -> bool {
        self.start < other.end && other.start < self.end
    }
}

/// Rejected span: its end precedes its start.
#[derive(Debug, Clone, PartialEq)]
pub struct BackwardsSpan {
    /// The entity the span was recorded for.
    pub entity: usize,
    /// The offending start time.
    pub start: SimTime,
    /// The offending (earlier) end time.
    pub end: SimTime,
}

impl fmt::Display for BackwardsSpan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "span ends before it starts: entity {} from {:?} to {:?}",
            self.entity, self.start, self.end
        )
    }
}

impl Error for BackwardsSpan {}

/// An append-only recording of activity spans.
///
/// Each span is identified by its recording index; `parents[i]` is the
/// id of the span whose completion causally enabled span `i`, or `None`
/// for a causal root (the spontaneous first action of an entity). The
/// two vectors always have equal length.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    spans: Vec<Span>,
    parents: Vec<Option<usize>>,
}

impl Trace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one activity, rejecting spans that end before they start.
    pub fn try_record(
        &mut self,
        entity: usize,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> Result<(), BackwardsSpan> {
        self.try_record_caused(entity, label, start, end, None)
            .map(|_| ())
    }

    /// Records one activity with an explicit causal parent, returning
    /// the new span's id (its recording index). `parent` must refer to
    /// an already-recorded span, which makes parent ids strictly smaller
    /// than child ids — the invariant the critical-path walk relies on.
    pub fn try_record_caused(
        &mut self,
        entity: usize,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
        parent: Option<usize>,
    ) -> Result<usize, BackwardsSpan> {
        if end < start {
            return Err(BackwardsSpan { entity, start, end });
        }
        if let Some(p) = parent {
            assert!(
                p < self.spans.len(),
                "causal parent {p} not yet recorded (trace has {} spans)",
                self.spans.len()
            );
        }
        let id = self.spans.len();
        self.spans.push(Span {
            entity,
            label: label.into(),
            start,
            end,
        });
        self.parents.push(parent);
        Ok(id)
    }

    /// Records one activity with a causal parent, returning its id.
    /// Convenience wrapper over [`try_record_caused`] with the same
    /// documented-panic contract as [`record`].
    ///
    /// # Panics
    /// Panics when `end < start` or when `parent` names a span that has
    /// not been recorded yet — both are protocol-logic bugs.
    ///
    /// [`try_record_caused`]: Trace::try_record_caused
    /// [`record`]: Trace::record
    pub fn record_caused(
        &mut self,
        entity: usize,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
        parent: Option<usize>,
    ) -> usize {
        self.try_record_caused(entity, label, start, end, parent)
            // hetero-check: allow(expect) — documented-panic wrapper; the fallible form is try_record_caused
            .expect("span ends before it starts")
    }

    /// Records one activity. Convenience wrapper over [`try_record`] for
    /// event handlers whose span endpoints come straight off the causal
    /// event clock; callers with untrusted endpoints should use
    /// [`try_record`] and handle the error.
    ///
    /// # Panics
    /// Panics when `end < start` — a backwards span is a protocol-logic
    /// bug, not a recoverable condition, at these call sites.
    ///
    /// [`try_record`]: Trace::try_record
    pub fn record(
        &mut self,
        entity: usize,
        label: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        self.try_record(entity, label, start, end)
            // hetero-check: allow(expect) — documented-panic wrapper; the fallible form is try_record
            .expect("span ends before it starts");
    }

    /// All recorded spans, in recording order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// The causal parent of span `id`, if any. Returns `None` both for
    /// causal roots and for out-of-range ids.
    pub fn parent(&self, id: usize) -> Option<usize> {
        self.parents.get(id).copied().flatten()
    }

    /// Causal parent links, parallel to [`spans`](Trace::spans):
    /// `parents()[i]` is the id of the span that enabled span `i`.
    pub fn parents(&self) -> &[Option<usize>] {
        &self.parents
    }

    /// Spans belonging to one entity, in recording order.
    pub fn entity_spans(&self, entity: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.entity == entity)
    }

    /// The latest end time over all spans (zero when empty).
    pub fn makespan(&self) -> SimTime {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// Checks that no two spans *of the same entity* overlap — an entity
    /// does one thing at a time. Returns the first offending pair.
    pub fn find_entity_conflict(&self) -> Option<(&Span, &Span)> {
        // O(n²) is fine at trace scale; protocol traces have ~5n spans.
        for (i, a) in self.spans.iter().enumerate() {
            for b in &self.spans[i + 1..] {
                if a.entity == b.entity && a.overlaps(b) {
                    return Some((a, b));
                }
            }
        }
        None
    }

    /// Checks that no two spans whose labels satisfy `pred` overlap,
    /// regardless of entity — used to verify the paper's "at most one
    /// message in transit at a time" network constraint.
    pub fn find_labelled_conflict<F>(&self, pred: F) -> Option<(&Span, &Span)>
    where
        F: Fn(&str) -> bool,
    {
        let matching: Vec<&Span> = self.spans.iter().filter(|s| pred(&s.label)).collect();
        for (i, a) in matching.iter().enumerate() {
            for b in &matching[i + 1..] {
                if a.overlaps(b) {
                    return Some((a, b));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(v: f64) -> SimTime {
        SimTime::new(v)
    }

    #[test]
    fn record_and_query() {
        let mut tr = Trace::new();
        tr.record(0, "send", t(0.0), t(1.0));
        tr.record(1, "compute", t(1.0), t(4.0));
        tr.record(0, "send", t(1.0), t(2.0));
        assert_eq!(tr.spans().len(), 3);
        assert_eq!(tr.entity_spans(0).count(), 2);
        assert_eq!(tr.makespan(), t(4.0));
    }

    #[test]
    fn overlap_semantics_are_open_interval() {
        let a = Span {
            entity: 0,
            label: "a".into(),
            start: t(0.0),
            end: t(1.0),
        };
        let b = Span {
            entity: 0,
            label: "b".into(),
            start: t(1.0),
            end: t(2.0),
        };
        let c = Span {
            entity: 0,
            label: "c".into(),
            start: t(0.5),
            end: t(1.5),
        };
        assert!(!a.overlaps(&b)); // touching endpoints do not overlap
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn entity_conflicts_detected() {
        let mut tr = Trace::new();
        tr.record(2, "x", t(0.0), t(2.0));
        tr.record(1, "y", t(1.0), t(3.0)); // different entity: fine
        assert!(tr.find_entity_conflict().is_none());
        tr.record(2, "z", t(1.5), t(1.8));
        let (a, b) = tr.find_entity_conflict().expect("conflict");
        assert_eq!((a.label.as_str(), b.label.as_str()), ("x", "z"));
    }

    #[test]
    fn labelled_conflicts_span_entities() {
        let mut tr = Trace::new();
        tr.record(0, "xmit:work", t(0.0), t(2.0));
        tr.record(1, "xmit:result", t(1.0), t(3.0));
        tr.record(2, "compute", t(0.0), t(9.0));
        assert!(tr
            .find_labelled_conflict(|l| l.starts_with("xmit"))
            .is_some());
        // Computation may overlap transmissions freely.
        assert!(tr.find_labelled_conflict(|l| l == "compute").is_none());
    }

    #[test]
    fn empty_trace_makespan_is_zero() {
        assert_eq!(Trace::new().makespan(), SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn backwards_span_panics() {
        let mut tr = Trace::new();
        tr.record(0, "bad", t(2.0), t(1.0));
    }

    #[test]
    fn causal_parents_are_tracked_in_parallel() {
        let mut tr = Trace::new();
        let root = tr.record_caused(0, "pack", t(0.0), t(1.0), None);
        let xmit = tr.record_caused(2, "xmit", t(1.0), t(2.0), Some(root));
        tr.record(1, "idle", t(0.0), t(2.0)); // plain record: no parent
        let comp = tr.record_caused(1, "compute", t(2.0), t(5.0), Some(xmit));
        assert_eq!(tr.parent(root), None);
        assert_eq!(tr.parent(xmit), Some(root));
        assert_eq!(tr.parent(2), None);
        assert_eq!(tr.parent(comp), Some(xmit));
        assert_eq!(tr.parent(99), None, "out of range is None");
        assert_eq!(tr.parents().len(), tr.spans().len());
    }

    #[test]
    #[should_panic(expected = "causal parent")]
    fn forward_parent_reference_panics() {
        let mut tr = Trace::new();
        tr.record_caused(0, "a", t(0.0), t(1.0), Some(0));
    }

    #[test]
    fn rejected_span_leaves_parents_aligned() {
        let mut tr = Trace::new();
        tr.record(0, "ok", t(0.0), t(1.0));
        assert!(tr
            .try_record_caused(0, "bad", t(2.0), t(1.0), Some(0))
            .is_err());
        assert_eq!(tr.spans().len(), 1);
        assert_eq!(tr.parents().len(), 1);
    }

    #[test]
    fn try_record_returns_the_offending_endpoints() {
        let mut tr = Trace::new();
        assert!(tr.try_record(1, "ok", t(1.0), t(1.0)).is_ok());
        let err = tr.try_record(3, "bad", t(2.0), t(1.0)).unwrap_err();
        assert_eq!(
            err,
            BackwardsSpan {
                entity: 3,
                start: t(2.0),
                end: t(1.0)
            }
        );
        assert!(err.to_string().contains("ends before"));
        assert_eq!(tr.spans().len(), 1, "rejected span not recorded");
    }
}
