//! Serially reusable resources.

use std::error::Error;
use std::fmt;

use crate::time::NonFiniteTime;
use crate::SimTime;

/// Rejected grant request.
///
/// Produced by [`UnitResource::try_acquire`] for occupancy durations that
/// are negative or non-finite — the values fault-perturbed rates can
/// produce — or when the grant's end would overflow the clock.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GrantError {
    /// The requested occupancy duration is negative or non-finite.
    InvalidDuration {
        /// The offending duration.
        duration: f64,
    },
    /// The grant's end time is not a finite clock value.
    TimeOverflow(NonFiniteTime),
}

impl fmt::Display for GrantError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrantError::InvalidDuration { duration } => {
                write!(
                    f,
                    "grant duration {duration} must be finite and non-negative"
                )
            }
            GrantError::TimeOverflow(e) => write!(f, "grant end overflows the clock: {e}"),
        }
    }
}

impl Error for GrantError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            GrantError::TimeOverflow(e) => Some(e),
            GrantError::InvalidDuration { .. } => None,
        }
    }
}

impl From<NonFiniteTime> for GrantError {
    fn from(e: NonFiniteTime) -> Self {
        GrantError::TimeOverflow(e)
    }
}

/// A resource that serves one request at a time, in request order.
///
/// This models both a computer (which processes one package of work at a
/// time) and the paper's network, whose defining constraint is that *at
/// most one intercomputer message is in transit at any moment*. A request
/// made at `ready_at` for `duration` is granted the earliest interval that
/// starts no sooner than `ready_at` and does not overlap a previously
/// granted interval.
///
/// ```
/// use hetero_sim::{SimTime, UnitResource};
/// let mut link = UnitResource::new();
/// let a = link.acquire(SimTime::ZERO, 2.0);       // [0, 2)
/// let b = link.acquire(SimTime::new(1.0), 3.0);   // queued: [2, 5)
/// assert_eq!((a.start.get(), a.end.get()), (0.0, 2.0));
/// assert_eq!((b.start.get(), b.end.get()), (2.0, 5.0));
/// ```
#[derive(Debug, Clone)]
pub struct UnitResource {
    next_free: SimTime,
    granted: u64,
    busy_total: f64,
}

/// A granted occupancy interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// When the resource actually starts serving the request.
    pub start: SimTime,
    /// When the resource becomes free again.
    pub end: SimTime,
}

impl Grant {
    /// How long the requester waited beyond its ready time.
    pub fn wait_from(&self, ready_at: SimTime) -> f64 {
        self.start - ready_at
    }
}

impl Default for UnitResource {
    fn default() -> Self {
        Self::new()
    }
}

impl UnitResource {
    /// A resource that is free from time zero.
    pub fn new() -> Self {
        UnitResource {
            next_free: SimTime::ZERO,
            granted: 0,
            busy_total: 0.0,
        }
    }

    /// Reserves the earliest conflict-free interval of length `duration`
    /// starting at or after `ready_at`, rejecting invalid durations with
    /// a typed error instead of panicking.
    ///
    /// This is the form library code should use when the duration comes
    /// from untrusted arithmetic (fault-perturbed rates); [`acquire`] is
    /// its documented-panic convenience wrapper. On error the resource is
    /// left untouched.
    ///
    /// [`acquire`]: UnitResource::acquire
    pub fn try_acquire(&mut self, ready_at: SimTime, duration: f64) -> Result<Grant, GrantError> {
        if !(duration.is_finite() && duration >= 0.0) {
            return Err(GrantError::InvalidDuration { duration });
        }
        let start = ready_at.max(self.next_free);
        let end = start.try_add(duration)?;
        self.next_free = end;
        self.granted += 1;
        self.busy_total += duration;
        Ok(Grant { start, end })
    }

    /// Reserves the earliest conflict-free interval of length `duration`
    /// starting at or after `ready_at`. Convenience wrapper over
    /// [`try_acquire`] for protocol schedules whose durations are built
    /// from validated model parameters.
    ///
    /// # Panics
    /// Panics when `duration` is negative or non-finite, or when the
    /// grant's end overflows the clock.
    ///
    /// [`try_acquire`]: UnitResource::try_acquire
    pub fn acquire(&mut self, ready_at: SimTime, duration: f64) -> Grant {
        self.try_acquire(ready_at, duration)
            // hetero-check: allow(expect) — documented-panic wrapper; the fallible form is try_acquire
            .expect("invalid duration")
    }

    /// The earliest time a new request could begin service.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }

    /// Number of grants issued so far.
    pub fn grants(&self) -> u64 {
        self.granted
    }

    /// Total busy time across all grants.
    pub fn busy_total(&self) -> f64 {
        self.busy_total
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        if horizon.get() <= 0.0 {
            0.0
        } else {
            self.busy_total / horizon.get()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_are_serial_and_fifo() {
        let mut r = UnitResource::new();
        let g1 = r.acquire(SimTime::ZERO, 5.0);
        let g2 = r.acquire(SimTime::ZERO, 3.0);
        let g3 = r.acquire(SimTime::new(20.0), 1.0);
        assert_eq!((g1.start.get(), g1.end.get()), (0.0, 5.0));
        assert_eq!((g2.start.get(), g2.end.get()), (5.0, 8.0));
        // A request arriving after the backlog clears starts immediately.
        assert_eq!((g3.start.get(), g3.end.get()), (20.0, 21.0));
        assert_eq!(r.grants(), 3);
    }

    #[test]
    fn no_two_grants_overlap() {
        let mut r = UnitResource::new();
        let durations = [1.5, 0.25, 4.0, 0.0, 2.0];
        let grants: Vec<Grant> = durations
            .iter()
            .map(|&d| r.acquire(SimTime::new(0.5), d))
            .collect();
        for w in grants.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn wait_time_accounts_for_queueing() {
        let mut r = UnitResource::new();
        r.acquire(SimTime::ZERO, 10.0);
        let g = r.acquire(SimTime::new(4.0), 1.0);
        assert_eq!(g.wait_from(SimTime::new(4.0)), 6.0);
    }

    #[test]
    fn zero_duration_grant_is_ok() {
        let mut r = UnitResource::new();
        let g = r.acquire(SimTime::new(3.0), 0.0);
        assert_eq!(g.start, g.end);
    }

    #[test]
    fn utilization_tracks_busy_time() {
        let mut r = UnitResource::new();
        r.acquire(SimTime::ZERO, 2.0);
        r.acquire(SimTime::ZERO, 3.0);
        assert_eq!(r.busy_total(), 5.0);
        assert!((r.utilization(SimTime::new(10.0)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    #[should_panic(expected = "invalid duration")]
    fn negative_duration_panics() {
        let mut r = UnitResource::new();
        r.acquire(SimTime::ZERO, -1.0);
    }

    #[test]
    fn try_acquire_rejects_and_leaves_the_resource_untouched() {
        let mut r = UnitResource::new();
        for bad in [-1.0, f64::NAN, f64::INFINITY] {
            assert!(matches!(
                r.try_acquire(SimTime::ZERO, bad),
                Err(GrantError::InvalidDuration { .. })
            ));
        }
        assert_eq!(r.grants(), 0);
        assert_eq!(r.busy_total(), 0.0);
        assert_eq!(r.next_free(), SimTime::ZERO);
        // A clock overflow is reported as such, with the source chained.
        let err = r.try_acquire(SimTime::new(f64::MAX), f64::MAX).unwrap_err();
        assert!(matches!(err, GrantError::TimeOverflow(_)));
        assert!(err.to_string().contains("overflows"));
        assert_eq!(r.grants(), 0, "failed grants do not mutate");
        // The happy path matches the panicking wrapper exactly.
        let g = r.try_acquire(SimTime::new(2.0), 3.0).unwrap();
        assert_eq!((g.start.get(), g.end.get()), (2.0, 5.0));
    }
}
