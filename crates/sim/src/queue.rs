//! The pending-event set.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

use crate::SimTime;

/// One queued event: dispatch time plus a monotone sequence number that
/// makes simultaneous events dispatch in scheduling (FIFO) order.
struct Scheduled<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.time.cmp(&other.time).then(self.seq.cmp(&other.seq))
    }
}

/// A time-ordered event queue with deterministic FIFO tie-breaking.
///
/// Events scheduled for the same instant dispatch in the order they were
/// scheduled, so simulations are reproducible run to run.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Scheduled<E>>>,
    seq: u64,
    now: SimTime,
    dispatched: u64,
    high_water: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
            now: SimTime::ZERO,
            dispatched: 0,
            high_water: 0,
        }
    }

    /// The current clock: the dispatch time of the most recent [`pop`].
    ///
    /// [`pop`]: EventQueue::pop
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `payload` for dispatch at absolute time `t`.
    ///
    /// # Panics
    /// Panics when `t` is earlier than the current clock (causality).
    pub fn schedule_at(&mut self, t: SimTime, payload: E) {
        assert!(
            t >= self.now,
            "cannot schedule into the past: {t:?} < now {:?}",
            self.now
        );
        self.heap.push(Reverse(Scheduled {
            time: t,
            seq: self.seq,
            payload,
        }));
        self.seq += 1;
        self.high_water = self.high_water.max(self.heap.len());
    }

    /// Schedules `payload` for `dt` time units after the current clock.
    ///
    /// # Panics
    /// Panics when `dt` is negative.
    pub fn schedule_in(&mut self, dt: f64, payload: E) {
        assert!(dt >= 0.0, "negative delay {dt}");
        self.schedule_at(self.now + dt, payload);
    }

    /// Removes and returns the earliest event, advancing the clock to it.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(ev) = self.heap.pop()?;
        self.now = ev.time;
        self.dispatched += 1;
        Some((ev.time, ev.payload))
    }

    /// The dispatch time of the earliest queued event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.time)
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` iff no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events dispatched by [`pop`](EventQueue::pop) over the
    /// queue's lifetime — the simulation's `sim.events` metric.
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }

    /// The largest number of simultaneously pending events so far — the
    /// simulation's queue high-water mark.
    pub fn high_water(&self) -> usize {
        self.high_water
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::new(5.0), 'c');
        q.schedule_at(SimTime::new(1.0), 'a');
        q.schedule_at(SimTime::new(3.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, ['a', 'b', 'c']);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.schedule_at(SimTime::new(7.0), i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::new(2.0), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::new(2.0));
    }

    #[test]
    fn schedule_in_is_relative_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::new(2.0), 0);
        q.pop();
        q.schedule_in(1.5, 1);
        assert_eq!(q.peek_time(), Some(SimTime::new(3.5)));
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::new(2.0), 0);
        q.pop();
        q.schedule_at(SimTime::new(1.0), 1);
    }

    #[test]
    fn dispatched_and_high_water_track_lifetime_load() {
        let mut q = EventQueue::new();
        assert_eq!((q.dispatched(), q.high_water()), (0, 0));
        q.schedule_at(SimTime::new(1.0), 'a');
        q.schedule_at(SimTime::new(2.0), 'b');
        q.schedule_at(SimTime::new(3.0), 'c');
        assert_eq!(q.high_water(), 3);
        q.pop();
        q.pop();
        // High water is a lifetime mark; it does not recede.
        q.schedule_at(SimTime::new(4.0), 'd');
        assert_eq!(q.high_water(), 3);
        while q.pop().is_some() {}
        assert_eq!(q.dispatched(), 4);
    }

    #[test]
    fn len_and_is_empty() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        q.schedule_at(SimTime::ZERO, ());
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }
}
