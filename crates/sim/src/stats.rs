//! Online statistics accumulators.
//!
//! Simulation sweeps aggregate thousands of per-trial observations;
//! [`OnlineStats`] folds them in one pass with Welford's numerically
//! stable mean/variance update (no stored samples, no cancellation), and
//! [`FixedHistogram`] buckets them for distribution-shaped summaries.

/// Single-pass mean/variance/extrema accumulator (Welford's algorithm).
///
/// ```
/// use hetero_sim::stats::OnlineStats;
/// let mut s = OnlineStats::new();
/// for v in [1.0, 2.0, 3.0, 4.0] {
///     s.push(v);
/// }
/// assert_eq!(s.mean(), 2.5);
/// assert_eq!(s.variance(), 1.25);
/// assert_eq!((s.min(), s.max()), (1.0, 4.0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Folds one observation.
    ///
    /// # Panics
    /// Panics on NaN (a NaN observation would silently poison every
    /// statistic).
    pub fn push(&mut self, v: f64) {
        assert!(!v.is_nan(), "NaN observation");
        self.count += 1;
        let delta = v - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (v - self.mean);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Merges another accumulator (Chan's parallel combination), so
    /// per-worker partials can be reduced.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let (n1, n2) = (self.count as f64, other.count as f64);
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Population standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation (`+∞` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (`−∞` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// Fixed-width histogram over `[lo, hi)` with out-of-range clamping.
#[derive(Debug, Clone)]
pub struct FixedHistogram {
    lo: f64,
    width: f64,
    counts: Vec<u64>,
}

impl FixedHistogram {
    /// `buckets` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `hi ≤ lo` or `buckets == 0`.
    pub fn new(lo: f64, hi: f64, buckets: usize) -> Self {
        assert!(hi > lo, "empty range");
        assert!(buckets > 0, "need at least one bucket");
        FixedHistogram {
            lo,
            width: (hi - lo) / buckets as f64,
            counts: vec![0; buckets],
        }
    }

    /// Records one observation (values outside the range clamp to the
    /// first/last bucket).
    pub fn push(&mut self, v: f64) {
        let idx = ((v - self.lo) / self.width).floor();
        let idx = (idx.max(0.0) as usize).min(self.counts.len() - 1);
        self.counts[idx] += 1;
    }

    /// Bucket counts, in range order.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(bucket_lo, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .map(move |(i, &c)| (self.lo + i as f64 * self.width, c))
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_direct_computation() {
        let data = [0.3, 1.7, -2.2, 5.0, 0.0, 3.1];
        let mut s = OnlineStats::new();
        for &v in &data {
            s.push(v);
        }
        let n = data.len() as f64;
        let mean = data.iter().sum::<f64>() / n;
        let var = data.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        assert!((s.mean() - mean).abs() < 1e-14);
        assert!((s.variance() - var).abs() < 1e-14);
        assert_eq!(s.count(), 6);
        assert_eq!(s.min(), -2.2);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn welford_is_stable_for_large_offsets() {
        // Classic catastrophic-cancellation case: tiny variance on a huge
        // mean. The naive Σx² − (Σx)²/n formula fails here.
        let mut s = OnlineStats::new();
        for v in [1e9 + 1.0, 1e9 + 2.0, 1e9 + 3.0] {
            s.push(v);
        }
        assert!((s.variance() - 2.0 / 3.0).abs() < 1e-6);
    }

    #[test]
    fn empty_and_single_edge_cases() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        let mut s = OnlineStats::new();
        s.push(7.0);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut whole = OnlineStats::new();
        for &v in &data {
            whole.push(v);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &v in &data[..33] {
            a.push(v);
        }
        for &v in &data[33..] {
            b.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-12);
        assert!((a.variance() - whole.variance()).abs() < 1e-12);
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        // Merging an empty accumulator is a no-op either way.
        let empty = OnlineStats::new();
        let before = a.mean();
        a.merge(&empty);
        assert_eq!(a.mean(), before);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        OnlineStats::new().push(f64::NAN);
    }

    #[test]
    fn histogram_buckets_and_clamps() {
        let mut h = FixedHistogram::new(0.0, 1.0, 4);
        for v in [0.1, 0.3, 0.3, 0.6, 0.9, -5.0, 5.0] {
            h.push(v);
        }
        assert_eq!(h.counts(), &[2, 2, 1, 2]); // clamped ends included
        assert_eq!(h.total(), 7);
        let firsts: Vec<f64> = h.iter().map(|(lo, _)| lo).collect();
        assert_eq!(firsts, vec![0.0, 0.25, 0.5, 0.75]);
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn histogram_rejects_bad_range() {
        let _ = FixedHistogram::new(1.0, 1.0, 4);
    }
}
