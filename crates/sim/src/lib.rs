//! # hetero-sim — a deterministic discrete-event simulation engine
//!
//! The heterogeneity paper validates its closed-form analysis "via
//! simulations that illustrate and elucidate the analytical results". The
//! authors' simulator was never released, so this crate provides the
//! substrate: a small, deterministic discrete-event core on which
//! `hetero-protocol` executes worksharing protocols event by event.
//!
//! * [`SimTime`] — totally ordered simulation clock value (finite `f64`).
//! * [`EventQueue`] — time-ordered pending-event set with FIFO tie-breaking,
//!   so runs are exactly reproducible.
//! * [`run`] / [`run_until`] — the event loop.
//! * [`UnitResource`] — a serially reusable resource (a computer, or the
//!   paper's *single-message-in-transit* network) granting time intervals.
//! * [`Trace`] — span recorder producing the action/time diagrams of the
//!   paper's Figures 1–2.
//! * [`stats`] — online (Welford) accumulators and fixed histograms for
//!   sweep aggregation.
//!
//! ```
//! use hetero_sim::{EventQueue, SimTime};
//!
//! let mut q = EventQueue::new();
//! q.schedule_at(SimTime::new(2.0), "later");
//! q.schedule_at(SimTime::new(1.0), "sooner");
//! let mut order = Vec::new();
//! hetero_sim::run(&mut order, &mut q, |order, _q, _t, ev| order.push(ev));
//! assert_eq!(order, ["sooner", "later"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod queue;
mod resource;
mod time;
mod trace;

pub mod stats;

pub use queue::EventQueue;
pub use resource::{Grant, GrantError, UnitResource};
pub use time::{NonFiniteTime, SimTime};
pub use trace::{BackwardsSpan, Span, Trace};

/// Drains the queue, dispatching every event to `handler` in time order.
///
/// The handler may schedule further events; the loop ends when the queue is
/// empty. Returns the time of the last dispatched event (or `None` if the
/// queue started empty).
pub fn run<S, E, F>(state: &mut S, queue: &mut EventQueue<E>, mut handler: F) -> Option<SimTime>
where
    F: FnMut(&mut S, &mut EventQueue<E>, SimTime, E),
{
    let mut last = None;
    while let Some((t, ev)) = queue.pop() {
        last = Some(t);
        handler(state, queue, t, ev);
    }
    last
}

/// Like [`run`] but stops once the next event is strictly later than
/// `horizon` (that event stays queued). Returns the last dispatched time.
pub fn run_until<S, E, F>(
    state: &mut S,
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    mut handler: F,
) -> Option<SimTime>
where
    F: FnMut(&mut S, &mut EventQueue<E>, SimTime, E),
{
    let mut last = None;
    while let Some(next) = queue.peek_time() {
        if next > horizon {
            break;
        }
        // hetero-check: allow(expect) — peek_time just returned Some, and nothing pops between
        let (t, ev) = queue.pop().expect("peeked event exists");
        last = Some(t);
        handler(state, queue, t, ev);
    }
    last
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_dispatches_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::new(3.0), 3);
        q.schedule_at(SimTime::new(1.0), 1);
        q.schedule_at(SimTime::new(2.0), 2);
        let mut seen = Vec::new();
        let last = run(&mut seen, &mut q, |seen, _, _, ev| seen.push(ev));
        assert_eq!(seen, [1, 2, 3]);
        assert_eq!(last, Some(SimTime::new(3.0)));
    }

    #[test]
    fn handler_can_schedule_more_events() {
        // A chain: each event at t schedules one at t+1 until t = 5.
        let mut q = EventQueue::new();
        q.schedule_at(SimTime::ZERO, ());
        let mut count = 0u32;
        run(&mut count, &mut q, |count, q, t, ()| {
            *count += 1;
            if t.get() < 5.0 {
                q.schedule_at(t + 1.0, ());
            }
        });
        assert_eq!(count, 6);
    }

    #[test]
    fn run_until_respects_horizon() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule_at(SimTime::new(f64::from(i)), i);
        }
        let mut seen = Vec::new();
        run_until(&mut seen, &mut q, SimTime::new(4.0), |s, _, _, ev| {
            s.push(ev)
        });
        assert_eq!(seen, [0, 1, 2, 3, 4]);
        assert_eq!(q.len(), 5);
        // Boundary event at exactly the horizon is included.
        assert_eq!(q.peek_time(), Some(SimTime::new(5.0)));
    }

    #[test]
    fn empty_queue_returns_none() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert_eq!(run(&mut (), &mut q, |_, _, _, _| {}), None);
    }
}
