//! The simulation clock value.

use std::error::Error;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Rejected clock value: NaN or infinite.
///
/// Produced by [`SimTime::try_new`] when a computed time is not finite —
/// e.g. a fault-perturbed duration that overflowed. Carries the offending
/// value so callers can report where the arithmetic went wrong.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NonFiniteTime {
    /// The offending non-finite value.
    pub value: f64,
}

impl fmt::Display for NonFiniteTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "simulation time must be finite, got {}", self.value)
    }
}

impl Error for NonFiniteTime {}

/// A point on the simulation clock.
///
/// `SimTime` wraps a *finite* `f64` and is totally ordered, which is what
/// lets the event queue implement `Ord`. Construction rejects NaN and
/// infinities, so every comparison is meaningful.
///
/// ```
/// use hetero_sim::SimTime;
/// let t = SimTime::new(1.5) + 2.5;
/// assert_eq!(t.get(), 4.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Clone, Copy, PartialEq, PartialOrd)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero — the conventional start of a simulation.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Wraps a finite clock value, rejecting NaN and infinities.
    ///
    /// This is the fallible constructor library code should use whenever
    /// the value is computed from untrusted arithmetic (fault-perturbed
    /// rates, external input); [`SimTime::new`] is its documented-panic
    /// convenience wrapper.
    pub fn try_new(t: f64) -> Result<Self, NonFiniteTime> {
        if t.is_finite() {
            Ok(SimTime(t))
        } else {
            Err(NonFiniteTime { value: t })
        }
    }

    /// Wraps a finite clock value. Convenience wrapper over [`try_new`]
    /// for call sites whose values come straight off the causal event
    /// clock; callers with untrusted values should use [`try_new`] and
    /// handle the error.
    ///
    /// # Panics
    /// Panics when `t` is NaN or infinite.
    ///
    /// [`try_new`]: SimTime::try_new
    pub fn new(t: f64) -> Self {
        // hetero-check: allow(expect) — documented-panic wrapper; the fallible form is try_new
        Self::try_new(t).expect("SimTime must be finite")
    }

    /// Advances the clock by `dt`, rejecting a non-finite result — the
    /// fallible form of `self + dt` for durations derived from untrusted
    /// (e.g. fault-perturbed) arithmetic.
    pub fn try_add(self, dt: f64) -> Result<Self, NonFiniteTime> {
        Self::try_new(self.0 + dt)
    }

    /// The underlying clock value.
    pub fn get(self) -> f64 {
        self.0
    }

    /// The later of two times.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

// Finite-only invariant makes the order total.
impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // total_cmp agrees with partial_cmp on the finite values the
        // constructor admits, and is total by construction.
        self.0.total_cmp(&other.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, dt: f64) -> SimTime {
        SimTime::new(self.0 + dt)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, dt: f64) {
        *self = *self + dt;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = f64;
    fn sub(self, other: SimTime) -> f64 {
        self.0 - other.0
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_numeric() {
        assert!(SimTime::new(1.0) < SimTime::new(2.0));
        assert_eq!(SimTime::new(3.0), SimTime::new(3.0));
        assert_eq!(SimTime::new(5.0).max(SimTime::new(2.0)), SimTime::new(5.0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::new(1.0) + 0.5;
        assert_eq!(t.get(), 1.5);
        assert_eq!(t - SimTime::new(1.0), 0.5);
        let mut u = SimTime::ZERO;
        u += 2.0;
        assert_eq!(u.get(), 2.0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn nan_rejected() {
        let _ = SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn overflow_to_infinity_rejected() {
        let _ = SimTime::new(f64::MAX) + f64::MAX;
    }

    #[test]
    fn try_new_returns_the_offending_value() {
        assert_eq!(SimTime::try_new(2.5), Ok(SimTime::new(2.5)));
        let err = SimTime::try_new(f64::INFINITY).unwrap_err();
        assert_eq!(err.value, f64::INFINITY);
        assert!(err.to_string().contains("finite"));
        let nan = SimTime::try_new(f64::NAN).unwrap_err();
        assert!(nan.value.is_nan());
    }

    #[test]
    fn try_add_rejects_overflow() {
        assert_eq!(
            SimTime::new(1.0).try_add(0.5),
            Ok(SimTime::new(1.5)),
            "finite advance succeeds"
        );
        assert!(SimTime::new(f64::MAX).try_add(f64::MAX).is_err());
        assert!(SimTime::ZERO.try_add(f64::NAN).is_err());
    }
}
