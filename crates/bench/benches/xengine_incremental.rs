//! Bench — the incremental xengine's O(1) replacement query against a
//! from-scratch `x_measure_of_rhos` re-evaluation, across cluster sizes.
//!
//! The query cost must be flat in n while the from-scratch baseline grows
//! linearly; the ratio at n = 16384 is the headline number recorded in
//! `BENCH_pr2.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::xengine::XScan;
use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::{Params, Profile};
use std::hint::black_box;

const SIZES: [usize; 3] = [64, 1024, 16_384];

fn bench_replace(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("xengine/replace_o1");
    for n in SIZES {
        let scan = XScan::from_profile(&params, &Profile::harmonic(n));
        let k = n / 2;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(scan.replace(black_box(k), black_box(0.123)).unwrap()))
        });
    }
    group.finish();

    // Enabled-path overhead of the replace counter (one relaxed
    // fetch_add per query) — paired with `xengine/replace_o1` for
    // BENCH_pr3.json.
    let mut group = c.benchmark_group("xengine/replace_o1_obs_on");
    for n in SIZES {
        let scan = XScan::from_profile(&params, &Profile::harmonic(n));
        let k = n / 2;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            hetero_obs::reset();
            hetero_obs::enable();
            b.iter(|| black_box(scan.replace(black_box(k), black_box(0.123)).unwrap()));
            hetero_obs::disable();
            hetero_obs::reset();
        });
    }
    group.finish();

    let mut group = c.benchmark_group("xengine/replace_scratch_baseline");
    for n in SIZES {
        let mut rhos = Profile::harmonic(n).rhos().to_vec();
        let k = n / 2;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                rhos[k] = black_box(0.123);
                black_box(x_measure_of_rhos(&params, &rhos))
            })
        });
    }
    group.finish();

    // The O(n) accepted-upgrade path and the O(n) one-time build.
    let mut group = c.benchmark_group("xengine/commit");
    for n in SIZES {
        let mut scan = XScan::from_profile(&params, &Profile::harmonic(n));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                scan.commit(black_box(n / 2), black_box(0.123)).unwrap();
                black_box(scan.x())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replace);
criterion_main!(benches);
