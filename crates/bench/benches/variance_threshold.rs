//! Bench E7 — the §4.3 threshold-θ search.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_experiments::threshold::{self, ThresholdConfig};
use std::hint::black_box;

fn bench_threshold(c: &mut Criterion) {
    let mut group = c.benchmark_group("threshold");
    group.sample_size(10);
    group.bench_function("search_small", |b| {
        let cfg = ThresholdConfig {
            sizes: vec![8, 64],
            trials_per_combo: 100,
            seed: 3,
            ..ThresholdConfig::default()
        };
        b.iter(|| {
            let e = threshold::run(&cfg);
            black_box(e.theta)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_threshold);
criterion_main!(benches);
