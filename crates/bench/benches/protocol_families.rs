//! Bench — the per-execution DES cost of the four protocol families on
//! identical fault plans.
//!
//! The PR 9 resilience sweep (E22) replays every sampled fault plan
//! through all four families, so the sweep's wall-clock is the sum of
//! these per-family costs. The interesting ratios: the oblivious
//! executor is the floor; adaptive replanning adds boundary-time
//! detection plus suffix re-solves; work exchange adds the parcel
//! lifecycle (extra DES events and trace spans per trade); MDS coding
//! pays the assignment up front and then runs the oblivious replay minus
//! retransmission. The empty-plan group pins the fault machinery's
//! zero-cost claim on the happy path against the pristine executor.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::{Params, Profile};
use hetero_faults::{FaultConfig, FaultPlan};
use hetero_protocol::coded::{execute_coded, mds_assignment};
use hetero_protocol::exchange::{execute_exchange, ExchangePolicy};
use hetero_protocol::replan::{execute_adaptive, HedgePolicy};
use hetero_protocol::{alloc, exec, fault_exec};
use std::hint::black_box;

const SIZES: [usize; 3] = [8, 32, 128];
const LIFESPAN: f64 = 600.0;

/// One straggler, one crash, and a couple of losses — the mixed-vocabulary
/// plan shape every E22 cell replays (seeded, so every run and every
/// family sees the same specs).
fn sweep_plan(n: usize) -> FaultPlan {
    FaultPlan::sample(
        &FaultConfig {
            crash_p: 0.1,
            straggler_count: 1,
            straggler_factor: 3.0,
            loss_p: 0.2,
            loss_max: 1,
            ..FaultConfig::default()
        },
        n,
        LIFESPAN,
        0x9E22,
    )
    .expect("sweep config is valid")
}

fn bench_families(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("protocol_families/faulted");
    for n in SIZES {
        let profile = Profile::harmonic(n);
        let plan = alloc::fifo_plan(&params, &profile, LIFESPAN).unwrap();
        let coded = mds_assignment(&params, &profile, LIFESPAN, n / 2).unwrap();
        let faults = sweep_plan(n);
        let hedge = HedgePolicy {
            margin: 0.1,
            ..HedgePolicy::default()
        };
        let xpolicy = ExchangePolicy {
            fallback: hedge,
            ..ExchangePolicy::default()
        };

        group.bench_with_input(BenchmarkId::new("oblivious", n), &n, |b, _| {
            b.iter(|| {
                black_box(
                    fault_exec::execute_with_faults(&params, &profile, &plan, &faults).unwrap(),
                )
            })
        });
        group.bench_with_input(BenchmarkId::new("adaptive", n), &n, |b, _| {
            b.iter(|| {
                black_box(execute_adaptive(&params, &profile, &plan, &faults, &hedge).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("exchange", n), &n, |b, _| {
            b.iter(|| {
                black_box(execute_exchange(&params, &profile, &plan, &faults, &xpolicy).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("coded", n), &n, |b, _| {
            b.iter(|| black_box(execute_coded(&params, &profile, &coded, &faults).unwrap()))
        });
    }
    group.finish();

    // The empty-plan claim: the fault-aware executors add nothing on the
    // happy path, so each family should track the pristine DES within
    // noise (coded additionally clones its assignment into the result).
    let mut group = c.benchmark_group("protocol_families/empty_plan");
    for n in SIZES {
        let profile = Profile::harmonic(n);
        let plan = alloc::fifo_plan(&params, &profile, LIFESPAN).unwrap();
        let coded = mds_assignment(&params, &profile, LIFESPAN, n / 2).unwrap();
        let empty = FaultPlan::empty();
        let xpolicy = ExchangePolicy::default();

        group.bench_with_input(BenchmarkId::new("pristine", n), &n, |b, _| {
            b.iter(|| black_box(exec::execute(&params, &profile, &plan)))
        });
        group.bench_with_input(BenchmarkId::new("exchange", n), &n, |b, _| {
            b.iter(|| {
                black_box(execute_exchange(&params, &profile, &plan, &empty, &xpolicy).unwrap())
            })
        });
        group.bench_with_input(BenchmarkId::new("coded", n), &n, |b, _| {
            b.iter(|| black_box(execute_coded(&params, &profile, &coded, &empty).unwrap()))
        });
    }
    group.finish();

    // The assignment itself: fifo_plan plus a sort — the up-front price
    // coding pays before any execution.
    let mut group = c.benchmark_group("protocol_families/mds_assignment");
    for n in SIZES {
        let profile = Profile::harmonic(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                black_box(mds_assignment(&params, &profile, LIFESPAN, black_box(n / 2)).unwrap())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_families);
criterion_main!(benches);
