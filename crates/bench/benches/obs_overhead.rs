//! Bench — observability gate overhead on the protocol hot path.
//!
//! One iteration builds nothing: it executes a pre-built optimal FIFO
//! plan on the discrete-event simulator, the most heavily instrumented
//! loop in the workspace (per-phase Welford observations, quantile
//! sketches, utilisation gauges, and causal span recording). The
//! `disabled` group measures the one-relaxed-atomic-load fast path the
//! whole workspace pays by default; the `enabled` group measures full
//! recording into the thread-local collector. The PR 8 acceptance bar
//! is disabled ≤ noise floor and enabled ≤ 2% over disabled.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_bench::{battery_profile, params};
use hetero_protocol::{alloc, exec};
use std::hint::black_box;

fn bench_obs_overhead(c: &mut Criterion) {
    let p = params();
    let lifespan = 1000.0;

    let mut group = c.benchmark_group("obs/execute_gate");
    for n in [32usize, 256] {
        let profile = battery_profile(n);
        let plan = alloc::fifo_plan(&p, &profile, lifespan).expect("plan");

        hetero_obs::disable();
        group.bench_with_input(
            BenchmarkId::new("disabled", n),
            &(&profile, &plan),
            |b, (prof, plan)| {
                b.iter(|| {
                    let run = exec::execute(&p, prof, plan);
                    black_box(run.work_completed_by(lifespan))
                })
            },
        );

        hetero_obs::enable();
        group.bench_with_input(
            BenchmarkId::new("enabled", n),
            &(&profile, &plan),
            |b, (prof, plan)| {
                b.iter(|| {
                    let run = exec::execute(&p, prof, plan);
                    black_box(run.work_completed_by(lifespan))
                })
            },
        );
        hetero_obs::disable();
        hetero_obs::reset();
    }
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
