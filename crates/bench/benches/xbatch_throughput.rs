//! Bench — batched X-measure throughput against the scalar kernel.
//!
//! The lockstep kernel in `hetero_core::xbatch` advances the Theorem 2
//! recurrence for eight same-length profiles at once: eight independent
//! division chains fill the divider pipeline that a single scalar
//! recurrence leaves stalled, so the speedup is instruction-level
//! parallelism on one core, not threading. Per-lane operations are the
//! scalar sequence exactly, so results stay bit-identical. The batched
//! throughput at n = 1024 over a 4096-profile batch is the headline
//! number recorded in `BENCH_pr5.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::{xmeasure, Params};
use std::hint::black_box;

const SIZES: [usize; 2] = [64, 1024];
const BATCH: usize = 4096;

/// A deterministic spread of speeds: distinct magnitudes per row so the
/// compensated sums do real work, no RNG so runs compare cleanly.
fn row(n: usize, r: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 / (1.0 + i as f64 + (r % 7) as f64 / 7.0))
        .collect()
}

fn bench_xbatch(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("xbatch/x_measures");
    for n in SIZES {
        let rows: Vec<Vec<f64>> = (0..BATCH).map(|r| row(n, r)).collect();
        let mut batch = ProfileBatch::with_capacity(BATCH, BATCH * n);
        for r in &rows {
            batch.push(r);
        }
        group.throughput(Throughput::Elements((BATCH * n) as u64));

        group.bench_with_input(BenchmarkId::new("scalar", n), &rows, |b, rows| {
            b.iter(|| {
                let mut acc = 0.0f64;
                for r in rows {
                    acc += xmeasure::x_measure_of_rhos(&params, black_box(r));
                }
                black_box(acc)
            })
        });

        group.bench_with_input(BenchmarkId::new("batched", n), &batch, |b, batch| {
            let mut out = Vec::with_capacity(BATCH);
            b.iter(|| {
                xbatch::x_measures_into(&params, black_box(batch), &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_xbatch);
criterion_main!(benches);
