//! Bench — exhaustive best-k subset search, serial Gray-code walk vs the
//! segmented parallel walk on the persistent pool.
//!
//! The parallel search partitions the 2ⁿ mask space into contiguous
//! Gray-code segments, seeds each segment's running level stack in O(n),
//! and reduces with the serial tie-break (max X, then lowest mask), so
//! the winner is bit-identical at every thread count. The 8-thread
//! speedup at n = 28 is the headline number recorded in
//! `BENCH_pr5.json`; on a single-core host the pool degrades to the
//! serial walk plus segmentation overhead, which this bench makes
//! visible rather than hiding.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::selection::{best_k_subset, best_k_subset_par};
use hetero_core::{Params, Profile};
use std::hint::black_box;

const SIZES: [usize; 2] = [24, 28];

fn bench_subset(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("selection/best_k_subset");
    // 2²⁸ masks per evaluation: keep the sample count at the floor so
    // the full bench stays in CI-friendly time.
    group.sample_size(3);
    for n in SIZES {
        let profile = Profile::uniform_spread(n);
        let k = n / 2;

        group.bench_with_input(BenchmarkId::new("serial", n), &profile, |b, p| {
            b.iter(|| best_k_subset(&params, black_box(p), k).expect("valid k"))
        });

        for threads in [2usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("par{threads}"), n),
                &profile,
                |b, p| {
                    b.iter(|| {
                        best_k_subset_par(&params, black_box(p), k, threads).expect("valid k")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_subset);
criterion_main!(benches);
