//! Bench — exhaustive best-k subset search, serial Gray-code walk vs the
//! segmented parallel walk on the persistent pool.
//!
//! The parallel search partitions the 2ⁿ mask space into contiguous
//! Gray-code segments, seeds each segment's running level stack in O(n),
//! and reduces with the serial tie-break (max X, then lowest mask), so
//! the winner is bit-identical at every thread count. Two variants are
//! timed against the serial walk:
//!
//! * `par-public` — the public [`best_k_subset_par`] entry point, which
//!   since PR 7 falls back to the serial walk whenever the pool is
//!   configured with a single worker. On a one-core host this guard must
//!   hold the public path at ~1.0× of serial (the BENCH_pr5 regression
//!   was 0.76–0.81×); that ratio is the bench-guard recorded in
//!   `BENCH_pr7.json`.
//! * `par{t}` — the raw segmented walk (`best_k_subset_par_segments`),
//!   bypassing the fallback, which keeps the segmentation overhead
//!   visible rather than hiding it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::selection::{best_k_subset_gray, best_k_subset_par, best_k_subset_par_segments};
use hetero_core::{Params, Profile};
use std::hint::black_box;

const SIZES: [usize; 2] = [24, 28];

fn bench_subset(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("selection/best_k_subset");
    // 2²⁸ masks per evaluation: keep the sample count at the floor so
    // the full bench stays in CI-friendly time.
    group.sample_size(3);
    for n in SIZES {
        let profile = Profile::uniform_spread(n);
        let k = n / 2;

        group.bench_with_input(BenchmarkId::new("serial", n), &profile, |b, p| {
            b.iter(|| best_k_subset_gray(&params, black_box(p), k).expect("valid k"))
        });

        // The public entry point: on a single-core host the fallback
        // routes this straight to the serial walk (≈1.0× is the guard).
        group.bench_with_input(BenchmarkId::new("par-public", n), &profile, |b, p| {
            b.iter(|| best_k_subset_par(&params, black_box(p), k, 8).expect("valid k"))
        });

        for threads in [2usize, 8] {
            group.bench_with_input(
                BenchmarkId::new(format!("par{threads}"), n),
                &profile,
                |b, p| {
                    b.iter(|| {
                        best_k_subset_par_segments(&params, black_box(p), k, threads)
                            .expect("valid k")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_subset);
criterion_main!(benches);
