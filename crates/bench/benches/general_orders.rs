//! Bench E9b — the general (Σ, Φ) allocation solver (hetero-linalg LU)
//! against the FIFO closed form, and the LIFO plan construction.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_bench::{battery_profile, params};
use hetero_protocol::{alloc, general};
use std::hint::black_box;

fn bench_general(c: &mut Criterion) {
    let p = params();
    let lifespan = 1000.0;

    let mut group = c.benchmark_group("general/solver_vs_closed_form");
    for n in [4usize, 16, 64] {
        let profile = battery_profile(n);
        let order: Vec<usize> = (0..n).collect();
        group.bench_with_input(BenchmarkId::new("closed_form", n), &profile, |b, prof| {
            b.iter(|| black_box(alloc::fifo_plan(&p, prof, lifespan).unwrap().total_work()))
        });
        group.bench_with_input(
            BenchmarkId::new("linear_system", n),
            &(profile.clone(), order),
            |b, (prof, ord)| {
                b.iter(|| {
                    black_box(
                        general::general_plan(&p, prof, ord, ord, lifespan)
                            .unwrap()
                            .total_work(),
                    )
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("lifo", n), &profile, |b, prof| {
            b.iter(|| black_box(general::lifo_plan(&p, prof, lifespan).unwrap().total_work()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_general);
criterion_main!(benches);
