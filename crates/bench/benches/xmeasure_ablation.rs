//! DESIGN.md §8 ablations on the measurement core:
//!
//! * compensated (Neumaier) vs naive X-measure summation;
//! * f64 vs exact-rational X evaluation;
//! * symmetric functions by dynamic programming vs divide-and-conquer
//!   (f64 and exact).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_bench::{battery_profile, params};
use hetero_core::xmeasure;
use hetero_exact::Ratio;
use hetero_symfunc::elementary::{elementary_all, elementary_all_dc};
use hetero_symfunc::exact_model::{exact_rhos, x_exact, ExactParams};
use std::hint::black_box;

fn bench_x(c: &mut Criterion) {
    let p = params();

    let mut group = c.benchmark_group("x/kahan_vs_naive");
    for n in [16usize, 256, 4096, 65_536] {
        let profile = battery_profile(n);
        group.bench_with_input(BenchmarkId::new("compensated", n), &profile, |b, prof| {
            b.iter(|| black_box(xmeasure::x_measure(&p, prof)))
        });
        group.bench_with_input(BenchmarkId::new("naive", n), &profile, |b, prof| {
            b.iter(|| black_box(xmeasure::x_measure_naive(&p, prof.rhos())))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("x/f64_vs_exact");
    group.sample_size(10);
    let ep = ExactParams::from_params(&p);
    for n in [4usize, 8, 16] {
        let profile = battery_profile(n);
        let rhos = exact_rhos(&profile);
        group.bench_with_input(BenchmarkId::new("f64", n), &profile, |b, prof| {
            b.iter(|| black_box(xmeasure::x_measure(&p, prof)))
        });
        group.bench_with_input(BenchmarkId::new("exact", n), &rhos, |b, rhos| {
            b.iter(|| black_box(x_exact(&ep, rhos)))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("symfunc/dp_vs_dc");
    for n in [32usize, 256] {
        let f64_vals: Vec<f64> = battery_profile(n).rhos().to_vec();
        group.bench_with_input(BenchmarkId::new("dp_f64", n), &f64_vals, |b, v| {
            b.iter(|| black_box(elementary_all(v)))
        });
        group.bench_with_input(BenchmarkId::new("dc_f64", n), &f64_vals, |b, v| {
            b.iter(|| black_box(elementary_all_dc(v)))
        });
    }
    group.sample_size(10);
    let ratio_vals: Vec<Ratio> = (1..=24).map(|i| Ratio::from_frac(1, i)).collect();
    group.bench_function("dp_exact_24", |b| {
        b.iter(|| black_box(elementary_all(&ratio_vals)))
    });
    group.bench_function("dc_exact_24", |b| {
        b.iter(|| black_box(elementary_all_dc(&ratio_vals)))
    });
    group.finish();
}

criterion_group!(benches, bench_x);
criterion_main!(benches);
