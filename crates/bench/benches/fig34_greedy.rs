//! Bench E4/E5 — regenerates the **Figure 3–4** greedy-speedup experiment
//! and scales the greedy engine over cluster size and round count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::{speedup, Params};
use hetero_experiments::fig34;
use std::hint::black_box;

fn bench_fig34(c: &mut Criterion) {
    c.bench_function("fig34/full_reproduction", |b| {
        b.iter(|| {
            let f = fig34::run_paper();
            assert_eq!(f.phase1.len(), 16);
            assert_eq!(f.phase2.len(), 4);
            black_box(f.phase2.last().unwrap().step.x)
        })
    });

    // Engine scaling: one greedy round is n candidate X evaluations.
    let p = Params::fig34();
    let mut group = c.benchmark_group("fig34/greedy_rounds");
    for n in [4usize, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(speedup::greedy_multiplicative(&p, &vec![1.0; n], 0.5, 8).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig34);
criterion_main!(benches);
