//! Bench E9/E10 — protocol-layer costs: building the optimal FIFO plan,
//! executing it on the discrete-event simulator, and the bisection cost
//! of sizing a baseline plan.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_bench::{battery_profile, params};
use hetero_protocol::{alloc, baseline, exec};
use std::hint::black_box;

fn bench_protocol(c: &mut Criterion) {
    let p = params();
    let lifespan = 1000.0;

    let mut group = c.benchmark_group("protocol/fifo_plan");
    // n = 2048 battery fleets saturate the channel under Table 1
    // parameters (A·X > 1): fifo_plan correctly refuses, so the sweep
    // stops at the largest feasible size.
    for n in [4usize, 32, 256] {
        let profile = battery_profile(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &profile, |b, prof| {
            b.iter(|| black_box(alloc::fifo_plan(&p, prof, lifespan).unwrap().total_work()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("protocol/des_execute");
    for n in [4usize, 32, 256] {
        let profile = battery_profile(n);
        let plan = alloc::fifo_plan(&p, &profile, lifespan).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(n),
            &(profile, plan),
            |b, (prof, plan)| {
                b.iter(|| {
                    let run = exec::execute(&p, prof, plan);
                    black_box(run.work_completed_by(lifespan))
                })
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("protocol/baseline_bisection");
    group.sample_size(10);
    let profile = battery_profile(16);
    group.bench_function("equal_split_16", |b| {
        b.iter(|| {
            black_box(
                baseline::equal_split_plan(&p, &profile, lifespan)
                    .unwrap()
                    .total_work(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_protocol);
criterion_main!(benches);
