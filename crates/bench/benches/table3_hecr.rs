//! Bench E2 — regenerates **Table 3** and races the two HECR
//! implementations (Proposition 1 closed form vs bisection).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_bench::params;
use hetero_core::{hecr, Profile};
use hetero_experiments::table3;
use std::hint::black_box;

fn bench_table3(c: &mut Criterion) {
    c.bench_function("table3/full_reproduction", |b| {
        b.iter(|| {
            let t = table3::run_paper();
            assert_eq!(t.rows.len(), 3);
            black_box(t.rows.last().unwrap().advantage)
        })
    });

    let p = params();
    let mut group = c.benchmark_group("table3/hecr_ablation");
    for n in [8usize, 32, 128, 1024] {
        let c1 = Profile::uniform_spread(n);
        group.bench_with_input(BenchmarkId::new("closed_form", n), &c1, |b, prof| {
            b.iter(|| black_box(hecr::hecr(&p, prof).unwrap()))
        });
        group.bench_with_input(BenchmarkId::new("bisection", n), &c1, |b, prof| {
            b.iter(|| black_box(hecr::hecr_bisect(&p, prof, 1e-12)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
