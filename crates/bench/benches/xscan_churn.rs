//! Bench — streaming X-measure churn: `ChurnScan` insert/delete vs a
//! from-scratch flat re-evaluation per membership change.
//!
//! One `churn` iteration is a steady-state membership event on a live
//! fleet: insert one worker, read the X-measure, delete that worker
//! (swap-with-tail plus an O(SEGMENT_CAPACITY + log n) tree path). One
//! `rebuild` iteration is what every membership change cost before the
//! streaming scan existed: a full O(n) `x_measure_of_rhos` pass over the
//! fleet. The ratio at growing n is the churn-throughput number recorded
//! in `BENCH_pr7.json`; the two values agree to ≤ 1e-12 relative (the
//! churn oracle proptest in `crates/core/src/xstream.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::xstream::ChurnScan;
use hetero_core::Params;
use std::hint::black_box;

const SIZES: [usize; 3] = [256, 4096, 65_536];

/// A deterministic spread of speeds in (0, 1]; no RNG so the bench input
/// is identical run to run.
fn speeds(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 - (i as f64) / (n as f64 + 1.0))
        .collect()
}

fn bench_churn(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("xscan/churn");
    for n in SIZES {
        let rhos = speeds(n);

        let (mut scan, _ids) = ChurnScan::from_rhos(&params, &rhos).expect("valid speeds");
        group.bench_with_input(BenchmarkId::new("churn", n), &(), |b, _| {
            b.iter(|| {
                let id = scan.insert(black_box(0.375)).expect("valid rho");
                let x = scan.x();
                scan.delete(id).expect("live handle");
                x
            })
        });

        group.bench_with_input(BenchmarkId::new("rebuild", n), &rhos, |b, r| {
            b.iter(|| x_measure_of_rhos(&params, black_box(r)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_churn);
criterion_main!(benches);
