//! Bench — the certified fast numeric mode against the strict kernels
//! (DESIGN.md §17): does breaking the divider dependency actually break
//! the divider ceiling?
//!
//! Scalar, n = 1024: the strict kernel issues two dependent divisions
//! per element; the 1-div reform halves that to one; the scalar
//! reciprocal-Newton chain is benched to *document* that on a
//! latency-bound evaluation it loses to one hardware divide (which is
//! why `NumericMode::Fast` picks the 1-div reform for scalars).
//!
//! Batch, n = 1024 over 4096 profiles: the strict lockstep kernel is
//! throughput-bound on the divider port; the fast lockstep kernel
//! replaces every `vdivpd` with `vrcp14pd` + two FMA Newton steps
//! (portable magic-seed Newton off AVX-512), so the port-bound
//! recurrence becomes FMA-bound. The strict-vs-fast batch pair is the
//! headline `BENCH_pr10.json` number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::{fastnum, xmeasure, NumericMode, Params};
use std::hint::black_box;

const N: usize = 1024;
const BATCH: usize = 4096;

/// Same deterministic speed spread as `xbatch_throughput`, so the
/// strict numbers stay comparable across BENCH documents.
fn row(n: usize, r: usize) -> Vec<f64> {
    (0..n)
        .map(|i| 1.0 / (1.0 + i as f64 + (r % 7) as f64 / 7.0))
        .collect()
}

fn bench_scalar(c: &mut Criterion) {
    let params = Params::paper_table1();
    let rhos = row(N, 0);
    let mut group = c.benchmark_group("fastnum/scalar");
    group.throughput(Throughput::Elements(N as u64));
    group.bench_with_input(BenchmarkId::new("strict", N), &rhos, |b, r| {
        b.iter(|| black_box(xmeasure::x_measure_of_rhos(&params, black_box(r))))
    });
    group.bench_with_input(BenchmarkId::new("fast_1div", N), &rhos, |b, r| {
        b.iter(|| black_box(fastnum::x_fast_1div(&params, black_box(r))))
    });
    group.bench_with_input(BenchmarkId::new("fast_rcp", N), &rhos, |b, r| {
        b.iter(|| black_box(fastnum::x_fast_rcp(&params, black_box(r))))
    });
    group.finish();
}

fn bench_batch(c: &mut Criterion) {
    let params = Params::paper_table1();
    let mut batch = ProfileBatch::with_capacity(BATCH, BATCH * N);
    for r in 0..BATCH {
        batch.push(&row(N, r));
    }
    let mut group = c.benchmark_group("fastnum/batch");
    group.throughput(Throughput::Elements((BATCH * N) as u64));
    group.sample_size(10);
    for (label, mode) in [("strict", NumericMode::Strict), ("fast", NumericMode::Fast)] {
        group.bench_with_input(BenchmarkId::new(label, N), &batch, |b, batch| {
            let mut out = Vec::with_capacity(BATCH);
            b.iter(|| {
                xbatch::x_measures_into_mode(&params, black_box(batch), mode, &mut out);
                black_box(out.last().copied())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_scalar, bench_batch);
criterion_main!(benches);
