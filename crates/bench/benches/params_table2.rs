//! Bench E1 — Tables 1–2: derived-constant evaluation and the Theorem 4
//! threshold. Trivially cheap; kept so every paper artifact has a bench
//! target, and as a floor reference for the other benches.

use criterion::{criterion_group, criterion_main, Criterion};
use hetero_core::Params;
use std::hint::black_box;

fn bench_params(c: &mut Criterion) {
    c.bench_function("params/derived_constants", |b| {
        let p = Params::paper_table1();
        b.iter(|| black_box((p.a(), p.b(), p.tau_delta(), p.theorem4_threshold())))
    });
    c.bench_function("params/construction_validated", |b| {
        b.iter(|| black_box(Params::new(1e-6, 1e-5, 1.0).unwrap()))
    });
}

criterion_group!(benches, bench_params);
criterion_main!(benches);
