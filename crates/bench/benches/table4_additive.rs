//! Bench E3 — regenerates **Table 4** (additive-speedup work ratios) and
//! measures the cost of a single best-upgrade decision at scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_bench::{battery_profile, params};
use hetero_core::speedup;
use hetero_experiments::table4;
use std::hint::black_box;

fn bench_table4(c: &mut Criterion) {
    c.bench_function("table4/full_reproduction", |b| {
        b.iter(|| {
            let t = table4::run_paper();
            assert_eq!(t.rows.len(), 4);
            black_box(t.rows.last().unwrap().ratio)
        })
    });

    // Decision cost: pick the best additive upgrade on an n-computer
    // cluster (n candidate evaluations of an O(n) measure → O(n²)).
    let p = params();
    let mut group = c.benchmark_group("table4/best_upgrade_decision");
    for n in [4usize, 16, 64, 256] {
        let profile = battery_profile(n);
        let phi = profile.fastest() / 2.0;
        group.bench_with_input(BenchmarkId::from_parameter(n), &profile, |b, prof| {
            b.iter(|| black_box(speedup::best_additive_index(&p, prof, phi)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table4);
criterion_main!(benches);
