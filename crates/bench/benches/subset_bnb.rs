//! Bench — branch-and-bound exact best-k selection vs the exhaustive
//! Gray-code walk.
//!
//! The Gray walk touches every one of the `2ⁿ − 1` nonempty subsets at
//! O(1) per step; the branch-and-bound search reaches the same winner —
//! bit-identical, proptested in `crates/core/src/selection.rs` — by
//! expanding only the nodes the Proposition 3 dominance rule and the
//! summary-tree admissible bound cannot discard. The head-to-head at
//! n ∈ {24, 28} is the PR 7 acceptance number (B&B must beat the serial
//! walk ≥ 10× at n = 28); the scale group runs the search alone at sizes
//! the walk cannot touch (its hard cap is n = 63).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::selection::{best_k_subset_gray, best_k_subset_with_stats};
use hetero_core::{Params, Profile};
use std::hint::black_box;

const HEAD_TO_HEAD: [usize; 2] = [24, 28];
const SCALE: [usize; 3] = [128, 1024, 4096];

fn bench_bnb(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("selection/bnb_vs_gray");
    // The n = 28 walk is ~1.4 s/iter on the bench host; hold the sample
    // count at criterion's floor.
    group.sample_size(10);
    for n in HEAD_TO_HEAD {
        let profile = Profile::uniform_spread(n);
        let k = n / 2;

        group.bench_with_input(BenchmarkId::new("gray", n), &profile, |b, p| {
            b.iter(|| best_k_subset_gray(&params, black_box(p), k).expect("valid k"))
        });
        group.bench_with_input(BenchmarkId::new("bnb", n), &profile, |b, p| {
            b.iter(|| best_k_subset_with_stats(&params, black_box(p), k).expect("valid k"))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("selection/bnb_scale");
    for n in SCALE {
        let profile = Profile::uniform_spread(n);
        let k = n / 2;
        group.bench_with_input(BenchmarkId::new("bnb", n), &profile, |b, p| {
            b.iter(|| best_k_subset_with_stats(&params, black_box(p), k).expect("valid k"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bnb);
criterion_main!(benches);
