//! Bench E6 — the §4.3 variance-predictor sweep, including the DESIGN.md
//! §8 ablation of serial vs parallel execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::Params;
use hetero_experiments::variance::{self, PairGenerator, VarianceConfig};
use std::hint::black_box;

fn bench_variance(c: &mut Criterion) {
    let params = Params::paper_table1();

    // Cost of a single trial across cluster sizes.
    let mut group = c.benchmark_group("variance/one_trial");
    for n in [16usize, 128, 1024, 8192] {
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            let mut s = 0u64;
            b.iter(|| {
                s = s.wrapping_add(1);
                black_box(variance::one_trial(
                    &params,
                    n,
                    PairGenerator::DiverseShapes,
                    s,
                ))
            })
        });
    }
    group.finish();

    // Serial vs parallel sweep (fixed small workload so the bench stays
    // quick; the speedup ratio is what matters).
    let mut group = c.benchmark_group("variance/sweep_threads");
    group.sample_size(10);
    for threads in [1usize, 2, 8] {
        let cfg = VarianceConfig {
            sizes: vec![64, 256],
            trials: 200,
            seed: 99,
            threads,
            generator: PairGenerator::DiverseShapes,
            ..VarianceConfig::default()
        };
        group.bench_with_input(BenchmarkId::from_parameter(threads), &cfg, |b, cfg| {
            b.iter(|| black_box(variance::run(cfg).rows.len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_variance);
criterion_main!(benches);
