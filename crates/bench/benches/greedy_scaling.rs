//! Bench — greedy upgrade rounds at growing n: the xengine-backed
//! `greedy_multiplicative` versus the pre-engine from-scratch candidate
//! rescan it replaced (re-sort + full re-evaluation per candidate).
//!
//! The before/after pair at each size feeds `BENCH_pr2.json`; the
//! acceptance bar is ≥5× at n = 16384.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::{speedup, Params, Profile};
use std::hint::black_box;

const SIZES: [usize; 3] = [64, 1024, 16_384];
const PSI: f64 = 0.5;

/// One greedy round exactly as implemented before the xengine: per
/// candidate, copy the speeds, apply the upgrade, re-sort, re-evaluate.
fn from_scratch_round(params: &Params, speeds: &[f64]) -> (usize, f64) {
    let mut sorted = vec![0.0f64; speeds.len()];
    let mut best: Option<(usize, f64)> = None;
    for j in 0..speeds.len() {
        sorted.copy_from_slice(speeds);
        sorted[j] *= PSI;
        sorted.sort_by(|a, b| b.total_cmp(a));
        let x = x_measure_of_rhos(params, &sorted);
        match best {
            Some((_, bx)) if x < bx => {}
            _ => best = Some((j, x)),
        }
    }
    best.expect("nonempty cluster")
}

fn bench_greedy(c: &mut Criterion) {
    let params = Params::paper_table1();

    let mut group = c.benchmark_group("greedy/incremental_round");
    group.sample_size(10);
    for n in SIZES {
        let speeds = Profile::harmonic(n).rhos().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(speedup::greedy_multiplicative(&params, &speeds, PSI, 1).unwrap()))
        });
    }
    group.finish();

    // Same workload with metric collection switched on: the gap between
    // this group and `greedy/incremental_round` is the enabled-path cost
    // of hetero-obs (counter bumps + kahan histogram); the gap between
    // `greedy/incremental_round` and the pre-obs baseline is the
    // disabled-path cost (one relaxed atomic load per hook, ≤2% bar —
    // both recorded in BENCH_pr3.json).
    let mut group = c.benchmark_group("greedy/incremental_round_obs_on");
    group.sample_size(10);
    for n in SIZES {
        let speeds = Profile::harmonic(n).rhos().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            hetero_obs::reset();
            hetero_obs::enable();
            b.iter(|| black_box(speedup::greedy_multiplicative(&params, &speeds, PSI, 1).unwrap()));
            hetero_obs::disable();
            hetero_obs::reset();
        });
    }
    group.finish();

    let mut group = c.benchmark_group("greedy/from_scratch_round");
    group.sample_size(3);
    for n in SIZES {
        let speeds = Profile::harmonic(n).rhos().to_vec();
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| black_box(from_scratch_round(&params, &speeds)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_greedy);
criterion_main!(benches);
