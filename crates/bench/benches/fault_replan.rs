//! Bench — the replanner's per-fault reaction cost against a from-scratch
//! re-solve, across cluster sizes.
//!
//! When the adaptive executor detects a straggler at a send boundary it
//! commits the rescaled ρ into its live `XScan` and re-walks the no-gap
//! recurrence over the surviving suffix — O(n) buffer-reusing passes with
//! no validation or allocation. The baseline builds a fresh `XScan` from
//! the rescaled speeds on every fault (validation, allocation, and the
//! X-measure from zero), the way a detector bolted onto the public solver
//! API would. The ratio at n = 16384 is the headline number recorded in
//! `BENCH_pr4.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hetero_core::xengine::XScan;
use hetero_core::{Params, Profile};
use std::hint::black_box;

const SIZES: [usize; 3] = [64, 1024, 16_384];

/// The replanner's suffix walk: `c = window / (1 + τδ·X)`, then the
/// no-gap recurrence with a never-grow cap (mirrors
/// `replan::resolve_suffix` without the DES state around it).
fn resolve_suffix(params: &Params, scan: &XScan, window: f64, cap: &[f64], out: &mut [f64]) -> f64 {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let c = window / (1.0 + td * scan.x());
    let mut product = 1.0f64;
    let mut total = 0.0f64;
    for ((w, &rho), &orig) in out.iter_mut().zip(scan.rhos()).zip(cap) {
        let denom = b * rho + a;
        let resolved = c * product / denom;
        product *= (b * rho + td) / denom;
        *w = resolved.min(orig);
        total += *w;
    }
    total
}

fn bench_replan(c: &mut Criterion) {
    let params = Params::paper_table1();

    // One detected straggler: commit the inflated ρ into the live scan,
    // re-walk the suffix. This is the per-fault cost the replanner pays.
    let mut group = c.benchmark_group("faults/replan_incremental");
    for n in SIZES {
        let profile = Profile::harmonic(n);
        let mut scan = XScan::from_profile(&params, &profile);
        let k = n / 2;
        let slowed = profile.rho(k) * 3.0;
        // The original (fault-free) allocation shape is the never-grow cap.
        let mut cap = vec![0.0f64; n];
        resolve_suffix(&params, &scan, 600.0, &vec![f64::MAX; n], &mut cap);
        let mut work = vec![0.0f64; n];
        // Alternate the committed value so every iteration performs
        // exactly one commit + one suffix walk — the real per-fault cost.
        let mut flip = false;
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let rho = if flip { profile.rho(k) } else { slowed };
                flip = !flip;
                scan.commit(black_box(k), black_box(rho)).unwrap();
                black_box(resolve_suffix(
                    &params,
                    &scan,
                    black_box(550.0),
                    &cap,
                    &mut work,
                ))
            })
        });
    }
    group.finish();

    // From-scratch baseline: rebuild the solver state from the rescaled
    // speeds on every fault — fresh validation, allocation, and X-measure.
    let mut group = c.benchmark_group("faults/replan_scratch_baseline");
    for n in SIZES {
        let profile = Profile::harmonic(n);
        let rhos: Vec<f64> = profile.rhos().to_vec();
        let k = n / 2;
        let mut cap = vec![0.0f64; n];
        let seed_scan = XScan::from_profile(&params, &profile);
        resolve_suffix(&params, &seed_scan, 600.0, &vec![f64::MAX; n], &mut cap);
        let mut work = vec![0.0f64; n];
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let mut slowed = rhos.clone();
                slowed[k] *= black_box(3.0);
                let scan = XScan::new(&params, &slowed).unwrap();
                black_box(resolve_suffix(
                    &params,
                    &scan,
                    black_box(550.0),
                    &cap,
                    &mut work,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_replan);
criterion_main!(benches);
