//! Shared helpers for the criterion benchmarks.
//!
//! Each bench target regenerates one paper artifact (DESIGN.md §3 maps
//! them) and, where DESIGN.md §8 calls for it, races the design
//! alternatives (closed form vs bisection, compensated vs naive
//! summation, DP vs divide-and-conquer, serial vs parallel).

use hetero_core::{Params, Profile};

/// The standard profile battery used across benches, keyed by size.
pub fn battery_profile(n: usize) -> Profile {
    Profile::harmonic(n)
}

/// The paper's default parameters for benches.
pub fn params() -> Params {
    Params::paper_table1()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_produce_valid_inputs() {
        assert_eq!(battery_profile(8).n(), 8);
        assert!(params().satisfies_standing_assumption());
    }
}
