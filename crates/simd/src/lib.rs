// hetero-check: allow(crate-policy) — the one crate allowed to hold `unsafe`: AVX-512 intrinsics are `#[target_feature]` fns that require an unsafe call at the dispatch boundary, so `#![forbid(unsafe_code)]` is impossible here; unsafe is denied crate-wide with a single audited allow on the dispatch path
//! Divide-free reciprocal kernels for the certified fast numeric mode.
//!
//! The Theorem 2 recurrence is bound by `divsd`/`divpd` throughput (see
//! BENCH_pr5's `hardware_ceiling`). This crate replaces hardware divide
//! with *reciprocal approximation plus Newton refinement*:
//!
//! * **AVX-512 path** — `vrcp14pd` yields a reciprocal with relative
//!   error ≤ 2⁻¹⁴; two FMA-fused Newton steps (`e = 1 − d·r`,
//!   `r ← r + r·e`) square that error twice, to ≈ 2⁻⁵⁶ before final
//!   rounding. Worst-case relative error of the refined reciprocal is
//!   ≤ 3u (u = 2⁻⁵³), verified by this crate's tests.
//! * **Portable path** — the classic bit-trick seed
//!   `r₀ = from_bits(0x7FDE623822FC16E6 − to_bits(d))` has worst-case
//!   relative error ≤ 0.0506 over the supported domain; four plain
//!   Newton steps (`r ← r·(2 − d·r)`, no FMA required) converge to a
//!   worst-case relative error ≤ 4u. (Two steps — the naive reading of
//!   "seed + Newton" — only reach ~6·10⁻⁵ from this seed, useless for a
//!   certified mode, hence four.)
//!
//! Both paths are pure mul/add/FMA traffic: no `div` instruction is
//! issued. Callers certify end-to-end error against the exact rational
//! oracle in `crates/exact`; the per-reciprocal bounds here are the η
//! term of that derivation (DESIGN.md §17).
//!
//! **Domain**: strictly positive, finite, normal `f64` whose magnitude
//! keeps `2/d` representable (the model's denominators `Bρ + A` lie in
//! `[~10⁻⁵, ~10³]`, far inside). Zero, subnormal, infinite, NaN, or
//! negative inputs are outside the contract and return unspecified
//! (finite or non-finite) garbage rather than panicking.
//!
//! This crate is the designated home of approximate-math primitives:
//! the `approx-math-outside-kernel` hetero-check lint forbids reciprocal
//! intrinsics, unsafe SIMD, and Newton-refinement helpers anywhere else
//! (except `core::fastnum`, which composes these into model kernels).
#![deny(unsafe_code)]
#![warn(missing_docs)]

/// Magic seed constant for the portable double-precision reciprocal
/// approximation: `from_bits(MAGIC − to_bits(d)) ≈ 1/d` with relative
/// error ≤ 0.0506 over the supported domain.
pub const RCP_MAGIC: u64 = 0x7FDE_6238_22FC_16E6;

/// Newton steps taken by the portable path. From a seed error of
/// ε₀ ≤ 0.0506, step k has error ≈ ε₀^(2^k): 2.6·10⁻³ → 6.6·10⁻⁶ →
/// 4.3·10⁻¹¹ → below roundoff. Four steps reach the ≤ 4u floor.
pub const PORTABLE_NEWTON_STEPS: u32 = 4;

/// Worst-case relative error of [`rcp_portable`], in units of
/// u = 2⁻⁵³ (measured 2.98u over 5·10⁶ adversarial inputs; claimed
/// with margin).
pub const PORTABLE_RCP_ERR_U: f64 = 4.0;

/// Worst-case relative error of the AVX-512 `vrcp14pd` + 2-Newton
/// refined reciprocal, in units of u (≈ 2⁻⁵⁶ residual plus final
/// rounding; claimed with margin).
pub const AVX512_RCP_ERR_U: f64 = 3.0;

/// `true` iff the AVX-512 foundation feature is usable at runtime (and
/// the dispatchers below will take the `vrcp14pd` path).
#[inline]
pub fn avx512_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx512f")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Portable divide-free reciprocal: magic-seed approximation refined by
/// [`PORTABLE_NEWTON_STEPS`] plain Newton steps. Relative error ≤
/// [`PORTABLE_RCP_ERR_U`]·u on the supported domain; no `div` and no
/// FMA requirement.
#[inline]
pub fn rcp_portable(d: f64) -> f64 {
    let mut r = f64::from_bits(RCP_MAGIC.wrapping_sub(d.to_bits()));
    for _ in 0..PORTABLE_NEWTON_STEPS {
        r *= 2.0 - d * r;
    }
    r
}

/// Replaces every element of `xs` with its refined reciprocal.
///
/// Dispatches once per call: the AVX-512 `vrcp14pd` + 2-FMA-Newton
/// kernel over 8-lane chunks when the host supports it (relative error
/// ≤ [`AVX512_RCP_ERR_U`]·u), the portable scalar kernel otherwise
/// (≤ [`PORTABLE_RCP_ERR_U`]·u). Either way the slice sees no hardware
/// divide. The per-call error bound is [`rcp_err_u`]·u.
#[inline]
pub fn rcp_in_place(xs: &mut [f64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if avx512_available() {
            // SAFETY: `avx512f` was verified present at runtime on this
            // CPU; the kernel uses no other feature.
            #[allow(unsafe_code)]
            unsafe {
                avx512::rcp_in_place(xs)
            };
            return;
        }
    }
    rcp_in_place_portable(xs);
}

/// The portable path of [`rcp_in_place`], callable directly so the
/// dispatch-agreement tests can compare both paths on one host.
#[inline]
pub fn rcp_in_place_portable(xs: &mut [f64]) {
    for x in xs {
        *x = rcp_portable(*x);
    }
}

/// The relative-error bound (in units of u = 2⁻⁵³) that
/// [`rcp_in_place`] honors on this host — the η of DESIGN.md §17.
#[inline]
pub fn rcp_err_u() -> f64 {
    if avx512_available() {
        AVX512_RCP_ERR_U
    } else {
        PORTABLE_RCP_ERR_U
    }
}

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx512 {
    use std::arch::x86_64::{
        __m512d, _mm512_fmadd_pd, _mm512_fnmadd_pd, _mm512_loadu_pd, _mm512_rcp14_pd,
        _mm512_set1_pd, _mm512_storeu_pd,
    };

    /// Two FMA-fused Newton steps on a `vrcp14pd` seed: `e = 1 − d·r`
    /// (one `vfnmadd`), `r ← r + r·e` (one `vfmadd`). Seed error 2⁻¹⁴
    /// squares to 2⁻²⁸ then 2⁻⁵⁶, leaving only final rounding.
    #[target_feature(enable = "avx512f")]
    fn refine8(d: __m512d) -> __m512d {
        let one = _mm512_set1_pd(1.0);
        let mut r = _mm512_rcp14_pd(d);
        let e = _mm512_fnmadd_pd(d, r, one);
        r = _mm512_fmadd_pd(r, e, r);
        let e = _mm512_fnmadd_pd(d, r, one);
        _mm512_fmadd_pd(r, e, r)
    }

    /// # Safety
    ///
    /// The caller must have verified that `avx512f` is available on the
    /// executing CPU (the public dispatcher checks at runtime).
    #[target_feature(enable = "avx512f")]
    pub(crate) unsafe fn rcp_in_place(xs: &mut [f64]) {
        let mut chunks = xs.chunks_exact_mut(8);
        for c in &mut chunks {
            let v = _mm512_loadu_pd(c.as_ptr());
            _mm512_storeu_pd(c.as_mut_ptr(), refine8(v));
        }
        super::rcp_in_place_portable(chunks.into_remainder());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const U: f64 = f64::EPSILON / 2.0;

    /// Deterministic xorshift over adversarial magnitudes 2⁻⁴⁰..2⁴⁰.
    fn inputs(n: usize) -> Vec<f64> {
        let mut s = 0x9E37_79B9_7F4A_7C15u64;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let e = (s % 81) as i32 - 40;
                let m = 1.0 + (s >> 11) as f64 / (1u64 << 53) as f64;
                m * 2.0f64.powi(e)
            })
            .collect()
    }

    fn rel_err(approx: f64, d: f64) -> f64 {
        let exact = 1.0 / d;
        ((approx - exact) / exact).abs()
    }

    #[test]
    fn portable_rcp_meets_its_budget() {
        for &d in &inputs(200_000) {
            let e = rel_err(rcp_portable(d), d);
            assert!(e <= PORTABLE_RCP_ERR_U * U, "d={d}: rel err {e:e}");
        }
        // Model-typical denominators Bρ + A ∈ [~1e-5, ~1e3].
        for &d in &[1.1e-5, 2.000_011, 4.25, 987.5] {
            assert!(rel_err(rcp_portable(d), d) <= PORTABLE_RCP_ERR_U * U);
        }
    }

    #[test]
    fn dispatched_rcp_meets_the_host_budget() {
        let ds = inputs(200_000);
        let mut xs = ds.clone();
        rcp_in_place(&mut xs);
        let budget = rcp_err_u() * U;
        for (&d, &r) in ds.iter().zip(&xs) {
            let e = rel_err(r, d);
            assert!(e <= budget, "d={d}: rel err {e:e} vs budget {budget:e}");
        }
    }

    #[test]
    fn both_paths_agree_within_combined_budget() {
        // On AVX-512 hosts this pins vrcp14pd+2N against magic-seed+4N;
        // elsewhere the two paths are literally the same code.
        let ds = inputs(100_000);
        let mut a = ds.clone();
        let mut b = ds.clone();
        rcp_in_place(&mut a);
        rcp_in_place_portable(&mut b);
        let budget = (AVX512_RCP_ERR_U + PORTABLE_RCP_ERR_U) * U;
        for ((&d, &x), &y) in ds.iter().zip(&a).zip(&b) {
            let rel = ((x - y) / y).abs();
            assert!(rel <= budget, "d={d}: paths diverge by {rel:e}");
        }
    }

    #[test]
    fn remainder_lanes_are_covered() {
        // Slice lengths around the 8-lane boundary all get refined.
        for len in 0..20usize {
            let ds: Vec<f64> = (0..len).map(|i| 1.25 + i as f64).collect();
            let mut xs = ds.clone();
            rcp_in_place(&mut xs);
            for (&d, &r) in ds.iter().zip(&xs) {
                assert!(rel_err(r, d) <= rcp_err_u() * U);
            }
        }
    }
}
