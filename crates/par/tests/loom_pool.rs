//! Model-checked concurrency audit of [`hetero_par::Pool`].
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"`, where the pool's sync
//! primitives are swapped for the instrumented shim (`shims/loom`) and
//! every `loom::model` body runs across many perturbed schedules. Each
//! test pins one clause of the pool's concurrency contract:
//!
//! * park/unpark handoff — queued jobs always reach a parked worker
//!   (no lost wakeup between `submit`'s `notify_one` and the worker's
//!   condvar wait);
//! * in-order delivery — results scatter back in input order no matter
//!   which worker steals which chunk;
//! * reuse — the parked-worker loop re-arms correctly between `map`
//!   calls;
//! * panic containment — a panicking job poisons nothing, re-raises on
//!   the caller, and leaves the workers serviceable.
//!
//! Pools are constructed *inside* the model body: `Pool::global` sits
//! on a `std::sync::OnceLock` and would leak one iteration's schedule
//! into the next.

#![cfg(loom)]

use hetero_par::Pool;

#[test]
fn park_unpark_handoff_loses_no_job() {
    loom::model(|| {
        let pool = Pool::new(2);
        let out = pool.map(8, 2, |i| i * 3 + 1);
        assert_eq!(out, (0..8).map(|i| i * 3 + 1).collect::<Vec<_>>());
    });
}

#[test]
fn results_scatter_in_input_order() {
    loom::model(|| {
        let pool = Pool::new(3);
        // More items than workers forces chunk stealing; the output
        // must still come back index-ordered.
        let out = pool.map(32, 3, |i| i as u64 * i as u64);
        assert_eq!(out, (0..32u64).map(|i| i * i).collect::<Vec<_>>());
    });
}

#[test]
fn workers_rearm_between_map_calls() {
    loom::model(|| {
        let pool = Pool::new(2);
        for round in 0..3usize {
            let out = pool.map(6, 2, move |i| i + round);
            assert_eq!(out, (round..6 + round).collect::<Vec<_>>());
        }
    });
}

#[test]
fn panicking_job_is_contained_and_reraised() {
    loom::model(|| {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(8, 2, |i| {
                assert!(i != 5, "deliberate test panic");
                i
            })
        }));
        assert!(caught.is_err(), "the job panic must re-raise on the caller");
        // The pool survives: workers stayed parked, nothing poisoned.
        assert_eq!(pool.map(4, 2, |i| i), vec![0, 1, 2, 3]);
    });
}
