//! SplitMix64 seed derivation for reproducible parallel experiments.
//!
//! Experiments derive one independent seed per trial from a single root
//! seed: `derive(root, trial_index)`. Because derivation depends only on
//! the pair — not on thread assignment — a sweep produces identical results
//! on 1 thread and on 64.
//!
//! SplitMix64 (Steele, Lea & Flood, *Fast Splittable Pseudorandom Number
//! Generators*, OOPSLA 2014) is the standard generator for this job: its
//! finalizer is a bijection on `u64` with strong avalanche behaviour, so
//! consecutive trial indices map to statistically unrelated seeds.

/// The SplitMix64 odd increment (the "golden gamma", ⌊2⁶⁴/φ⌋ rounded odd).
const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Advances a SplitMix64 state and returns the next output.
pub fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(GOLDEN_GAMMA);
    mix(*state)
}

/// The SplitMix64 output finalizer (a bijective avalanche mix).
pub fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for trial `index` from `root`.
///
/// ```
/// let a = hetero_par::seed::derive(42, 0);
/// let b = hetero_par::seed::derive(42, 1);
/// assert_ne!(a, b);
/// assert_eq!(a, hetero_par::seed::derive(42, 0)); // pure function
/// ```
pub fn derive(root: u64, index: u64) -> u64 {
    // Two rounds of mixing keep (root, index) pairs far apart even when
    // both arguments are small consecutive integers.
    mix(mix(root ^ GOLDEN_GAMMA.wrapping_mul(index.wrapping_add(1))).wrapping_add(index))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn derive_is_pure() {
        assert_eq!(derive(1, 2), derive(1, 2));
    }

    #[test]
    fn derive_separates_indices_and_roots() {
        let mut seen = HashSet::new();
        for root in 0..20u64 {
            for index in 0..200u64 {
                assert!(
                    seen.insert(derive(root, index)),
                    "collision at ({root},{index})"
                );
            }
        }
    }

    #[test]
    fn next_walks_distinct_values() {
        let mut st = 0u64;
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(next(&mut st)));
        }
    }

    #[test]
    fn mix_is_not_identity_and_spreads_bits() {
        // Flipping one input bit should flip roughly half the output bits.
        let base = mix(0x1234_5678_9abc_def0);
        let flipped = mix(0x1234_5678_9abc_def1);
        let differing = (base ^ flipped).count_ones();
        assert!(
            (20..=44).contains(&differing),
            "poor avalanche: {differing}"
        );
    }

    #[test]
    fn known_splitmix_vector() {
        // Reference vector from the public-domain splitmix64.c (Vigna):
        // state 1234567 produces these first outputs.
        let mut st = 1234567u64;
        assert_eq!(next(&mut st), 6457827717110365317);
        assert_eq!(next(&mut st), 3203168211198807973);
    }
}
