//! A persistent worker pool with parked threads.
//!
//! The scoped [`crate::Executor`] spawns a fresh set of OS threads on
//! *every* `map` call. For a sweep that fans out once per cluster size
//! that is dozens of spawn/join cycles per run — measurable overhead, and
//! noise in any timing experiment. [`Pool`] spawns its workers once and
//! parks them on a condvar; each `map` call enqueues chunk-stealing jobs
//! and wakes only as many workers as it needs.
//!
//! Determinism contract (same as [`crate::Executor`]): results are
//! scattered back **in input order**, and callers derive per-item RNG
//! seeds from `(root_seed, trial_index)` via [`crate::seed::derive`], so
//! the output is bit-for-bit independent of thread count and scheduling.
//!
//! The pool size is fixed at construction; [`configured_threads`] reads
//! the `HETERO_THREADS` environment override (falling back to the
//! machine's available parallelism) and sizes the process-wide
//! [`Pool::global`] instance.
//!
//! Jobs must not block on the pool itself: drivers fan out at one level
//! only. A job that calls [`Pool::map`] on its own pool can deadlock once
//! every worker is occupied by such a job.

use std::any::Any;
use std::collections::VecDeque;
use std::sync::OnceLock;

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{thread, Arc, Condvar, Mutex};
use hetero_obs::counters::{PAR_POOL_JOBS, PAR_POOL_PARK_WAKES};

/// The worker-thread count in effect for pooled sweeps: the
/// `HETERO_THREADS` environment variable when it parses as a positive
/// integer, otherwise [`crate::default_threads`].
pub fn configured_threads() -> usize {
    threads_from_env(std::env::var("HETERO_THREADS").ok().as_deref())
}

/// Pure core of [`configured_threads`], testable without touching the
/// process environment. `None`, empty, non-numeric, and zero all fall
/// back to the hardware default.
pub fn threads_from_env(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(crate::default_threads)
}

/// A queued unit of work.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Queue {
    jobs: VecDeque<Job>,
    shutdown: bool,
}

struct Shared {
    queue: Mutex<Queue>,
    available: Condvar,
}

/// A fixed-size pool of persistent, parked worker threads.
///
/// Dropping a pool shuts its workers down and joins them; the
/// process-wide [`Pool::global`] instance lives for the program and its
/// workers simply stay parked between sweeps.
pub struct Pool {
    shared: Arc<Shared>,
    workers: Vec<thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for Pool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Pool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Accumulator one `map` call's jobs report into.
struct MapState<R> {
    buckets: Vec<Vec<(usize, R)>>,
    panics: Vec<Box<dyn Any + Send>>,
    pending: usize,
}

/// Everything a `map` call shares with its jobs.
struct MapTask<R, F> {
    f: F,
    count: usize,
    chunk: usize,
    cursor: AtomicUsize,
    state: Mutex<MapState<R>>,
    done: Condvar,
}

impl Pool {
    /// Spawns a pool with exactly `threads` parked workers (clamped ≥ 1).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                shutdown: false,
            }),
            available: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("hetero-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    // hetero-check: allow(expect) — thread spawn fails only on OS resource exhaustion at startup
                    .expect("OS can spawn a pool worker")
            })
            .collect();
        Pool {
            shared,
            workers,
            threads,
        }
    }

    /// The process-wide pool, sized by [`configured_threads`] on first
    /// use. Library fan-outs (the parallel subset search) and the CLI
    /// drivers share this instance, so a process never accumulates idle
    /// threads no matter how many sweeps it runs.
    pub fn global() -> &'static Pool {
        static GLOBAL: OnceLock<Pool> = OnceLock::new();
        GLOBAL.get_or_init(|| Pool::new(configured_threads()))
    }

    /// The number of worker threads this pool owns.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index)` to every index in `0..count`, in parallel over
    /// at most `limit` workers, returning results in index order.
    ///
    /// `limit` is the *caller's* concurrency budget (a sweep config's
    /// `threads` field); the effective fan-out is
    /// `min(limit, pool workers, count)`. An effective fan-out of 1 runs
    /// inline on the caller without touching the queue. A panic in `f`
    /// is re-raised on the caller after the remaining jobs drain.
    pub fn map<R, F>(&self, count: usize, limit: usize, f: F) -> Vec<R>
    where
        R: Send + 'static,
        F: Fn(usize) -> R + Send + Sync + 'static,
    {
        let _span = hetero_obs::timed("par.pool.map");
        if count == 0 {
            return Vec::new();
        }
        let jobs = self.threads.min(limit.max(1)).min(count);
        if jobs <= 1 {
            return (0..count).map(f).collect();
        }

        // Same chunk policy as the scoped executor: big enough to
        // amortize the atomic, small enough to balance uneven items.
        let chunk = (count / (jobs * 8)).max(1);
        let task = Arc::new(MapTask {
            f,
            count,
            chunk,
            cursor: AtomicUsize::new(0),
            state: Mutex::new(MapState {
                buckets: Vec::with_capacity(jobs),
                panics: Vec::new(),
                pending: jobs,
            }),
            done: Condvar::new(),
        });
        PAR_POOL_JOBS.add(jobs as u64);
        for _ in 0..jobs {
            let task = Arc::clone(&task);
            self.submit(Box::new(move || run_map_job(&task)));
        }

        // Park the caller until the last job reports in.
        let mut state = self.lock_state(&task.state);
        while state.pending > 0 {
            state = task
                .done
                .wait(state)
                // hetero-check: allow(expect) — condvar wait fails only on a poisoned mutex, which run_map_job never poisons
                .expect("pool map state poisoned");
        }
        let panic = state.panics.pop();
        let mut buckets = std::mem::take(&mut state.buckets);
        drop(state);
        if let Some(p) = panic {
            std::panic::resume_unwind(p);
        }

        // Scatter into input order.
        let mut out: Vec<Option<R>> = Vec::with_capacity(count);
        out.resize_with(count, || None);
        for bucket in &mut buckets {
            for (i, r) in bucket.drain(..) {
                debug_assert!(out[i].is_none(), "index {i} produced twice");
                out[i] = Some(r);
            }
        }
        out.into_iter()
            // hetero-check: allow(expect) — the chunk-stealing cursor hands out each index exactly once, so every slot is filled
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }

    fn lock_state<'a, R>(
        &self,
        state: &'a Mutex<MapState<R>>,
    ) -> std::sync::MutexGuard<'a, MapState<R>> {
        state
            .lock()
            // hetero-check: allow(expect) — jobs catch their own panics, so the map-state mutex is never poisoned
            .expect("pool map state poisoned")
    }

    fn submit(&self, job: Job) {
        {
            let mut q = self
                .shared
                .queue
                .lock()
                // hetero-check: allow(expect) — the queue mutex is only held for push/pop and cannot be poisoned by jobs
                .expect("pool queue poisoned");
            q.jobs.push_back(job);
            // Queue depth at its high-water mark: sustained depth near
            // the job count means workers lag the submitter.
            hetero_obs::gauge_max("par.pool.queue_depth", q.jobs.len() as u64);
        }
        self.shared.available.notify_one();
    }
}

/// One chunk-stealing job of a `map` call: drains cursor chunks, buffers
/// `(index, result)` pairs, reports the bucket (or a caught panic) and
/// wakes the caller when it is the last job standing.
fn run_map_job<R, F>(task: &MapTask<R, F>)
where
    R: Send,
    F: Fn(usize) -> R + Send + Sync,
{
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let mut local: Vec<(usize, R)> = Vec::new();
        loop {
            let start = task.cursor.fetch_add(task.chunk, Ordering::Relaxed);
            if start >= task.count {
                break;
            }
            let end = (start + task.chunk).min(task.count);
            for i in start..end {
                local.push((i, (task.f)(i)));
            }
        }
        local
    }));
    let mut state = task
        .state
        .lock()
        // hetero-check: allow(expect) — every job stores through catch_unwind, so the state mutex is never poisoned
        .expect("pool map state poisoned");
    match result {
        Ok(local) => state.buckets.push(local),
        Err(p) => state.panics.push(p),
    }
    state.pending -= 1;
    if state.pending == 0 {
        task.done.notify_all();
    }
}

/// The park-until-work loop every pool worker runs.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = shared
                .queue
                .lock()
                // hetero-check: allow(expect) — the queue mutex is only held for push/pop and cannot be poisoned by jobs
                .expect("pool queue poisoned");
            let mut parked = false;
            loop {
                if let Some(job) = q.jobs.pop_front() {
                    if parked {
                        // A condvar wait actually ended with work: the
                        // park-wake count over `par.pool.jobs` shows how
                        // often the queue drains dry between jobs.
                        PAR_POOL_PARK_WAKES.bump();
                    }
                    break Some(job);
                }
                if q.shutdown {
                    break None;
                }
                parked = true;
                q = shared
                    .available
                    .wait(q)
                    // hetero-check: allow(expect) — see above: the queue mutex cannot be poisoned
                    .expect("pool queue poisoned");
            }
        };
        match job {
            Some(job) => job(),
            None => return,
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        if let Ok(mut q) = self.shared.queue.lock() {
            q.shutdown = true;
        }
        self.shared.available.notify_all();
        for worker in self.workers.drain(..) {
            // A worker only terminates by reading the shutdown flag; a
            // failed join means it panicked, which jobs make impossible.
            let _ = worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_serial_for_any_limit() {
        let pool = Pool::new(4);
        let expect: Vec<u64> = (0..5_000u64).map(|x| x.wrapping_mul(x) ^ 0xabcd).collect();
        for limit in [1, 2, 3, 7, 16] {
            let got = pool.map(5_000, limit, |i| (i as u64).wrapping_mul(i as u64) ^ 0xabcd);
            assert_eq!(got, expect, "limit = {limit}");
        }
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = Pool::new(3);
        for round in 0..20usize {
            let got = pool.map(100, 3, move |i| i + round);
            assert_eq!(got, (round..100 + round).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_single_item_maps() {
        let pool = Pool::new(2);
        assert!(pool.map(0, 8, |i| i).is_empty());
        assert_eq!(pool.map(1, 8, |i| i + 7), vec![7]);
    }

    #[test]
    fn uneven_workloads_balance() {
        let pool = Pool::new(8);
        let out = pool.map(200, 8, |x| {
            let spin = if x < 8 { 200_000u64 } else { 10 };
            let mut acc = x as u64;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            x + 1
        });
        assert_eq!(out, (1..=200).collect::<Vec<usize>>());
    }

    #[test]
    fn clamps_to_one_worker() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        assert_eq!(
            pool.map(10, 0, |i| i * 2),
            (0..10).map(|i| i * 2).collect::<Vec<_>>()
        );
    }

    #[test]
    fn job_panics_propagate_to_the_caller_and_spare_the_pool() {
        let pool = Pool::new(2);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.map(64, 2, |i| {
                assert!(i != 17, "boom");
                i
            })
        }));
        assert!(caught.is_err(), "panic must cross map");
        // The pool survives and keeps producing correct results.
        assert_eq!(pool.map(8, 2, |i| i), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn env_parsing_falls_back_on_garbage() {
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 5 ")), 5);
        let default = crate::default_threads();
        assert_eq!(threads_from_env(None), default);
        assert_eq!(threads_from_env(Some("")), default);
        assert_eq!(threads_from_env(Some("zero")), default);
        assert_eq!(threads_from_env(Some("0")), default);
        assert_eq!(threads_from_env(Some("-2")), default);
    }

    #[test]
    fn global_pool_is_shared_and_usable() {
        let a = Pool::global();
        let b = Pool::global();
        assert!(std::ptr::eq(a, b));
        assert!(a.threads() >= 1);
        assert_eq!(a.map(16, 4, |i| i), (0..16).collect::<Vec<_>>());
    }
}
