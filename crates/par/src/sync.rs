//! Synchronisation-primitive facade for the pool.
//!
//! Normal builds re-export `std`; building with `RUSTFLAGS="--cfg loom"`
//! swaps in the model-checker's instrumented types (the offline
//! `shims/loom` stand-in) so `tests/loom_pool.rs` can perturb thread
//! interleavings without the production code changing. Both sides hand
//! back `std`'s guard types, so [`crate::pool`] compiles identically
//! under either cfg.
//!
//! `OnceLock` (backing [`crate::Pool::global`]) deliberately stays on
//! `std`: the process-wide pool outlives any single model iteration, so
//! instrumenting it would only pin one iteration's seed into the next.

#[cfg(loom)]
pub(crate) use loom::sync::atomic;
#[cfg(loom)]
pub(crate) use loom::sync::{Arc, Condvar, Mutex};
#[cfg(loom)]
pub(crate) use loom::thread;

#[cfg(not(loom))]
pub(crate) use std::sync::atomic;
#[cfg(not(loom))]
pub(crate) use std::sync::{Arc, Condvar, Mutex};
#[cfg(not(loom))]
pub(crate) use std::thread;
