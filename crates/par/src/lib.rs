//! # hetero-par — deterministic parallel sweep execution
//!
//! The Section 4.3 experiments of the heterogeneity paper evaluate on the
//! order of 10⁵–10⁶ random cluster pairs at sizes up to 2¹⁶ computers. This
//! crate provides the small parallel runtime those sweeps run on:
//!
//! * [`par_map`] / [`par_map_with`] — data-parallel map over a slice using
//!   crossbeam scoped threads and a shared atomic work queue (dynamic load
//!   balancing), returning results **in input order** regardless of thread
//!   count or scheduling.
//! * [`par_reduce`] — map + associative reduction without materializing the
//!   mapped vector.
//! * [`Pool`] — a persistent pool of parked workers (spawned once, reused
//!   by every sweep), with the `HETERO_THREADS` override read by
//!   [`configured_threads`] and a process-wide [`Pool::global`] instance.
//! * [`seed`] — SplitMix64 seed derivation so that per-trial RNG streams
//!   depend only on `(root_seed, trial_index)`, never on which thread ran
//!   the trial. Combined with ordered results this makes every parallel
//!   experiment bit-for-bit reproducible.
//!
//! The implementation deliberately avoids `unsafe`: workers buffer
//! `(index, result)` pairs locally and the results are scattered into the
//! output vector after the scope joins.
//!
//! ```
//! let squares = hetero_par::par_map(&[1u64, 2, 3, 4], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pool;
pub mod seed;
mod sync;

pub use pool::{configured_threads, Pool};

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of worker threads used by the free functions: the machine's
/// available parallelism, falling back to 1 when it cannot be queried.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// A reusable parallel executor with a fixed thread count.
///
/// The free functions [`par_map`], [`par_map_with`], and [`par_reduce`] are
/// shorthands for an executor with [`default_threads`] workers.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Executor::new(default_threads())
    }
}

impl Executor {
    /// Creates an executor with exactly `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Applies `f(index, item)` to every item, in parallel, returning the
    /// results in input order.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.map_with(items, |_| (), |(), i, t| f(i, t))
    }

    /// Like [`Executor::map`] but threads each carry mutable worker-local
    /// state built by `init(worker_id)` — the idiomatic slot for scratch
    /// buffers or a reusable allocation. For RNG, prefer deriving per-*item*
    /// seeds via [`seed::derive`] inside `f` so results stay independent of
    /// the thread count.
    pub fn map_with<T, R, S, F, I>(&self, items: &[T], init: I, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&mut S, usize, &T) -> R + Sync,
        I: Fn(usize) -> S + Sync,
    {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = self.threads.min(n);
        if threads == 1 {
            let mut state = init(0);
            return items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
        }

        // Grab work in contiguous chunks: big enough to amortize the atomic,
        // small enough to balance uneven per-item cost.
        let chunk = (n / (threads * 8)).max(1);
        let cursor = AtomicUsize::new(0);

        let mut buckets: Vec<Vec<(usize, R)>> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|worker| {
                    let cursor = &cursor;
                    let f = &f;
                    let init = &init;
                    scope.spawn(move |_| {
                        let mut state = init(worker);
                        let mut local: Vec<(usize, R)> = Vec::with_capacity(n / threads + 1);
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                local.push((i, f(&mut state, i, item)));
                            }
                        }
                        local
                    })
                })
                .collect();
            handles
                .into_iter()
                // hetero-check: allow(expect) — join fails only if the worker panicked; re-raising is the intended behavior
                .map(|h| h.join().expect("hetero-par worker panicked"))
                .collect()
        })
        // hetero-check: allow(expect) — the scope errs only when a child panicked, which must propagate
        .expect("crossbeam scope failed");

        // Scatter into input order.
        let mut out: Vec<Option<R>> = Vec::with_capacity(n);
        out.resize_with(n, || None);
        for bucket in &mut buckets {
            for (i, r) in bucket.drain(..) {
                debug_assert!(out[i].is_none(), "index {i} produced twice");
                out[i] = Some(r);
            }
        }
        out.into_iter()
            // hetero-check: allow(expect) — the work-stealing cursor hands out each index exactly once, so every slot is filled
            .map(|r| r.expect("every index produced exactly once"))
            .collect()
    }

    /// Maps every item through `f` and folds the results with `combine`,
    /// starting from `identity`.
    ///
    /// `combine` must be associative and commutative: the grouping of
    /// partial results depends on scheduling.
    pub fn reduce<T, R, F, C>(&self, items: &[T], identity: R, f: F, combine: C) -> R
    where
        T: Sync,
        R: Send + Clone,
        F: Fn(usize, &T) -> R + Sync,
        C: Fn(R, R) -> R + Sync,
    {
        let n = items.len();
        if n == 0 {
            return identity;
        }
        let threads = self.threads.min(n);
        if threads == 1 {
            return items
                .iter()
                .enumerate()
                .fold(identity, |acc, (i, t)| combine(acc, f(i, t)));
        }
        let chunk = (n / (threads * 8)).max(1);
        let cursor = AtomicUsize::new(0);
        let partials: Vec<R> = crossbeam::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let cursor = &cursor;
                    let f = &f;
                    let combine = &combine;
                    let identity = identity.clone();
                    scope.spawn(move |_| {
                        let mut acc = identity;
                        loop {
                            let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                            if start >= n {
                                break;
                            }
                            let end = (start + chunk).min(n);
                            for (i, item) in items.iter().enumerate().take(end).skip(start) {
                                acc = combine(acc, f(i, item));
                            }
                        }
                        acc
                    })
                })
                .collect();
            handles
                .into_iter()
                // hetero-check: allow(expect) — join fails only if the worker panicked; re-raising is the intended behavior
                .map(|h| h.join().expect("hetero-par worker panicked"))
                .collect()
        })
        // hetero-check: allow(expect) — the scope errs only when a child panicked, which must propagate
        .expect("crossbeam scope failed");
        partials.into_iter().fold(identity, combine)
    }
}

/// [`Executor::map`] on a default-sized executor.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    Executor::default().map(items, f)
}

/// [`Executor::map_with`] on a default-sized executor.
pub fn par_map_with<T, R, S, F, I>(items: &[T], init: I, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&mut S, usize, &T) -> R + Sync,
    I: Fn(usize) -> S + Sync,
{
    Executor::default().map_with(items, init, f)
}

/// [`Executor::reduce`] on a default-sized executor.
pub fn par_reduce<T, R, F, C>(items: &[T], identity: R, f: F, combine: C) -> R
where
    T: Sync,
    R: Send + Clone,
    F: Fn(usize, &T) -> R + Sync,
    C: Fn(R, R) -> R + Sync,
{
    Executor::default().reduce(items, identity, f, combine)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_order() {
        let items: Vec<u64> = (0..10_000).collect();
        let out = par_map(&items, |i, &x| {
            assert_eq!(i as u64, x);
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_empty_and_single() {
        let empty: Vec<u32> = vec![];
        assert!(par_map(&empty, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn map_independent_of_thread_count() {
        let items: Vec<u64> = (0..5_000).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x) ^ 0xabcd).collect();
        for threads in [1, 2, 3, 7, 16] {
            let got = Executor::new(threads).map(&items, |_, &x| x.wrapping_mul(x) ^ 0xabcd);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn map_with_worker_state() {
        // Worker-local scratch buffers must be reused across items on the
        // same worker; the sum of per-worker item counts is the item count.
        let items: Vec<u32> = (0..1234).collect();
        let out = Executor::new(4).map_with(
            &items,
            |_worker| Vec::<u32>::new(),
            |scratch, _, &x| {
                scratch.push(x);
                x
            },
        );
        assert_eq!(out, items);
    }

    #[test]
    fn reduce_sums_correctly() {
        let items: Vec<u64> = (1..=1000).collect();
        let sum = par_reduce(&items, 0u64, |_, &x| x, |a, b| a + b);
        assert_eq!(sum, 500_500);
    }

    #[test]
    fn reduce_matches_serial_for_any_threads() {
        let items: Vec<i64> = (-500..500).collect();
        let expect: i64 = items.iter().map(|x| x * x * x).sum();
        for threads in [1, 2, 5, 32] {
            let got = Executor::new(threads).reduce(&items, 0, |_, &x| x * x * x, |a, b| a + b);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn executor_clamps_to_one_thread() {
        assert_eq!(Executor::new(0).threads(), 1);
    }

    #[test]
    fn uneven_workloads_balance() {
        // Items near the front are much more expensive; dynamic chunking
        // must still return correct, ordered results.
        let items: Vec<u64> = (0..200).collect();
        let out = Executor::new(8).map(&items, |_, &x| {
            let spin = if x < 8 { 200_000 } else { 10 };
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(acc);
            x + 1
        });
        assert_eq!(out, (1..=200).collect::<Vec<u64>>());
    }
}
