//! Property tests for the incremental X-measure engine: O(1) replacement
//! queries must agree with from-scratch evaluation to ≤1e-12 relative
//! error across long chains of random single-ρ updates, including on
//! adversarial profiles whose speeds span ~12 orders of magnitude, and
//! `commit`/`rebuild` must stay *bit-identical* to the reference scan.

use hetero_core::xengine::{x_pair, XScan};
use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::{Params, Profile};
use proptest::prelude::*;

fn params_strategy() -> impl Strategy<Value = Params> {
    (1e-7f64..1.0, 0.0f64..0.5, 0.01f64..=1.0)
        .prop_map(|(tau, pi, delta)| Params::new(tau, pi, delta).expect("valid by range"))
}

/// Speeds drawn log-uniformly over ~12 decades — the magnitude-spread
/// regime where uncompensated prefix/suffix bookkeeping would lose digits.
fn spread_rho() -> impl Strategy<Value = f64> {
    (1.0f64..2.0, -40i32..1).prop_map(|(m, e)| m * (e as f64).exp2())
}

fn spread_rhos() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(spread_rho(), 1..64)
}

/// A chain of single-ρ updates: (position sampler, replacement speed).
fn updates() -> impl Strategy<Value = Vec<(prop::sample::Index, f64)>> {
    prop::collection::vec((any::<prop::sample::Index>(), spread_rho()), 1..40)
}

fn rel_err(a: f64, b: f64) -> f64 {
    (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
}

proptest! {
    #[test]
    fn replace_chain_tracks_from_scratch(
        p in params_strategy(),
        rhos in spread_rhos(),
        chain in updates(),
    ) {
        let mut scan = XScan::new(&p, &rhos).unwrap();
        let mut scratch = rhos;
        for (which, new_rho) in chain {
            let k = which.index(scratch.len());
            let incremental = scan.replace(k, new_rho).unwrap();
            let old = scratch[k];
            scratch[k] = new_rho;
            let direct = x_measure_of_rhos(&p, &scratch);
            prop_assert!(
                rel_err(incremental, direct) <= 1e-12,
                "k = {k}: ρ {old} → {new_rho}, incremental {incremental} vs direct {direct}"
            );
            // Accept the update and keep going: errors must not compound
            // across a long chain of commits.
            scan.commit(k, new_rho).unwrap();
            prop_assert_eq!(scan.x().to_bits(), direct.to_bits(),
                "commit must rebuild the exact forward scan");
        }
    }

    #[test]
    fn scan_agrees_with_scratch_on_any_order(
        p in params_strategy(),
        rhos in spread_rhos(),
    ) {
        // The scan itself is bit-identical to x_measure_of_rhos in the
        // given (arbitrary, unsorted) order …
        let scan = XScan::new(&p, &rhos).unwrap();
        prop_assert_eq!(scan.x().to_bits(), x_measure_of_rhos(&p, &rhos).to_bits());
        // … and by Theorem 1(2) agrees with the sorted evaluation to
        // rounding error.
        let sorted = Profile::from_unsorted(rhos).unwrap();
        prop_assert!(rel_err(scan.x(), x_measure_of_rhos(&p, sorted.rhos())) <= 1e-10);
    }

    #[test]
    fn suffix_measures_agree_with_scratch(
        p in params_strategy(),
        rhos in spread_rhos(),
    ) {
        let scan = XScan::new(&p, &rhos).unwrap();
        let v = scan.suffix_measures();
        for k in 0..rhos.len() {
            let direct = x_measure_of_rhos(&p, &rhos[k..]);
            prop_assert!(
                rel_err(v[k], direct) <= 1e-12,
                "suffix {k}: {} vs {direct}", v[k]
            );
        }
    }

    #[test]
    fn x_pair_is_bitwise_two_scans(
        p in params_strategy(),
        rhos1 in spread_rhos(),
        rhos2 in spread_rhos(),
    ) {
        let (x1, x2) = x_pair(&p, &rhos1, &rhos2);
        prop_assert_eq!(x1.to_bits(), x_measure_of_rhos(&p, &rhos1).to_bits());
        prop_assert_eq!(x2.to_bits(), x_measure_of_rhos(&p, &rhos2).to_bits());
    }

    #[test]
    fn prefix_snapshots_are_bitwise(
        p in params_strategy(),
        rhos in spread_rhos(),
    ) {
        let scan = XScan::new(&p, &rhos).unwrap();
        for k in 1..=rhos.len() {
            prop_assert_eq!(
                scan.prefix_x(k).unwrap().to_bits(),
                x_measure_of_rhos(&p, &rhos[..k]).to_bits()
            );
        }
    }
}
