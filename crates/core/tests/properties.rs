//! Property-based tests for the heterogeneity model: the paper's theorems
//! must hold on *randomly generated* clusters and parameters, not just on
//! the worked examples.

use hetero_core::hecr::log_residual;
use hetero_core::{hecr, speedup, xmeasure, Params, Profile};
use proptest::prelude::*;

/// Random but well-conditioned model parameters (τδ ≤ A ≤ B always holds
/// when δ ≤ 1 and τ ≤ 1 + π·δ... in fact τδ ≤ τ ≤ τ + π = A ≤ B requires
/// A ≤ B, i.e. τ + π ≤ 1 + (1+δ)π ⇔ τ ≤ 1 + δπ; we keep τ ≤ 1).
fn params_strategy() -> impl Strategy<Value = Params> {
    (1e-7f64..1.0, 0.0f64..0.5, 0.01f64..=1.0)
        .prop_map(|(tau, pi, delta)| Params::new(tau, pi, delta).expect("valid by range"))
}

/// Random normalized profiles of 1–24 computers.
fn profile_strategy() -> impl Strategy<Value = Profile> {
    prop::collection::vec(0.001f64..=1.0, 0..24).prop_map(|mut rest| {
        rest.push(1.0); // the normalized slowest computer
        Profile::from_unsorted(rest).expect("valid by range")
    })
}

proptest! {
    #[test]
    fn x_is_positive_and_below_supremum(p in params_strategy(), c in profile_strategy()) {
        let x = xmeasure::x_measure(&p, &c);
        prop_assert!(x > 0.0);
        prop_assert!(x < xmeasure::x_supremum(&p));
    }

    #[test]
    fn x_is_permutation_invariant(p in params_strategy(), c in profile_strategy()) {
        // Theorem 1(2): startup order does not matter. Compare the sorted
        // order against the reversed order (the most different one).
        let sorted = xmeasure::x_measure(&p, &c);
        let mut rev: Vec<f64> = c.rhos().to_vec();
        rev.reverse();
        let reversed = xmeasure::x_measure_of_rhos(&p, &rev);
        prop_assert!((sorted - reversed).abs() / sorted < 1e-10,
            "{sorted} vs {reversed}");
    }

    #[test]
    fn adding_a_computer_increases_x(p in params_strategy(), c in profile_strategy(),
                                     extra in 0.001f64..=1.0) {
        let mut rhos = c.rhos().to_vec();
        rhos.push(extra);
        let bigger = Profile::from_unsorted(rhos).unwrap();
        // Compared via the log residual: a strictly decreasing transform
        // of X that, unlike X itself, cannot saturate at the supremum in
        // f64 (see hecr::log_residual).
        prop_assert!(log_residual(&p, bigger.rhos()) < log_residual(&p, c.rhos()));
    }

    #[test]
    fn proposition2_speedup_increases_x(p in params_strategy(), c in profile_strategy(),
                                        which in any::<prop::sample::Index>(),
                                        frac in 0.01f64..=0.99) {
        // Speeding any computer up by any amount increases X — asserted
        // on the non-saturating log residual (X itself can be pinned at
        // its supremum to f64 precision in communication-heavy regimes).
        let index = which.index(c.n());
        let faster = c.with_rho(index, c.rho(index) * frac).unwrap();
        prop_assert!(log_residual(&p, faster.rhos()) < log_residual(&p, c.rhos()));
    }

    #[test]
    fn minorization_implies_dominance(p in params_strategy(), c in profile_strategy(),
                                      frac in 0.05f64..=0.95) {
        // Scale *every* computer: the scaled profile minorizes and must win.
        let scaled = Profile::from_unsorted(
            c.rhos().iter().map(|r| r * frac).collect()
        ).unwrap();
        prop_assert!(scaled.minorizes(&c));
        prop_assert!(log_residual(&p, scaled.rhos()) < log_residual(&p, c.rhos()));
    }

    #[test]
    fn work_tracks_x_on_random_pairs(p in params_strategy(),
                                     c1 in profile_strategy(), c2 in profile_strategy(),
                                     lifespan in 1.0f64..1e6) {
        let (x1, x2) = (xmeasure::x_measure(&p, &c1), xmeasure::x_measure(&p, &c2));
        let (w1, w2) = (xmeasure::work(&p, &c1, lifespan), xmeasure::work(&p, &c2, lifespan));
        prop_assert_eq!(x1 >= x2, w1 >= w2);
    }

    #[test]
    fn hecr_brackets_and_inverts(p in params_strategy(), c in profile_strategy()) {
        let r = hecr::hecr(&p, &c).unwrap();
        prop_assert!(r >= c.fastest() * (1.0 - 1e-9));
        prop_assert!(r <= c.slowest() * (1.0 + 1e-9));
        // Definition: a homogeneous cluster at the HECR matches X(P).
        let x_eq = xmeasure::x_homogeneous(&p, r, c.n());
        let x = xmeasure::x_measure(&p, &c);
        prop_assert!((x_eq - x).abs() / x < 1e-6, "{x_eq} vs {x}");
    }

    #[test]
    fn hecr_closed_form_matches_bisection(p in params_strategy(), c in profile_strategy()) {
        let closed = hecr::hecr(&p, &c).unwrap();
        let bisect = hecr::hecr_bisect(&p, &c, 1e-12);
        prop_assert!((closed - bisect).abs() / closed < 1e-8,
            "closed {closed} vs bisect {bisect}");
    }

    #[test]
    fn theorem3_on_random_clusters(p in params_strategy(), c in profile_strategy()) {
        prop_assume!(c.n() >= 2);
        let phi = c.fastest() * 0.5;
        let best = speedup::best_additive_index(&p, &c, phi).unwrap();
        // Theorem 3: the fastest computer is always the best additive
        // upgrade. With duplicated fastest speeds any of the tied copies is
        // equivalent; the tie-break picks the largest index.
        prop_assert_eq!(best, c.n() - 1, "profile {:?}", c.rhos());
    }

    #[test]
    fn theorem4_rule_agrees_with_bruteforce(p in params_strategy(),
                                            rho_j in 0.001f64..=1.0,
                                            spread in 1.01f64..=10.0,
                                            psi in 0.05f64..=0.95) {
        let rho_i = (rho_j * spread).min(1.0);
        prop_assume!(rho_i > rho_j);
        let c = Profile::from_unsorted(vec![rho_i, rho_j]).unwrap();
        let xs = xmeasure::x_measure(&p, &speedup::multiplicative_speedup(&c, 0, psi).unwrap());
        let xf = xmeasure::x_measure(&p, &speedup::multiplicative_speedup(&c, 1, psi).unwrap());
        // Skip hair's-breadth cases where f64 cannot resolve the winner.
        prop_assume!((xs - xf).abs() / xs > 1e-12);
        match speedup::theorem4_choice(&p, rho_i, rho_j, psi) {
            speedup::Theorem4Choice::Faster => prop_assert!(xf > xs),
            speedup::Theorem4Choice::Slower => prop_assert!(xs > xf),
            speedup::Theorem4Choice::Indifferent => {}
        }
    }

    #[test]
    fn greedy_x_is_monotone(p in params_strategy(),
                            n in 2usize..6, psi in 0.1f64..=0.9, rounds in 1usize..12) {
        let steps = speedup::greedy_multiplicative(&p, &vec![1.0; n], psi, rounds).unwrap();
        prop_assert_eq!(steps.len(), rounds);
        for w in steps.windows(2) {
            // Nondecreasing: strict growth can fall below f64 resolution
            // once X saturates near its supremum in extreme regimes.
            prop_assert!(w[1].x >= w[0].x * (1.0 - 1e-12), "greedy speedup must not lower X");
        }
    }

    #[test]
    fn normalization_preserves_relative_order(c in profile_strategy()) {
        let scaled = Profile::from_unsorted(
            c.rhos().iter().map(|r| r * 0.37).collect()
        ).unwrap();
        let renorm = scaled.normalized();
        prop_assert!(renorm.is_normalized());
        for (a, b) in renorm.rhos().iter().zip(c.normalized().rhos()) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }
}
