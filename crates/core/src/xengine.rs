//! Incremental X-measure engine: O(1) single-ρ what-if evaluation.
//!
//! Every optimization loop in the model — the Theorem 3/4 greedy upgrade
//! engine, `k`-subset selection, fleet sizing, and the §4.3 predictor
//! sweeps — repeatedly asks "what would `X(P)` become if one ρ changed?".
//! Answering from scratch costs O(n) per candidate and makes each greedy
//! round O(n²). This module decomposes the Theorem 2 sum
//!
//! ```text
//! X(P) = Σ_{i=1}^n  S_i / d_i      with  d_i = Bρ_i + A,
//!                                        r_i = (Bρ_i + τδ) / d_i,
//!                                        S_i = Π_{j<i} r_j
//! ```
//!
//! into Neumaier-compensated prefix sums `P_k = Σ_{i<k} S_i/d_i`, suffix
//! sums `T_k = Σ_{i>k} S_i/d_i`, and the prefix products `S_k`, so that
//! replacing `ρ_k` by `ρ'` evaluates as
//!
//! ```text
//! X' = P_k + S_k/d' + (r'/r_k)·T_k
//! ```
//!
//! in O(1) with zero allocation. The identity holds because every term
//! after position `k` carries the factor `r_k` exactly once, and is *valid
//! regardless of where the new value would sort*: by Theorem 1(2) the
//! X-measure is independent of the order in which the ρ-values are listed,
//! so an [`XScan`] never needs to keep its array sorted.
//!
//! The scan is a structure-of-arrays batch path: `d_i` and `r_i` are
//! precomputed once per profile and shared by all `n` candidate
//! evaluations of a sweep, turning a greedy round from O(n²·log n) into
//! amortized O(n) — the difference between toy-sized clusters and the
//! 2¹⁶-computer sweeps of §4.3.
//!
//! ```
//! use hetero_core::{Params, Profile};
//! use hetero_core::xengine::XScan;
//! use hetero_core::xmeasure::x_measure_of_rhos;
//!
//! let params = Params::paper_table1();
//! let p = Profile::harmonic(64);
//! let mut scan = XScan::new(&params, p.rhos()).unwrap();
//! assert_eq!(scan.x(), x_measure_of_rhos(&params, p.rhos()));
//!
//! // O(1) what-if: speed up computer 63 (ρ = 1/64) to ρ = 1/128.
//! let x = scan.replace(63, 1.0 / 128.0).unwrap();
//! assert!(x > scan.x());
//!
//! // Accept the upgrade: O(n) rebuild of the decomposition.
//! scan.commit(63, 1.0 / 128.0).unwrap();
//! assert!((scan.x() - x).abs() / x < 1e-12);
//! ```

use crate::numeric::KahanSum;
use crate::{ModelError, Params, Profile};

/// Prefix/suffix decomposition of the Theorem 2 sum over one ρ-array,
/// supporting O(1) single-ρ replacement queries ([`XScan::replace`]) and
/// O(n) accepted-upgrade rebuilds ([`XScan::commit`]).
///
/// The array order is the *evaluation* order of the order-explicit
/// `X(P; Σ)` of Theorem 1's proof; by Theorem 1(2) the value — and hence
/// every replacement query — is independent of that order, so callers may
/// hand the scan sorted or unsorted speeds alike.
#[derive(Debug, Clone)]
pub struct XScan {
    a: f64,
    b: f64,
    td: f64,
    /// Current ρ-values, in scan order.
    rhos: Vec<f64>,
    /// `d_i = Bρ_i + A`.
    d: Vec<f64>,
    /// `r_i = (Bρ_i + τδ)/d_i`, each in `(τδ/A, 1)` under the §4.1
    /// standing assumption — bounded away from zero, so dividing by
    /// `r_k` in a replacement query is always safe.
    r: Vec<f64>,
    /// Prefix products `s[k] = S_k = Π_{j<k} r_j` (`s[0] = 1`).
    s: Vec<f64>,
    /// Compensated prefix sums `prefix[k] = P_k = Σ_{i<k} S_i/d_i`;
    /// `prefix[n]` is `X(P)` itself, bit-identical to
    /// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) because
    /// the snapshots come from the same fused Neumaier recurrence.
    prefix: Vec<f64>,
    /// Compensated suffix sums `suffix[k] = Σ_{i≥k} S_i/d_i`
    /// (`suffix[n] = 0`); the `T_k` of a replacement query is
    /// `suffix[k + 1]`.
    suffix: Vec<f64>,
}

impl XScan {
    /// Builds the decomposition over a raw ρ-array (any order — Theorem
    /// 1(2) makes the measure order-independent). Validates every ρ the
    /// way [`Profile`] construction does.
    pub fn new(params: &Params, rhos: &[f64]) -> Result<Self, ModelError> {
        let mut scan = XScan {
            a: params.a(),
            b: params.b(),
            td: params.tau_delta(),
            rhos: Vec::new(),
            d: Vec::new(),
            r: Vec::new(),
            s: Vec::new(),
            prefix: Vec::new(),
            suffix: Vec::new(),
        };
        scan.rebuild(rhos)?;
        Ok(scan)
    }

    /// [`XScan::new`] over a validated [`Profile`]'s speeds (§2.2).
    pub fn from_profile(params: &Params, profile: &Profile) -> Self {
        // hetero-check: allow(expect) — Profile construction already validated every ρ finite and positive
        Self::new(params, profile.rhos()).expect("profiles hold validated speeds")
    }

    /// Re-populates the scan from a fresh ρ-array in O(n), reusing the
    /// existing buffers (the per-round path of the §3.2.2 greedy engine —
    /// no allocation once capacity has grown to the cluster size).
    pub fn rebuild(&mut self, rhos: &[f64]) -> Result<(), ModelError> {
        if rhos.is_empty() {
            return Err(ModelError::EmptyProfile);
        }
        for (index, &value) in rhos.iter().enumerate() {
            if !(value.is_finite() && value > 0.0) {
                return Err(ModelError::InvalidRho { index, value });
            }
        }
        self.rhos.clear();
        self.rhos.extend_from_slice(rhos);
        hetero_obs::counters::XENGINE_REBUILD.bump();
        self.recompute();
        Ok(())
    }

    /// Rebuilds `d`, `r`, `s`, `prefix`, and `suffix` from `self.rhos`.
    ///
    /// The forward pass is the exact operation sequence of
    /// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) with the
    /// running state snapshotted at every step, so `prefix[k]` is
    /// bit-identical to evaluating the first `k` elements from scratch.
    fn recompute(&mut self) {
        let n = self.rhos.len();
        self.d.clear();
        self.r.clear();
        self.s.clear();
        self.prefix.clear();
        self.suffix.clear();
        self.s.push(1.0);
        self.prefix.push(0.0);
        let mut product = 1.0f64;
        let mut acc = KahanSum::new();
        for &rho in &self.rhos {
            let denom = self.b * rho + self.a;
            let ratio = (self.b * rho + self.td) / denom;
            acc.add(product / denom);
            product *= ratio;
            self.d.push(denom);
            self.r.push(ratio);
            self.s.push(product);
            self.prefix.push(acc.value());
        }
        self.suffix.resize(n + 1, 0.0);
        let mut tail = KahanSum::new();
        for i in (0..n).rev() {
            tail.add(self.s[i] / self.d[i]);
            self.suffix[i] = tail.value();
        }
        if hetero_obs::enabled() {
            // How much the Neumaier compensation mattered for this pass:
            // |comp| bucketed on a log10 axis from 1e-30 up to 1.
            let comp = acc.compensation().abs().max(1e-30).log10();
            hetero_obs::observe_hist("xengine.kahan_comp_log10", comp, -30.0, 0.0, 30);
        }
    }

    /// Number of computers in the scanned cluster (§1.1's `n`).
    pub fn n(&self) -> usize {
        self.rhos.len()
    }

    /// The current ρ-values, in scan order (§1.1's heterogeneity
    /// profile, possibly unsorted — see Theorem 1(2)).
    pub fn rhos(&self) -> &[f64] {
        &self.rhos
    }

    /// `X(P)` of the current array (Theorem 2's power measure),
    /// bit-identical to a from-scratch
    /// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) call.
    pub fn x(&self) -> f64 {
        self.prefix[self.rhos.len()]
    }

    /// `X` of the first `k` elements (the order-explicit prefix of
    /// Theorem 1's proof), bit-identical to evaluating them from scratch.
    /// Nested families — e.g. §2.5's harmonic C2, whose size-`n` profile
    /// is a prefix of the size-`2n` one — read a whole scaling sweep off
    /// one scan. `None` when `k > n`.
    pub fn prefix_x(&self, k: usize) -> Option<f64> {
        self.prefix.get(k).copied()
    }

    /// O(1) what-if: `X` of the cluster with `ρ_k` replaced by `rho`,
    /// leaving the scan untouched — the candidate evaluation of the
    /// Theorem 3/4 upgrade rules, computed as `P_k + S_k/d' + (r'/r_k)·T_k`
    /// with a compensated 3-term combine and zero allocation.
    pub fn replace(&self, k: usize, rho: f64) -> Result<f64, ModelError> {
        let n = self.rhos.len();
        if k >= n {
            return Err(ModelError::IndexOutOfRange { index: k, n });
        }
        if !(rho.is_finite() && rho > 0.0) {
            return Err(ModelError::InvalidRho {
                index: k,
                value: rho,
            });
        }
        hetero_obs::counters::XENGINE_REPLACE.bump();
        let denom = self.b * rho + self.a;
        let ratio = (self.b * rho + self.td) / denom;
        let mut acc = KahanSum::new();
        acc.add(self.prefix[k]);
        acc.add(self.s[k] / denom);
        acc.add((ratio / self.r[k]) * self.suffix[k + 1]);
        Ok(acc.value())
    }

    /// Accepts an upgrade (§3): sets `ρ_k = rho` in place and rebuilds
    /// the decomposition in O(n). The value stays at position `k` rather
    /// than re-sorting — legal by Theorem 1(2)'s order-independence.
    pub fn commit(&mut self, k: usize, rho: f64) -> Result<(), ModelError> {
        let n = self.rhos.len();
        if k >= n {
            return Err(ModelError::IndexOutOfRange { index: k, n });
        }
        if !(rho.is_finite() && rho > 0.0) {
            return Err(ModelError::InvalidRho {
                index: k,
                value: rho,
            });
        }
        self.rhos[k] = rho;
        hetero_obs::counters::XENGINE_COMMIT.bump();
        self.recompute();
        Ok(())
    }

    /// `X(⟨ρ_k, …, ρ_{n-1}⟩)` for every `k` in one O(n) backward pass
    /// (entry `n` is 0, the empty cluster): the suffix scan behind
    /// Proposition 2 fleet sizing, replacing `n` full evaluations.
    ///
    /// Computed by the Horner-form recurrence `v_k = 1/d_k + r_k·v_{k+1}`
    /// rather than as `suffix[k]/S_k`: the prefix products `S_k` underflow
    /// to zero on large saturated clusters (§2.3's regime, where the terms
    /// decay geometrically), while the recurrence only ever combines
    /// positive, well-scaled quantities and is forward stable.
    pub fn suffix_measures(&self) -> Vec<f64> {
        let n = self.rhos.len();
        let mut v = vec![0.0f64; n + 1];
        for i in (0..n).rev() {
            v[i] = 1.0 / self.d[i] + self.r[i] * v[i + 1];
        }
        v
    }
}

/// `X` of two same-length ρ-arrays in one interleaved structure-of-arrays
/// pass — the batch path of the §4.3 predictor sweeps, which judge ~10⁵
/// random *pairs* of equal-mean clusters per experiment.
///
/// Each cluster's value is produced by exactly the operation sequence of
/// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) (so results
/// are bit-identical to two separate calls); interleaving the two
/// independent product/divide dependency chains hides their latency,
/// which is what bounds the one-cluster loop. Falls back to two separate
/// passes when the lengths differ.
pub fn x_pair(params: &Params, rhos1: &[f64], rhos2: &[f64]) -> (f64, f64) {
    if rhos1.len() != rhos2.len() {
        return (
            crate::xmeasure::x_measure_of_rhos(params, rhos1),
            crate::xmeasure::x_measure_of_rhos(params, rhos2),
        );
    }
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let mut product1 = 1.0f64;
    let mut product2 = 1.0f64;
    let mut sum1 = KahanSum::new();
    let mut sum2 = KahanSum::new();
    for (&rho1, &rho2) in rhos1.iter().zip(rhos2) {
        let denom1 = b * rho1 + a;
        let denom2 = b * rho2 + a;
        sum1.add(product1 / denom1);
        sum2.add(product2 / denom2);
        product1 *= (b * rho1 + td) / denom1;
        product2 *= (b * rho2 + td) / denom2;
    }
    (sum1.value(), sum2.value())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmeasure::x_measure_of_rhos;

    fn params() -> Params {
        Params::paper_table1()
    }

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
    }

    #[test]
    fn scan_x_is_bitwise_from_scratch() {
        let p = params();
        for profile in [
            Profile::harmonic(1),
            Profile::harmonic(17),
            Profile::uniform_spread(256),
            Profile::new(vec![1.0, 1e-3, 1e-6, 1e-9]).unwrap(),
        ] {
            let scan = XScan::from_profile(&p, &profile);
            assert_eq!(scan.x(), x_measure_of_rhos(&p, profile.rhos()));
        }
    }

    #[test]
    fn prefix_x_is_bitwise_prefix_evaluation() {
        let p = params();
        let profile = Profile::harmonic(64);
        let scan = XScan::from_profile(&p, &profile);
        assert_eq!(scan.prefix_x(0), Some(0.0));
        for k in 1..=64 {
            assert_eq!(
                scan.prefix_x(k).unwrap(),
                x_measure_of_rhos(&p, &profile.rhos()[..k]),
                "prefix {k}"
            );
        }
        assert!(scan.prefix_x(65).is_none());
    }

    #[test]
    fn replace_matches_from_scratch_on_every_position() {
        let p = params();
        let profile = Profile::harmonic(128);
        let scan = XScan::from_profile(&p, &profile);
        let mut scratch = profile.rhos().to_vec();
        for k in 0..scan.n() {
            let old = scratch[k];
            for new_rho in [old * 0.5, old * 0.999, old * 17.0, 1e-9] {
                let incremental = scan.replace(k, new_rho).unwrap();
                scratch[k] = new_rho;
                let direct = x_measure_of_rhos(&p, &scratch);
                scratch[k] = old;
                assert!(
                    rel_err(incremental, direct) < 1e-13,
                    "k={k} rho'={new_rho}: {incremental} vs {direct}"
                );
            }
        }
    }

    #[test]
    fn replace_is_order_agnostic() {
        // Theorem 1(2): an unsorted scan answers the same queries.
        let p = params();
        let sorted = [1.0, 0.5, 0.25, 0.125];
        let shuffled = [0.25, 1.0, 0.125, 0.5];
        let a = XScan::new(&p, &sorted).unwrap();
        let b = XScan::new(&p, &shuffled).unwrap();
        // Replace the ρ = 0.25 computer in both (position 2 vs 0).
        let xa = a.replace(2, 0.2).unwrap();
        let xb = b.replace(0, 0.2).unwrap();
        assert!(rel_err(xa, xb) < 1e-13);
    }

    #[test]
    fn commit_rebuilds_exactly() {
        let p = params();
        let mut scan = XScan::from_profile(&p, &Profile::uniform_spread(33));
        let predicted = scan.replace(7, 0.01).unwrap();
        scan.commit(7, 0.01).unwrap();
        let mut rhos = Profile::uniform_spread(33).rhos().to_vec();
        rhos[7] = 0.01;
        assert_eq!(scan.x(), x_measure_of_rhos(&p, &rhos));
        assert!(rel_err(scan.x(), predicted) < 1e-13);
    }

    #[test]
    fn validation_errors() {
        let p = params();
        assert!(matches!(XScan::new(&p, &[]), Err(ModelError::EmptyProfile)));
        let scan = XScan::new(&p, &[1.0, 0.5]).unwrap();
        assert!(matches!(
            scan.replace(2, 0.5),
            Err(ModelError::IndexOutOfRange { index: 2, n: 2 })
        ));
        assert!(matches!(
            scan.replace(0, -1.0),
            Err(ModelError::InvalidRho { index: 0, .. })
        ));
        let mut scan = scan;
        assert!(scan.commit(5, 0.5).is_err());
        assert!(scan.commit(0, f64::NAN).is_err());
        assert!(XScan::new(&p, &[1.0, f64::INFINITY]).is_err());
    }

    #[test]
    fn suffix_measures_match_direct_suffix_evaluation() {
        let p = params();
        let profile = Profile::harmonic(200);
        let scan = XScan::from_profile(&p, &profile);
        let v = scan.suffix_measures();
        assert_eq!(v.len(), 201);
        assert_eq!(v[200], 0.0);
        for (k, &vk) in v.iter().enumerate().take(200) {
            let direct = x_measure_of_rhos(&p, &profile.rhos()[k..]);
            assert!(rel_err(vk, direct) < 1e-12, "suffix {k}: {vk} vs {direct}");
        }
    }

    #[test]
    fn suffix_measures_survive_prefix_product_underflow() {
        // A huge saturated harmonic cluster drives the prefix products
        // S_k to zero; the Horner recurrence must stay finite and match
        // direct evaluation wherever we spot-check it.
        let p = params();
        let profile = Profile::harmonic(65_536);
        let scan = XScan::from_profile(&p, &profile);
        assert!(
            *scan.s.last().unwrap() < 1e-300,
            "prefix products really do collapse into the subnormal range"
        );
        let v = scan.suffix_measures();
        for k in [0usize, 1, 1000, 30_000, 65_000] {
            assert!(v[k].is_finite() && v[k] > 0.0);
            let direct = x_measure_of_rhos(&p, &profile.rhos()[k..]);
            assert!(rel_err(v[k], direct) < 1e-11, "suffix {k}");
        }
    }

    #[test]
    fn rebuild_reuses_and_matches_new() {
        let p = params();
        let mut scan = XScan::new(&p, &[1.0; 8]).unwrap();
        scan.rebuild(Profile::harmonic(5).rhos()).unwrap();
        assert_eq!(scan.n(), 5);
        assert_eq!(scan.x(), x_measure_of_rhos(&p, Profile::harmonic(5).rhos()));
        assert!(scan.rebuild(&[]).is_err());
        assert!(scan.rebuild(&[1.0, -2.0]).is_err());
    }

    #[test]
    fn x_pair_is_bitwise_two_calls() {
        let p = params();
        let c1 = Profile::uniform_spread(77);
        let c2 = Profile::harmonic(77);
        let (x1, x2) = x_pair(&p, c1.rhos(), c2.rhos());
        assert_eq!(x1, x_measure_of_rhos(&p, c1.rhos()));
        assert_eq!(x2, x_measure_of_rhos(&p, c2.rhos()));
        // Mismatched lengths fall back to two passes.
        let (y1, y2) = x_pair(&p, c1.rhos(), &c2.rhos()[..10]);
        assert_eq!(y1, x_measure_of_rhos(&p, c1.rhos()));
        assert_eq!(y2, x_measure_of_rhos(&p, &c2.rhos()[..10]));
    }
}
