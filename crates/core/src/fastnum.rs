//! The certified fast numeric mode: divide-light and divide-free
//! evaluations of the Theorem 2 recurrence (DESIGN.md §17).
//!
//! BENCH_pr5's `hardware_ceiling` analysis shows the strict kernel is
//! bound by two `divsd`-throughput divisions per ρ-element. This module
//! holds the two certified ways around that ceiling:
//!
//! 1. **Single-division reform** ([`x_fast_1div`]) — hoist
//!    `inv = 1/(Bρ + A)` once per element; the summand becomes
//!    `product·inv` and the product update `(Bρ + τδ)·inv`, halving
//!    division pressure for ≤ a-few-ulp drift per element.
//! 2. **Reciprocal approximation + Newton refinement**
//!    ([`x_fast_rcp`] and the lockstep batch kernels) — `inv` comes
//!    from `hetero-simd` (`vrcp14pd` + 2 FMA Newton steps under
//!    AVX-512, magic-seed + 4 plain Newton steps portably), removing
//!    hardware divide from the inner loop entirely.
//!
//! Every kernel here ships a *certificate*: the analytic per-element
//! relative-error bounds [`x_budget_1div`] / [`x_budget_rcp`] derived
//! in DESIGN.md §17, enforced against the exact `crates/exact::Ratio`
//! oracle by the `fastnum_oracle` proptest suite. [`NumericMode`]
//! selects between the strict (bit-identical, golden-baseline) kernels
//! and these fast ones; `Strict` is the default everywhere, and the
//! incremental engines (`XScan`, `ChurnScan`) are strict-only because
//! their ≤ 1e-12-of-a-rebuild invariants are certified against the
//! strict evaluation order.
//!
//! This module and `crates/simd` are the only places approximate math
//! is allowed — the `approx-math-outside-kernel` hetero-check lint
//! keeps reciprocal intrinsics and Newton helpers from leaking
//! anywhere else.

use crate::numeric::KahanSum;
use crate::{ModelError, Params};

/// Which numeric contract an evaluation honors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NumericMode {
    /// Bit-identical to the scalar reference kernels — the golden
    /// baseline behind every pinned figure, table, and byte-diffed
    /// trace.
    #[default]
    Strict,
    /// The certified fast kernels: results drift from strict by at
    /// most the documented ulp budgets ([`x_budget_1div`] /
    /// [`x_budget_rcp`]), in exchange for breaking the divider
    /// throughput ceiling.
    Fast,
}

impl NumericMode {
    /// Stable lowercase name (CLI flag value, obs-manifest field).
    pub fn as_str(self) -> &'static str {
        match self {
            NumericMode::Strict => "strict",
            NumericMode::Fast => "fast",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Result<NumericMode, String> {
        match s {
            "strict" => Ok(NumericMode::Strict),
            "fast" => Ok(NumericMode::Fast),
            other => Err(format!("unknown numeric mode `{other}` (strict|fast)")),
        }
    }

    /// `true` for [`NumericMode::Fast`].
    pub fn is_fast(self) -> bool {
        self == NumericMode::Fast
    }
}

/// Unit roundoff u = 2⁻⁵³ of IEEE-754 binary64.
pub const UNIT_ROUNDOFF: f64 = f64::EPSILON / 2.0;

/// Worst-case relative error of [`x_fast_1div`] against exact
/// arithmetic for an `n`-element profile: `(6n + 12)·u`.
///
/// Derivation sketch (full version in DESIGN.md §17): per element the
/// reform performs one correctly rounded division (≤ u), one summand
/// multiply (≤ u), and a product update of two roundings (numerator
/// fused as mul+add ≤ 2u, multiply ≤ u); the running product therefore
/// accumulates ≤ 4u of drift per factor, each term adds ≤ 2u of its
/// own, and the Neumaier sum of positive terms contributes ≤ 2u.
/// `6n + 12` covers that with margin.
pub fn x_budget_1div(n: usize) -> f64 {
    (6.0 * n as f64 + 12.0) * UNIT_ROUNDOFF
}

/// Worst-case relative error of [`x_fast_rcp`] (and the fast lockstep
/// batch kernels) for an `n`-element profile: `(10n + 20)·u`.
///
/// Same accumulation argument as [`x_budget_1div`] with the correctly
/// rounded division replaced by the refined reciprocal, whose relative
/// error η ≤ 4u covers both `hetero-simd` paths (≤ 3u for
/// `vrcp14pd` + 2 Newton steps, ≤ 4u portable); per element the drift
/// is ≤ (η + 3)u ≤ 7u on the product chain plus (η + 1)u on the term.
/// `10n + 20` covers that with margin.
pub fn x_budget_rcp(n: usize) -> f64 {
    (10.0 * n as f64 + 20.0) * UNIT_ROUNDOFF
}

/// `X(P)` via the single-division reform (Theorem 2; DESIGN.md §17).
///
/// One division per element instead of two: `inv = 1/(Bρ + A)` serves
/// both the summand `product·inv` and the product update
/// `(Bρ + τδ)·inv`. Certified within [`x_budget_1div`] of exact.
pub fn x_fast_1div(params: &Params, rhos: &[f64]) -> f64 {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let mut product = 1.0f64;
    let mut sum = KahanSum::new();
    for &rho in rhos {
        let inv = 1.0 / (b * rho + a);
        sum.add(product * inv);
        product *= (b * rho + td) * inv;
    }
    sum.value()
}

/// `X(P)` with no hardware divide at all (Theorem 2; DESIGN.md §17):
/// the reciprocal comes from the portable magic-seed + Newton kernel
/// of `hetero-simd`. Certified within [`x_budget_rcp`] of exact.
///
/// This is the scalar reference for the divide-free path; batches go
/// through the lockstep kernel, which uses `vrcp14pd` when available.
pub fn x_fast_rcp(params: &Params, rhos: &[f64]) -> f64 {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let mut product = 1.0f64;
    let mut sum = KahanSum::new();
    for &rho in rhos {
        let inv = hetero_simd::rcp_portable(b * rho + a);
        sum.add(product * inv);
        product *= (b * rho + td) * inv;
    }
    sum.value()
}

/// The fast lockstep Theorem 2 kernel over a uniform-length batch —
/// the divide-free twin of `xbatch::lockstep_x`, same LANES/TILE
/// shape, with the per-element divisions replaced by one batched
/// [`hetero_simd::rcp_in_place`] call per tile. Tail rows narrower
/// than a lane block fall back to [`x_fast_1div`].
pub(crate) fn lockstep_x_fast(
    params: &Params,
    batch: &crate::xbatch::ProfileBatch,
    n: usize,
    out: &mut [f64],
) {
    use crate::xbatch::LANES;
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let m = batch.len();
    const TILE: usize = 64;
    let mut scratch = [0.0f64; TILE * LANES];
    let mut invs = [0.0f64; TILE * LANES];
    let mut base = 0;
    while base + LANES <= m {
        let mut sum = [0.0f64; LANES];
        let mut comp = [0.0f64; LANES];
        let mut prod = [1.0f64; LANES];
        let mut start = 0;
        while start < n {
            let len = TILE.min(n - start);
            for l in 0..LANES {
                let row = batch.rhos_of(base + l);
                for (i, &rho) in row[start..start + len].iter().enumerate() {
                    scratch[i * LANES + l] = rho;
                }
            }
            // One reciprocal sweep per tile: denominators Bρ + A for
            // all lanes and elements, refined in place (vrcp14pd + 2
            // Newton steps under AVX-512, magic-seed + 4 portably).
            for (inv, &rho) in invs[..len * LANES].iter_mut().zip(&scratch[..len * LANES]) {
                *inv = b * rho + a;
            }
            hetero_simd::rcp_in_place(&mut invs[..len * LANES]);
            for i in 0..len {
                let rhos = &scratch[i * LANES..(i + 1) * LANES];
                let inv_row = &invs[i * LANES..(i + 1) * LANES];
                for l in 0..LANES {
                    let rho = rhos[l];
                    let inv = inv_row[l];
                    let term = prod[l] * inv;
                    // Inlined KahanSum::add, exactly as in the strict
                    // lockstep kernel — compensation is kept in fast
                    // mode too (pure mul/add, and it confines the
                    // certificate to the product-chain drift).
                    let t = sum[l] + term;
                    // hetero-check: allow(float-accum) — this IS the Kahan compensation update (inlined KahanSum::add)
                    comp[l] += if sum[l].abs() >= term.abs() {
                        (sum[l] - t) + term
                    } else {
                        (term - t) + sum[l]
                    };
                    sum[l] = t;
                    prod[l] *= (b * rho + td) * inv;
                }
            }
            start += len;
        }
        for l in 0..LANES {
            out[base + l] = sum[l] + comp[l];
        }
        base += LANES;
    }
    for (i, slot) in out.iter_mut().enumerate().skip(base) {
        *slot = x_fast_1div(params, batch.rhos_of(i));
    }
}

/// The fast lockstep HECR log-residual kernel — divide-free twin of
/// `xbatch::lockstep_hecr`: the per-element `(τδ − A)/(Bρ + A)` goes
/// through the refined reciprocal, the `ln_1p` and the shared
/// Proposition 1 inversion stay exactly as in the strict path. Tail
/// rows fall back to the strict scalar closed form (never *less*
/// accurate than the lockstep path).
pub(crate) fn lockstep_hecr_fast(
    params: &Params,
    batch: &crate::xbatch::ProfileBatch,
    n: usize,
    out: &mut Vec<Result<f64, ModelError>>,
) {
    use crate::xbatch::LANES;
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let m = batch.len();
    const TILE: usize = 64;
    let mut scratch = [0.0f64; TILE * LANES];
    let mut base = 0;
    while base + LANES <= m {
        let mut sum = [0.0f64; LANES];
        let mut comp = [0.0f64; LANES];
        let mut start = 0;
        while start < n {
            let len = TILE.min(n - start);
            for l in 0..LANES {
                let row = batch.rhos_of(base + l);
                for (i, &rho) in row[start..start + len].iter().enumerate() {
                    scratch[i * LANES + l] = rho;
                }
            }
            for x in &mut scratch[..len * LANES] {
                *x = b * *x + a;
            }
            hetero_simd::rcp_in_place(&mut scratch[..len * LANES]);
            for i in 0..len {
                let inv_row = &scratch[i * LANES..(i + 1) * LANES];
                for l in 0..LANES {
                    let term = ((td - a) * inv_row[l]).ln_1p();
                    let t = sum[l] + term;
                    // hetero-check: allow(float-accum) — inlined KahanSum::add compensation, as in the strict hecr kernel
                    comp[l] += if sum[l].abs() >= term.abs() {
                        (sum[l] - t) + term
                    } else {
                        (term - t) + sum[l]
                    };
                    sum[l] = t;
                }
            }
            start += len;
        }
        for l in 0..LANES {
            out.push(crate::hecr::hecr_from_log_residual(
                params,
                sum[l] + comp[l],
                n,
            ));
        }
        base += LANES;
    }
    for i in base..m {
        out.push(crate::hecr::hecr_of_rhos(params, batch.rhos_of(i)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmeasure::x_measure_of_rhos;
    use crate::Profile;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn mode_round_trips_and_defaults_strict() {
        assert_eq!(NumericMode::default(), NumericMode::Strict);
        for m in [NumericMode::Strict, NumericMode::Fast] {
            assert_eq!(NumericMode::parse(m.as_str()), Ok(m));
        }
        assert!(NumericMode::parse("fastish").is_err());
        assert!(NumericMode::Fast.is_fast() && !NumericMode::Strict.is_fast());
    }

    #[test]
    fn fast_kernels_track_strict_within_budget() {
        let p = params();
        for n in [1usize, 7, 64, 1024] {
            let rhos: Vec<f64> = (1..=n).map(|i| 1.0 / i as f64).collect();
            let strict = x_measure_of_rhos(&p, &rhos);
            let d1 = ((x_fast_1div(&p, &rhos) - strict) / strict).abs();
            let dr = ((x_fast_rcp(&p, &rhos) - strict) / strict).abs();
            // Strict itself is within ~the same envelope of exact, so
            // fast-vs-strict stays inside twice the budget.
            assert!(d1 <= 2.0 * x_budget_1div(n), "n={n}: 1div drift {d1:e}");
            assert!(dr <= 2.0 * x_budget_rcp(n), "n={n}: rcp drift {dr:e}");
        }
    }

    #[test]
    fn budgets_grow_linearly_and_stay_tiny() {
        assert!(x_budget_1div(1024) < 1e-12);
        assert!(x_budget_rcp(1024) < 2e-12);
        assert!(x_budget_rcp(65_536) < 1e-10);
        assert!(x_budget_1div(8) < x_budget_1div(9));
        assert!(x_budget_1div(64) < x_budget_rcp(64));
    }

    #[test]
    fn fast_batch_kernels_track_strict_within_budget() {
        let p = params();
        // Non-multiple-of-LANES row count exercises the scalar tail.
        let n = 33;
        let mut batch = crate::xbatch::ProfileBatch::new();
        let mut rows = Vec::new();
        for r in 0..(crate::xbatch::LANES + 3) {
            let row: Vec<f64> = (0..n)
                .map(|i| 1.0 / ((1 + i) as f64).powf(1.0 + r as f64 / 3.0))
                .collect();
            batch.push(&row);
            rows.push(row);
        }
        let mut out = vec![0.0; batch.len()];
        lockstep_x_fast(&p, &batch, n, &mut out);
        for (x, row) in out.iter().zip(&rows) {
            let strict = x_measure_of_rhos(&p, row);
            let rel = ((x - strict) / strict).abs();
            assert!(rel <= 2.0 * x_budget_rcp(n), "drift {rel:e}");
        }
    }

    #[test]
    fn fast_hecr_tracks_strict_within_budget() {
        let p = params();
        let mut batch = crate::xbatch::ProfileBatch::new();
        let mut profs = Vec::new();
        for r in 0..(crate::xbatch::LANES + 1) {
            let rhos: Vec<f64> = (1..=9).map(|i| 1.0 / (i as f64 + r as f64 / 7.0)).collect();
            let prof = Profile::new(rhos).expect("valid");
            batch.push_profile(&prof);
            profs.push(prof);
        }
        let mut out = Vec::new();
        lockstep_hecr_fast(&p, &batch, 9, &mut out);
        for (got, prof) in out.iter().zip(&profs) {
            let want = crate::hecr::hecr(&p, prof).expect("valid");
            let got = *got.as_ref().expect("valid");
            // The log-residual is an n-term sum of ln_1p factors; the
            // rcp drift enters each factor once, so the X budget is a
            // comfortable envelope for the inverted ρ_C as well.
            assert!(
                ((got - want) / want).abs() <= x_budget_rcp(9),
                "{got} vs {want}"
            );
        }
    }
}
