//! Cluster composition: which computers are worth keeping?
//!
//! The paper asks *what determines a cluster's power*; the operator's
//! version is *which `k` of my `n` computers should I actually rent?*
//! Proposition 2 settles it: any subset is pointwise dominated by the
//! `k` fastest computers (sort both subsets — each rank of the fastest-`k`
//! subset is at least as fast), so by minorization the **`k` fastest are
//! always an optimal `k`-subset**. This module verifies that claim with
//! *exact search* that does not assume it:
//!
//! * [`best_k_subset`] — branch-and-bound over the Lemma 1 symmetric-form
//!   recurrence: depth-first over elements in ascending index order, an
//!   admissible bound from the [`hcompress`](crate::hcompress) summary
//!   tree ("finish with the `s` fastest remaining" — the Proposition 3
//!   dominance ordering makes it an upper bound), and an equal-speed
//!   dominance rule that canonicalizes ties. Exact far beyond the
//!   enumerable range, with a winner bit-identical to the Gray walk
//!   wherever both run.
//! * [`best_k_subset_gray`] — the exhaustive Gray-code walk, kept as the
//!   independent oracle (and the engine of [`best_k_subset_par`], which
//!   runs it in contiguous Gray segments on the persistent worker pool
//!   with a bit-identical winner, falling back to the serial walk on
//!   single-worker hosts where fan-out is pure overhead).
//!
//! [`marginal_gains`] quantifies the diminishing returns that the
//! X-measure's saturation at `1/(A−τδ)` imposes; [`smallest_fleet_for`]
//! inverts the curve by binary search. The fleet-curve functions read all
//! `n` sub-cluster X-values off one backward
//! [`XScan`](crate::xengine::XScan) suffix scan instead of `n` full
//! evaluations.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::hcompress::SummaryTree;
use crate::numeric::KahanSum;
use crate::xengine::XScan;
use crate::xmeasure::{x_measure_of_rhos, x_supremum};
use crate::{ModelError, Params, Profile};

/// The `k` fastest computers of the profile, as a new profile. By
/// Proposition 2 this is an optimal `k`-subset (a fact the tests verify
/// exhaustively against [`best_k_subset`]).
pub fn fastest_k(profile: &Profile, k: usize) -> Result<Profile, ModelError> {
    if k == 0 || k > profile.n() {
        return Err(ModelError::IndexOutOfRange {
            index: k,
            n: profile.n(),
        });
    }
    // Profiles are sorted slowest-first, so the k fastest are the suffix.
    Profile::new(profile.rhos()[profile.n() - k..].to_vec())
}

/// The largest cluster the exhaustive walks ([`best_k_subset_gray`] and
/// [`best_k_subset_par`]) can enumerate — their subset masks are `u64`
/// bit-sets. [`best_k_subset`] has no such cap: branch-and-bound prunes
/// instead of enumerating.
pub const MAX_SUBSET_SEARCH_N: usize = 63;

/// Search statistics of one [`best_k_subset_with_stats`] run, for the
/// pruned-vs-exhaustive accounting in benches, the E20 sweep, and the
/// CLI's obs manifest.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BnbStats {
    /// Decision nodes expanded (including forced-completion chains).
    pub nodes_visited: u64,
    /// Subtrees cut — by the admissible bound or the equal-speed
    /// dominance rule — without being expanded.
    pub nodes_pruned: u64,
    /// Complete `k`-subsets whose X was evaluated and offered.
    pub leaves_evaluated: u64,
}

impl BnbStats {
    /// How many subsets an exhaustive walk over the same cluster visits
    /// (`2ⁿ − 1`, as an `f64` because `n` may far exceed 63).
    pub fn exhaustive_subsets(n: usize) -> f64 {
        (n as f64).exp2() - 1.0
    }

    /// Fraction of the exhaustive subset space never materialized:
    /// `1 − visited/2ⁿ`, in `[0, 1)`.
    pub fn pruned_fraction(&self, n: usize) -> f64 {
        1.0 - self.nodes_visited as f64 / Self::exhaustive_subsets(n)
    }
}

/// Finds the exact `k`-subset maximizing X (smallest mask — i.e. first in
/// ascending-mask order — among exact ties), by branch-and-bound instead
/// of enumeration. Works for any `n` (memory O(n), winner identical to
/// [`best_k_subset_gray`] wherever the walk is feasible).
pub fn best_k_subset(params: &Params, profile: &Profile, k: usize) -> Result<Profile, ModelError> {
    best_k_subset_with_stats(params, profile, k).map(|(winner, _)| winner)
}

/// [`best_k_subset`] plus its [`BnbStats`].
///
/// # Search design
///
/// Depth-first over elements in **ascending index order**, each node
/// deciding skip/take for one element. The path state is the Lemma 1
/// recurrence state after the taken prefix — a compensated partial sum
/// and prefix product, updated by exactly the operation sequence of
/// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) — so every
/// leaf's X is **bit-identical** to the Gray walk's evaluation of the
/// same subset, and the (max-X by `total_cmp`, min-mask) winner predicate
/// shared with [`best_k_subset_gray`] picks the identical winner.
///
/// Pruning (exactness-preserving, both rules cut only on certainty):
///
/// * **Admissible bound.** From a node that has taken partial state
///   `(S, P)` and still needs `s` elements, every completion `C`
///   satisfies `X = S + P·X(C) ≤ S + P·X(s fastest remaining)` — the
///   Proposition 3 dominance ordering (pointwise-faster profiles have no
///   smaller X) applied to Proposition 2's fastest-`s` completion. The
///   `X(s fastest)` terms come from one [`SummaryTree`] per search
///   (profiles are slowest-first, so the `s` fastest are the global
///   suffix, disjoint from any expandable node's taken prefix). The
///   float bound is inflated by an `O(n·ε)` slack so it dominates every
///   *floating-point* leaf value too; subtrees are cut only when the
///   inflated bound is strictly below the incumbent (`total_cmp` Less),
///   so exact ties always survive to the min-mask tie-break.
/// * **Equal-speed dominance.** If `ρ_i` is bit-equal to `ρ_{i−1}` and
///   the path skipped `i−1`, taking `i` is dominated: swapping `i` for
///   `i−1` yields a float-identical X (same multiset, same ascending
///   operation sequence) at a strictly smaller mask. The canonical
///   winner therefore takes the earliest elements of each duplicate run,
///   exactly as the Gray walk's min-mask rule resolves such ties.
///
/// The first descent is skip-first, reaching the Proposition 2
/// fastest-`k` incumbent in `n` steps; with the bound tight at the root,
/// distinct-speed searches then close in O(n) further expansions.
///
/// # The two pruning regimes
///
/// The tie-preserving strict rule above is the contract **inside the
/// Gray domain** (`n ≤ MAX_SUBSET_SEARCH_N`), where the min-mask
/// tie-break is defined by — and verified against — the exhaustive walk.
/// Past that domain the strict rule has a failure mode: when the fleet
/// drives X into its saturation plateau (X → 1/(A − τδ), §2.4), true
/// inter-subset gaps shrink below one ulp of X, every float bound lands
/// inside the tie-preservation slack, and the search degenerates toward
/// enumerating the plateau. For `n > MAX_SUBSET_SEARCH_N` the search
/// therefore prunes with an ε-certified suboptimality margin instead:
/// a subtree is cut unless its bound exceeds the incumbent by more than
/// a margin covering every rounding source (`O(k·ε)` for the path
/// product plus the summary tree's certified error). The returned
/// winner then carries a `(1 + margin)`-optimality certificate — and is
/// in fact the *exact* optimum whenever the optimum is unique at float
/// resolution, because the Proposition 2 fastest-`k` subset (the true
/// argmax by Proposition 3) is the first incumbent and is only ever
/// replaced by a strictly larger computed X. Exact ties beyond the Gray
/// domain canonicalize to that fastest-`k` incumbent rather than the
/// global min-mask, which is only defined by the walk.
pub fn best_k_subset_with_stats(
    params: &Params,
    profile: &Profile,
    k: usize,
) -> Result<(Profile, BnbStats), ModelError> {
    let n = profile.n();
    if k == 0 || k > n {
        return Err(ModelError::IndexOutOfRange { index: k, n });
    }
    let _span = hetero_obs::timed("select.bnb");
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let rhos = profile.rhos();
    let d: Vec<f64> = rhos.iter().map(|&rho| b * rho + a).collect();
    let r: Vec<f64> = rhos
        .iter()
        .zip(&d)
        .map(|(&rho, &denom)| (b * rho + td) / denom)
        .collect();
    // tail_ub[s] = X of the s globally-fastest computers, off the
    // hierarchical summary tree. Admissible at any expandable node: such
    // a node has taken its elements strictly before index n − s, so the
    // global fastest-s suffix is entirely still available.
    let tree = SummaryTree::from_profile(params, profile);
    let tail_ub: Vec<f64> = (0..=k)
        .map(|s| {
            // hetero-check: allow(expect) — s ≤ k ≤ n keeps the query in range
            tree.x_of_fastest(s).expect("s is within the fleet")
        })
        .collect();
    // Relative slack dominating the O(n·ε) rounding drift between the
    // bound's arithmetic and any leaf's: Neumaier sums of positives stay
    // within a few ε, prefix products within n·ε.
    let slack = 1.0 + 1e-12 + 16.0 * f64::EPSILON * n as f64;
    // Beyond the Gray domain ties need not be preserved (see the module
    // docs on the two pruning regimes): cut any subtree whose bound does
    // not beat the incumbent by more than every rounding source — the
    // O(k·ε) path-product drift plus the summary tree's certified error,
    // which also covers the bound's own overshoot so saturated plateaus
    // prune instead of being enumerated.
    let tie_preserving = n <= MAX_SUBSET_SEARCH_N;
    let root_x = tail_ub[k].max(f64::MIN_POSITIVE);
    let cutoff = 1.0 + 1e-12 + 64.0 * f64::EPSILON * k as f64 + 2.0 * tree.x_error_bound() / root_x;

    // Path state indexed by taken count c: the recurrence state after the
    // first c taken elements, exactly as the Gray walk's level stacks.
    let mut sums = vec![KahanSum::new(); k + 1];
    let mut prods = vec![1.0f64; k + 1];
    let mut taken: Vec<u32> = Vec::with_capacity(k);
    let mut best: Option<(f64, Vec<u32>)> = None;
    let mut stats = BnbStats::default();

    // Explicit DFS. A frame records the element index `i` about to be
    // decided, the taken count `c` on its path, and whether reaching it
    // took element i − 1 (applied on pop, when the parent state at
    // c − 1 is guaranteed current — deeper subtrees only touch higher
    // counts, so sibling order preserves the invariant).
    struct Frame {
        i: u32,
        c: u32,
        take_prev: bool,
    }
    let mut stack = vec![Frame {
        i: 0,
        c: 0,
        take_prev: false,
    }];
    while let Some(Frame { i, c, take_prev }) = stack.pop() {
        let (i, c) = (i as usize, c as usize);
        if take_prev {
            let e = i - 1;
            taken.truncate(c - 1);
            taken.push(e as u32);
            let mut sum = sums[c - 1];
            let prod = prods[c - 1];
            sum.add(prod / d[e]);
            sums[c] = sum;
            prods[c] = prod * r[e];
        } else {
            taken.truncate(c);
        }
        stats.nodes_visited += 1;
        if c == k {
            stats.leaves_evaluated += 1;
            offer_indices(&mut best, sums[k].value(), &taken);
            continue;
        }
        let s = k - c; // still needed
        let rem = n - i; // still available
        if rem == s {
            // Forced completion: take everything left in one chain.
            let mut sum = sums[c];
            let mut prod = prods[c];
            for e in i..n {
                sum.add(prod / d[e]);
                prod *= r[e];
                taken.push(e as u32);
            }
            stats.nodes_visited += rem as u64;
            stats.leaves_evaluated += 1;
            offer_indices(&mut best, sum.value(), &taken);
            taken.truncate(c);
            continue;
        }
        if let Some((best_x, _)) = &best {
            let ub = sums[c].value() + prods[c] * tail_ub[s];
            let cut = if tie_preserving {
                (ub * slack).total_cmp(best_x) == Ordering::Less
            } else {
                ub.total_cmp(&(best_x * cutoff)) != Ordering::Greater
            };
            if cut {
                stats.nodes_pruned += 1;
                continue;
            }
        }
        // Children, skip-first (pushed last, popped first). The take
        // child is suppressed when dominated by its skipped equal-speed
        // predecessor.
        let dominated = i > 0
            && rhos[i].to_bits() == rhos[i - 1].to_bits()
            && taken.last() != Some(&((i - 1) as u32));
        if dominated {
            stats.nodes_pruned += 1;
        } else {
            stack.push(Frame {
                i: (i + 1) as u32,
                c: (c + 1) as u32,
                take_prev: true,
            });
        }
        stack.push(Frame {
            i: (i + 1) as u32,
            c: c as u32,
            take_prev: false,
        });
    }
    hetero_obs::counters::SELECT_BNB_NODES_VISITED.add(stats.nodes_visited);
    hetero_obs::counters::SELECT_BNB_NODES_PRUNED.add(stats.nodes_pruned);
    // Per-call node count as a value observation: paired with the
    // `select.bnb` wall span, `obsdiff` derives nodes/sec from the two
    // without the library ever reading a wall clock itself.
    hetero_obs::observe("select.bnb.nodes", stats.nodes_visited as f64);
    // hetero-check: allow(expect) — with 1 ≤ k ≤ n the forced/leaf paths offer at least one subset
    let (_, indices) = best.expect("k ≥ 1 guarantees a subset");
    let winner: Vec<f64> = indices.iter().map(|&i| rhos[i as usize]).collect();
    Ok((Profile::from_unsorted(winner)?, stats))
}

/// The winner predicate of the branch-and-bound leaves: take the
/// candidate when its X is strictly larger (`total_cmp`), or exactly
/// equal with a smaller mask. Ascending index lists compare as masks by
/// scanning from the *highest* element down — the numeric order of the
/// corresponding bit-sets for any `n`.
fn offer_indices(best: &mut Option<(f64, Vec<u32>)>, x: f64, indices: &[u32]) {
    let better = match best {
        None => true,
        Some((bx, bidx)) => match x.total_cmp(bx) {
            Ordering::Greater => true,
            Ordering::Equal => indices_mask_lt(indices, bidx),
            Ordering::Less => false,
        },
    };
    if better {
        *best = Some((x, indices.to_vec()));
    }
}

/// Numeric `mask(a) < mask(b)` for two ascending index lists of equal
/// length: the highest differing element decides.
fn indices_mask_lt(a: &[u32], b: &[u32]) -> bool {
    debug_assert_eq!(a.len(), b.len());
    for (ai, bi) in a.iter().rev().zip(b.iter().rev()) {
        if ai != bi {
            return ai < bi;
        }
    }
    false
}

/// Exhaustively finds a `k`-subset maximizing X (smallest mask among
/// exact ties) over a Gray-code subset walk. Exponential — the oracle
/// that [`best_k_subset`] is cross-checked against; clusters beyond
/// [`MAX_SUBSET_SEARCH_N`] return [`ModelError::SubsetSearchTooLarge`].
///
/// The walk follows a binary-reflected Gray code, so consecutive subsets
/// differ in one element: a stack of per-element prefix states
/// (compensated partial sum plus prefix product) is patched from the
/// toggled element onward, making each subset's X cost amortized O(1)
/// instead of O(n). Mapping the counter's most-toggled bit to the *last*
/// element keeps the patch short. Each visited subset's value is produced
/// by exactly the operation sequence of
/// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) over its
/// elements in ascending index order, so results — including tie
/// resolution — are bit-identical to the straightforward per-mask rescan.
pub fn best_k_subset_gray(
    params: &Params,
    profile: &Profile,
    k: usize,
) -> Result<Profile, ModelError> {
    let n = profile.n();
    if k == 0 || k > n {
        return Err(ModelError::IndexOutOfRange { index: k, n });
    }
    if n > MAX_SUBSET_SEARCH_N {
        return Err(ModelError::SubsetSearchTooLarge {
            n,
            max: MAX_SUBSET_SEARCH_N,
        });
    }
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let d: Vec<f64> = profile.rhos().iter().map(|&rho| b * rho + a).collect();
    let r: Vec<f64> = profile
        .rhos()
        .iter()
        .zip(&d)
        .map(|(&rho, &denom)| (b * rho + td) / denom)
        .collect();
    // Level j holds the (sum, product) state after elements 0..j of the
    // current subset, exactly as x_measure_of_rhos would leave them.
    let mut included = vec![false; n];
    let mut sums = vec![KahanSum::new(); n + 1];
    let mut prods = vec![1.0f64; n + 1];
    let mut mask = 0u64;
    let mut count = 0usize;
    let mut best: Option<(f64, u64)> = None;
    for i in 1..(1u64 << n) {
        // Binary-reflected Gray step i toggles counter bit tz(i); mapping
        // it to element n−1−tz(i) means the cheapest (last) element
        // toggles every other step.
        let e = n - 1 - i.trailing_zeros() as usize;
        included[e] = !included[e];
        mask ^= 1u64 << e;
        count = if included[e] { count + 1 } else { count - 1 };
        for j in e..n {
            let mut sum = sums[j];
            let mut prod = prods[j];
            if included[j] {
                sum.add(prod / d[j]);
                prod *= r[j];
            }
            sums[j + 1] = sum;
            prods[j + 1] = prod;
        }
        if count != k {
            continue;
        }
        offer(&mut best, sums[n].value(), mask);
    }
    // The Gray walk visits every nonempty subset exactly once.
    hetero_obs::counters::SELECTION_SUBSET_NODES.add((1u64 << n) - 1);
    winner_profile(profile, best)
}

/// The shared winner predicate of the serial and parallel walks: take the
/// candidate when its X is strictly larger, or exactly equal (by
/// `total_cmp`) with a smaller mask. Picking the unique
/// (max-X, min-mask) element makes the winner independent of visit
/// order — the keystone of the parallel walk's determinism.
#[inline]
fn offer(best: &mut Option<(f64, u64)>, x: f64, mask: u64) {
    let better = match *best {
        None => true,
        Some((bx, bmask)) => x > bx || (x.total_cmp(&bx) == Ordering::Equal && mask < bmask),
    };
    if better {
        *best = Some((x, mask));
    }
}

/// Rebuilds the winning mask into a [`Profile`].
fn winner_profile(profile: &Profile, best: Option<(f64, u64)>) -> Result<Profile, ModelError> {
    // hetero-check: allow(expect) — with 1 ≤ k ≤ n at least one subset has k elements, so `best` is set
    let (_, bmask) = best.expect("k ≥ 1 guarantees a subset");
    let rhos: Vec<f64> = (0..profile.n())
        .filter(|i| bmask & (1u64 << i) != 0)
        .map(|i| profile.rho(i))
        .collect();
    Profile::from_unsorted(rhos)
}

/// [`best_k_subset_gray`] parallelized over contiguous segments of the
/// same Gray-code walk, with a winner **bit-identical** to the serial
/// search — and a fallback *to* the serial search when parallelism cannot
/// pay for itself.
///
/// The 2ⁿ−1 step counters are split into `8 × threads` contiguous
/// segments dispatched on the process-wide [`hetero_par::Pool`]. Each
/// worker seeds its level stack directly from its segment's first
/// counter in O(n): the stack after any serial step is a pure function
/// of the *current* included set (each patch rebuilds levels `e..n` from
/// level `e`, which earlier patches built the same way), and the
/// included set at counter `i` is just the binary-reflected Gray code
/// `i ^ (i >> 1)` (bit `b` ↦ element `n−1−b`). Seeding therefore
/// replays exactly the ascending-index operation sequence the serial
/// walk would have in its stack, so every subset evaluated in a segment
/// is bit-identical to the serial evaluation; the order-independent
/// (max-X by `total_cmp`, then lowest-mask) reduction in [`offer`] then
/// makes the merged winner independent of the partitioning. `threads`
/// is the caller's concurrency budget; the *effective* budget is capped
/// by [`hetero_par::configured_threads`], and when that leaves one
/// worker — or the walk is below the ~2¹⁶-node fan-out threshold — the
/// serial walk runs directly: on a single-core host the segmented
/// dispatch is pure overhead (BENCH_pr5 measured 0.76×), and the
/// fallback restores 1.0× by construction. Any budget yields the
/// identical winner.
pub fn best_k_subset_par(
    params: &Params,
    profile: &Profile,
    k: usize,
    threads: usize,
) -> Result<Profile, ModelError> {
    let n = profile.n();
    if k == 0 || k > n {
        return Err(ModelError::IndexOutOfRange { index: k, n });
    }
    if n > MAX_SUBSET_SEARCH_N {
        return Err(ModelError::SubsetSearchTooLarge {
            n,
            max: MAX_SUBSET_SEARCH_N,
        });
    }
    let threads = threads.max(1).min(hetero_par::configured_threads());
    // One effective worker, or below ~2¹⁶ subsets: the fan-out
    // bookkeeping outweighs the walk.
    if threads == 1 || n < 16 {
        return best_k_subset_gray(params, profile, k);
    }
    best_k_subset_par_segments(params, profile, k, threads)
}

/// The segmented-dispatch core of [`best_k_subset_par`], *without* the
/// single-worker fallback — exposed so tests and benches can exercise
/// and measure the parallel path on any host. Callers want
/// [`best_k_subset_par`].
#[doc(hidden)]
pub fn best_k_subset_par_segments(
    params: &Params,
    profile: &Profile,
    k: usize,
    threads: usize,
) -> Result<Profile, ModelError> {
    let n = profile.n();
    if k == 0 || k > n {
        return Err(ModelError::IndexOutOfRange { index: k, n });
    }
    if n > MAX_SUBSET_SEARCH_N {
        return Err(ModelError::SubsetSearchTooLarge {
            n,
            max: MAX_SUBSET_SEARCH_N,
        });
    }
    let threads = threads.max(1);
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let d: Arc<Vec<f64>> = Arc::new(profile.rhos().iter().map(|&rho| b * rho + a).collect());
    let r: Arc<Vec<f64>> = Arc::new(
        profile
            .rhos()
            .iter()
            .zip(d.iter())
            .map(|(&rho, &denom)| (b * rho + td) / denom)
            .collect(),
    );
    let span = (1u64 << n) - 1; // counters 1..=span, as in the serial walk
    let segments = (threads * 8).min(span as usize).max(1);
    let bests = hetero_par::Pool::global().map(segments, threads, move |s| {
        let lo = 1 + (span as u128 * s as u128 / segments as u128) as u64;
        let hi = 1 + (span as u128 * (s as u128 + 1) / segments as u128) as u64;
        segment_best(&d, &r, n, k, lo, hi)
    });
    let mut best: Option<(f64, u64)> = None;
    for (x, mask) in bests.into_iter().flatten() {
        offer(&mut best, x, mask);
    }
    hetero_obs::counters::SELECTION_SUBSET_NODES.add(span);
    winner_profile(profile, best)
}

/// Walks Gray counters `lo..hi` of the full walk and returns the best
/// `k`-subset seen, seeding the level stack from `gray(lo)` in O(n).
fn segment_best(d: &[f64], r: &[f64], n: usize, k: usize, lo: u64, hi: u64) -> Option<(f64, u64)> {
    if lo >= hi {
        return None;
    }
    // The included set at counter lo: bit b of the binary-reflected Gray
    // code toggles element n−1−b an odd number of times iff it is set.
    let gray = lo ^ (lo >> 1);
    let mut included = vec![false; n];
    let mut mask = 0u64;
    for bit in 0..n {
        if gray & (1u64 << bit) != 0 {
            let e = n - 1 - bit;
            included[e] = true;
            mask |= 1u64 << e;
        }
    }
    let mut count = gray.count_ones() as usize;
    // Build the level stack exactly as the serial walk's patches would
    // have left it: ascending index, same add/multiply per element.
    let mut sums = vec![KahanSum::new(); n + 1];
    let mut prods = vec![1.0f64; n + 1];
    for j in 0..n {
        let mut sum = sums[j];
        let mut prod = prods[j];
        if included[j] {
            sum.add(prod / d[j]);
            prod *= r[j];
        }
        sums[j + 1] = sum;
        prods[j + 1] = prod;
    }
    let mut best: Option<(f64, u64)> = None;
    if count == k {
        offer(&mut best, sums[n].value(), mask);
    }
    for i in (lo + 1)..hi {
        let e = n - 1 - i.trailing_zeros() as usize;
        included[e] = !included[e];
        mask ^= 1u64 << e;
        count = if included[e] { count + 1 } else { count - 1 };
        for j in e..n {
            let mut sum = sums[j];
            let mut prod = prods[j];
            if included[j] {
                sum.add(prod / d[j]);
                prod *= r[j];
            }
            sums[j + 1] = sum;
            prods[j + 1] = prod;
        }
        if count != k {
            continue;
        }
        offer(&mut best, sums[n].value(), mask);
    }
    best
}

/// The X-measure of the `k`-fastest sub-cluster, for `k = 1…n` (index
/// `k − 1`), plus the marginal gain of each additional (slower) computer.
///
/// Profiles are sorted slowest-first, so the `k` fastest are the length-`k`
/// suffix and all `n` values fall out of one backward
/// [`XScan::suffix_measures`] pass — O(n) total instead of `n` full
/// evaluations.
pub fn marginal_gains(params: &Params, profile: &Profile) -> Vec<(f64, f64)> {
    let n = profile.n();
    let suffix_x = XScan::from_profile(params, profile).suffix_measures();
    let mut out = Vec::with_capacity(n);
    let mut prev = 0.0;
    for k in 1..=n {
        let x = suffix_x[n - k];
        out.push((x, x - prev));
        prev = x;
    }
    out
}

/// The smallest `k` such that the `k` fastest computers reach `fraction`
/// of the *full* cluster's X-measure. `fraction` must be in `(0, 1]`.
///
/// The fastest-`k` X-curve is nondecreasing in `k` — every additional
/// (slower) computer contributes a nonnegative Theorem 2 term — so after
/// the one O(n) suffix scan the threshold is found by binary search:
/// O(log n) probes instead of a linear walk, returning the identical
/// first-satisfying `k`.
pub fn smallest_fleet_for(
    params: &Params,
    profile: &Profile,
    fraction: f64,
) -> Result<usize, ModelError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(ModelError::InvalidParam {
            name: "fraction",
            value: fraction,
        });
    }
    // One suffix scan answers every fleet size at once (see
    // marginal_gains); entry 0 is the full cluster.
    let n = profile.n();
    let suffix_x = XScan::from_profile(params, profile).suffix_measures();
    let target = fraction * suffix_x[0];
    // Invariant: every k > hi satisfies the target, no k < lo does; the
    // probe is monotone because suffix_x[n − k] is nondecreasing in k.
    let (mut lo, mut hi) = (1usize, n);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if suffix_x[n - mid] >= target {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    Ok(lo)
}

/// How close the full cluster sits to the server's feeding limit
/// `1/(A−τδ)`, in `[0, 1)` — the saturation headroom that makes late
/// marginal gains small.
pub fn saturation(params: &Params, profile: &Profile) -> f64 {
    x_measure_of_rhos(params, profile.rhos()) / x_supremum(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_table1()
    }

    fn assert_bit_identical(a: &Profile, b: &Profile, context: &str) {
        let same = a.n() == b.n()
            && a.rhos()
                .iter()
                .zip(b.rhos())
                .all(|(x, y)| x.to_bits() == y.to_bits());
        assert!(same, "{context}: {:?} vs {:?}", a.rhos(), b.rhos());
    }

    #[test]
    fn fastest_k_is_the_suffix() {
        let p = Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap();
        assert_eq!(fastest_k(&p, 2).unwrap().rhos(), &[0.25, 0.125]);
        assert_eq!(fastest_k(&p, 4).unwrap().rhos(), p.rhos());
        assert!(fastest_k(&p, 0).is_err());
        assert!(fastest_k(&p, 5).is_err());
    }

    #[test]
    fn fastest_k_is_an_optimal_subset() {
        // Proposition 2's consequence, verified by exact search.
        let pr = params();
        for profile in [
            Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap(),
            Profile::harmonic(7),
            Profile::new(vec![1.0, 0.9, 0.9, 0.2, 0.1]).unwrap(),
        ] {
            for k in 1..=profile.n() {
                let exhaustive = best_k_subset(&pr, &profile, k).unwrap();
                let greedy = fastest_k(&profile, k).unwrap();
                let xe = x_measure_of_rhos(&pr, exhaustive.rhos());
                let xg = x_measure_of_rhos(&pr, greedy.rhos());
                assert!(
                    (xe - xg).abs() / xe < 1e-12,
                    "k = {k} on {:?}",
                    profile.rhos()
                );
            }
        }
    }

    /// The pre-Gray-code implementation, verbatim apart from the mask
    /// width: rescan every mask in ascending order, keep the first
    /// maximizer. The Gray walk must reproduce it bit for bit.
    fn masked_rescan_reference(params: &Params, profile: &Profile, k: usize) -> Profile {
        let n = profile.n();
        let mut best: Option<(f64, Vec<f64>)> = None;
        for mask in 0u64..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let rhos: Vec<f64> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| profile.rho(i))
                .collect();
            let x = x_measure_of_rhos(params, &rhos);
            match &best {
                Some((bx, _)) if x <= *bx => {}
                _ => best = Some((x, rhos)),
            }
        }
        Profile::from_unsorted(best.unwrap().1).unwrap()
    }

    #[test]
    fn gray_walk_matches_the_masked_rescan_for_all_small_clusters() {
        let pr = params();
        for n in 1..=12usize {
            // A distinct-speed family and a duplicate-heavy family (the
            // latter forces exact X ties between different subsets).
            let distinct = Profile::uniform_spread(n);
            let duplicated = Profile::from_unsorted(
                (0..n)
                    .map(|i| 1.0 / ((i / 2) + 1) as f64)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            for profile in [&distinct, &duplicated] {
                for k in 1..=n {
                    let gray = best_k_subset_gray(&pr, profile, k).unwrap();
                    let reference = masked_rescan_reference(&pr, profile, k);
                    assert_eq!(
                        gray.rhos(),
                        reference.rhos(),
                        "n = {n}, k = {k} on {:?}",
                        profile.rhos()
                    );
                }
            }
        }
    }

    #[test]
    fn branch_and_bound_matches_the_gray_walk_bit_for_bit() {
        // The tentpole cross-check at unit-test scale (the n ≤ 24
        // adversarial sweep lives in the proptest suite): distinct
        // speeds, duplicate runs, and all-equal degenerate clusters.
        let pr = params();
        for n in 1..=14usize {
            let distinct = Profile::uniform_spread(n);
            let duplicated = Profile::from_unsorted(
                (0..n)
                    .map(|i| 1.0 / ((i / 2) + 1) as f64)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            let all_equal = Profile::homogeneous(n, 0.5).unwrap();
            for profile in [&distinct, &duplicated, &all_equal] {
                for k in 1..=n {
                    let gray = best_k_subset_gray(&pr, profile, k).unwrap();
                    let (bnb, stats) = best_k_subset_with_stats(&pr, profile, k).unwrap();
                    assert_bit_identical(&bnb, &gray, &format!("n = {n}, k = {k}"));
                    assert!(stats.nodes_visited > 0 && stats.leaves_evaluated > 0);
                }
            }
        }
    }

    #[test]
    fn branch_and_bound_prunes_hard_on_distinct_speeds() {
        // At n = 24 the exhaustive walk visits 2²⁴ − 1 subsets; the
        // search should close in a vanishing fraction of that.
        let pr = params();
        let profile = Profile::uniform_spread(24);
        let (winner, stats) = best_k_subset_with_stats(&pr, &profile, 12).unwrap();
        assert_bit_identical(
            &winner,
            &fastest_k(&profile, 12).unwrap(),
            "distinct speeds: the Proposition 2 suffix wins",
        );
        assert!(
            stats.nodes_visited < 10_000,
            "visited {} of {} subsets",
            stats.nodes_visited,
            BnbStats::exhaustive_subsets(24)
        );
        assert!(stats.pruned_fraction(24) > 0.999);
    }

    #[test]
    fn branch_and_bound_solves_clusters_far_beyond_the_walk_cap() {
        // n = 128 is 2¹²⁸ subsets — unreachable for any enumeration; the
        // acceptance bar for the pruned search.
        let pr = params();
        for (n, k) in [(128usize, 20usize), (128, 64), (256, 128), (1000, 500)] {
            let profile = Profile::harmonic(n);
            let (winner, stats) = best_k_subset_with_stats(&pr, &profile, k).unwrap();
            assert_bit_identical(
                &winner,
                &fastest_k(&profile, k).unwrap(),
                &format!("n = {n}, k = {k}"),
            );
            assert!(
                stats.nodes_visited < 16 * n as u64,
                "n = {n}, k = {k}: visited {}",
                stats.nodes_visited
            );
        }
    }

    #[test]
    fn branch_and_bound_stays_linear_through_saturation() {
        // Harmonic fleets past n ≈ 3000 drive X onto its saturation
        // plateau (X → 1/(A − τδ)), where true inter-subset gaps fall
        // below one ulp of X. The strict tie-preserving rule would
        // degenerate to enumerating the plateau there; the margin regime
        // (n > MAX_SUBSET_SEARCH_N) must keep the node count linear and
        // still certify the Proposition 2 fastest-k optimum.
        let pr = params();
        for n in [3000usize, 4096] {
            let k = n / 2;
            let profile = Profile::harmonic(n);
            let (winner, stats) = best_k_subset_with_stats(&pr, &profile, k).unwrap();
            assert_bit_identical(
                &winner,
                &fastest_k(&profile, k).unwrap(),
                &format!("saturated n = {n}"),
            );
            assert!(
                stats.nodes_visited < 4 * n as u64,
                "saturated n = {n}: visited {} — plateau pruning regressed",
                stats.nodes_visited
            );
        }
    }

    #[test]
    fn parallel_walk_winner_is_bit_identical_to_serial() {
        // Above the n ≥ 16 fan-out gate, with distinct and duplicate-heavy
        // speeds (the latter forcing exact X ties the lowest-mask
        // reduction must break identically), across thread budgets. The
        // segmented core is driven directly so the test stays meaningful
        // on single-worker hosts where the public API falls back.
        let pr = params();
        let distinct = Profile::uniform_spread(17);
        let duplicated = Profile::from_unsorted(
            (0..17)
                .map(|i| 1.0 / ((i / 3) + 1) as f64)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for profile in [&distinct, &duplicated] {
            for k in [1usize, 2, 8, 16, 17] {
                let serial = best_k_subset_gray(&pr, profile, k).unwrap();
                for threads in 1..=8usize {
                    let par = best_k_subset_par_segments(&pr, profile, k, threads).unwrap();
                    assert_bit_identical(&par, &serial, &format!("k = {k}, threads = {threads}"));
                }
                // The public gate — whatever path it picks — agrees too.
                let gated = best_k_subset_par(&pr, profile, k, 4).unwrap();
                assert_bit_identical(&gated, &serial, &format!("k = {k}, gated"));
            }
        }
    }

    #[test]
    fn parallel_walk_validates_like_the_serial_one() {
        let pr = params();
        assert!(matches!(
            best_k_subset_par(&pr, &Profile::harmonic(64), 3, 4),
            Err(ModelError::SubsetSearchTooLarge { n: 64, max: 63 })
        ));
        assert!(matches!(
            best_k_subset_par(&pr, &Profile::harmonic(4), 0, 4),
            Err(ModelError::IndexOutOfRange { .. })
        ));
        // Below the gate it degrades to the serial walk.
        let p = Profile::harmonic(8);
        let a = best_k_subset_gray(&pr, &p, 3).unwrap();
        let b = best_k_subset_par(&pr, &p, 3, 8).unwrap();
        assert_eq!(a.rhos(), b.rhos());
    }

    #[test]
    fn gray_walk_errors_on_large_clusters_but_bnb_solves_them() {
        let pr = params();
        let p = Profile::harmonic(64);
        // The enumerative oracle still refuses past its mask width…
        assert!(matches!(
            best_k_subset_gray(&pr, &p, 3),
            Err(ModelError::SubsetSearchTooLarge { n: 64, max: 63 })
        ));
        // …while the default exact search answers (the former dead-end).
        let winner = best_k_subset(&pr, &p, 3).unwrap();
        assert_eq!(winner.rhos(), fastest_k(&p, 3).unwrap().rhos());
        // k-bound validation still comes first everywhere.
        assert!(matches!(
            best_k_subset(&pr, &Profile::harmonic(4), 0),
            Err(ModelError::IndexOutOfRange { .. })
        ));
        assert!(matches!(
            best_k_subset_gray(&pr, &Profile::harmonic(4), 0),
            Err(ModelError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn subset_search_handles_clusters_beyond_the_old_u32_cap() {
        // n = 21 overflowed the old `assert!(n <= 20)` guard; the u64
        // Gray walk handles it and still finds the fastest-k optimum.
        let pr = params();
        let p = Profile::harmonic(21);
        let best = best_k_subset_gray(&pr, &p, 20).unwrap();
        assert_eq!(best.rhos(), fastest_k(&p, 20).unwrap().rhos());
    }

    #[test]
    fn marginal_gains_are_positive_and_x_monotone() {
        let pr = params();
        let p = Profile::harmonic(10);
        let gains = marginal_gains(&pr, &p);
        assert_eq!(gains.len(), 10);
        for (x, gain) in &gains {
            assert!(*x > 0.0 && *gain > 0.0);
        }
        for w in gains.windows(2) {
            assert!(w[1].0 > w[0].0, "X grows with fleet size");
        }
    }

    #[test]
    fn gains_diminish_for_the_harmonic_family() {
        // Adding the slowest computer to a harmonic fleet is worth far
        // less than the first computer was.
        let pr = params();
        let p = Profile::harmonic(16);
        let gains = marginal_gains(&pr, &p);
        assert!(gains.last().unwrap().1 < 0.1 * gains.first().unwrap().1);
    }

    #[test]
    fn smallest_fleet_inverts_the_curve() {
        let pr = params();
        let p = Profile::harmonic(12);
        let k95 = smallest_fleet_for(&pr, &p, 0.95).unwrap();
        let k100 = smallest_fleet_for(&pr, &p, 1.0).unwrap();
        assert!(k95 < k100, "95 % needs fewer computers than 100 %");
        assert_eq!(k100, 12);
        // The returned k really achieves the target; k − 1 does not.
        let full = x_measure_of_rhos(&pr, p.rhos());
        let at_k = x_measure_of_rhos(&pr, &p.rhos()[p.n() - k95..]);
        assert!(at_k >= 0.95 * full);
        let below = x_measure_of_rhos(&pr, &p.rhos()[p.n() - (k95 - 1)..]);
        assert!(below < 0.95 * full);
        assert!(smallest_fleet_for(&pr, &p, 0.0).is_err());
        assert!(smallest_fleet_for(&pr, &p, 1.5).is_err());
    }

    #[test]
    fn binary_search_fleet_matches_a_linear_scan() {
        // The binary search must return exactly the linear scan's answer
        // at every fraction, including plateau-heavy duplicate fleets.
        let pr = params();
        let duplicated = Profile::from_unsorted(
            (0..40)
                .map(|i| 1.0 / ((i / 5) + 1) as f64)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for profile in [&Profile::harmonic(33), &duplicated] {
            let n = profile.n();
            let suffix_x = XScan::from_profile(&pr, profile).suffix_measures();
            for pct in 1..=100usize {
                let fraction = pct as f64 / 100.0;
                let got = smallest_fleet_for(&pr, profile, fraction).unwrap();
                let target = fraction * suffix_x[0];
                let linear = (1..=n).find(|k| suffix_x[n - k] >= target).unwrap_or(n);
                assert_eq!(got, linear, "fraction {fraction}");
            }
        }
    }

    #[test]
    fn saturation_reflects_scale() {
        let pr = params();
        assert!(saturation(&pr, &Profile::harmonic(4)) < 0.001);
        assert!(saturation(&pr, &Profile::harmonic(4096)) > 0.9);
    }
}
