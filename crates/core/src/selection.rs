//! Cluster composition: which computers are worth keeping?
//!
//! The paper asks *what determines a cluster's power*; the operator's
//! version is *which `k` of my `n` computers should I actually rent?*
//! Proposition 2 settles it: any subset is pointwise dominated by the
//! `k` fastest computers (sort both subsets — each rank of the fastest-`k`
//! subset is at least as fast), so by minorization the **`k` fastest are
//! always an optimal `k`-subset**. [`best_k_subset`] verifies that claim
//! empirically by exhaustive search over a Gray-code subset walk (for
//! testing), and [`best_k_subset_par`] runs the same walk in contiguous
//! Gray segments on the persistent worker pool with a bit-identical
//! winner; [`marginal_gains`] quantifies the diminishing returns that
//! the X-measure's saturation at `1/(A−τδ)` imposes; [`smallest_fleet_for`]
//! inverts the curve. The fleet-curve functions read all `n` sub-cluster
//! X-values off one backward [`XScan`](crate::xengine::XScan) suffix scan
//! instead of `n` full evaluations.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::numeric::KahanSum;
use crate::xengine::XScan;
use crate::xmeasure::{x_measure_of_rhos, x_supremum};
use crate::{ModelError, Params, Profile};

/// The `k` fastest computers of the profile, as a new profile. By
/// Proposition 2 this is an optimal `k`-subset (a fact the tests verify
/// exhaustively against [`best_k_subset`]).
pub fn fastest_k(profile: &Profile, k: usize) -> Result<Profile, ModelError> {
    if k == 0 || k > profile.n() {
        return Err(ModelError::IndexOutOfRange {
            index: k,
            n: profile.n(),
        });
    }
    // Profiles are sorted slowest-first, so the k fastest are the suffix.
    Profile::new(profile.rhos()[profile.n() - k..].to_vec())
}

/// The largest cluster [`best_k_subset`] can enumerate (its subset masks
/// are `u64` bit-sets).
pub const MAX_SUBSET_SEARCH_N: usize = 63;

/// Exhaustively finds a `k`-subset maximizing X (smallest mask — i.e.
/// first in ascending-mask order — among exact ties). Exponential — for
/// tests and small clusters only; clusters beyond
/// [`MAX_SUBSET_SEARCH_N`] return [`ModelError::SubsetSearchTooLarge`].
///
/// The walk follows a binary-reflected Gray code, so consecutive subsets
/// differ in one element: a stack of per-element prefix states
/// (compensated partial sum plus prefix product) is patched from the
/// toggled element onward, making each subset's X cost amortized O(1)
/// instead of O(n). Mapping the counter's most-toggled bit to the *last*
/// element keeps the patch short. Each visited subset's value is produced
/// by exactly the operation sequence of
/// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) over its
/// elements in ascending index order, so results — including tie
/// resolution — are bit-identical to the straightforward per-mask rescan.
pub fn best_k_subset(params: &Params, profile: &Profile, k: usize) -> Result<Profile, ModelError> {
    let n = profile.n();
    if k == 0 || k > n {
        return Err(ModelError::IndexOutOfRange { index: k, n });
    }
    if n > MAX_SUBSET_SEARCH_N {
        return Err(ModelError::SubsetSearchTooLarge {
            n,
            max: MAX_SUBSET_SEARCH_N,
        });
    }
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let d: Vec<f64> = profile.rhos().iter().map(|&rho| b * rho + a).collect();
    let r: Vec<f64> = profile
        .rhos()
        .iter()
        .zip(&d)
        .map(|(&rho, &denom)| (b * rho + td) / denom)
        .collect();
    // Level j holds the (sum, product) state after elements 0..j of the
    // current subset, exactly as x_measure_of_rhos would leave them.
    let mut included = vec![false; n];
    let mut sums = vec![KahanSum::new(); n + 1];
    let mut prods = vec![1.0f64; n + 1];
    let mut mask = 0u64;
    let mut count = 0usize;
    let mut best: Option<(f64, u64)> = None;
    for i in 1..(1u64 << n) {
        // Binary-reflected Gray step i toggles counter bit tz(i); mapping
        // it to element n−1−tz(i) means the cheapest (last) element
        // toggles every other step.
        let e = n - 1 - i.trailing_zeros() as usize;
        included[e] = !included[e];
        mask ^= 1u64 << e;
        count = if included[e] { count + 1 } else { count - 1 };
        for j in e..n {
            let mut sum = sums[j];
            let mut prod = prods[j];
            if included[j] {
                sum.add(prod / d[j]);
                prod *= r[j];
            }
            sums[j + 1] = sum;
            prods[j + 1] = prod;
        }
        if count != k {
            continue;
        }
        offer(&mut best, sums[n].value(), mask);
    }
    // The Gray walk visits every nonempty subset exactly once.
    hetero_obs::counters::SELECTION_SUBSET_NODES.add((1u64 << n) - 1);
    winner_profile(profile, best)
}

/// The shared winner predicate of the serial and parallel walks: take the
/// candidate when its X is strictly larger, or exactly equal (by
/// `total_cmp`) with a smaller mask. Picking the unique
/// (max-X, min-mask) element makes the winner independent of visit
/// order — the keystone of the parallel walk's determinism.
#[inline]
fn offer(best: &mut Option<(f64, u64)>, x: f64, mask: u64) {
    let better = match *best {
        None => true,
        Some((bx, bmask)) => x > bx || (x.total_cmp(&bx) == Ordering::Equal && mask < bmask),
    };
    if better {
        *best = Some((x, mask));
    }
}

/// Rebuilds the winning mask into a [`Profile`].
fn winner_profile(profile: &Profile, best: Option<(f64, u64)>) -> Result<Profile, ModelError> {
    // hetero-check: allow(expect) — with 1 ≤ k ≤ n at least one subset has k elements, so `best` is set
    let (_, bmask) = best.expect("k ≥ 1 guarantees a subset");
    let rhos: Vec<f64> = (0..profile.n())
        .filter(|i| bmask & (1u64 << i) != 0)
        .map(|i| profile.rho(i))
        .collect();
    Profile::from_unsorted(rhos)
}

/// [`best_k_subset`] parallelized over contiguous segments of the same
/// Gray-code walk, with a winner **bit-identical** to the serial search.
///
/// The 2ⁿ−1 step counters are split into `8 × threads` contiguous
/// segments dispatched on the process-wide [`hetero_par::Pool`]. Each
/// worker seeds its level stack directly from its segment's first
/// counter in O(n): the stack after any serial step is a pure function
/// of the *current* included set (each patch rebuilds levels `e..n` from
/// level `e`, which earlier patches built the same way), and the
/// included set at counter `i` is just the binary-reflected Gray code
/// `i ^ (i >> 1)` (bit `b` ↦ element `n−1−b`). Seeding therefore
/// replays exactly the ascending-index operation sequence the serial
/// walk would have in its stack, so every subset evaluated in a segment
/// is bit-identical to the serial evaluation; the order-independent
/// (max-X by `total_cmp`, then lowest-mask) reduction in [`offer`] then
/// makes the merged winner independent of the partitioning. `threads`
/// is the caller's concurrency budget (capped by the pool's size); any
/// value yields the identical winner.
pub fn best_k_subset_par(
    params: &Params,
    profile: &Profile,
    k: usize,
    threads: usize,
) -> Result<Profile, ModelError> {
    let n = profile.n();
    if k == 0 || k > n {
        return Err(ModelError::IndexOutOfRange { index: k, n });
    }
    if n > MAX_SUBSET_SEARCH_N {
        return Err(ModelError::SubsetSearchTooLarge {
            n,
            max: MAX_SUBSET_SEARCH_N,
        });
    }
    let threads = threads.max(1);
    // Below ~2¹⁶ subsets the fan-out bookkeeping outweighs the walk.
    if threads == 1 || n < 16 {
        return best_k_subset(params, profile, k);
    }
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let d: Arc<Vec<f64>> = Arc::new(profile.rhos().iter().map(|&rho| b * rho + a).collect());
    let r: Arc<Vec<f64>> = Arc::new(
        profile
            .rhos()
            .iter()
            .zip(d.iter())
            .map(|(&rho, &denom)| (b * rho + td) / denom)
            .collect(),
    );
    let span = (1u64 << n) - 1; // counters 1..=span, as in the serial walk
    let segments = (threads * 8).min(span as usize).max(1);
    let bests = hetero_par::Pool::global().map(segments, threads, move |s| {
        let lo = 1 + (span as u128 * s as u128 / segments as u128) as u64;
        let hi = 1 + (span as u128 * (s as u128 + 1) / segments as u128) as u64;
        segment_best(&d, &r, n, k, lo, hi)
    });
    let mut best: Option<(f64, u64)> = None;
    for (x, mask) in bests.into_iter().flatten() {
        offer(&mut best, x, mask);
    }
    hetero_obs::counters::SELECTION_SUBSET_NODES.add(span);
    winner_profile(profile, best)
}

/// Walks Gray counters `lo..hi` of the full walk and returns the best
/// `k`-subset seen, seeding the level stack from `gray(lo)` in O(n).
fn segment_best(d: &[f64], r: &[f64], n: usize, k: usize, lo: u64, hi: u64) -> Option<(f64, u64)> {
    if lo >= hi {
        return None;
    }
    // The included set at counter lo: bit b of the binary-reflected Gray
    // code toggles element n−1−b an odd number of times iff it is set.
    let gray = lo ^ (lo >> 1);
    let mut included = vec![false; n];
    let mut mask = 0u64;
    for bit in 0..n {
        if gray & (1u64 << bit) != 0 {
            let e = n - 1 - bit;
            included[e] = true;
            mask |= 1u64 << e;
        }
    }
    let mut count = gray.count_ones() as usize;
    // Build the level stack exactly as the serial walk's patches would
    // have left it: ascending index, same add/multiply per element.
    let mut sums = vec![KahanSum::new(); n + 1];
    let mut prods = vec![1.0f64; n + 1];
    for j in 0..n {
        let mut sum = sums[j];
        let mut prod = prods[j];
        if included[j] {
            sum.add(prod / d[j]);
            prod *= r[j];
        }
        sums[j + 1] = sum;
        prods[j + 1] = prod;
    }
    let mut best: Option<(f64, u64)> = None;
    if count == k {
        offer(&mut best, sums[n].value(), mask);
    }
    for i in (lo + 1)..hi {
        let e = n - 1 - i.trailing_zeros() as usize;
        included[e] = !included[e];
        mask ^= 1u64 << e;
        count = if included[e] { count + 1 } else { count - 1 };
        for j in e..n {
            let mut sum = sums[j];
            let mut prod = prods[j];
            if included[j] {
                sum.add(prod / d[j]);
                prod *= r[j];
            }
            sums[j + 1] = sum;
            prods[j + 1] = prod;
        }
        if count != k {
            continue;
        }
        offer(&mut best, sums[n].value(), mask);
    }
    best
}

/// The X-measure of the `k`-fastest sub-cluster, for `k = 1…n` (index
/// `k − 1`), plus the marginal gain of each additional (slower) computer.
///
/// Profiles are sorted slowest-first, so the `k` fastest are the length-`k`
/// suffix and all `n` values fall out of one backward
/// [`XScan::suffix_measures`] pass — O(n) total instead of `n` full
/// evaluations.
pub fn marginal_gains(params: &Params, profile: &Profile) -> Vec<(f64, f64)> {
    let n = profile.n();
    let suffix_x = XScan::from_profile(params, profile).suffix_measures();
    let mut out = Vec::with_capacity(n);
    let mut prev = 0.0;
    for k in 1..=n {
        let x = suffix_x[n - k];
        out.push((x, x - prev));
        prev = x;
    }
    out
}

/// The smallest `k` such that the `k` fastest computers reach `fraction`
/// of the *full* cluster's X-measure. `fraction` must be in `(0, 1]`.
pub fn smallest_fleet_for(
    params: &Params,
    profile: &Profile,
    fraction: f64,
) -> Result<usize, ModelError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(ModelError::InvalidParam {
            name: "fraction",
            value: fraction,
        });
    }
    // One suffix scan answers every fleet size at once (see
    // marginal_gains); entry 0 is the full cluster.
    let n = profile.n();
    let suffix_x = XScan::from_profile(params, profile).suffix_measures();
    let target = fraction * suffix_x[0];
    for k in 1..=n {
        if suffix_x[n - k] >= target {
            return Ok(k);
        }
    }
    Ok(n)
}

/// How close the full cluster sits to the server's feeding limit
/// `1/(A−τδ)`, in `[0, 1)` — the saturation headroom that makes late
/// marginal gains small.
pub fn saturation(params: &Params, profile: &Profile) -> f64 {
    x_measure_of_rhos(params, profile.rhos()) / x_supremum(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn fastest_k_is_the_suffix() {
        let p = Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap();
        assert_eq!(fastest_k(&p, 2).unwrap().rhos(), &[0.25, 0.125]);
        assert_eq!(fastest_k(&p, 4).unwrap().rhos(), p.rhos());
        assert!(fastest_k(&p, 0).is_err());
        assert!(fastest_k(&p, 5).is_err());
    }

    #[test]
    fn fastest_k_is_an_optimal_subset() {
        // Proposition 2's consequence, verified exhaustively.
        let pr = params();
        for profile in [
            Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap(),
            Profile::harmonic(7),
            Profile::new(vec![1.0, 0.9, 0.9, 0.2, 0.1]).unwrap(),
        ] {
            for k in 1..=profile.n() {
                let exhaustive = best_k_subset(&pr, &profile, k).unwrap();
                let greedy = fastest_k(&profile, k).unwrap();
                let xe = x_measure_of_rhos(&pr, exhaustive.rhos());
                let xg = x_measure_of_rhos(&pr, greedy.rhos());
                assert!(
                    (xe - xg).abs() / xe < 1e-12,
                    "k = {k} on {:?}",
                    profile.rhos()
                );
            }
        }
    }

    /// The pre-Gray-code implementation, verbatim apart from the mask
    /// width: rescan every mask in ascending order, keep the first
    /// maximizer. The Gray walk must reproduce it bit for bit.
    fn masked_rescan_reference(params: &Params, profile: &Profile, k: usize) -> Profile {
        let n = profile.n();
        let mut best: Option<(f64, Vec<f64>)> = None;
        for mask in 0u64..(1 << n) {
            if mask.count_ones() as usize != k {
                continue;
            }
            let rhos: Vec<f64> = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(|i| profile.rho(i))
                .collect();
            let x = x_measure_of_rhos(params, &rhos);
            match &best {
                Some((bx, _)) if x <= *bx => {}
                _ => best = Some((x, rhos)),
            }
        }
        Profile::from_unsorted(best.unwrap().1).unwrap()
    }

    #[test]
    fn gray_walk_matches_the_masked_rescan_for_all_small_clusters() {
        let pr = params();
        for n in 1..=12usize {
            // A distinct-speed family and a duplicate-heavy family (the
            // latter forces exact X ties between different subsets).
            let distinct = Profile::uniform_spread(n);
            let duplicated = Profile::from_unsorted(
                (0..n)
                    .map(|i| 1.0 / ((i / 2) + 1) as f64)
                    .collect::<Vec<_>>(),
            )
            .unwrap();
            for profile in [&distinct, &duplicated] {
                for k in 1..=n {
                    let gray = best_k_subset(&pr, profile, k).unwrap();
                    let reference = masked_rescan_reference(&pr, profile, k);
                    assert_eq!(
                        gray.rhos(),
                        reference.rhos(),
                        "n = {n}, k = {k} on {:?}",
                        profile.rhos()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_walk_winner_is_bit_identical_to_serial() {
        // Above the n ≥ 16 fan-out gate, with distinct and duplicate-heavy
        // speeds (the latter forcing exact X ties the lowest-mask
        // reduction must break identically), across thread budgets.
        let pr = params();
        let distinct = Profile::uniform_spread(17);
        let duplicated = Profile::from_unsorted(
            (0..17)
                .map(|i| 1.0 / ((i / 3) + 1) as f64)
                .collect::<Vec<_>>(),
        )
        .unwrap();
        for profile in [&distinct, &duplicated] {
            for k in [1usize, 2, 8, 16, 17] {
                let serial = best_k_subset(&pr, profile, k).unwrap();
                for threads in 1..=8usize {
                    let par = best_k_subset_par(&pr, profile, k, threads).unwrap();
                    let same = serial
                        .rhos()
                        .iter()
                        .zip(par.rhos())
                        .all(|(a, b)| a.to_bits() == b.to_bits());
                    assert!(
                        same && serial.n() == par.n(),
                        "k = {k}, threads = {threads}: {:?} vs {:?}",
                        serial.rhos(),
                        par.rhos()
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_walk_validates_like_the_serial_one() {
        let pr = params();
        assert!(matches!(
            best_k_subset_par(&pr, &Profile::harmonic(64), 3, 4),
            Err(ModelError::SubsetSearchTooLarge { n: 64, max: 63 })
        ));
        assert!(matches!(
            best_k_subset_par(&pr, &Profile::harmonic(4), 0, 4),
            Err(ModelError::IndexOutOfRange { .. })
        ));
        // Below the gate it degrades to the serial walk.
        let p = Profile::harmonic(8);
        let a = best_k_subset(&pr, &p, 3).unwrap();
        let b = best_k_subset_par(&pr, &p, 3, 8).unwrap();
        assert_eq!(a.rhos(), b.rhos());
    }

    #[test]
    fn subset_search_errors_instead_of_panicking_on_large_clusters() {
        let pr = params();
        let p = Profile::harmonic(64);
        assert!(matches!(
            best_k_subset(&pr, &p, 3),
            Err(ModelError::SubsetSearchTooLarge { n: 64, max: 63 })
        ));
        // k-bound validation still comes first.
        assert!(matches!(
            best_k_subset(&pr, &Profile::harmonic(4), 0),
            Err(ModelError::IndexOutOfRange { .. })
        ));
    }

    #[test]
    fn subset_search_handles_clusters_beyond_the_old_u32_cap() {
        // n = 21 overflowed the old `assert!(n <= 20)` guard; the u64
        // Gray walk handles it and still finds the fastest-k optimum.
        let pr = params();
        let p = Profile::harmonic(21);
        let best = best_k_subset(&pr, &p, 20).unwrap();
        assert_eq!(best.rhos(), fastest_k(&p, 20).unwrap().rhos());
    }

    #[test]
    fn marginal_gains_are_positive_and_x_monotone() {
        let pr = params();
        let p = Profile::harmonic(10);
        let gains = marginal_gains(&pr, &p);
        assert_eq!(gains.len(), 10);
        for (x, gain) in &gains {
            assert!(*x > 0.0 && *gain > 0.0);
        }
        for w in gains.windows(2) {
            assert!(w[1].0 > w[0].0, "X grows with fleet size");
        }
    }

    #[test]
    fn gains_diminish_for_the_harmonic_family() {
        // Adding the slowest computer to a harmonic fleet is worth far
        // less than the first computer was.
        let pr = params();
        let p = Profile::harmonic(16);
        let gains = marginal_gains(&pr, &p);
        assert!(gains.last().unwrap().1 < 0.1 * gains.first().unwrap().1);
    }

    #[test]
    fn smallest_fleet_inverts_the_curve() {
        let pr = params();
        let p = Profile::harmonic(12);
        let k95 = smallest_fleet_for(&pr, &p, 0.95).unwrap();
        let k100 = smallest_fleet_for(&pr, &p, 1.0).unwrap();
        assert!(k95 < k100, "95 % needs fewer computers than 100 %");
        assert_eq!(k100, 12);
        // The returned k really achieves the target; k − 1 does not.
        let full = x_measure_of_rhos(&pr, p.rhos());
        let at_k = x_measure_of_rhos(&pr, &p.rhos()[p.n() - k95..]);
        assert!(at_k >= 0.95 * full);
        let below = x_measure_of_rhos(&pr, &p.rhos()[p.n() - (k95 - 1)..]);
        assert!(below < 0.95 * full);
        assert!(smallest_fleet_for(&pr, &p, 0.0).is_err());
        assert!(smallest_fleet_for(&pr, &p, 1.5).is_err());
    }

    #[test]
    fn saturation_reflects_scale() {
        let pr = params();
        assert!(saturation(&pr, &Profile::harmonic(4)) < 0.001);
        assert!(saturation(&pr, &Profile::harmonic(4096)) > 0.9);
    }
}
