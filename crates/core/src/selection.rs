//! Cluster composition: which computers are worth keeping?
//!
//! The paper asks *what determines a cluster's power*; the operator's
//! version is *which `k` of my `n` computers should I actually rent?*
//! Proposition 2 settles it: any subset is pointwise dominated by the
//! `k` fastest computers (sort both subsets — each rank of the fastest-`k`
//! subset is at least as fast), so by minorization the **`k` fastest are
//! always an optimal `k`-subset**. [`best_k_subset`] verifies that claim
//! empirically by exhaustive search (for testing); [`marginal_gains`]
//! quantifies the diminishing returns that the X-measure's saturation at
//! `1/(A−τδ)` imposes; [`smallest_fleet_for`] inverts the curve.

use crate::xmeasure::{x_measure_of_rhos, x_supremum};
use crate::{ModelError, Params, Profile};

/// The `k` fastest computers of the profile, as a new profile. By
/// Proposition 2 this is an optimal `k`-subset (a fact the tests verify
/// exhaustively against [`best_k_subset`]).
pub fn fastest_k(profile: &Profile, k: usize) -> Result<Profile, ModelError> {
    if k == 0 || k > profile.n() {
        return Err(ModelError::IndexOutOfRange {
            index: k,
            n: profile.n(),
        });
    }
    // Profiles are sorted slowest-first, so the k fastest are the suffix.
    Profile::new(profile.rhos()[profile.n() - k..].to_vec())
}

/// Exhaustively finds a `k`-subset maximizing X (first-found among ties).
/// Exponential — for tests and small clusters only.
pub fn best_k_subset(params: &Params, profile: &Profile, k: usize) -> Result<Profile, ModelError> {
    if k == 0 || k > profile.n() {
        return Err(ModelError::IndexOutOfRange {
            index: k,
            n: profile.n(),
        });
    }
    let n = profile.n();
    assert!(n <= 20, "exhaustive subset search is for small clusters");
    let mut best: Option<(f64, Vec<f64>)> = None;
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != k {
            continue;
        }
        let rhos: Vec<f64> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(|i| profile.rho(i))
            .collect();
        let x = x_measure_of_rhos(params, &rhos);
        match &best {
            Some((bx, _)) if x <= *bx => {}
            _ => best = Some((x, rhos)),
        }
    }
    // hetero-check: allow(expect) — with 1 ≤ k ≤ n at least one mask has k bits set, so `best` is set
    let (_, rhos) = best.expect("k ≥ 1 guarantees a subset");
    Profile::from_unsorted(rhos)
}

/// The X-measure of the `k`-fastest sub-cluster, for `k = 1…n` (index
/// `k − 1`), plus the marginal gain of each additional (slower) computer.
pub fn marginal_gains(params: &Params, profile: &Profile) -> Vec<(f64, f64)> {
    let mut out = Vec::with_capacity(profile.n());
    let mut prev = 0.0;
    for k in 1..=profile.n() {
        let x = x_measure_of_rhos(params, &profile.rhos()[profile.n() - k..]);
        out.push((x, x - prev));
        prev = x;
    }
    out
}

/// The smallest `k` such that the `k` fastest computers reach `fraction`
/// of the *full* cluster's X-measure. `fraction` must be in `(0, 1]`.
pub fn smallest_fleet_for(
    params: &Params,
    profile: &Profile,
    fraction: f64,
) -> Result<usize, ModelError> {
    if !(fraction > 0.0 && fraction <= 1.0) {
        return Err(ModelError::InvalidParam {
            name: "fraction",
            value: fraction,
        });
    }
    let full = x_measure_of_rhos(params, profile.rhos());
    let target = fraction * full;
    for k in 1..=profile.n() {
        if x_measure_of_rhos(params, &profile.rhos()[profile.n() - k..]) >= target {
            return Ok(k);
        }
    }
    Ok(profile.n())
}

/// How close the full cluster sits to the server's feeding limit
/// `1/(A−τδ)`, in `[0, 1)` — the saturation headroom that makes late
/// marginal gains small.
pub fn saturation(params: &Params, profile: &Profile) -> f64 {
    x_measure_of_rhos(params, profile.rhos()) / x_supremum(params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn fastest_k_is_the_suffix() {
        let p = Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap();
        assert_eq!(fastest_k(&p, 2).unwrap().rhos(), &[0.25, 0.125]);
        assert_eq!(fastest_k(&p, 4).unwrap().rhos(), p.rhos());
        assert!(fastest_k(&p, 0).is_err());
        assert!(fastest_k(&p, 5).is_err());
    }

    #[test]
    fn fastest_k_is_an_optimal_subset() {
        // Proposition 2's consequence, verified exhaustively.
        let pr = params();
        for profile in [
            Profile::new(vec![1.0, 0.5, 0.25, 0.125]).unwrap(),
            Profile::harmonic(7),
            Profile::new(vec![1.0, 0.9, 0.9, 0.2, 0.1]).unwrap(),
        ] {
            for k in 1..=profile.n() {
                let exhaustive = best_k_subset(&pr, &profile, k).unwrap();
                let greedy = fastest_k(&profile, k).unwrap();
                let xe = x_measure_of_rhos(&pr, exhaustive.rhos());
                let xg = x_measure_of_rhos(&pr, greedy.rhos());
                assert!(
                    (xe - xg).abs() / xe < 1e-12,
                    "k = {k} on {:?}",
                    profile.rhos()
                );
            }
        }
    }

    #[test]
    fn marginal_gains_are_positive_and_x_monotone() {
        let pr = params();
        let p = Profile::harmonic(10);
        let gains = marginal_gains(&pr, &p);
        assert_eq!(gains.len(), 10);
        for (x, gain) in &gains {
            assert!(*x > 0.0 && *gain > 0.0);
        }
        for w in gains.windows(2) {
            assert!(w[1].0 > w[0].0, "X grows with fleet size");
        }
    }

    #[test]
    fn gains_diminish_for_the_harmonic_family() {
        // Adding the slowest computer to a harmonic fleet is worth far
        // less than the first computer was.
        let pr = params();
        let p = Profile::harmonic(16);
        let gains = marginal_gains(&pr, &p);
        assert!(gains.last().unwrap().1 < 0.1 * gains.first().unwrap().1);
    }

    #[test]
    fn smallest_fleet_inverts_the_curve() {
        let pr = params();
        let p = Profile::harmonic(12);
        let k95 = smallest_fleet_for(&pr, &p, 0.95).unwrap();
        let k100 = smallest_fleet_for(&pr, &p, 1.0).unwrap();
        assert!(k95 < k100, "95 % needs fewer computers than 100 %");
        assert_eq!(k100, 12);
        // The returned k really achieves the target; k − 1 does not.
        let full = x_measure_of_rhos(&pr, p.rhos());
        let at_k = x_measure_of_rhos(&pr, &p.rhos()[p.n() - k95..]);
        assert!(at_k >= 0.95 * full);
        let below = x_measure_of_rhos(&pr, &p.rhos()[p.n() - (k95 - 1)..]);
        assert!(below < 0.95 * full);
        assert!(smallest_fleet_for(&pr, &p, 0.0).is_err());
        assert!(smallest_fleet_for(&pr, &p, 1.5).is_err());
    }

    #[test]
    fn saturation_reflects_scale() {
        let pr = params();
        assert!(saturation(&pr, &Profile::harmonic(4)) < 0.001);
        assert!(saturation(&pr, &Profile::harmonic(4096)) > 0.9);
    }
}
