//! The architectural/environment parameters of the model (paper §2.1).

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// The environment constants of the CEP model.
///
/// All rates are expressed *per unit of work*, in the same time unit used
/// by the profile's ρ-values (the paper normalizes the slowest computer to
/// `ρ1 = 1`, so one time unit = the slowest computer's per-unit compute
/// time unless stated otherwise):
///
/// * `tau` (τ) — network transit time per work unit,
/// * `pi` (π) — message (un)packaging time per work unit,
/// * `delta` (δ ≤ 1) — units of results produced per unit of work.
///
/// The paper's derived constants are [`Params::a`]` = π + τ` and
/// [`Params::b`]` = 1 + (1+δ)π`; its standing assumption (§4.1) is
/// `τδ ≤ A ≤ B`, checked by [`Params::satisfies_standing_assumption`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Params {
    tau: f64,
    pi: f64,
    delta: f64,
}

impl Params {
    /// Builds a parameter set, validating ranges: `τ > 0`, `π ≥ 0`,
    /// `0 < δ ≤ 1`, all finite.
    pub fn new(tau: f64, pi: f64, delta: f64) -> Result<Self, ModelError> {
        if !(tau.is_finite() && tau > 0.0) {
            return Err(ModelError::InvalidParam {
                name: "tau",
                value: tau,
            });
        }
        if !(pi.is_finite() && pi >= 0.0) {
            return Err(ModelError::InvalidParam {
                name: "pi",
                value: pi,
            });
        }
        if !(delta.is_finite() && delta > 0.0 && delta <= 1.0) {
            return Err(ModelError::InvalidParam {
                name: "delta",
                value: delta,
            });
        }
        Ok(Params { tau, pi, delta })
    }

    /// The paper's Table 1 values with *coarse* (1 s) tasks: τ = 1 µs,
    /// π = 10 µs, δ = 1, expressed in seconds-per-work-unit with the unit
    /// compute time of 1 s — i.e. τ = 10⁻⁶, π = 10⁻⁵, δ = 1.
    ///
    /// These are the values behind Tables 2–4 of the paper.
    pub fn paper_table1() -> Self {
        Params {
            tau: 1e-6,
            pi: 1e-5,
            delta: 1.0,
        }
    }

    /// Table 2's *fine* task variant: the same wall-clock rates against
    /// 0.1 s tasks, so in task-time units τ = 10⁻⁵, π = 10⁻⁴, δ = 1.
    pub fn paper_table1_fine() -> Self {
        Params {
            tau: 1e-5,
            pi: 1e-4,
            delta: 1.0,
        }
    }

    /// The parameter set that reproduces the paper's Figures 3–4.
    ///
    /// The figures need `Aτδ/B² ∈ (1/32, 1/16)` for their phase transition
    /// at ρ = 1/16 (see DESIGN.md §5, substitution S2): τ = 0.2, π = 0.01,
    /// δ = 1 in task-time units gives `Aτδ/B² ≈ 0.0404`.
    pub fn fig34() -> Self {
        Params {
            tau: 0.2,
            pi: 0.01,
            delta: 1.0,
        }
    }

    /// Network transit rate τ (time per work unit).
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// Packaging/unpackaging rate π (time per work unit).
    pub fn pi(&self) -> f64 {
        self.pi
    }

    /// Output-to-input ratio δ (result units per work unit).
    pub fn delta(&self) -> f64 {
        self.delta
    }

    /// `A = π + τ`: the server-side cost of preparing and injecting one
    /// unit of work.
    pub fn a(&self) -> f64 {
        self.pi + self.tau
    }

    /// `B = 1 + (1+δ)π`: a computer's total handling cost per unit of work
    /// at speed ρ = 1 (unpackage + compute + package results).
    pub fn b(&self) -> f64 {
        1.0 + (1.0 + self.delta) * self.pi
    }

    /// `τδ`: the transit cost of one unit of *results*.
    pub fn tau_delta(&self) -> f64 {
        self.tau * self.delta
    }

    /// The paper's §4.1 standing assumption `τδ ≤ A ≤ B`, under which the
    /// symmetric-function coefficients of Lemma 1 are positive.
    pub fn satisfies_standing_assumption(&self) -> bool {
        self.tau_delta() <= self.a() && self.a() <= self.b()
    }

    /// The Theorem 4 threshold `Aτδ/B²`: multiplicative speedup of the
    /// *faster* of two computers wins exactly when `ψρ_iρ_j` exceeds this.
    pub fn theorem4_threshold(&self) -> f64 {
        let b = self.b();
        self.a() * self.tau_delta() / (b * b)
    }
}

impl Default for Params {
    /// Defaults to the paper's Table 1 (coarse-task) values.
    fn default() -> Self {
        Self::paper_table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_reproduced() {
        // Table 2: A = 11 µs/work-unit; B = per-task time + (1+δ)π.
        let p = Params::paper_table1();
        assert!((p.a() - 1.1e-5).abs() < 1e-20);
        assert!((p.b() - 1.00002).abs() < 1e-12);
        let fine = Params::paper_table1_fine();
        assert!((fine.a() - 1.1e-4).abs() < 1e-18);
        assert!((fine.b() - 1.0002).abs() < 1e-12);
    }

    #[test]
    fn standing_assumption_holds_for_paper_params() {
        assert!(Params::paper_table1().satisfies_standing_assumption());
        assert!(Params::paper_table1_fine().satisfies_standing_assumption());
        assert!(Params::fig34().satisfies_standing_assumption());
    }

    #[test]
    fn fig34_threshold_is_in_the_phase_window() {
        // The window that makes the published Figures 3–4 possible.
        let th = Params::fig34().theorem4_threshold();
        assert!(th > 1.0 / 32.0 && th < 1.0 / 16.0, "threshold {th}");
    }

    #[test]
    fn theorem4_threshold_small_for_table1() {
        // The paper: "with the values from Table 2, Aτδ/B² ≈ 1.1·10⁻⁵"...
        // that figure actually corresponds to A itself; the product
        // Aτδ/B² is ≈ 1.1·10⁻¹¹ with τ = 10⁻⁶. Either way it is tiny, so
        // condition (1) of Theorem 4 dominates, as the paper argues.
        let th = Params::paper_table1().theorem4_threshold();
        assert!(th < 1e-9);
    }

    #[test]
    fn validation_rejects_bad_values() {
        assert!(Params::new(0.0, 0.1, 1.0).is_err());
        assert!(Params::new(-1.0, 0.1, 1.0).is_err());
        assert!(Params::new(1.0, -0.1, 1.0).is_err());
        assert!(Params::new(1.0, 0.1, 0.0).is_err());
        assert!(Params::new(1.0, 0.1, 1.5).is_err());
        assert!(Params::new(f64::NAN, 0.1, 1.0).is_err());
        assert!(Params::new(1.0, f64::INFINITY, 1.0).is_err());
        assert!(Params::new(1.0, 0.0, 1.0).is_ok(), "π = 0 is legal");
    }

    #[test]
    fn accessors_roundtrip() {
        let p = Params::new(0.25, 0.5, 0.75).unwrap();
        assert_eq!((p.tau(), p.pi(), p.delta()), (0.25, 0.5, 0.75));
        assert_eq!(p.a(), 0.75);
        assert_eq!(p.b(), 1.0 + 1.75 * 0.5);
        assert_eq!(p.tau_delta(), 0.1875);
    }
}
