//! Hierarchical HECR compression (paper §2.4, Proposition 1).
//!
//! Proposition 1 collapses any sub-cluster to a *homogeneous equivalent*:
//! the single speed `ρ_C` such that `c` copies of `ρ_C` produce exactly
//! the sub-cluster's X-measure. Because the log residual
//!
//! ```text
//! ln Π_i r_i = Σ_i ln r_i,     r_i = (Bρ_i + τδ)/(Bρ_i + A)
//! ```
//!
//! is *additive over disjoint sub-clusters* (a telescoping identity of
//! the §2.2 X-measure, order-free by Theorem 1(2)), a fleet can be
//! summarized hierarchically: a [`SummaryTree`] stores each node's
//! compensated log-residual partial sum together with a certified error
//! bound, and answers X/HECR queries about the whole fleet — or any
//! contiguous slice of it — in O(log n) without touching the leaves.
//!
//! Two consumers drive the design:
//!
//! * **Fleet-scale queries.** For 10^6 synthetic workers, `X`, HECR, and
//!   "X of the `c` fastest" queries run off the summaries; error is
//!   bounded per node and certified against exact flat evaluation in the
//!   test suite (the bounds are floating-point slack only — in real
//!   arithmetic the summaries are exact).
//! * **Branch-and-bound selection.** The admissible bound of
//!   [`best_k_subset`](crate::selection::best_k_subset) needs "X of the
//!   `s` fastest remaining workers" at every search node;
//!   [`SummaryTree::x_of_fastest`] serves it from the tree.
//!
//! [`SummaryTree::compress`] goes one step further and materializes a
//! [`CompressedFleet`]: at most `max_clusters` Proposition 1 homogeneous
//! equivalents `(ρ_C, count)` that reproduce the fleet's X within the
//! certified bound at a fraction of the storage.

use crate::hecr::{hecr_from_log_residual, log_residual};
use crate::numeric::{kahan_sum, KahanSum};
use crate::{ModelError, Params, Profile};

/// Elements per summary-tree leaf. Partial-range queries touch at most
/// two leaves' raw elements; everything else is node combines.
pub const DEFAULT_LEAF_SIZE: usize = 256;

/// One summary node: a compensated log-residual partial sum over a
/// contiguous element range, plus a certified bound on its floating-point
/// error (`|stored − exact| ≤ err` in log-residual units).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NodeSummary {
    /// `Σ ln r_i` over the node's range (≤ 0; every factor `r_i < 1`).
    pub lnr: f64,
    /// Certified absolute error bound on `lnr`.
    pub err: f64,
}

const IDENTITY: NodeSummary = NodeSummary { lnr: 0.0, err: 0.0 };

/// Per-term slack: one `ln_1p` rounding plus Neumaier summation, both
/// bounded by small multiples of ε·Σ|term|, and Σ|term| = |Σ term|
/// because every `ln r_i` is negative.
const TERM_SLACK: f64 = 4.0 * f64::EPSILON;

impl NodeSummary {
    /// Combines two adjacent ranges: log residuals add (Theorem 1(2)
    /// order independence makes the split point immaterial); the single
    /// addition contributes one more ε of relative slack.
    fn merge(l: NodeSummary, r: NodeSummary) -> NodeSummary {
        let lnr = l.lnr + r.lnr;
        NodeSummary {
            lnr,
            err: l.err + r.err + f64::EPSILON * lnr.abs(),
        }
    }
}

/// A hierarchical log-residual summary of a fleet: per-element `ln r_i`
/// leaves, fixed-size leaf chunks, and a power-of-two segment tree of
/// [`NodeSummary`] partial sums. See the module docs for the contract.
#[derive(Debug, Clone)]
pub struct SummaryTree {
    params: Params,
    leaf_size: usize,
    /// `ln r_i` per element, in input order.
    lnrs: Vec<f64>,
    /// Heap-layout segment tree over leaf chunks; `tree[1]` is the root.
    tree: Vec<NodeSummary>,
    /// Leaf capacity of `tree` (power of two ≥ number of chunks).
    cap: usize,
    chunks: usize,
}

impl SummaryTree {
    /// Builds a summary tree over raw speeds with the default leaf size.
    /// Validates every ρ the way [`Profile`] does.
    pub fn new(params: &Params, rhos: &[f64]) -> Result<Self, ModelError> {
        Self::with_leaf_size(params, rhos, DEFAULT_LEAF_SIZE)
    }

    /// [`SummaryTree::new`] with an explicit leaf size (tests shrink it to
    /// force deep trees on small fleets).
    pub fn with_leaf_size(
        params: &Params,
        rhos: &[f64],
        leaf_size: usize,
    ) -> Result<Self, ModelError> {
        if rhos.is_empty() {
            return Err(ModelError::EmptyProfile);
        }
        if leaf_size == 0 {
            return Err(ModelError::InvalidParam {
                name: "leaf_size",
                value: 0.0,
            });
        }
        for (index, &rho) in rhos.iter().enumerate() {
            if !(rho.is_finite() && rho > 0.0) {
                return Err(ModelError::InvalidRho { index, value: rho });
            }
        }
        let (a, b, td) = (params.a(), params.b(), params.tau_delta());
        let lnrs: Vec<f64> = rhos
            .iter()
            .map(|&rho| (-(a - td) / (b * rho + a)).ln_1p())
            .collect();
        let chunks = lnrs.len().div_ceil(leaf_size);
        let cap = chunks.next_power_of_two();
        let mut tree = vec![IDENTITY; 2 * cap];
        for (c, chunk) in lnrs.chunks(leaf_size).enumerate() {
            let lnr = kahan_sum(chunk.iter().copied());
            tree[cap + c] = NodeSummary {
                lnr,
                err: TERM_SLACK * lnr.abs(),
            };
        }
        for i in (1..cap).rev() {
            tree[i] = NodeSummary::merge(tree[2 * i], tree[2 * i + 1]);
        }
        Ok(SummaryTree {
            params: *params,
            leaf_size,
            lnrs,
            tree,
            cap,
            chunks,
        })
    }

    /// [`SummaryTree::new`] over a validated [`Profile`]. Profiles are
    /// nonincreasing (slowest first), which is what gives
    /// [`SummaryTree::x_of_fastest`] its meaning.
    pub fn from_profile(params: &Params, profile: &Profile) -> Self {
        // hetero-check: allow(expect) — Profile construction already validated every ρ finite and positive
        Self::new(params, profile.rhos()).expect("profiles hold validated speeds")
    }

    /// Fleet size.
    pub fn n(&self) -> usize {
        self.lnrs.len()
    }

    /// The whole fleet's log residual `ln Π_i r_i` (root summary).
    pub fn log_residual(&self) -> f64 {
        self.tree[1].lnr
    }

    /// Certified error bound on [`SummaryTree::log_residual`].
    pub fn error_bound(&self) -> f64 {
        self.tree[1].err
    }

    /// The fleet's X-measure from the root summary:
    /// `X = (1 − e^{lnr})/(A − τδ)` (Theorem 2 telescoped).
    pub fn x(&self) -> f64 {
        self.x_from_lnr(self.tree[1].lnr)
    }

    /// Certified error bound on [`SummaryTree::x`]. Since
    /// `dX/d(lnr) = −e^{lnr}/(A−τδ)` and `e^{lnr} ≤ 1`, a log-residual
    /// slack of `err` moves X by at most `err/(A−τδ)`.
    pub fn x_error_bound(&self) -> f64 {
        self.tree[1].err / (self.params.a() - self.params.tau_delta())
    }

    /// The fleet's HECR via the Proposition 1 closed form on the root
    /// summary.
    pub fn hecr(&self) -> Result<f64, ModelError> {
        hecr_from_log_residual(&self.params, self.tree[1].lnr, self.n())
    }

    /// Log residual of the element range `[from, n)` — full leaf chunks
    /// come from tree nodes, the one partial chunk from a direct
    /// compensated pass over its raw elements.
    pub fn log_residual_suffix(&self, from: usize) -> Result<f64, ModelError> {
        let n = self.n();
        if from > n {
            return Err(ModelError::IndexOutOfRange { index: from, n });
        }
        if from == n {
            return Ok(0.0);
        }
        let chunk = from / self.leaf_size;
        let chunk_end = ((chunk + 1) * self.leaf_size).min(n);
        let mut acc = KahanSum::new();
        for &t in &self.lnrs[from..chunk_end] {
            acc.add(t);
        }
        // Full chunks [chunk + 1, chunks): standard iterative segment-tree
        // range fold, left-to-right so the combine order is deterministic.
        let mut partials: Vec<f64> = Vec::new();
        let (mut lo, mut hi) = (self.cap + chunk + 1, self.cap + self.chunks);
        let mut right: Vec<f64> = Vec::new();
        while lo < hi {
            if lo & 1 == 1 {
                partials.push(self.tree[lo].lnr);
                lo += 1;
            }
            if hi & 1 == 1 {
                hi -= 1;
                right.push(self.tree[hi].lnr);
            }
            lo /= 2;
            hi /= 2;
        }
        for p in partials.into_iter().chain(right.into_iter().rev()) {
            acc.add(p);
        }
        Ok(acc.value())
    }

    /// X-measure of the element range `[from, n)`.
    pub fn x_of_suffix(&self, from: usize) -> Result<f64, ModelError> {
        Ok(self.x_from_lnr(self.log_residual_suffix(from)?))
    }

    /// X-measure of the `c` *fastest* workers. Meaningful when the tree
    /// was built over a nonincreasing (slowest-first) profile, where the
    /// fastest `c` are exactly the last `c` — the Proposition 2 optimal
    /// `c`-subset, and the admissible-bound query of the
    /// branch-and-bound search.
    pub fn x_of_fastest(&self, c: usize) -> Result<f64, ModelError> {
        let n = self.n();
        if c > n {
            return Err(ModelError::IndexOutOfRange { index: c, n });
        }
        self.x_of_suffix(n - c)
    }

    /// Collapses the fleet to at most `max_clusters` Proposition 1
    /// homogeneous equivalents — contiguous groups, each replaced by
    /// `(ρ_C, count)` with `ρ_C` the group's HECR. In real arithmetic the
    /// compressed fleet's X equals the original's *exactly* (Proposition 1
    /// preserves each group's log residual and Theorem 1(2) makes them
    /// additive); in floats the error is the certified per-node slack
    /// plus one closed-form inversion round trip per group.
    pub fn compress(&self, max_clusters: usize) -> Result<CompressedFleet, ModelError> {
        if max_clusters == 0 {
            return Err(ModelError::InvalidParam {
                name: "max_clusters",
                value: 0.0,
            });
        }
        let n = self.n();
        let group = n.div_ceil(max_clusters);
        let mut clusters = Vec::with_capacity(n.div_ceil(group));
        let mut start = 0usize;
        while start < n {
            let end = (start + group).min(n);
            let count = end - start;
            // Group residual = suffix(start) − suffix(end) would cancel
            // catastrophically; sum the group's leaves directly instead.
            let lnr = kahan_sum(self.lnrs[start..end].iter().copied());
            let rho_c = hecr_from_log_residual(&self.params, lnr, count)?;
            clusters.push(HomogeneousCluster { rho_c, count });
            start = end;
        }
        Ok(CompressedFleet {
            params: self.params,
            clusters,
            n,
        })
    }

    /// Worst certification slack across every node: the max over nodes of
    /// `|stored − fresh flat recompute| / bound`. The per-node error
    /// bounds hold iff this is ≤ 1 — enforced by the property suite.
    pub fn certification_slack(&self) -> f64 {
        let mut worst: f64 = 0.0;
        // Walk every materialized node level by level; node i at height h
        // covers chunks [i·2^h − cap·…]; easier: recurse on ranges.
        let mut stack = vec![(1usize, 0usize, self.cap)];
        while let Some((node, chunk_lo, chunk_hi)) = stack.pop() {
            let lo = chunk_lo * self.leaf_size;
            if lo >= self.lnrs.len() {
                continue;
            }
            let hi = (chunk_hi * self.leaf_size).min(self.lnrs.len());
            let exact = kahan_sum(self.lnrs[lo..hi].iter().copied());
            let node_summary = self.tree[node];
            let diff = (node_summary.lnr - exact).abs();
            if diff > 0.0 {
                let bound = node_summary.err.max(f64::MIN_POSITIVE);
                worst = worst.max(diff / bound);
            }
            if chunk_hi - chunk_lo > 1 {
                let mid = (chunk_lo + chunk_hi) / 2;
                stack.push((2 * node, chunk_lo, mid));
                stack.push((2 * node + 1, mid, chunk_hi));
            }
        }
        worst
    }

    fn x_from_lnr(&self, lnr: f64) -> f64 {
        -lnr.exp_m1() / (self.params.a() - self.params.tau_delta())
    }
}

/// One Proposition 1 homogeneous equivalent: `count` identical computers
/// of speed `rho_c`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HomogeneousCluster {
    /// The group's HECR (per-unit work time of the equivalent computers).
    pub rho_c: f64,
    /// How many computers the group stands in for.
    pub count: usize,
}

/// A fleet collapsed to a handful of Proposition 1 homogeneous
/// equivalents — constant-size storage for million-worker fleets, with X
/// and HECR still answerable to within the summary tree's certified
/// bounds.
#[derive(Debug, Clone)]
pub struct CompressedFleet {
    params: Params,
    clusters: Vec<HomogeneousCluster>,
    n: usize,
}

impl CompressedFleet {
    /// The homogeneous equivalents, in original fleet order.
    pub fn clusters(&self) -> &[HomogeneousCluster] {
        &self.clusters
    }

    /// Number of equivalents retained.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total workers the compressed fleet represents.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The compressed fleet's log residual:
    /// `Σ_j count_j · ln r(ρ_{C,j})`.
    pub fn log_residual(&self) -> f64 {
        kahan_sum(
            self.clusters
                .iter()
                .map(|c| c.count as f64 * log_residual(&self.params, &[c.rho_c])),
        )
    }

    /// The compressed fleet's X-measure.
    pub fn x(&self) -> f64 {
        let (a, td) = (self.params.a(), self.params.tau_delta());
        -self.log_residual().exp_m1() / (a - td)
    }

    /// The compressed fleet's HECR via the Proposition 1 closed form.
    pub fn hecr(&self) -> Result<f64, ModelError> {
        hecr_from_log_residual(&self.params, self.log_residual(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmeasure::x_measure_of_rhos;

    fn params() -> Params {
        Params::paper_table1()
    }

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
    }

    #[test]
    fn root_summary_matches_flat_evaluation() {
        let p = params();
        for n in [1usize, 7, 256, 257, 1000] {
            let profile = Profile::harmonic(n);
            let tree = SummaryTree::from_profile(&p, &profile);
            let flat = x_measure_of_rhos(&p, profile.rhos());
            // The certificate bounds |tree − exact|; the flat pass carries
            // its own few-ulp rounding, allowed for separately.
            assert!(
                (tree.x() - flat).abs() <= tree.x_error_bound() + 1e-14 * flat.abs(),
                "n={n}: tree {} vs flat {} (bound {})",
                tree.x(),
                flat,
                tree.x_error_bound()
            );
            let hecr_flat = crate::hecr::hecr(&p, &profile).unwrap();
            assert!(rel_err(tree.hecr().unwrap(), hecr_flat) < 1e-12);
        }
    }

    #[test]
    fn suffix_queries_match_flat_suffix_evaluation() {
        let p = params();
        let profile = Profile::uniform_spread(700);
        let tree = SummaryTree::with_leaf_size(&p, profile.rhos(), 16).unwrap();
        for from in [0usize, 1, 15, 16, 17, 350, 699, 700] {
            let flat = if from == 700 {
                0.0
            } else {
                x_measure_of_rhos(&p, &profile.rhos()[from..])
            };
            let got = tree.x_of_suffix(from).unwrap();
            assert!(
                (got - flat).abs() < 1e-12 * flat.max(1.0),
                "from={from}: {got} vs {flat}"
            );
        }
        assert!(tree.x_of_suffix(701).is_err());
    }

    #[test]
    fn fastest_c_is_the_profile_suffix() {
        let p = params();
        let profile = Profile::harmonic(40);
        let tree = SummaryTree::with_leaf_size(&p, profile.rhos(), 8).unwrap();
        for c in [0usize, 1, 8, 9, 39, 40] {
            let flat = if c == 0 {
                0.0
            } else {
                x_measure_of_rhos(&p, &profile.rhos()[40 - c..])
            };
            let got = tree.x_of_fastest(c).unwrap();
            assert!(
                (got - flat).abs() < 1e-12 * flat.max(1.0),
                "c={c}: {got} vs {flat}"
            );
        }
        assert!(tree.x_of_fastest(41).is_err());
    }

    #[test]
    fn per_node_certificates_hold() {
        let p = params();
        for leaf_size in [1usize, 3, 16, 256] {
            let profile = Profile::uniform_spread(513);
            let tree = SummaryTree::with_leaf_size(&p, profile.rhos(), leaf_size).unwrap();
            let slack = tree.certification_slack();
            assert!(slack <= 1.0, "leaf_size={leaf_size}: slack {slack}");
        }
    }

    #[test]
    fn compression_preserves_x_within_bound() {
        let p = params();
        let profile = Profile::harmonic(1000);
        let tree = SummaryTree::from_profile(&p, &profile);
        let flat = x_measure_of_rhos(&p, profile.rhos());
        for max_clusters in [1usize, 2, 7, 100, 1000] {
            let fleet = tree.compress(max_clusters).unwrap();
            assert!(fleet.num_clusters() <= max_clusters);
            assert_eq!(fleet.n(), 1000);
            assert!(
                rel_err(fleet.x(), flat) < 1e-11,
                "max_clusters={max_clusters}: {} vs {flat}",
                fleet.x()
            );
            assert!(
                rel_err(
                    fleet.hecr().unwrap(),
                    crate::hecr::hecr(&p, &profile).unwrap()
                ) < 1e-9
            );
        }
        assert!(tree.compress(0).is_err());
    }

    #[test]
    fn homogeneous_groups_compress_losslessly() {
        // A fleet of two homogeneous halves compresses to exactly those
        // two speeds (Proposition 1 is the identity on homogeneous input).
        let p = params();
        let mut rhos = vec![1.0; 64];
        rhos.extend(vec![0.25; 64]);
        let tree = SummaryTree::new(&p, &rhos).unwrap();
        let fleet = tree.compress(2).unwrap();
        assert_eq!(fleet.num_clusters(), 2);
        assert!((fleet.clusters()[0].rho_c - 1.0).abs() < 1e-9);
        assert!((fleet.clusters()[1].rho_c - 0.25).abs() < 1e-9);
    }

    #[test]
    fn validation_errors() {
        let p = params();
        assert!(matches!(
            SummaryTree::new(&p, &[]),
            Err(ModelError::EmptyProfile)
        ));
        assert!(matches!(
            SummaryTree::new(&p, &[1.0, -2.0]),
            Err(ModelError::InvalidRho { index: 1, .. })
        ));
        assert!(SummaryTree::with_leaf_size(&p, &[1.0], 0).is_err());
    }

    #[test]
    fn scales_to_a_large_synthetic_fleet() {
        // 200k workers from a cheap deterministic generator: build, query,
        // and compress in one pass; the million-worker demo lives in the
        // E20 experiment driver.
        let p = params();
        let mut state = 0x9e3779b97f4a7c15u64;
        let rhos: Vec<f64> = (0..200_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // Speeds in (2^-8, 1]: a wide but benign spread.
                let u = (state >> 11) as f64 / (1u64 << 53) as f64;
                0.00390625 + u * 0.99609375
            })
            .collect();
        let tree = SummaryTree::new(&p, &rhos).unwrap();
        assert!(tree.x() > 0.0 && tree.x().is_finite());
        assert!(tree.hecr().unwrap() > 0.0);
        let fleet = tree.compress(64).unwrap();
        assert!(rel_err(fleet.x(), tree.x()) < 1e-10);
        assert!(tree.certification_slack() <= 1.0);
    }
}
