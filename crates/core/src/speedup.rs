//! Speeding up a cluster optimally (paper §3).
//!
//! Two upgrade scenarios are modelled. An *additive* speedup replaces a
//! computer of speed `ρ` with one of speed `ρ − φ`; a *multiplicative*
//! speedup replaces it with one of speed `ψρ` (`0 < ψ < 1`). The paper's
//! headline results:
//!
//! * **Theorem 3** — under additive speedup, the single most advantageous
//!   computer to upgrade is always the *fastest*.
//! * **Theorem 4** — under multiplicative speedup, upgrading the faster of
//!   two computers `C_i, C_j` (`ρ_j < ρ_i`) wins iff
//!   `ψρ_iρ_j > Aτδ/B²`; otherwise upgrading the *slower* wins.
//!
//! The [`greedy_multiplicative`] engine iterates "upgrade the best single
//! computer" and reproduces the paper's Figures 3–4, including the phase
//! transition between fastest-first and slowest-first regimes.
//!
//! All candidate evaluation goes through the incremental
//! [`XScan`](crate::xengine::XScan) engine: one O(n) scan per round
//! answers every single-computer what-if in O(1), so a greedy round costs
//! amortized O(n) instead of the O(n²·log n) of re-evaluating each
//! candidate profile from scratch. Candidates whose upgraded clusters have
//! identical speed *multisets* share one evaluation, so the paper's
//! tie-break ("speed up the computer with the larger index") stays exact.

use std::cmp::Ordering;

use crate::xengine::XScan;
use crate::{ModelError, Params, Profile};

/// Additively speeds up computer `index` (0-based, slowest first) by `phi`
/// (§3.1): its speed becomes `ρ − φ`. Requires `0 < φ < ρ` so the result
/// stays a valid (positive) speed; the paper's blanket requirement
/// `φ < ρ_n` guarantees this for every computer at once.
pub fn additive_speedup(profile: &Profile, index: usize, phi: f64) -> Result<Profile, ModelError> {
    if index >= profile.n() {
        return Err(ModelError::IndexOutOfRange {
            index,
            n: profile.n(),
        });
    }
    let rho = profile.rho(index);
    if !(phi.is_finite() && phi > 0.0 && phi < rho) {
        return Err(ModelError::InvalidSpeedup {
            name: "phi",
            value: phi,
        });
    }
    profile.with_rho(index, rho - phi)
}

/// Multiplicatively speeds up computer `index` by the factor `psi`
/// (`0 < ψ < 1`, §3.2): its speed becomes `ψρ`.
pub fn multiplicative_speedup(
    profile: &Profile,
    index: usize,
    psi: f64,
) -> Result<Profile, ModelError> {
    if index >= profile.n() {
        return Err(ModelError::IndexOutOfRange {
            index,
            n: profile.n(),
        });
    }
    if !(psi.is_finite() && psi > 0.0 && psi < 1.0) {
        return Err(ModelError::InvalidSpeedup {
            name: "psi",
            value: psi,
        });
    }
    profile.with_rho(index, psi * profile.rho(index))
}

/// Which of two computers Theorem 4 says to speed up multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Theorem4Choice {
    /// Condition (1): `ψρ_iρ_j > Aτδ/B²` — speed up the **faster**.
    Faster,
    /// Condition (2): `ψρ_iρ_j < Aτδ/B²` — speed up the **slower**.
    Slower,
    /// The discriminant vanishes (or the speeds are equal): both choices
    /// complete the same work.
    Indifferent,
}

/// Evaluates the Theorem 4 decision rule for speeds `rho_i ≥ rho_j` (the
/// slower and the faster computer) and factor `psi`.
pub fn theorem4_choice(params: &Params, rho_i: f64, rho_j: f64, psi: f64) -> Theorem4Choice {
    debug_assert!(rho_i >= rho_j, "rho_i is the slower computer");
    if rho_i == rho_j {
        return Theorem4Choice::Indifferent;
    }
    let lhs = psi * rho_i * rho_j;
    let threshold = params.theorem4_threshold();
    if lhs > threshold {
        Theorem4Choice::Faster
    } else if lhs < threshold {
        Theorem4Choice::Slower
    } else {
        Theorem4Choice::Indifferent
    }
}

/// The index whose additive upgrade by `phi` maximizes the resulting
/// X-measure, with the paper's tie-break (larger index — i.e. the faster
/// computer — wins). Theorem 3 proves this is always the fastest computer,
/// `n − 1`; the function computes it empirically so tests can *verify*
/// the theorem rather than assume it.
///
/// Only computers with `ρ > φ` are eligible (others cannot be sped up by
/// `φ` and keep a positive speed).
pub fn best_additive_index(params: &Params, profile: &Profile, phi: f64) -> Option<usize> {
    if !(phi.is_finite() && phi > 0.0) {
        return None;
    }
    let scan = XScan::from_profile(params, profile);
    let mut best: Option<(usize, f64)> = None;
    let mut prev: Option<(f64, f64)> = None;
    for index in 0..profile.n() {
        let rho = profile.rho(index);
        if phi >= rho {
            continue;
        }
        // Equal-ρ computers yield identical upgraded multisets; sharing
        // the first occurrence's O(1) what-if value keeps their X-values
        // bitwise equal, so the larger-index tie-break stays exact.
        let x = match prev {
            Some((prho, px)) if prho.total_cmp(&rho) == Ordering::Equal => px,
            _ => {
                let Ok(x) = scan.replace(index, rho - phi) else {
                    continue;
                };
                x
            }
        };
        prev = Some((rho, x));
        match best {
            Some((_, bx)) if x < bx => {}
            _ => best = Some((index, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// The index whose multiplicative upgrade by `psi` maximizes the resulting
/// X-measure, with the paper's tie-break (larger index wins) — the
/// empirical counterpart of the Theorem 4 pairwise rule.
pub fn best_multiplicative_index(params: &Params, profile: &Profile, psi: f64) -> Option<usize> {
    if !(psi.is_finite() && psi > 0.0 && psi < 1.0) {
        return None;
    }
    let scan = XScan::from_profile(params, profile);
    let mut best: Option<(usize, f64)> = None;
    let mut prev: Option<(f64, f64)> = None;
    for index in 0..profile.n() {
        let rho = profile.rho(index);
        // See best_additive_index: equal-ρ candidates share one value.
        let x = match prev {
            Some((prho, px)) if prho.total_cmp(&rho) == Ordering::Equal => px,
            _ => {
                let Ok(x) = scan.replace(index, psi * rho) else {
                    continue;
                };
                x
            }
        };
        prev = Some((rho, x));
        match best {
            Some((_, bx)) if x < bx => {}
            _ => best = Some((index, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// One round of the §3.2.2 iterated-upgrade experiment behind Figures 3–4.
#[derive(Debug, Clone, PartialEq)]
pub struct GreedyStep {
    /// 1-based round number.
    pub round: usize,
    /// Which computer (by fixed identity, 0-based) was sped up.
    pub chosen: usize,
    /// The speeds after the upgrade, indexed by computer identity — the
    /// bar heights of the paper's snapshot charts.
    pub speeds: Vec<f64>,
    /// `X` of the post-upgrade profile.
    pub x: f64,
}

/// Runs the paper's iterated multiplicative-speedup experiment (§3.2.2).
///
/// Starting from `initial` speeds (indexed by computer *identity*, which
/// is preserved across rounds exactly as in the paper's bar charts), each
/// round considers the `n` candidate profiles obtained by speeding up one
/// computer by `psi`, selects the one with the largest work production,
/// and on ties "chooses to speed up the computer with the larger index".
///
/// Each round maintains one [`XScan`] over the sorted speeds and answers
/// every candidate with an O(1) [`XScan::replace`] query — amortized O(n)
/// per round instead of `n` from-scratch evaluations. Candidates with
/// identical speed *multisets* are routed through the same scan position,
/// so they compare exactly equal and the tie-break is deterministic; the
/// recorded per-round `X` comes from the rebuilt scan's forward pass and
/// is bit-identical to evaluating the sorted post-upgrade profile from
/// scratch.
pub fn greedy_multiplicative(
    params: &Params,
    initial: &[f64],
    psi: f64,
    rounds: usize,
) -> Result<Vec<GreedyStep>, ModelError> {
    if initial.is_empty() {
        return Err(ModelError::EmptyProfile);
    }
    for (index, &value) in initial.iter().enumerate() {
        if !(value.is_finite() && value > 0.0) {
            return Err(ModelError::InvalidRho { index, value });
        }
    }
    if !(psi.is_finite() && psi > 0.0 && psi < 1.0) {
        return Err(ModelError::InvalidSpeedup {
            name: "psi",
            value: psi,
        });
    }

    let mut speeds = initial.to_vec();
    let mut steps = Vec::with_capacity(rounds);
    let mut sorted = speeds.clone();
    sorted.sort_by(|a, b| b.total_cmp(a));
    let mut scan = XScan::new(params, &sorted)?;
    // Per-round memo of candidate X-values, keyed by scan position.
    let mut cand_x: Vec<Option<f64>> = vec![None; speeds.len()];
    for round in 1..=rounds {
        cand_x.iter_mut().for_each(|c| *c = None);
        let mut best: Option<(usize, f64)> = None;
        for (j, &v) in speeds.iter().enumerate() {
            // All computers sharing speed `v` produce the same upgraded
            // multiset; evaluating them at `v`'s first position in the
            // sorted scan makes their X-values bitwise equal, keeping the
            // paper's larger-index tie-break deterministic.
            let p = sorted.partition_point(|&s| s > v);
            let x = match cand_x[p] {
                Some(x) => x,
                None => {
                    let Ok(x) = scan.replace(p, v * psi) else {
                        continue;
                    };
                    cand_x[p] = Some(x);
                    x
                }
            };
            match best {
                Some((_, bx)) if x < bx => {}
                _ => best = Some((j, x)),
            }
        }
        // hetero-check: allow(expect) — the candidate loop over a validated nonempty cluster always sets `best`
        let (chosen, _) = best.expect("nonempty cluster has a best upgrade");
        speeds[chosen] *= psi;
        sorted.copy_from_slice(&speeds);
        sorted.sort_by(|a, b| b.total_cmp(a));
        scan.rebuild(&sorted)?;
        steps.push(GreedyStep {
            round,
            chosen,
            speeds: speeds.clone(),
            x: scan.x(),
        });
    }
    Ok(steps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmeasure::{work_ratio, x_measure};

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn speedups_validate_arguments() {
        let p = Profile::new(vec![1.0, 0.25]).unwrap();
        assert!(additive_speedup(&p, 5, 0.1).is_err());
        assert!(additive_speedup(&p, 1, 0.25).is_err(), "φ must stay < ρ");
        assert!(additive_speedup(&p, 1, -0.1).is_err());
        assert!(multiplicative_speedup(&p, 0, 1.0).is_err());
        assert!(multiplicative_speedup(&p, 0, 0.0).is_err());
        assert!(multiplicative_speedup(&p, 9, 0.5).is_err());
    }

    #[test]
    fn speedups_produce_expected_profiles() {
        let p = Profile::new(vec![1.0, 0.5]).unwrap();
        assert_eq!(additive_speedup(&p, 0, 0.25).unwrap().rhos(), &[0.75, 0.5]);
        assert_eq!(
            multiplicative_speedup(&p, 1, 0.5).unwrap().rhos(),
            &[1.0, 0.25]
        );
    }

    #[test]
    fn any_speedup_increases_work() {
        // Proposition 2: faster clusters complete more work.
        let pr = params();
        let p = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap();
        for i in 0..p.n() {
            let up = additive_speedup(&p, i, 1.0 / 16.0).unwrap();
            assert!(work_ratio(&pr, &up, &p) > 1.0, "index {i}");
            let up = multiplicative_speedup(&p, i, 0.5).unwrap();
            assert!(work_ratio(&pr, &up, &p) > 1.0, "index {i}");
        }
    }

    #[test]
    fn theorem3_fastest_always_wins_additively() {
        let pr = params();
        for profile in [
            Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap(),
            Profile::uniform_spread(8),
            Profile::harmonic(6),
            Profile::new(vec![1.0, 0.9999, 0.2]).unwrap(),
        ] {
            let phi = profile.fastest() / 2.0;
            let best = best_additive_index(&pr, &profile, phi).unwrap();
            assert_eq!(
                best,
                profile.n() - 1,
                "Theorem 3 violated on {:?}",
                profile.rhos()
            );
        }
    }

    #[test]
    fn theorem4_choice_matches_x_comparison() {
        // The decision rule must agree with brute-force X comparison on
        // both sides of the threshold.
        let pr = Params::fig34();
        let psi = 0.5;
        let cases = [
            (1.0, 0.5),    // ψρρ = 0.25 > threshold → faster
            (1.0, 0.0625), // ψρρ ≈ 0.031 < threshold → slower
            (0.0625, 0.03125),
            (1.0, 0.9),
        ];
        for (rho_i, rho_j) in cases {
            let p = Profile::from_unsorted(vec![rho_i, rho_j]).unwrap();
            // In the sorted profile, index 0 is the slower (ρ_i).
            let speed_slower = multiplicative_speedup(&p, 0, psi).unwrap();
            let speed_faster = multiplicative_speedup(&p, 1, psi).unwrap();
            let xs = x_measure(&pr, &speed_slower);
            let xf = x_measure(&pr, &speed_faster);
            match theorem4_choice(&pr, rho_i, rho_j, psi) {
                Theorem4Choice::Faster => assert!(xf > xs, "({rho_i},{rho_j})"),
                Theorem4Choice::Slower => assert!(xs > xf, "({rho_i},{rho_j})"),
                Theorem4Choice::Indifferent => {
                    assert!((xs - xf).abs() / xs < 1e-12)
                }
            }
        }
    }

    #[test]
    fn theorem4_equal_speeds_are_indifferent() {
        assert_eq!(
            theorem4_choice(&params(), 0.5, 0.5, 0.5),
            Theorem4Choice::Indifferent
        );
    }

    #[test]
    fn greedy_validates_inputs() {
        let pr = params();
        assert!(greedy_multiplicative(&pr, &[], 0.5, 1).is_err());
        assert!(greedy_multiplicative(&pr, &[1.0, -1.0], 0.5, 1).is_err());
        assert!(greedy_multiplicative(&pr, &[1.0], 1.0, 1).is_err());
    }

    #[test]
    fn greedy_fig3_phase_structure() {
        // Figure 3: from ⟨1,1,1,1⟩ with ψ = 1/2 under the fig34
        // parameters, 16 rounds bring every computer to 1/16, each
        // computer being driven down in a block of 4 rounds (ties break to
        // the larger index, so C4 first — identity 3).
        let pr = Params::fig34();
        let steps = greedy_multiplicative(&pr, &[1.0; 4], 0.5, 16).unwrap();
        let chosen: Vec<usize> = steps.iter().map(|s| s.chosen).collect();
        assert_eq!(
            chosen,
            [3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0],
            "fastest-first in blocks of four"
        );
        let last = steps.last().unwrap();
        for &s in &last.speeds {
            assert!((s - 1.0 / 16.0).abs() < 1e-12);
        }
        // X must increase monotonically across rounds.
        for w in steps.windows(2) {
            assert!(w[1].x > w[0].x);
        }
    }

    #[test]
    fn greedy_fig4_switches_to_slowest_first() {
        // Figure 4: continuing from ⟨1/16,…⟩, every computer is now "very
        // fast", so condition (2) applies and the *slowest* (tie-broken to
        // the larger index) is upgraded each round.
        let pr = Params::fig34();
        let start = [1.0 / 16.0; 4];
        let steps = greedy_multiplicative(&pr, &start, 0.5, 4).unwrap();
        let chosen: Vec<usize> = steps.iter().map(|s| s.chosen).collect();
        // Each round upgrades a different still-slow computer.
        assert_eq!(chosen, [3, 2, 1, 0]);
        for &s in &steps.last().unwrap().speeds {
            assert!((s - 1.0 / 32.0).abs() < 1e-12);
        }
    }

    #[test]
    fn greedy_preserves_identity_indexing() {
        let pr = Params::fig34();
        let steps = greedy_multiplicative(&pr, &[1.0, 0.5, 0.25], 0.5, 2).unwrap();
        for s in &steps {
            assert_eq!(s.speeds.len(), 3);
        }
    }
}
