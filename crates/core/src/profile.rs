//! Heterogeneity profiles (paper §1.1, §2.5).

use serde::{Deserialize, Serialize};

use crate::ModelError;

/// A cluster's heterogeneity profile `P = ⟨ρ1,…,ρn⟩`.
///
/// `ρ_i` is the time computer `C_i` needs to complete one unit of work, so
/// **smaller values mean faster computers**. Following the paper's
/// power-indexing convention, values are stored in *nonincreasing* order:
/// index `0` is the slowest computer, index `n−1` the fastest. (This crate
/// uses 0-based indices; the paper's `C_1 … C_n` map to `0 … n−1`.)
///
/// Profiles are usually normalized so the slowest computer has `ρ = 1`
/// ([`Profile::is_normalized`]); un-normalized profiles are legal — the
/// HECR computation, for instance, needs homogeneous profiles with
/// arbitrary ρ — but every ρ must be finite and strictly positive.
///
/// ```
/// use hetero_core::Profile;
/// let p = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).unwrap();
/// assert_eq!(p.n(), 4);
/// assert_eq!(p.slowest(), 1.0);
/// assert_eq!(p.fastest(), 0.25);
/// assert!(p.is_normalized());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    rhos: Vec<f64>,
}

impl Profile {
    /// Builds a profile from ρ-values already in nonincreasing order.
    pub fn new(rhos: Vec<f64>) -> Result<Self, ModelError> {
        if rhos.is_empty() {
            return Err(ModelError::EmptyProfile);
        }
        for (index, &value) in rhos.iter().enumerate() {
            if !(value.is_finite() && value > 0.0) {
                return Err(ModelError::InvalidRho { index, value });
            }
        }
        if let Some(index) = rhos.windows(2).position(|w| w[0] < w[1]) {
            return Err(ModelError::NotSorted { index });
        }
        Ok(Profile { rhos })
    }

    /// Builds a profile from ρ-values in any order (sorts them slowest
    /// first).
    pub fn from_unsorted(mut rhos: Vec<f64>) -> Result<Self, ModelError> {
        for (index, &value) in rhos.iter().enumerate() {
            if !(value.is_finite() && value > 0.0) {
                return Err(ModelError::InvalidRho { index, value });
            }
        }
        rhos.sort_by(|a, b| b.total_cmp(a));
        Self::new(rhos)
    }

    /// A homogeneous `n`-computer cluster at speed `rho`.
    pub fn homogeneous(n: usize, rho: f64) -> Result<Self, ModelError> {
        Self::new(vec![rho; n.max(1)]).and_then(|p| {
            if n == 0 {
                Err(ModelError::EmptyProfile)
            } else {
                Ok(p)
            }
        })
    }

    /// The paper's cluster `C1` (§2.5): speeds spread evenly over
    /// `[1/n, 1]`, i.e. `ρ_i = 1 − (i−1)/n` for `i = 1…n`.
    pub fn uniform_spread(n: usize) -> Self {
        assert!(n >= 1, "cluster must have at least one computer");
        let rhos = (1..=n).map(|i| 1.0 - (i as f64 - 1.0) / n as f64).collect();
        // hetero-check: allow(expect) — ρ_i = (n−i+1)/n is strictly positive and nonincreasing for every i ≤ n
        Self::new(rhos).expect("family is valid by construction")
    }

    /// The paper's cluster `C2` (§2.5): harmonic speeds `ρ_i = 1/i`,
    /// weighted toward the fast half of the range.
    pub fn harmonic(n: usize) -> Self {
        assert!(n >= 1, "cluster must have at least one computer");
        let rhos = (1..=n).map(|i| 1.0 / i as f64).collect();
        // hetero-check: allow(expect) — ρ_i = 1/i is strictly positive and nonincreasing for every i ≤ n
        Self::new(rhos).expect("family is valid by construction")
    }

    /// Builds `⟨f(1), …, f(n)⟩` (1-based, as in the paper's
    /// `⟨f(i)|_{i=1}^n⟩` notation), sorting if needed.
    pub fn from_fn(n: usize, f: impl Fn(usize) -> f64) -> Result<Self, ModelError> {
        Self::from_unsorted((1..=n).map(f).collect())
    }

    /// Number of computers `n`.
    pub fn n(&self) -> usize {
        self.rhos.len()
    }

    /// The ρ-values, slowest first.
    pub fn rhos(&self) -> &[f64] {
        &self.rhos
    }

    /// The ρ-value of computer `index` (0-based, slowest first).
    pub fn rho(&self, index: usize) -> f64 {
        self.rhos[index]
    }

    /// ρ of the slowest computer (the largest value).
    pub fn slowest(&self) -> f64 {
        self.rhos[0]
    }

    /// ρ of the fastest computer (the smallest value).
    pub fn fastest(&self) -> f64 {
        // hetero-check: allow(expect) — every constructor rejects empty profiles
        *self.rhos.last().expect("profiles are nonempty")
    }

    /// `true` iff the slowest computer has ρ = 1 (the paper's convention).
    pub fn is_normalized(&self) -> bool {
        // hetero-check: allow(float-eq) — normalization means ρ1 is *exactly* 1, a definitional sentinel
        self.rhos[0] == 1.0
    }

    /// Rescales so the slowest computer has ρ = 1 (a change of time unit).
    pub fn normalized(&self) -> Self {
        let scale = self.rhos[0];
        Profile {
            rhos: self.rhos.iter().map(|r| r / scale).collect(),
        }
    }

    /// Arithmetic mean of the ρ-values.
    pub fn mean(&self) -> f64 {
        crate::numeric::kahan_sum(self.rhos.iter().copied()) / self.n() as f64
    }

    /// Population variance of the ρ-values (the paper's `VAR(P)`, Eq. 7).
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        crate::numeric::kahan_sum(self.rhos.iter().map(|r| (r - mean) * (r - mean)))
            / self.n() as f64
    }

    /// `true` iff `self` *minorizes* `other` (§4): same size, every
    /// `ρ_self[i] ≤ ρ_other[i]`, and at least one strictly smaller. By
    /// Proposition 2 a minorizing cluster always outperforms.
    pub fn minorizes(&self, other: &Profile) -> bool {
        self.n() == other.n()
            && self.rhos.iter().zip(&other.rhos).all(|(a, b)| a <= b)
            && self.rhos.iter().zip(&other.rhos).any(|(a, b)| a < b)
    }

    /// Returns a copy with computer `index` set to speed `rho`, re-sorted.
    ///
    /// This is the primitive behind both speedup scenarios of §3.
    pub fn with_rho(&self, index: usize, rho: f64) -> Result<Self, ModelError> {
        if index >= self.n() {
            return Err(ModelError::IndexOutOfRange { index, n: self.n() });
        }
        if !(rho.is_finite() && rho > 0.0) {
            return Err(ModelError::InvalidRho { index, value: rho });
        }
        let mut rhos = self.rhos.clone();
        rhos[index] = rho;
        Self::from_unsorted(rhos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert_eq!(Profile::new(vec![]), Err(ModelError::EmptyProfile));
        assert!(matches!(
            Profile::new(vec![1.0, 0.0]),
            Err(ModelError::InvalidRho { index: 1, .. })
        ));
        assert!(matches!(
            Profile::new(vec![1.0, -0.5]),
            Err(ModelError::InvalidRho { .. })
        ));
        assert!(matches!(
            Profile::new(vec![0.5, 1.0]),
            Err(ModelError::NotSorted { index: 0 })
        ));
        assert!(matches!(
            Profile::new(vec![1.0, f64::NAN]),
            Err(ModelError::InvalidRho { .. })
        ));
    }

    #[test]
    fn from_unsorted_sorts_slowest_first() {
        let p = Profile::from_unsorted(vec![0.25, 1.0, 0.5]).unwrap();
        assert_eq!(p.rhos(), &[1.0, 0.5, 0.25]);
    }

    #[test]
    fn from_unsorted_rejects_negative_zero() {
        // -0.0 is not a valid speed (ρ must be strictly positive), and it
        // must be caught by validation rather than surprise the total_cmp
        // sort (which orders -0.0 before +0.0).
        assert!(matches!(
            Profile::from_unsorted(vec![1.0, -0.0]),
            Err(ModelError::InvalidRho { index: 1, .. })
        ));
        assert!(Profile::new(vec![1.0, -0.0]).is_err());
    }

    #[test]
    fn sort_comparator_is_total_over_signed_zeros() {
        // Regression for the partial_cmp(..).expect(..) comparators this
        // crate used to carry: total_cmp must order mixed signed zeros
        // deterministically instead of panicking or leaving them unsorted.
        let mut values = [0.0f64, -0.0, 1.0, -0.0, 0.0];
        values.sort_by(|a, b| b.total_cmp(a));
        assert_eq!(values[0], 1.0);
        // Descending IEEE total order puts +0.0 before -0.0.
        assert!(values[1].is_sign_positive() && values[2].is_sign_positive());
        assert!(values[3].is_sign_negative() && values[4].is_sign_negative());
    }

    #[test]
    fn paper_families_match_section_2_5() {
        // "when n = 8, P1 = ⟨1, 7/8, …, 1/8⟩ and P2 = ⟨1, 1/2, …, 1/8⟩"
        let p1 = Profile::uniform_spread(8);
        let expect1: Vec<f64> = (0..8).map(|k| (8 - k) as f64 / 8.0).collect();
        assert_eq!(p1.rhos(), expect1.as_slice());

        let p2 = Profile::harmonic(8);
        let expect2: Vec<f64> = (1..=8).map(|i| 1.0 / i as f64).collect();
        assert_eq!(p2.rhos(), expect2.as_slice());

        assert!(p1.is_normalized() && p2.is_normalized());
    }

    #[test]
    fn homogeneous_profile() {
        let p = Profile::homogeneous(4, 0.5).unwrap();
        assert_eq!(p.rhos(), &[0.5; 4]);
        assert!(!p.is_normalized());
        assert!(Profile::homogeneous(0, 1.0).is_err());
    }

    #[test]
    fn statistics() {
        let p = Profile::new(vec![1.0, 0.5]).unwrap();
        assert_eq!(p.mean(), 0.75);
        assert!((p.variance() - 0.0625).abs() < 1e-15);
        let h = Profile::homogeneous(5, 0.3).unwrap();
        assert!(h.variance().abs() < 1e-15);
    }

    #[test]
    fn normalization_is_a_unit_change() {
        let p = Profile::new(vec![0.5, 0.25, 0.125]).unwrap();
        assert!(!p.is_normalized());
        let q = p.normalized();
        assert_eq!(q.rhos(), &[1.0, 0.5, 0.25]);
        assert!(q.is_normalized());
    }

    #[test]
    fn minorization_definition() {
        let faster = Profile::new(vec![0.9, 0.5]).unwrap();
        let slower = Profile::new(vec![1.0, 0.5]).unwrap();
        assert!(faster.minorizes(&slower));
        assert!(!slower.minorizes(&faster));
        assert!(!slower.minorizes(&slower), "equal profiles do not minorize");
        let other_size = Profile::new(vec![0.1]).unwrap();
        assert!(!other_size.minorizes(&slower));
        // Incomparable profiles minorize in neither direction.
        let a = Profile::new(vec![1.0, 0.2]).unwrap();
        let b = Profile::new(vec![0.8, 0.5]).unwrap();
        assert!(!a.minorizes(&b) && !b.minorizes(&a));
    }

    #[test]
    fn with_rho_resorts_and_validates() {
        let p = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        // Speeding the slowest past the middle re-sorts.
        let q = p.with_rho(0, 0.3).unwrap();
        assert_eq!(q.rhos(), &[0.5, 0.3, 0.25]);
        assert!(matches!(
            p.with_rho(7, 0.3),
            Err(ModelError::IndexOutOfRange { index: 7, n: 3 })
        ));
        assert!(p.with_rho(0, 0.0).is_err());
    }

    #[test]
    fn accessors() {
        let p = Profile::new(vec![1.0, 0.5, 0.25, 0.25]).unwrap();
        assert_eq!(p.n(), 4);
        assert_eq!(p.rho(1), 0.5);
        assert_eq!(p.slowest(), 1.0);
        assert_eq!(p.fastest(), 0.25);
    }
}
