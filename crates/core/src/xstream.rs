//! Streaming X-measure maintenance under fleet churn.
//!
//! [`XScan`](crate::xengine::XScan) answers O(1) *replace* queries but
//! pays O(n) whenever membership changes — fine for the §3 upgrade
//! engine, fatal for a million-worker fleet where computers join and
//! leave continuously. [`ChurnScan`] keeps the Theorem 2 sum
//!
//! ```text
//! X(P) = Σ_i S_i / d_i     with  d_i = Bρ_i + A,
//!                                r_i = (Bρ_i + τδ)/d_i,
//!                                S_i = Π_{j<i} r_j
//! ```
//!
//! live under `insert`/`delete`/`replace` at amortized O(log n) per
//! operation, using two facts:
//!
//! * **Order independence** (Theorem 1(2)): `X` does not depend on the
//!   order in which the ρ-values are listed, so a deletion anywhere may
//!   be *backfilled by the global tail element* and an insertion may
//!   always append — membership edits never shift more than one slot.
//! * **Segmented associativity**: over a concatenation `L ++ R`,
//!   `X(L ++ R) = X(L) + S(L)·X(R)` where `S(L) = Π_{i∈L} r_i`. The pair
//!   `(X, S)` is therefore a monoid summary, and a balanced tree of
//!   segment summaries re-derives the fleet value from one edited
//!   segment in O(log n) combines.
//!
//! The scan keeps workers in fixed-capacity segments of
//! [`SEGMENT_CAPACITY`] elements. Each segment stores Neumaier-compensated
//! *prefix snapshots* of its local sum and prefix product — appending is
//! O(1), truncating its tail is O(1), and rewriting an interior slot
//! re-consolidates only the local suffix (lazy re-consolidation: at most
//! `SEGMENT_CAPACITY` fused Neumaier steps, never the whole fleet). A
//! power-of-two segment tree over the `(sum, prod)` summaries then folds
//! the global value.
//!
//! The result is *not* bit-identical to a flat
//! [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) pass — the
//! segment combines associate the sum differently — but it stays within
//! the workspace-wide ≤ 1e-12 relative bound of a from-scratch rebuild
//! under arbitrarily long churn sequences (property-tested, plus
//! exact-rational Ratio oracle spot checks in the integration suite).

use crate::numeric::KahanSum;
use crate::{ModelError, Params, Profile};

/// Workers per segment. Deletions re-consolidate at most this many
/// Neumaier steps, so the constant bounds the "O(1)-ish" local cost while
/// `n / SEGMENT_CAPACITY` summaries keep the tree shallow.
pub const SEGMENT_CAPACITY: usize = 64;

/// A stable handle naming one worker inside a [`ChurnScan`], valid until
/// that worker is deleted. Handles survive the internal slot moves that
/// deletions cause.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WorkerId(u64);

impl WorkerId {
    /// The raw handle value (diagnostic display only).
    pub fn get(self) -> u64 {
        self.0
    }
}

/// One fixed-capacity block of workers with prefix snapshots of the
/// fused Neumaier recurrence, exactly as
/// [`x_measure_of_rhos`](crate::xmeasure::x_measure_of_rhos) would leave
/// them after each local element.
#[derive(Debug, Clone, Default)]
struct Segment {
    ids: Vec<u64>,
    rhos: Vec<f64>,
    d: Vec<f64>,
    r: Vec<f64>,
    /// `sums[k]` = compensated local sum after elements `0..k`
    /// (`sums[0]` is the empty accumulator).
    sums: Vec<KahanSum>,
    /// `prods[k]` = local prefix product after elements `0..k`
    /// (`prods[0] = 1`).
    prods: Vec<f64>,
}

impl Segment {
    fn new() -> Self {
        Segment {
            ids: Vec::with_capacity(SEGMENT_CAPACITY),
            rhos: Vec::with_capacity(SEGMENT_CAPACITY),
            d: Vec::with_capacity(SEGMENT_CAPACITY),
            r: Vec::with_capacity(SEGMENT_CAPACITY),
            sums: vec![KahanSum::new()],
            prods: vec![1.0],
        }
    }

    fn len(&self) -> usize {
        self.ids.len()
    }

    /// O(1) append: one fused Neumaier step extends the snapshots.
    fn push(&mut self, id: u64, rho: f64, d: f64, r: f64) {
        let k = self.len();
        self.ids.push(id);
        self.rhos.push(rho);
        self.d.push(d);
        self.r.push(r);
        let mut sum = self.sums[k];
        sum.add(self.prods[k] / d);
        self.sums.push(sum);
        self.prods.push(self.prods[k] * r);
    }

    /// O(1) tail removal: truncating restores the previous snapshots.
    fn pop(&mut self) -> (u64, f64) {
        // hetero-check: allow(expect) — callers only pop non-empty segments (the scan's tail invariant)
        let id = self.ids.pop().expect("pop on empty segment");
        let rho = self.rhos.pop().unwrap_or(0.0);
        self.d.pop();
        self.r.pop();
        self.sums.pop();
        self.prods.pop();
        (id, rho)
    }

    /// Lazy re-consolidation: recompute the snapshot suffix from `slot`
    /// after an interior overwrite — at most [`SEGMENT_CAPACITY`] steps.
    fn reconsolidate_from(&mut self, slot: usize) {
        for k in slot..self.len() {
            let mut sum = self.sums[k];
            sum.add(self.prods[k] / self.d[k]);
            self.sums[k + 1] = sum;
            self.prods[k + 1] = self.prods[k] * self.r[k];
        }
    }

    /// The `(X, S)` monoid summary of this segment.
    fn summary(&self) -> (f64, f64) {
        let k = self.len();
        (self.sums[k].value(), self.prods[k])
    }
}

/// The `(sum, prod)` combine over a concatenation: right segment's terms
/// all carry the left segment's residual product.
#[inline]
fn combine(l: (f64, f64), r: (f64, f64)) -> (f64, f64) {
    (l.0 + l.1 * r.0, l.1 * r.1)
}

/// Identity of [`combine`]: the empty cluster (`X = 0`, `S = 1`).
const IDENTITY: (f64, f64) = (0.0, 1.0);

/// A streaming X-measure scan over a churning fleet: amortized-O(log n)
/// [`insert`](ChurnScan::insert), [`delete`](ChurnScan::delete), and
/// [`replace`](ChurnScan::replace) with the live value always one O(1)
/// [`x`](ChurnScan::x) read away. See the module docs for the layout.
#[derive(Debug, Clone)]
pub struct ChurnScan {
    a: f64,
    b: f64,
    td: f64,
    segs: Vec<Segment>,
    /// Segment tree over segment summaries: `tree[cap + i]` is segment
    /// `i`'s summary, `tree[1]` the fleet's `(X, S)`.
    tree: Vec<(f64, f64)>,
    /// Leaf capacity of `tree` (power of two ≥ `segs.len()`).
    cap: usize,
    /// Handle → (segment, slot); `None` after deletion.
    loc: Vec<Option<(u32, u32)>>,
    n: usize,
}

impl ChurnScan {
    /// An empty scan (`X = 0`) for the given environment parameters.
    pub fn new(params: &Params) -> Self {
        ChurnScan {
            a: params.a(),
            b: params.b(),
            td: params.tau_delta(),
            segs: vec![Segment::new()],
            tree: vec![IDENTITY; 2],
            cap: 1,
            loc: Vec::new(),
            n: 0,
        }
    }

    /// A scan pre-loaded with a fleet, returning each worker's handle in
    /// input order. Validates every ρ the way [`Profile`] does.
    pub fn from_rhos(params: &Params, rhos: &[f64]) -> Result<(Self, Vec<WorkerId>), ModelError> {
        let mut scan = ChurnScan::new(params);
        let mut ids = Vec::with_capacity(rhos.len());
        for &rho in rhos {
            ids.push(scan.insert(rho)?);
        }
        Ok((scan, ids))
    }

    /// [`ChurnScan::from_rhos`] over a validated [`Profile`].
    pub fn from_profile(params: &Params, profile: &Profile) -> (Self, Vec<WorkerId>) {
        // hetero-check: allow(expect) — Profile construction already validated every ρ finite and positive
        Self::from_rhos(params, profile.rhos()).expect("profiles hold validated speeds")
    }

    /// Fleet size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `true` when no workers remain.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The live `X` of the current fleet (0 for an empty fleet) — an O(1)
    /// read of the tree root.
    pub fn x(&self) -> f64 {
        self.tree[1].0
    }

    /// The live residual product `S = Π_i r_i` (the quantity whose log
    /// the [`hcompress`](crate::hcompress) summaries track).
    pub fn residual_product(&self) -> f64 {
        self.tree[1].1
    }

    /// The current ρ of a worker.
    pub fn rho_of(&self, id: WorkerId) -> Result<f64, ModelError> {
        let (si, slot) = self.locate(id)?;
        Ok(self.segs[si].rhos[slot])
    }

    /// The current fleet's speeds in scan order (tests compare this
    /// arrangement against a from-scratch rebuild; by Theorem 1(2) the
    /// order itself carries no meaning).
    pub fn to_rhos(&self) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.n);
        for seg in &self.segs {
            out.extend_from_slice(&seg.rhos);
        }
        out
    }

    /// Adds a worker, returning its stable handle. Amortized O(1) local
    /// work (one fused Neumaier append) plus an O(log n) tree path.
    pub fn insert(&mut self, rho: f64) -> Result<WorkerId, ModelError> {
        if !(rho.is_finite() && rho > 0.0) {
            return Err(ModelError::InvalidRho {
                index: self.n,
                value: rho,
            });
        }
        hetero_obs::counters::XSCAN_INSERT.bump();
        let id = self.loc.len() as u64;
        // hetero-check: allow(expect) — the scan always keeps at least one (possibly empty) segment
        if self.segs.last().expect("segment list is never empty").len() == SEGMENT_CAPACITY {
            self.segs.push(Segment::new());
            if self.segs.len() > self.cap {
                self.grow_tree();
            }
        }
        let si = self.segs.len() - 1;
        let slot = self.segs[si].len();
        let denom = self.b * rho + self.a;
        let ratio = (self.b * rho + self.td) / denom;
        self.segs[si].push(id, rho, denom, ratio);
        self.loc.push(Some((si as u32, slot as u32)));
        self.n += 1;
        self.refresh_leaf(si);
        Ok(WorkerId(id))
    }

    /// Removes a worker. The hole is backfilled by the fleet's tail
    /// element (legal by Theorem 1(2) order independence), so only one
    /// segment suffix re-consolidates: O([`SEGMENT_CAPACITY`]) local work
    /// plus O(log n) tree updates.
    pub fn delete(&mut self, id: WorkerId) -> Result<(), ModelError> {
        let (si, slot) = self.locate(id)?;
        hetero_obs::counters::XSCAN_DELETE.bump();
        self.loc[id.0 as usize] = None;
        self.n -= 1;
        let last = self.segs.len() - 1;
        let tail_slot = self.segs[last].len() - 1;
        if si == last && slot == tail_slot {
            // Deleting the global tail: a pure truncation.
            self.segs[last].pop();
        } else {
            let (tid, trho) = self.segs[last].pop();
            let seg = &mut self.segs[si];
            seg.ids[slot] = tid;
            seg.rhos[slot] = trho;
            seg.d[slot] = self.b * trho + self.a;
            seg.r[slot] = (self.b * trho + self.td) / seg.d[slot];
            seg.reconsolidate_from(slot);
            self.loc[tid as usize] = Some((si as u32, slot as u32));
            self.refresh_leaf(si);
        }
        if self.segs[last].len() == 0 && self.segs.len() > 1 {
            self.segs.pop();
            self.tree_set(last, IDENTITY);
        } else {
            self.refresh_leaf(last);
        }
        Ok(())
    }

    /// Rescales one worker's speed in place: a local suffix
    /// re-consolidation plus an O(log n) tree path. The churn-scan
    /// counterpart of [`XScan::commit`](crate::xengine::XScan::commit),
    /// but O(log n) instead of O(n).
    pub fn replace(&mut self, id: WorkerId, rho: f64) -> Result<(), ModelError> {
        let (si, slot) = self.locate(id)?;
        if !(rho.is_finite() && rho > 0.0) {
            return Err(ModelError::InvalidRho {
                index: slot,
                value: rho,
            });
        }
        hetero_obs::counters::XSCAN_REPLACE.bump();
        let seg = &mut self.segs[si];
        seg.rhos[slot] = rho;
        seg.d[slot] = self.b * rho + self.a;
        seg.r[slot] = (self.b * rho + self.td) / seg.d[slot];
        seg.reconsolidate_from(slot);
        self.refresh_leaf(si);
        Ok(())
    }

    fn locate(&self, id: WorkerId) -> Result<(usize, usize), ModelError> {
        match self.loc.get(id.0 as usize).copied().flatten() {
            Some((si, slot)) => Ok((si as usize, slot as usize)),
            None => Err(ModelError::IndexOutOfRange {
                index: id.0 as usize,
                n: self.n,
            }),
        }
    }

    fn refresh_leaf(&mut self, si: usize) {
        let summary = self.segs[si].summary();
        self.tree_set(si, summary);
    }

    fn tree_set(&mut self, leaf: usize, summary: (f64, f64)) {
        let mut i = self.cap + leaf;
        self.tree[i] = summary;
        while i > 1 {
            i /= 2;
            self.tree[i] = combine(self.tree[2 * i], self.tree[2 * i + 1]);
        }
    }

    /// Doubles the tree's leaf capacity and refolds every summary —
    /// O(segments), amortized O(1) per insert across the growth schedule.
    fn grow_tree(&mut self) {
        self.cap = self.segs.len().next_power_of_two();
        self.tree.clear();
        self.tree.resize(2 * self.cap, IDENTITY);
        for (i, seg) in self.segs.iter().enumerate() {
            self.tree[self.cap + i] = seg.summary();
        }
        for i in (1..self.cap).rev() {
            self.tree[i] = combine(self.tree[2 * i], self.tree[2 * i + 1]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmeasure::x_measure_of_rhos;

    fn params() -> Params {
        Params::paper_table1()
    }

    fn rel_err(a: f64, b: f64) -> f64 {
        (a - b).abs() / a.abs().max(b.abs()).max(f64::MIN_POSITIVE)
    }

    /// The scan's value vs a from-scratch flat evaluation of its current
    /// arrangement — the workspace-wide incremental-vs-scratch bound.
    fn assert_matches_rebuild(scan: &ChurnScan, p: &Params) {
        let rhos = scan.to_rhos();
        if rhos.is_empty() {
            assert_eq!(scan.x(), 0.0);
        } else {
            let direct = x_measure_of_rhos(p, &rhos);
            assert!(
                rel_err(scan.x(), direct) < 1e-12,
                "churn {} vs rebuild {}",
                scan.x(),
                direct
            );
        }
    }

    #[test]
    fn empty_scan_is_zero() {
        let scan = ChurnScan::new(&params());
        assert!(scan.is_empty());
        assert_eq!(scan.x(), 0.0);
        assert_eq!(scan.residual_product(), 1.0);
    }

    #[test]
    fn inserts_track_the_flat_evaluation_across_segment_boundaries() {
        let p = params();
        let mut scan = ChurnScan::new(&p);
        // Straddle several segment boundaries (63/64/65, 127/128/129 …).
        for i in 0..300usize {
            scan.insert(1.0 / (1 + i % 17) as f64).unwrap();
            assert_eq!(scan.n(), i + 1);
            assert_matches_rebuild(&scan, &p);
        }
    }

    #[test]
    fn delete_backfills_from_the_tail() {
        let p = params();
        let profile = Profile::harmonic(130);
        let (mut scan, ids) = ChurnScan::from_profile(&p, &profile);
        // Delete from the front, the middle, a segment boundary, and the tail.
        for &victim in &[0usize, 64, 63, 129, 65, 1] {
            scan.delete(ids[victim]).unwrap();
            assert_matches_rebuild(&scan, &p);
        }
        assert_eq!(scan.n(), 124);
        // A deleted handle is gone.
        assert!(matches!(
            scan.delete(ids[0]),
            Err(ModelError::IndexOutOfRange { .. })
        ));
        assert!(scan.rho_of(ids[0]).is_err());
    }

    #[test]
    fn drain_to_empty_and_refill() {
        let p = params();
        let (mut scan, ids) = ChurnScan::from_rhos(&p, &[1.0, 0.5, 0.25]).unwrap();
        for id in ids {
            scan.delete(id).unwrap();
        }
        assert!(scan.is_empty());
        assert_eq!(scan.x(), 0.0);
        let id = scan.insert(0.5).unwrap();
        assert_matches_rebuild(&scan, &p);
        assert_eq!(scan.rho_of(id).unwrap(), 0.5);
    }

    #[test]
    fn replace_rescales_in_place() {
        let p = params();
        let profile = Profile::uniform_spread(100);
        let (mut scan, ids) = ChurnScan::from_profile(&p, &profile);
        scan.replace(ids[3], 0.01).unwrap();
        scan.replace(ids[99], 2.5).unwrap();
        assert_matches_rebuild(&scan, &p);
        assert_eq!(scan.rho_of(ids[3]).unwrap(), 0.01);
        assert_eq!(scan.n(), 100);
    }

    #[test]
    fn validation_errors() {
        let p = params();
        let mut scan = ChurnScan::new(&p);
        assert!(matches!(
            scan.insert(-1.0),
            Err(ModelError::InvalidRho { .. })
        ));
        assert!(matches!(
            scan.insert(f64::NAN),
            Err(ModelError::InvalidRho { .. })
        ));
        let id = scan.insert(1.0).unwrap();
        assert!(matches!(
            scan.replace(id, f64::INFINITY),
            Err(ModelError::InvalidRho { .. })
        ));
        assert!(ChurnScan::from_rhos(&p, &[1.0, 0.0]).is_err());
    }

    #[test]
    fn order_independence_of_the_value() {
        // Theorem 1(2): the same multiset reached by different churn
        // histories yields the same X within the incremental bound.
        let p = params();
        let (scan_a, _) = ChurnScan::from_rhos(&p, &[1.0, 0.5, 0.25, 0.125]).unwrap();
        let (mut scan_b, ids) =
            ChurnScan::from_rhos(&p, &[0.125, 0.9, 0.25, 1.0, 0.5, 0.7]).unwrap();
        scan_b.delete(ids[1]).unwrap();
        scan_b.delete(ids[5]).unwrap();
        assert!(rel_err(scan_a.x(), scan_b.x()) < 1e-12);
    }

    #[test]
    fn matches_the_xscan_engine_on_a_static_fleet() {
        let p = params();
        let profile = Profile::harmonic(500);
        let (scan, _) = ChurnScan::from_profile(&p, &profile);
        let engine = crate::xengine::XScan::from_profile(&p, &profile);
        assert!(rel_err(scan.x(), engine.x()) < 1e-12);
    }
}
