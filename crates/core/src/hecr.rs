//! The Homogeneous-Equivalent Computing Rate (paper §2.4, Proposition 1).
//!
//! `X(P)` is tractable but "not very perspicuous". The HECR re-expresses a
//! heterogeneous cluster's power as the single speed `ρ_C` that a
//! *homogeneous* `n`-computer cluster would need to match it: the largest
//! `ρ` with `X(⟨ρ,…,ρ⟩) ≥ X(P)`. Smaller HECR = more powerful cluster.
//!
//! Two independent implementations are provided — the Proposition 1 closed
//! form (inverted analytically in log space, see [`hecr`]) and a monotone
//! bisection on the log residual ([`hecr_bisect`]) — and each serves as an
//! oracle for the other in the test suite.

use crate::numeric::kahan_sum;
use crate::{ModelError, Params, Profile};

/// The HECR `ρ_C` of a cluster, by the Proposition 1 closed form:
///
/// ```text
/// ρ_C = (A − τδ) / (B − (1 − (A−τδ)·X(P))^{1/n} · B)  −  A/B
/// ```
///
/// The quantity `1 − (A−τδ)·X(P)` equals the residual product
/// `Π_i (Bρ_i + τδ)/(Bρ_i + A)` (a telescoping identity of the
/// X-measure), so instead of forming it from `X` — where it suffers
/// catastrophic cancellation, and underflows entirely for large clusters
/// with communication-dominated parameters — it is computed directly in
/// log space. Returns an error only for degenerate floating-point inputs.
pub fn hecr(params: &Params, profile: &Profile) -> Result<f64, ModelError> {
    hecr_of_rhos(params, profile.rhos())
}

/// [`hecr`] on a raw ρ-slice — the slice-level entry point the batched
/// kernel ([`crate::xbatch::hecrs`]) shares with the [`Profile`] API, so
/// both paths are one implementation and bit-identical by construction
/// (Proposition 1).
pub fn hecr_of_rhos(params: &Params, rhos: &[f64]) -> Result<f64, ModelError> {
    // ln Π r_i with r_i = 1 − (A−τδ)/(Bρ_i + A), each factor via ln_1p.
    let log_inner = log_residual(params, rhos);
    hecr_from_log_residual(params, log_inner, rhos.len())
}

/// Closes the Proposition 1 inversion from an already-computed log
/// residual. Shared by the scalar and batched HECR paths so their final
/// arithmetic is the same instruction sequence.
pub(crate) fn hecr_from_log_residual(
    params: &Params,
    log_inner: f64,
    n: usize,
) -> Result<f64, ModelError> {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    // 1 − inner^{1/n}, stable whether inner is ≈ 1 or ≈ 0.
    let one_minus_d = -(log_inner / n as f64).exp_m1();
    if !(one_minus_d > 0.0 && one_minus_d.is_finite()) {
        return Err(ModelError::InvalidParam {
            name: "1 - D",
            value: one_minus_d,
        });
    }
    Ok((a - td) / (b * one_minus_d) - a / b)
}

/// The Proposition 1 closed form when `X(P)` has already been computed.
pub fn hecr_of_x(params: &Params, x: f64, n: usize) -> Result<f64, ModelError> {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let inner = 1.0 - (a - td) * x;
    if !(inner > 0.0 && inner < 1.0) {
        return Err(ModelError::InvalidParam {
            name: "X(P)",
            value: x,
        });
    }
    let d = inner.powf(1.0 / n as f64);
    Ok((a - td) / (b * (1.0 - d)) - a / b)
}

/// `ln Π_i (Bρ_i + τδ)/(Bρ_i + A)` — the log *residual* of a profile
/// (the product telescoped out of the §2.2 X-measure).
///
/// `X(P) = (1 − e^{log_residual})/(A − τδ)`, so the residual is a strictly
/// *decreasing* transform of `X`: comparing residuals compares powers with
/// reversed sign. Unlike `X` itself, the residual never saturates in f64
/// (X approaches its supremum `1/(A−τδ)` but the residual just keeps
/// falling), which makes it the right primitive for large clusters or
/// communication-dominated parameters.
pub fn log_residual(params: &Params, rhos: &[f64]) -> f64 {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    kahan_sum(rhos.iter().map(|&rho| (-(a - td) / (b * rho + a)).ln_1p()))
}

/// The HECR by bisection: exploits that the log residual of `⟨ρ,…,ρ⟩` is
/// strictly increasing in `ρ`, and finds `ρ` whose homogeneous cluster
/// matches the profile's residual to relative tolerance `tol`. Searches
/// rather than inverts — the independent oracle for the Proposition 1
/// closed form.
pub fn hecr_bisect(params: &Params, profile: &Profile, tol: f64) -> f64 {
    let n = profile.n() as f64;
    // Per-computer residual target: ln r(ρ_C) = log_residual(P)/n.
    let target = log_residual(params, profile.rhos()) / n;
    let hom = |rho: f64| log_residual(params, &[rho]);
    // Bracket: fastest ≤ ρ_C ≤ slowest.
    let mut hi = profile.slowest(); // hom(hi) ≥ target
    let mut lo = profile.fastest(); // hom(lo) ≤ target
    debug_assert!(hom(hi) >= target - 1e-12 * target.abs());
    debug_assert!(hom(lo) <= target + 1e-12 * target.abs());
    while (hi - lo) > tol * hi {
        let mid = 0.5 * (hi + lo);
        if hom(mid) <= target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (hi + lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn hecr_of_homogeneous_cluster_is_its_speed() {
        let p = params();
        for rho in [1.0, 0.5, 0.1] {
            for n in [1usize, 3, 9] {
                let c = Profile::homogeneous(n, rho).unwrap();
                let r = hecr(&p, &c).unwrap();
                assert!((r - rho).abs() < 1e-9, "n={n} rho={rho}: got {r}");
            }
        }
    }

    #[test]
    fn closed_form_matches_bisection() {
        let p = params();
        for profile in [
            Profile::uniform_spread(8),
            Profile::harmonic(8),
            Profile::uniform_spread(32),
            Profile::harmonic(32),
            Profile::new(vec![1.0, 0.9, 0.2, 0.01]).unwrap(),
        ] {
            let closed = hecr(&p, &profile).unwrap();
            let bisect = hecr_bisect(&p, &profile, 1e-13);
            assert!(
                (closed - bisect).abs() / closed < 1e-9,
                "closed {closed} vs bisect {bisect}"
            );
        }
    }

    #[test]
    fn hecr_inverts_x() {
        // X(⟨ρ_C,…,ρ_C⟩) must equal X(P) by definition.
        let p = params();
        let c = Profile::harmonic(16);
        let r = hecr(&p, &c).unwrap();
        let x_match = crate::xmeasure::x_homogeneous(&p, r, 16);
        let x = crate::xmeasure::x_measure(&p, &c);
        assert!((x_match - x).abs() / x < 1e-10);
    }

    #[test]
    fn hecr_lies_between_fastest_and_slowest() {
        let p = params();
        let c = Profile::new(vec![1.0, 0.7, 0.3, 0.25]).unwrap();
        let r = hecr(&p, &c).unwrap();
        assert!(r > c.fastest() && r < c.slowest());
    }

    #[test]
    fn more_powerful_cluster_has_smaller_hecr() {
        let p = params();
        // Table 3's observation: C2's HECR beats C1's at every size.
        for n in [8usize, 16, 32] {
            let r1 = hecr(&p, &Profile::uniform_spread(n)).unwrap();
            let r2 = hecr(&p, &Profile::harmonic(n)).unwrap();
            assert!(r2 < r1, "n={n}: {r2} !< {r1}");
        }
    }

    #[test]
    fn table3_values_reproduced() {
        // Paper Table 3 (Table 1 parameters). Our exact evaluation lands
        // within 0.007 of every published cell (the paper's own rounding
        // and unstated evaluation settings account for the residue); the
        // qualitative claim — C2's advantage grows from ~1.7× at n = 8 to
        // ~2.6× at 16 to >4× at 32 — is asserted tightly.
        let p = params();
        let expect = [
            (8usize, 0.366, 0.216),
            (16, 0.298, 0.116),
            (32, 0.251, 0.060),
        ];
        let mut prev_ratio = 0.0;
        for (n, e1, e2) in expect {
            let r1 = hecr(&p, &Profile::uniform_spread(n)).unwrap();
            let r2 = hecr(&p, &Profile::harmonic(n)).unwrap();
            assert!((r1 - e1).abs() < 7e-3, "C1 n={n}: got {r1}, paper {e1}");
            assert!((r2 - e2).abs() < 7e-3, "C2 n={n}: got {r2}, paper {e2}");
            let ratio = r1 / r2;
            assert!(ratio > prev_ratio, "advantage grows with n");
            prev_ratio = ratio;
        }
        assert!(
            prev_ratio > 4.0,
            "n = 32 ratio exceeds 4 (paper: 'more than 4')"
        );
    }

    #[test]
    fn hecr_of_x_rejects_out_of_range_x() {
        let p = params();
        let sup = crate::xmeasure::x_supremum(&p);
        assert!(hecr_of_x(&p, sup * 1.01, 4).is_err());
        assert!(hecr_of_x(&p, 0.0, 4).is_err());
    }
}
