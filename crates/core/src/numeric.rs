//! Compensated floating-point accumulation (§2.3's large-`n` regime).
//!
//! The X-measure sums `n` terms whose magnitudes decay geometrically
//! (each carries a running product of factors `< 1`), and the symmetric-
//! function machinery sums logs and powers spanning many orders of
//! magnitude. Naive `f64` accumulation loses one ulp per step in the
//! worst case; over the cluster sizes the paper tabulates (`n = 32` and
//! beyond in our experiments) that error becomes visible next to the
//! exact-rational oracle. All kernel summations therefore route through
//! the Neumaier-compensated accumulator here (enforced by the
//! `naked-sum` lint of `hetero-check`).

/// A streaming Neumaier-compensated sum.
///
/// Neumaier's variant of Kahan summation: alongside the running sum it
/// keeps the low-order bits lost by each addition, choosing which operand
/// to recover them from by magnitude, so the final [`KahanSum::value`] is
/// correct to ~1 ulp of the true sum for well-conditioned inputs
/// regardless of length or ordering.
#[derive(Debug, Clone, Copy, Default)]
pub struct KahanSum {
    sum: f64,
    comp: f64,
}

impl KahanSum {
    /// An empty accumulator (value 0.0).
    pub fn new() -> Self {
        KahanSum::default()
    }

    /// Adds one term, tracking the rounding error of the addition.
    pub fn add(&mut self, term: f64) {
        let t = self.sum + term;
        self.comp += if self.sum.abs() >= term.abs() {
            (self.sum - t) + term
        } else {
            (term - t) + self.sum
        };
        self.sum = t;
    }

    /// The compensated total.
    pub fn value(&self) -> f64 {
        self.sum + self.comp
    }

    /// The accumulated compensation term — the rounding error a naive sum
    /// would have discarded so far. Its magnitude is the observable "how
    /// much did compensation matter" signal exported to the observability
    /// histogram.
    pub fn compensation(&self) -> f64 {
        self.comp
    }
}

/// Neumaier-compensated sum of a sequence of terms.
///
/// Drop-in replacement for `.sum::<f64>()` in the numerical kernels:
///
/// ```
/// use hetero_core::numeric::kahan_sum;
/// let total = kahan_sum([1e16, 1.0, -1e16]);
/// assert_eq!(total, 1.0); // a naive sum returns 0.0 or 2.0
/// ```
pub fn kahan_sum(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut acc = KahanSum::new();
    for v in values {
        acc.add(v);
    }
    acc.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_cancelled_low_bits() {
        // The classic Neumaier witness: Kahan's original algorithm loses
        // this one, the improved version does not.
        assert_eq!(kahan_sum([1.0, 1e100, 1.0, -1e100]), 2.0);
        assert_eq!(kahan_sum([1e16, 1.0, -1e16]), 1.0);
    }

    #[test]
    fn matches_naive_sum_on_benign_input() {
        let values: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(kahan_sum(values.iter().copied()), 5050.0);
    }

    #[test]
    fn empty_and_singleton() {
        assert_eq!(kahan_sum([]), 0.0);
        assert_eq!(kahan_sum([3.5]), 3.5);
    }

    #[test]
    fn streaming_equals_batch() {
        let values = [0.1, 0.2, 0.3, 1e-17, -0.6];
        let mut acc = KahanSum::new();
        for v in values {
            acc.add(v);
        }
        assert_eq!(acc.value(), kahan_sum(values));
    }

    #[test]
    fn beats_naive_on_magnitude_spread() {
        // Σ 1/i² with a large cancelling pair mixed in: the pair must
        // contribute exactly nothing, but a naive sum loses every bit of
        // the series below 1e12's ulp (~1e-4).
        let benign: Vec<f64> = (1..=10_000).map(|i| 1.0 / (i as f64 * i as f64)).collect();
        let target = kahan_sum(benign.iter().copied());
        let mut terms = benign;
        terms.push(1e12);
        terms.push(-1e12);
        let compensated = kahan_sum(terms.iter().copied());
        let naive: f64 = terms.iter().fold(0.0, |a, &b| a + b);
        assert!((compensated - target).abs() < 1e-12);
        assert!((naive - target).abs() > 1e-6);
    }
}
