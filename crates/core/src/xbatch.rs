//! Batched X-measure evaluation over structure-of-arrays profile blocks.
//!
//! The Section 4.3 experiments evaluate `X(P)` over 10⁵–10⁶ random
//! profiles per sweep. Walking one heap-allocated [`Profile`] at a time
//! through [`crate::xmeasure::x_measure_of_rhos`] serializes the Theorem 2
//! recurrence: every term needs the running product, the product needs a
//! division, and the division's latency (20–40 cycles) bounds throughput
//! at one profile element per division.
//!
//! This module breaks that chain *across* profiles instead of within one.
//! A [`ProfileBatch`] stores a block of profiles in one flat ρ buffer
//! (structure-of-arrays, bulk-loadable without per-trial allocation), and
//! the lockstep kernel advances [`LANES`] independent recurrences
//! simultaneously — eight division chains in flight instead of one, a
//! branch-free mul-add inner loop over `B·ρ + A` / `B·ρ + τδ` laid out
//! for auto-vectorization. Because each lane performs *exactly* the
//! scalar op sequence (including the Neumaier compensation of
//! [`crate::numeric::KahanSum`]), batched results are **bit-identical**
//! to the scalar path — pinned by tests and by the drivers' unchanged
//! figure/table cells.
//!
//! Ragged batches (mixed profile lengths) fall back to the scalar kernel
//! per profile, so callers never need to pre-sort by length to stay
//! correct — only to go fast.

use crate::{ModelError, NumericMode, Params, Profile};
use hetero_obs::counters::{XBATCH_EVAL, XBATCH_RAGGED_FALLBACK};

/// Lanes advanced simultaneously by the lockstep kernel. Eight f64
/// division chains cover the latency/throughput gap of hardware divide
/// and fill two 4-wide vector registers.
pub const LANES: usize = 8;

/// A structure-of-arrays arena holding a block of heterogeneity profiles:
/// one flat `ρ` buffer plus an offsets table.
///
/// The arena imposes the same numeric contract as
/// [`crate::xmeasure::x_measure_of_rhos`]: ρ-values are used as given
/// (finite, strictly positive, any order the caller wants evaluated).
/// Nothing is validated or re-sorted here — generators push already-sorted
/// rows, and the kernels reproduce the scalar evaluation order exactly.
#[derive(Debug, Clone)]
pub struct ProfileBatch {
    rhos: Vec<f64>,
    /// `offsets[i]..offsets[i + 1]` bounds profile `i`; always starts `[0]`.
    offsets: Vec<usize>,
}

impl Default for ProfileBatch {
    fn default() -> Self {
        ProfileBatch::new()
    }
}

impl ProfileBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ProfileBatch {
            rhos: Vec::new(),
            offsets: vec![0],
        }
    }

    /// An empty batch with room for `profiles` rows totalling `values`
    /// ρ-entries, so bulk loaders allocate once.
    pub fn with_capacity(profiles: usize, values: usize) -> Self {
        let mut offsets = Vec::with_capacity(profiles + 1);
        offsets.push(0);
        ProfileBatch {
            rhos: Vec::with_capacity(values),
            offsets,
        }
    }

    /// Appends one profile's ρ-values (in the order they should be
    /// evaluated — the paper's nonincreasing convention for [`Profile`]s).
    pub fn push(&mut self, rhos: &[f64]) {
        self.rhos.extend_from_slice(rhos);
        self.offsets.push(self.rhos.len());
    }

    /// Appends a validated [`Profile`].
    pub fn push_profile(&mut self, profile: &Profile) {
        self.push(profile.rhos());
    }

    /// Number of profiles in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// `true` iff the batch holds no profiles.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total ρ-values across all profiles.
    pub fn values(&self) -> usize {
        self.rhos.len()
    }

    /// The ρ-slice of profile `i`.
    pub fn rhos_of(&self, i: usize) -> &[f64] {
        &self.rhos[self.offsets[i]..self.offsets[i + 1]]
    }

    /// Drops every profile, keeping the allocations for reuse.
    pub fn clear(&mut self) {
        self.rhos.clear();
        self.offsets.truncate(1);
        self.offsets[0] = 0;
    }

    /// Drops profiles from the back until `profiles` remain.
    pub fn truncate(&mut self, profiles: usize) {
        if profiles < self.len() {
            self.offsets.truncate(profiles + 1);
            self.rhos.truncate(self.offsets[profiles]);
        }
    }

    /// `Some(n)` when every profile has the same length `n` (and the
    /// batch is nonempty) — the precondition for the lockstep kernel.
    pub fn uniform_len(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let n = self.offsets[1];
        self.offsets
            .windows(2)
            .all(|w| w[1] - w[0] == n)
            .then_some(n)
    }
}

/// `X(P)` for every profile in the batch, in order (Theorem 2).
///
/// Uniform-length batches run the lockstep kernel; ragged batches fall
/// back to [`crate::xmeasure::x_measure_of_rhos`] per profile. Both paths
/// are bit-identical to the scalar evaluation.
pub fn x_measures(params: &Params, batch: &ProfileBatch) -> Vec<f64> {
    let mut out = Vec::new();
    x_measures_into(params, batch, &mut out);
    out
}

/// [`x_measures`] under an explicit [`NumericMode`]: `Strict` is the
/// bit-identical lockstep kernel; `Fast` is the divide-free
/// reciprocal-Newton kernel of [`crate::fastnum`], certified within
/// [`crate::fastnum::x_budget_rcp`] of exact (ragged rows fall back to
/// the certified single-division scalar reform).
pub fn x_measures_mode(params: &Params, batch: &ProfileBatch, mode: NumericMode) -> Vec<f64> {
    let mut out = Vec::new();
    x_measures_into_mode(params, batch, mode, &mut out);
    out
}

/// [`x_measures`] writing into a caller-owned buffer (cleared first), so
/// block-structured sweeps reuse one allocation per worker.
pub fn x_measures_into(params: &Params, batch: &ProfileBatch, out: &mut Vec<f64>) {
    x_measures_into_mode(params, batch, NumericMode::Strict, out);
}

/// [`x_measures_into`] under an explicit [`NumericMode`].
pub fn x_measures_into_mode(
    params: &Params,
    batch: &ProfileBatch,
    mode: NumericMode,
    out: &mut Vec<f64>,
) {
    out.clear();
    if batch.is_empty() {
        return;
    }
    XBATCH_EVAL.add(batch.len() as u64);
    out.resize(batch.len(), 0.0);
    match batch.uniform_len() {
        Some(n) if n > 0 => match mode {
            NumericMode::Strict => lockstep_x(params, batch, n, out),
            NumericMode::Fast => crate::fastnum::lockstep_x_fast(params, batch, n, out),
        },
        _ => {
            // Mixed lengths (or degenerate empty rows): scalar per profile.
            XBATCH_RAGGED_FALLBACK.add(batch.len() as u64);
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = crate::xmeasure::x_measure_of_rhos_mode(params, batch.rhos_of(i), mode);
            }
        }
    }
}

/// The lockstep Theorem 2 kernel over a uniform-length batch.
///
/// Each lane carries the scalar recurrence state — running product,
/// Neumaier sum, Neumaier compensation — and the inner loop advances all
/// lanes one profile element per iteration. The ρ-block is transposed
/// into lane-major scratch first so the hot loop reads contiguously.
/// Per lane the operation sequence is *exactly*
/// [`crate::numeric::KahanSum::add`] applied to `prod / (Bρ + A)`
/// followed by `prod *= (Bρ + τδ)/(Bρ + A)`, so every lane result is
/// bit-identical to `x_measure_of_rhos` on that row.
fn lockstep_x(params: &Params, batch: &ProfileBatch, n: usize, out: &mut [f64]) {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let m = batch.len();
    // Tile the transpose so the lane-major scratch stays L1-resident no
    // matter how long the profiles are (TILE·LANES·8 B = 4 KiB); the
    // recurrence state carries across tiles unchanged.
    const TILE: usize = 64;
    let mut scratch = [0.0f64; TILE * LANES];
    let mut base = 0;
    while base + LANES <= m {
        let mut sum = [0.0f64; LANES];
        let mut comp = [0.0f64; LANES];
        let mut prod = [1.0f64; LANES];
        let mut start = 0;
        while start < n {
            let len = TILE.min(n - start);
            // Transpose one tile into lane-major order: scratch[i*LANES+l]
            // holds element start + i of row base + l.
            for l in 0..LANES {
                let row = batch.rhos_of(base + l);
                for (i, &rho) in row[start..start + len].iter().enumerate() {
                    scratch[i * LANES + l] = rho;
                }
            }
            for i in 0..len {
                let rhos = &scratch[i * LANES..(i + 1) * LANES];
                for l in 0..LANES {
                    let rho = rhos[l];
                    let denom = b * rho + a;
                    let term = prod[l] / denom;
                    // Inlined KahanSum::add — the branch compiles to a
                    // select, keeping the loop branch-free.
                    let t = sum[l] + term;
                    // hetero-check: allow(float-accum) — this IS the Kahan compensation update (inlined KahanSum::add)
                    comp[l] += if sum[l].abs() >= term.abs() {
                        (sum[l] - t) + term
                    } else {
                        (term - t) + sum[l]
                    };
                    sum[l] = t;
                    prod[l] *= (b * rho + td) / denom;
                }
            }
            start += len;
        }
        for l in 0..LANES {
            out[base + l] = sum[l] + comp[l];
        }
        base += LANES;
    }
    // Tail block narrower than LANES: scalar per row (same recurrence).
    for (i, slot) in out.iter_mut().enumerate().skip(base) {
        *slot = crate::xmeasure::x_measure_of_rhos(params, batch.rhos_of(i));
    }
}

/// The HECR `ρ_C` of every profile in the batch (Proposition 1), in
/// order; bit-identical to [`crate::hecr::hecr`] per profile.
///
/// Uniform batches advance the log-residual sum in lockstep (same
/// `ln_1p` factor and Neumaier compensation order as
/// [`crate::hecr::log_residual`]); ragged batches fall back to the
/// scalar closed form.
pub fn hecrs(params: &Params, batch: &ProfileBatch) -> Vec<Result<f64, ModelError>> {
    hecrs_mode(params, batch, NumericMode::Strict)
}

/// [`hecrs`] under an explicit [`NumericMode`]: `Fast` routes the
/// per-element `1/(Bρ + A)` of the log-residual through the refined
/// reciprocal (`ln_1p` and the Proposition 1 inversion are unchanged);
/// ragged rows stay on the strict scalar closed form.
pub fn hecrs_mode(
    params: &Params,
    batch: &ProfileBatch,
    mode: NumericMode,
) -> Vec<Result<f64, ModelError>> {
    if batch.is_empty() {
        return Vec::new();
    }
    XBATCH_EVAL.add(batch.len() as u64);
    match batch.uniform_len() {
        Some(n) if n > 0 => {
            let mut out = Vec::with_capacity(batch.len());
            match mode {
                NumericMode::Strict => lockstep_hecr(params, batch, n, &mut out),
                NumericMode::Fast => crate::fastnum::lockstep_hecr_fast(params, batch, n, &mut out),
            }
            out
        }
        _ => {
            XBATCH_RAGGED_FALLBACK.add(batch.len() as u64);
            (0..batch.len())
                .map(|i| crate::hecr::hecr_of_rhos(params, batch.rhos_of(i)))
                .collect()
        }
    }
}

/// Lockstep log-residual kernel closing through the shared Proposition 1
/// inversion (`hecr_from_log_residual`).
fn lockstep_hecr(
    params: &Params,
    batch: &ProfileBatch,
    n: usize,
    out: &mut Vec<Result<f64, ModelError>>,
) {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let m = batch.len();
    const TILE: usize = 64;
    let mut scratch = [0.0f64; TILE * LANES];
    let mut base = 0;
    while base + LANES <= m {
        let mut sum = [0.0f64; LANES];
        let mut comp = [0.0f64; LANES];
        let mut start = 0;
        while start < n {
            let len = TILE.min(n - start);
            for l in 0..LANES {
                let row = batch.rhos_of(base + l);
                for (i, &rho) in row[start..start + len].iter().enumerate() {
                    scratch[i * LANES + l] = rho;
                }
            }
            for i in 0..len {
                let rhos = &scratch[i * LANES..(i + 1) * LANES];
                for l in 0..LANES {
                    let term = (-(a - td) / (b * rhos[l] + a)).ln_1p();
                    let t = sum[l] + term;
                    // hetero-check: allow(float-accum) — inlined KahanSum::add compensation, as in the lanes kernel above
                    comp[l] += if sum[l].abs() >= term.abs() {
                        (sum[l] - t) + term
                    } else {
                        (term - t) + sum[l]
                    };
                    sum[l] = t;
                }
            }
            start += len;
        }
        for l in 0..LANES {
            out.push(crate::hecr::hecr_from_log_residual(
                params,
                sum[l] + comp[l],
                n,
            ));
        }
        base += LANES;
    }
    for i in base..m {
        out.push(crate::hecr::hecr_of_rhos(params, batch.rhos_of(i)));
    }
}

/// The asymptotic work rate of every profile (Theorem 2's
/// `1/(τδ + 1/X)`), in order; bit-identical to
/// [`crate::xmeasure::work_rate`] per profile.
pub fn work_rates(params: &Params, batch: &ProfileBatch) -> Vec<f64> {
    work_rates_mode(params, batch, NumericMode::Strict)
}

/// [`work_rates`] under an explicit [`NumericMode`]; the `1/(τδ + 1/X)`
/// transform stays on hardware divide in both modes (two divisions per
/// *profile* are noise next to the per-element recurrence).
pub fn work_rates_mode(params: &Params, batch: &ProfileBatch, mode: NumericMode) -> Vec<f64> {
    let td = params.tau_delta();
    let mut out = x_measures_mode(params, batch, mode);
    for x in &mut out {
        *x = 1.0 / (td + 1.0 / *x);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xmeasure::{work_rate, x_measure_of_rhos};

    fn params() -> Params {
        Params::paper_table1()
    }

    fn bits(x: f64) -> u64 {
        x.to_bits()
    }

    #[test]
    fn arena_bookkeeping_round_trips() {
        let mut b = ProfileBatch::with_capacity(3, 7);
        assert!(b.is_empty());
        assert_eq!(b.uniform_len(), None);
        b.push(&[1.0, 0.5]);
        b.push(&[1.0, 0.25]);
        b.push(&[1.0, 0.125, 0.1]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.values(), 7);
        assert_eq!(b.rhos_of(1), &[1.0, 0.25]);
        assert_eq!(b.uniform_len(), None, "last row is longer");
        b.truncate(2);
        assert_eq!(b.len(), 2);
        assert_eq!(b.uniform_len(), Some(2));
        b.clear();
        assert!(b.is_empty());
        b.push(&[1.0]);
        assert_eq!(b.uniform_len(), Some(1));
    }

    #[test]
    fn lockstep_kernel_is_bit_identical_to_scalar() {
        // A full LANES-wide block plus a scalar tail, with adversarial
        // magnitude spreads across rows.
        let p = params();
        let mut batch = ProfileBatch::new();
        let mut rows = Vec::new();
        for r in 0..(LANES + 3) {
            let n = 17;
            let row: Vec<f64> = (0..n)
                .map(|i| 1.0 / ((1 + i) as f64).powf(1.0 + r as f64 / 3.0))
                .collect();
            batch.push(&row);
            rows.push(row);
        }
        let xs = x_measures(&p, &batch);
        assert_eq!(xs.len(), rows.len());
        for (x, row) in xs.iter().zip(&rows) {
            assert_eq!(bits(*x), bits(x_measure_of_rhos(&p, row)));
        }
    }

    #[test]
    fn ragged_batches_fall_back_bit_identically() {
        let p = params();
        let mut batch = ProfileBatch::new();
        let rows = [vec![1.0], vec![1.0, 0.5, 0.25], vec![1.0, 0.125]];
        for row in &rows {
            batch.push(row);
        }
        assert_eq!(batch.uniform_len(), None);
        let xs = x_measures(&p, &batch);
        for (x, row) in xs.iter().zip(&rows) {
            assert_eq!(bits(*x), bits(x_measure_of_rhos(&p, row)));
        }
    }

    #[test]
    fn batched_hecr_matches_the_closed_form() {
        let p = params();
        let mut batch = ProfileBatch::new();
        let mut profiles = Vec::new();
        for r in 0..(LANES + 2) {
            // Uniform length, varying content: scaled harmonic families.
            let rhos: Vec<f64> = (1..=9).map(|i| 1.0 / (i as f64 + r as f64 / 7.0)).collect();
            let prof = Profile::new(rhos).expect("valid");
            batch.push_profile(&prof);
            profiles.push(prof);
        }
        for (got, prof) in hecrs(&p, &batch).iter().zip(&profiles) {
            let want = crate::hecr::hecr(&p, prof).expect("valid");
            assert_eq!(bits(*got.as_ref().expect("valid")), bits(want));
        }
    }

    #[test]
    fn batched_work_rates_match_scalar() {
        let p = params();
        let mut batch = ProfileBatch::new();
        let profs: Vec<Profile> = (2..12).map(Profile::uniform_spread).collect();
        for prof in &profs {
            batch.push_profile(prof);
        }
        for (got, prof) in work_rates(&p, &batch).iter().zip(&profs) {
            assert_eq!(bits(*got), bits(work_rate(&p, prof)));
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let p = params();
        assert!(x_measures(&p, &ProfileBatch::new()).is_empty());
        assert!(hecrs(&p, &ProfileBatch::new()).is_empty());
    }
}
