//! # hetero-core — the heterogeneity model of Rosenberg & Chiang
//!
//! This crate implements the analytical core of *"Toward Understanding
//! Heterogeneity in Computing"* (IPDPS 2010): a framework for measuring the
//! computing power of a heterogeneous cluster **solely from its
//! heterogeneity profile** — the vector of its computers' per-unit work
//! times — via the Cluster-Exploitation Problem (CEP).
//!
//! ## The model in one paragraph
//!
//! A server `C0` shares `W` units of uniform, independent work with a
//! cluster of `n` computers. Computer `C_i` completes one unit of work in
//! `ρ_i` time units (smaller is faster); the vector `P = ⟨ρ1,…,ρn⟩`, in
//! nonincreasing order and normalized so the slowest computer has
//! `ρ1 = 1`, is the cluster's [`Profile`]. Work and results travel over a
//! network carrying at most one message at a time, with transit rate `τ`,
//! packaging rate `π`, and output/input ratio `δ ≤ 1` (the [`Params`]).
//! FIFO worksharing protocols solve the CEP optimally, and the work they
//! complete in a lifespan `L` is determined by the *X-measure* of the
//! profile alone.
//!
//! ## What lives here
//!
//! * [`Params`] — the environment constants `τ, π, δ` and the paper's
//!   derived quantities `A = π + τ`, `B = 1 + (1+δ)π` (Tables 1–2).
//! * [`Profile`] — validated heterogeneity profiles and the paper's named
//!   families (Section 2.5).
//! * [`xmeasure`] — the X-measure and asymptotic work production
//!   (Theorem 2).
//! * [`hecr`] — the homogeneous-equivalent computing rate, by the
//!   Proposition 1 closed form and by an independent bisection solver.
//! * [`speedup`] — additive and multiplicative single-computer upgrades,
//!   the Theorem 3/4 decision rules, and the greedy upgrade engine that
//!   generates the paper's Figures 3–4.
//! * [`selection`] — cluster composition: optimal sub-clusters, marginal
//!   gains, and fleet sizing against the X-measure's saturation.
//! * [`xengine`] — the incremental X-measure engine: prefix/suffix
//!   decomposition of the Theorem 2 sum for O(1) single-ρ what-if
//!   evaluation, powering the optimization loops above.
//! * [`xbatch`] — structure-of-arrays batched evaluation: a lockstep
//!   kernel advancing the Theorem 2 recurrence for whole blocks of
//!   same-length profiles at once, bit-identical to the scalar path.
//! * [`fastnum`] — the certified fast numeric mode: a single-division
//!   reform and a divide-free reciprocal-Newton path for the Theorem 2
//!   recurrence, each with an analytic ulp budget certified against
//!   the exact rational oracle ([`NumericMode`] selects; strict stays
//!   the default and the golden baseline).
//! * [`xstream`] — streaming X-measure maintenance under fleet churn:
//!   segmented Neumaier scans behind a summary tree for amortized
//!   O(log n) `insert`/`delete`/`replace`, exploiting Theorem 1(2)
//!   order independence.
//! * [`hcompress`] — hierarchical HECR compression: sub-clusters
//!   collapsed to their Proposition 1 homogeneous equivalents behind a
//!   summary tree, for bounded-error X/HECR queries over million-worker
//!   fleets and the admissible bound of the branch-and-bound search.
//!
//! ## Quickstart
//!
//! ```
//! use hetero_core::{Params, Profile, xmeasure, hecr};
//!
//! let params = Params::paper_table1();
//! // The two clusters of the paper's Table 3, with n = 8:
//! let c1 = Profile::uniform_spread(8);
//! let c2 = Profile::harmonic(8);
//!
//! let x1 = xmeasure::x_measure(&params, &c1);
//! let x2 = xmeasure::x_measure(&params, &c2);
//! assert!(x2 > x1, "C2's computers are mostly faster");
//!
//! // HECR: the speed a homogeneous cluster would need to match them
//! // (smaller ρ = faster).
//! let r1 = hecr::hecr(&params, &c1).unwrap();
//! let r2 = hecr::hecr(&params, &c2).unwrap();
//! assert!(r2 < r1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod params;
mod profile;

pub mod fastnum;
pub mod hcompress;
pub mod hecr;
pub mod numeric;
pub mod selection;
pub mod speedup;
pub mod xbatch;
pub mod xengine;
pub mod xmeasure;
pub mod xstream;

pub use error::ModelError;
pub use fastnum::NumericMode;
pub use params::Params;
pub use profile::Profile;
