//! Error types for model construction.

use std::fmt;

/// Why a [`Params`](crate::Params) or [`Profile`](crate::Profile) could not
/// be built, or why a derived quantity is undefined.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// A profile must contain at least one computer.
    EmptyProfile,
    /// Every ρ-value must be finite and strictly positive.
    InvalidRho {
        /// Position of the offending value (0-based).
        index: usize,
        /// The offending value.
        value: f64,
    },
    /// Profiles index computers in nonincreasing ρ order (slowest first).
    NotSorted {
        /// First position where `ρ[index] < ρ[index + 1]`.
        index: usize,
    },
    /// A model parameter (τ, π, or δ) is out of range.
    InvalidParam {
        /// Which parameter.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A speedup argument (φ or ψ) is out of its legal open interval.
    InvalidSpeedup {
        /// Which argument.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// An index referred to a computer the profile does not have.
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The profile size.
        n: usize,
    },
    /// An exhaustive subset search was asked to enumerate more subsets
    /// than it can address.
    SubsetSearchTooLarge {
        /// The requested cluster size.
        n: usize,
        /// The largest supported cluster size.
        max: usize,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyProfile => write!(f, "profile must contain at least one computer"),
            ModelError::InvalidRho { index, value } => {
                write!(
                    f,
                    "ρ[{index}] = {value} is not finite and strictly positive"
                )
            }
            ModelError::NotSorted { index } => write!(
                f,
                "profile must be nonincreasing (slowest first); violated at index {index}"
            ),
            ModelError::InvalidParam { name, value } => {
                write!(f, "parameter {name} = {value} is out of range")
            }
            ModelError::InvalidSpeedup { name, value } => {
                write!(f, "speedup argument {name} = {value} is out of range")
            }
            ModelError::IndexOutOfRange { index, n } => {
                write!(
                    f,
                    "computer index {index} out of range for an {n}-computer cluster"
                )
            }
            ModelError::SubsetSearchTooLarge { n, max } => {
                write!(
                    f,
                    "exhaustive subset search supports at most {max} computers, got {n}"
                )
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_specific() {
        let e = ModelError::InvalidRho {
            index: 3,
            value: -0.5,
        };
        assert!(e.to_string().contains("ρ[3]"));
        let e = ModelError::IndexOutOfRange { index: 9, n: 4 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('4'));
        let e = ModelError::SubsetSearchTooLarge { n: 80, max: 63 };
        assert!(e.to_string().contains("80"));
        assert!(e.to_string().contains("63"));
    }
}
