//! The X-measure and asymptotic work production (paper Theorem 2).
//!
//! For a profile `P = ⟨ρ1,…,ρn⟩` and environment constants `A = π + τ`,
//! `B = 1 + (1+δ)π`:
//!
//! ```text
//! X(P) = Σ_{i=1}^n  1/(Bρ_i + A) · Π_{j=1}^{i-1} (Bρ_j + τδ)/(Bρ_j + A)
//! ```
//!
//! and the asymptotic work a FIFO protocol completes over a lifespan `L`
//! is `W(L; P) = L / (τδ + 1/X(P))`. Because `X` *tracks* `W` — they are
//! related by a strictly increasing transformation — `X(P)` is the paper's
//! primary measure of a cluster's computing power.
//!
//! By Theorem 1(2) the value of `X` is independent of the order in which
//! the ρ-values are listed; [`x_measure_in_order`] exposes the
//! order-explicit form used in the paper's proofs, and the equality of all
//! orderings is verified in the test suite (and exactly, in
//! `hetero-symfunc`).

use crate::numeric::KahanSum;
use crate::{NumericMode, Params, Profile};

/// `X(P)` — the paper's power measure (§2.2, Theorem 1) — evaluated in a
/// single fused pass with Neumaier-compensated summation.
///
/// The `i`-th summand multiplies the running product
/// `Π_{j<i} (Bρ_j + τδ)/(Bρ_j + A)`, whose factors are all `< 1`; naive
/// accumulation of the sum loses relative accuracy once `n` is large and
/// the terms span many magnitudes, so the compensated form is the default.
pub fn x_measure(params: &Params, profile: &Profile) -> f64 {
    x_measure_of_rhos(params, profile.rhos())
}

/// [`x_measure`] on a raw ρ-slice in the *given* order (the order-explicit
/// `X(P; Σ)` of Theorem 1's proof; by Theorem 1(2) the value is
/// order-independent).
pub fn x_measure_of_rhos(params: &Params, rhos: &[f64]) -> f64 {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let mut product = 1.0f64; // Π_{j<i} (Bρ_j + τδ)/(Bρ_j + A)
    let mut sum = KahanSum::new();
    for &rho in rhos {
        let denom = b * rho + a;
        sum.add(product / denom);
        product *= (b * rho + td) / denom;
    }
    sum.value()
}

/// [`x_measure_of_rhos`] (the Theorem 2 / §2.2 recurrence) under an
/// explicit [`NumericMode`]: `Strict` is the bit-identical reference
/// kernel above; `Fast` is the single-division reform
/// [`crate::fastnum::x_fast_1div`] — on a scalar (latency-bound)
/// evaluation the divide-free reciprocal chain is *slower* than one
/// hardware divide, so the scalar fast path is the 1-div kernel,
/// certified within [`crate::fastnum::x_budget_1div`].
pub fn x_measure_of_rhos_mode(params: &Params, rhos: &[f64], mode: NumericMode) -> f64 {
    match mode {
        NumericMode::Strict => x_measure_of_rhos(params, rhos),
        NumericMode::Fast => crate::fastnum::x_fast_1div(params, rhos),
    }
}

/// Naive (uncompensated) evaluation of `X(P)` (§2.2) — kept for the
/// accuracy and performance ablation in `hetero-bench`; prefer
/// [`x_measure`].
pub fn x_measure_naive(params: &Params, rhos: &[f64]) -> f64 {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let mut product = 1.0f64;
    let mut sum = 0.0f64;
    for &rho in rhos {
        let denom = b * rho + a;
        // hetero-check: allow(float-accum) — deliberately uncompensated: this is the naive baseline the accuracy ablation measures against
        sum += product / denom;
        product *= (b * rho + td) / denom;
    }
    sum
}

/// Closed form of `X` for a *homogeneous* cluster `⟨ρ,…,ρ⟩` (paper Eq. 2):
///
/// ```text
/// X(P^(ρ)) = (1/(A−τδ)) · (1 − ((Bρ + τδ)/(Bρ + A))^n)
/// ```
/// Under Table 1 parameters `ratio ≈ 1 − 10⁻⁵`, so the naive
/// `1 − ratio^n` cancels ~5 digits. The form below goes through the
/// log: `1 − ratio^n = −expm1(n · ln_1p((τδ − A)/(Bρ + A)))`, where
/// both `ln_1p` and `exp_m1` are accurate near zero, keeping full
/// relative precision for every `n`.
pub fn x_homogeneous(params: &Params, rho: f64, n: usize) -> f64 {
    let (a, b, td) = (params.a(), params.b(), params.tau_delta());
    let z = (td - a) / (b * rho + a); // ratio = 1 + z with |z| small
    -((n as f64) * z.ln_1p()).exp_m1() / (a - td)
}

/// The asymptotic work-completion *rate* `W(L;P)/L = 1/(τδ + 1/X(P))`
/// (Theorem 2, per unit of lifespan).
pub fn work_rate(params: &Params, profile: &Profile) -> f64 {
    1.0 / (params.tau_delta() + 1.0 / x_measure(params, profile))
}

/// The asymptotic work completed over a lifespan `L`:
/// `W(L;P) = L / (τδ + 1/X(P))` (Theorem 2).
pub fn work(params: &Params, profile: &Profile, lifespan: f64) -> f64 {
    lifespan * work_rate(params, profile)
}

/// The *work ratio* `W(L;P') / W(L;P)` used throughout §3 to compare an
/// upgraded profile `P'` against the original `P` (independent of `L`).
pub fn work_ratio(params: &Params, upgraded: &Profile, original: &Profile) -> f64 {
    work_rate(params, upgraded) / work_rate(params, original)
}

/// Upper bound `1/(A−τδ)` that `X(P)` approaches as clusters grow (§2.3):
/// at this supremum the server spends every moment feeding the network.
pub fn x_supremum(params: &Params) -> f64 {
    1.0 / (params.a() - params.tau_delta())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> Params {
        Params::paper_table1()
    }

    #[test]
    fn single_computer_x_is_reciprocal_cost() {
        // n = 1: X = 1/(Bρ + A).
        let p = Profile::new(vec![1.0]).unwrap();
        let x = x_measure(&params(), &p);
        assert!((x - 1.0 / (params().b() + params().a())).abs() < 1e-15);
    }

    #[test]
    fn x_matches_homogeneous_closed_form() {
        for n in [1usize, 2, 5, 17, 64] {
            for rho in [1.0, 0.5, 0.062_5] {
                let p = Profile::homogeneous(n, rho).unwrap();
                let general = x_measure(&params(), &p);
                let closed = x_homogeneous(&params(), rho, n);
                // The log-form closed expression keeps full relative
                // precision (no 1 − ratio^n cancellation), so the two
                // evaluations agree to near roundoff.
                assert!(
                    (general - closed).abs() / closed < 1e-13,
                    "n={n} rho={rho}: {general} vs {closed}"
                );
            }
        }
    }

    #[test]
    fn x_is_order_independent() {
        // Theorem 1(2): every startup order yields the same production.
        let p = params();
        let orders = [
            vec![1.0, 0.5, 1.0 / 3.0, 0.25],
            vec![0.25, 1.0 / 3.0, 0.5, 1.0],
            vec![0.5, 0.25, 1.0, 1.0 / 3.0],
        ];
        let base = x_measure_of_rhos(&p, &orders[0]);
        for o in &orders[1..] {
            let x = x_measure_of_rhos(&p, o);
            assert!((x - base).abs() / base < 1e-13, "{x} vs {base}");
        }
    }

    #[test]
    fn faster_cluster_has_larger_x() {
        // Proposition 2 at the X level.
        let p = params();
        let slow = Profile::new(vec![1.0, 0.5, 0.5]).unwrap();
        let fast = Profile::new(vec![1.0, 0.5, 0.4]).unwrap();
        assert!(x_measure(&p, &fast) > x_measure(&p, &slow));
    }

    #[test]
    fn x_below_supremum_and_monotone_in_n() {
        let p = params();
        let sup = x_supremum(&p);
        let mut prev = 0.0;
        for n in 1..=200 {
            let x = x_homogeneous(&p, 1.0, n);
            assert!(x > prev, "adding a computer always helps");
            assert!(x < sup);
            prev = x;
        }
    }

    #[test]
    fn work_tracks_x() {
        // X(P1) ≥ X(P2) ⇔ W(L;P1) ≥ W(L;P2) — "X tracks W".
        let p = params();
        let c1 = Profile::uniform_spread(8);
        let c2 = Profile::harmonic(8);
        let (x1, x2) = (x_measure(&p, &c1), x_measure(&p, &c2));
        let (w1, w2) = (work(&p, &c1, 1000.0), work(&p, &c2, 1000.0));
        assert_eq!(x1 < x2, w1 < w2);
        assert!(work(&p, &c1, 2000.0) > w1, "work scales with lifespan");
    }

    #[test]
    fn work_is_linear_in_lifespan() {
        let p = params();
        let c = Profile::harmonic(4);
        let w1 = work(&p, &c, 123.0);
        let w2 = work(&p, &c, 246.0);
        assert!((w2 - 2.0 * w1).abs() / w2 < 1e-14);
    }

    #[test]
    fn work_ratio_of_identity_is_one() {
        let p = params();
        let c = Profile::harmonic(5);
        assert!((work_ratio(&p, &c, &c) - 1.0).abs() < 1e-15);
    }

    #[test]
    fn compensated_and_naive_agree_at_small_n() {
        let p = params();
        let c = Profile::uniform_spread(16);
        let a = x_measure(&p, &c);
        let b = x_measure_naive(&p, c.rhos());
        assert!((a - b).abs() / a < 1e-12);
    }

    #[test]
    fn section4_example_mean_speed_misleads() {
        // §4: ⟨0.99, 0.02⟩ outperforms ⟨0.5, 0.5⟩ despite the worse mean.
        let p = params();
        let hetero = Profile::new(vec![0.99, 0.02]).unwrap();
        let homo = Profile::new(vec![0.5, 0.5]).unwrap();
        assert!(hetero.mean() > homo.mean());
        assert!(x_measure(&p, &hetero) > x_measure(&p, &homo));
    }
}
