//! Experiment E15 (extension) — **majorization explains the bad pairs**.
//!
//! Our Schur-convexity finding (see `hetero_symfunc::majorization`): on
//! equal-mean clusters, whenever two profiles are majorization-comparable
//! the more spread-out one always won in over 10⁶ random searches. This
//! experiment quantifies the consequence for §4.3:
//!
//! * on *comparable* pairs, the majorization predictor — equivalently
//!   variance, which agrees with it there — is essentially perfect;
//! * every "bad pair" (larger variance, less power) is incomparable;
//! * variance's overall error rate is just the incomparable fraction
//!   times its error rate there.

use hetero_clustergen::{rng_from_seed, EqualMeanPairGen, GenConfig, Shape};
use hetero_core::xmeasure::x_measure;
use hetero_core::Params;
use hetero_par::{seed, Executor};
use hetero_symfunc::majorization::majorizes;
use rand::Rng;

use crate::render::{fmt_f, Table};

/// Per-trial classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairKind {
    /// Pair was majorization-comparable and the spread-out side won.
    ComparableCorrect,
    /// Comparable but the spread-out side lost (a Schur-convexity
    /// violation — never observed).
    ComparableViolation,
    /// Incomparable; the variance predictor was right anyway.
    IncomparableCorrect,
    /// Incomparable and variance was wrong — the §4.3 "bad pairs".
    IncomparableWrong,
    /// Undecidable (ties).
    Tie,
}

/// Aggregates for one cluster size.
#[derive(Debug, Clone, PartialEq)]
pub struct MajorizationRow {
    /// Cluster size.
    pub n: usize,
    /// Counts: (comparable-correct, comparable-violation,
    /// incomparable-correct, incomparable-wrong, ties).
    pub counts: (usize, usize, usize, usize, usize),
}

impl MajorizationRow {
    /// Fraction of decided pairs that were majorization-comparable.
    pub fn comparable_fraction(&self) -> f64 {
        let (cc, cv, ic, iw, _) = self.counts;
        let decided = cc + cv + ic + iw;
        if decided == 0 {
            0.0
        } else {
            (cc + cv) as f64 / decided as f64
        }
    }

    /// Variance-predictor accuracy on the incomparable pairs.
    pub fn incomparable_accuracy(&self) -> f64 {
        let (_, _, ic, iw, _) = self.counts;
        if ic + iw == 0 {
            1.0
        } else {
            ic as f64 / (ic + iw) as f64
        }
    }
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct MajorizationConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster sizes.
    pub sizes: Vec<usize>,
    /// Trials per size.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for MajorizationConfig {
    fn default() -> Self {
        MajorizationConfig {
            params: Params::paper_table1(),
            sizes: vec![4, 8, 16, 64, 256],
            trials: 2000,
            seed: 0x5EED,
            threads: hetero_par::default_threads(),
        }
    }
}

/// Results.
#[derive(Debug, Clone)]
pub struct MajorizationExperiment {
    /// Configuration used.
    pub config: MajorizationConfig,
    /// One row per size.
    pub rows: Vec<MajorizationRow>,
}

/// One trial.
pub fn one_trial(params: &Params, n: usize, trial_seed: u64) -> PairKind {
    let mut rng = rng_from_seed(trial_seed);
    const SHAPES: [Shape; 3] = [Shape::Uniform, Shape::Bimodal, Shape::Concentrated];
    let s1 = SHAPES[rng.random_range(0..SHAPES.len())];
    let s2 = SHAPES[rng.random_range(0..SHAPES.len())];
    let gen = EqualMeanPairGen::new(GenConfig::new(n), s1, s2);
    let Some(pair) = gen.sample(&mut rng) else {
        return PairKind::Tie;
    };
    let gap = pair.var1 - pair.var2;
    if gap.abs() < 1e-12 {
        return PairKind::Tie;
    }
    let x1 = x_measure(params, &pair.p1);
    let x2 = x_measure(params, &pair.p2);
    if (x1 - x2).abs() / x1.max(x2) < 1e-13 {
        return PairKind::Tie;
    }
    let variance_right = (gap > 0.0) == (x1 > x2);
    let m12 = majorizes(pair.p1.rhos(), pair.p2.rhos());
    let m21 = majorizes(pair.p2.rhos(), pair.p1.rhos());
    if m12 ^ m21 {
        // Comparable: the majorizing side is the spread-out side, which
        // for equal means is also the larger-variance side, so
        // "majorization correct" coincides with "variance correct" here.
        if variance_right {
            PairKind::ComparableCorrect
        } else {
            PairKind::ComparableViolation
        }
    } else if variance_right {
        PairKind::IncomparableCorrect
    } else {
        PairKind::IncomparableWrong
    }
}

/// Runs the sweep.
pub fn run(config: &MajorizationConfig) -> MajorizationExperiment {
    let exec = Executor::new(config.threads);
    let trial_ids: Vec<u64> = (0..config.trials as u64).collect();
    let rows = config
        .sizes
        .iter()
        .map(|&n| {
            let size_seed = seed::derive(config.seed, n as u64);
            let kinds = exec.map(&trial_ids, |_, &t| {
                one_trial(&config.params, n, seed::derive(size_seed, t))
            });
            let count = |k: PairKind| kinds.iter().filter(|x| **x == k).count();
            MajorizationRow {
                n,
                counts: (
                    count(PairKind::ComparableCorrect),
                    count(PairKind::ComparableViolation),
                    count(PairKind::IncomparableCorrect),
                    count(PairKind::IncomparableWrong),
                    count(PairKind::Tie),
                ),
            }
        })
        .collect();
    MajorizationExperiment {
        config: config.clone(),
        rows,
    }
}

impl MajorizationExperiment {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension — majorization vs the §4.3 bad pairs",
            &[
                "n",
                "comparable %",
                "schur violations",
                "incomp. accuracy %",
                "bad pairs",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                fmt_f(100.0 * r.comparable_fraction(), 1),
                r.counts.1.to_string(),
                fmt_f(100.0 * r.incomparable_accuracy(), 1),
                r.counts.3.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MajorizationConfig {
        MajorizationConfig {
            sizes: vec![4, 16, 64],
            trials: 500,
            seed: 77,
            threads: 4,
            ..MajorizationConfig::default()
        }
    }

    #[test]
    fn no_schur_convexity_violations() {
        // The headline: comparable pairs never mispredict.
        let e = run(&quick());
        for r in &e.rows {
            assert_eq!(r.counts.1, 0, "n = {}", r.n);
        }
    }

    #[test]
    fn bad_pairs_are_all_incomparable() {
        // Follows from the zero-violation count, stated explicitly: every
        // variance error lives in the incomparable bucket.
        let e = run(&quick());
        let total_bad: usize = e.rows.iter().map(|r| r.counts.3).sum();
        assert!(total_bad > 0, "the experiment must exercise bad pairs");
        for r in &e.rows {
            assert_eq!(
                r.counts.1, 0,
                "a comparable bad pair would be a Schur violation"
            );
        }
    }

    #[test]
    fn comparability_shrinks_with_n() {
        // Random equal-mean pairs become incomparable as n grows (more
        // prefix constraints to satisfy).
        let e = run(&quick());
        assert!(
            e.rows.first().unwrap().comparable_fraction()
                > e.rows.last().unwrap().comparable_fraction()
        );
    }

    #[test]
    fn deterministic_across_threads() {
        let mut cfg = quick();
        cfg.trials = 200;
        cfg.threads = 1;
        let a = run(&cfg);
        cfg.threads = 8;
        let b = run(&cfg);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn render_reports_violations_column() {
        let s = run(&quick()).table().to_ascii();
        assert!(s.contains("schur violations"));
    }
}
