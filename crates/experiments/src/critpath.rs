//! Experiment E21 — **causal critical paths under faults**.
//!
//! E18 compared oblivious FIFO against adaptive replanning by *outcome*
//! (throughput fraction, deadline-miss rate). This experiment explains
//! those outcomes *structurally*: every executor now records a causal
//! parent per span (PR 8), so each run yields a span forest whose
//! heaviest result-delivering chain — extracted by
//! [`hetero_obs::causal::critical_path_where`] — is the schedule's
//! binding constraint.
//!
//! For one representative seeded trial per E18 grid cell we extract that
//! chain for both arms and report its weight, slack (causal gaps), end
//! time, and compute share. The paper's Theorem 1 story reads off the
//! table directly:
//!
//! * on a straggler-hit oblivious run the chain's **end** overshoots the
//!   lifespan — the late chain *is* the miss;
//! * the adaptive arm re-sizes the suffix, so its chain ends inside the
//!   (hedged) lifespan, trading a little weight for timeliness;
//! * **slack ≈ 0** on every chain: children are event-scheduled at their
//!   parents' completion, so the binding chain is temporally contiguous
//!   — the mechanism behind the Theorem 1 lifespan bound.

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_core::Params;
use hetero_faults::{FaultConfig, FaultPlan};
use hetero_obs::causal;
use hetero_par::seed;
use hetero_protocol::{alloc, fault_exec, replan};
use hetero_sim::Trace;

use crate::render::{fmt_f, Table};

/// Critical-path summary of one executed arm.
#[derive(Debug, Clone, PartialEq)]
pub struct ArmPath {
    /// Chain weight: sum of span durations along the chain.
    pub weight: f64,
    /// `end − start − weight`: total causal gap along the chain.
    pub slack: f64,
    /// End time of the chain's leaf span.
    pub end: f64,
    /// Number of spans on the chain.
    pub spans: usize,
    /// Fraction of the chain's weight spent in worker `compute` phases
    /// (the rest is packaging, transmission, waits, and server unpacks).
    pub compute_share: f64,
    /// Whether the arm delivered its last result after the lifespan.
    pub missed: bool,
}

/// One grid cell: both arms' binding chains on the same perturbed run.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPathRow {
    /// Per-worker crash probability.
    pub crash_p: f64,
    /// Chronic-straggler slowdown factor.
    pub straggler_factor: f64,
    /// Hedge margin the adaptive arm plans with.
    pub margin: f64,
    /// Oblivious FIFO executor's chain.
    pub oblivious: ArmPath,
    /// Adaptive replanner's chain.
    pub adaptive: ArmPath,
    /// Suffix re-optimizations the adaptive arm performed.
    pub replans: u32,
}

/// Configuration: the E18 fault grid, one seeded trial per cell.
#[derive(Debug, Clone)]
pub struct CritPathConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster size.
    pub n: usize,
    /// Lifespan both arms plan against.
    pub lifespan: f64,
    /// Per-worker crash probabilities to sweep.
    pub crash_ps: Vec<f64>,
    /// Chronic-straggler severities to sweep.
    pub straggler_factors: Vec<f64>,
    /// Hedge margins to sweep for the adaptive arm.
    pub margins: Vec<f64>,
    /// Root seed (same derivation chain as E18's first trial).
    pub seed: u64,
}

impl Default for CritPathConfig {
    fn default() -> Self {
        CritPathConfig {
            params: Params::paper_table1(),
            n: 8,
            lifespan: 600.0,
            crash_ps: vec![0.0, 0.1, 0.3],
            straggler_factors: vec![1.5, 4.0],
            margins: vec![0.0, 0.1],
            seed: 0xFA17,
        }
    }
}

/// Results.
#[derive(Debug, Clone, PartialEq)]
pub struct CritPaths {
    /// Cluster size the sweep ran at.
    pub n: usize,
    /// Lifespan the arms planned against.
    pub lifespan: f64,
    /// One row per cell, in `crash_ps × straggler_factors × margins`
    /// order.
    pub rows: Vec<CritPathRow>,
}

/// Extracts the heaviest *result-delivering* chain (leaf is a server
/// `recv` span) and summarizes it; falls back to the global critical
/// path when every result was destroyed.
fn arm_path(trace: &Trace, missed: bool) -> ArmPath {
    let path = causal::critical_path_where(trace, |i| trace.spans()[i].label.starts_with("recv"))
        .or_else(|| causal::critical_path(trace));
    let Some(p) = path else {
        return ArmPath {
            weight: 0.0,
            slack: 0.0,
            end: 0.0,
            spans: 0,
            compute_share: 0.0,
            missed,
        };
    };
    let spans = trace.spans();
    let compute: f64 = p
        .span_ids
        .iter()
        .filter(|&&id| spans[id].label.starts_with("compute"))
        .map(|&id| spans[id].duration())
        .sum(); // hetero-check: allow(float-accum) — a chain holds O(n) spans and the share is reported to 3 digits
    ArmPath {
        weight: p.weight,
        slack: p.slack,
        end: p.end,
        spans: p.span_ids.len(),
        compute_share: if p.weight > 0.0 {
            compute / p.weight
        } else {
            0.0
        },
        missed,
    }
}

/// Runs the sweep: one representative trial per cell, both arms on the
/// identical perturbed run (same truth profile, same fault plan).
pub fn run(config: &CritPathConfig) -> CritPaths {
    let cells = config.crash_ps.len() * config.straggler_factors.len() * config.margins.len();
    hetero_obs::count("trials.critpath", cells as u64);
    let mut rows = Vec::with_capacity(cells);
    let mut cell = 0u64;
    for &crash_p in &config.crash_ps {
        for &factor in &config.straggler_factors {
            for &margin in &config.margins {
                cell += 1;
                // Same seed chain as E18's trial 0 of this cell, so the
                // chains explain runs the fault sweep actually measures.
                let trial_seed = seed::derive(seed::derive(config.seed, cell), 0);
                let mut rng = rng_from_seed(seed::derive(trial_seed, 1));
                let truth = hetero_clustergen::random_profile(
                    &mut rng,
                    GenConfig::new(config.n),
                    Shape::Uniform,
                );
                let faults = FaultPlan::sample(
                    &FaultConfig {
                        crash_p,
                        straggler_count: 1,
                        straggler_factor: factor,
                        ..FaultConfig::default()
                    },
                    config.n,
                    config.lifespan,
                    seed::derive(trial_seed, 2),
                )
                .expect("valid fault config");
                let plan =
                    alloc::fifo_plan(&config.params, &truth, config.lifespan).expect("feasible");
                let obl = fault_exec::execute_with_faults(&config.params, &truth, &plan, &faults)
                    .expect("runs");
                let ada = replan::execute_adaptive(
                    &config.params,
                    &truth,
                    &plan,
                    &faults,
                    &replan::HedgePolicy {
                        margin,
                        ..replan::HedgePolicy::default()
                    },
                )
                .expect("runs");
                rows.push(CritPathRow {
                    crash_p,
                    straggler_factor: factor,
                    margin,
                    oblivious: arm_path(&obl.trace, obl.missed_deadline(config.lifespan)),
                    adaptive: arm_path(&ada.trace, ada.missed_deadline(config.lifespan)),
                    replans: ada.replans,
                });
            }
        }
    }
    CritPaths {
        n: config.n,
        lifespan: config.lifespan,
        rows,
    }
}

/// The default paper-grid sweep.
pub fn run_paper() -> CritPaths {
    run(&CritPathConfig::default())
}

/// A small CI-sized sweep.
pub fn run_smoke() -> CritPaths {
    run(&CritPathConfig {
        n: 6,
        crash_ps: vec![0.0, 0.2],
        straggler_factors: vec![3.0],
        margins: vec![0.0, 0.1],
        ..CritPathConfig::default()
    })
}

impl CritPaths {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Causal critical paths — oblivious FIFO vs adaptive replanning (n = {}, L = {})",
                self.n, self.lifespan
            ),
            &[
                "crash p",
                "straggle ×",
                "margin",
                "obliv W",
                "obliv slack",
                "obliv end",
                "obliv miss",
                "adapt W",
                "adapt slack",
                "adapt end",
                "adapt miss",
                "replans",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_f(r.crash_p, 2),
                fmt_f(r.straggler_factor, 1),
                fmt_f(r.margin, 2),
                fmt_f(r.oblivious.weight, 1),
                fmt_f(r.oblivious.slack, 3),
                fmt_f(r.oblivious.end, 1),
                if r.oblivious.missed { "yes" } else { "no" }.to_string(),
                fmt_f(r.adaptive.weight, 1),
                fmt_f(r.adaptive.slack, 3),
                fmt_f(r.adaptive.end, 1),
                if r.adaptive.missed { "yes" } else { "no" }.to_string(),
                r.replans.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        assert_eq!(run_smoke(), run_smoke());
    }

    #[test]
    fn every_chain_is_causally_consistent() {
        // Children are event-scheduled at their parents' completion, so a
        // chain can never be heavier than its wall-clock extent.
        for r in run_smoke().rows {
            for arm in [&r.oblivious, &r.adaptive] {
                assert!(arm.spans > 0, "an arm must deliver at least one chain");
                assert!(
                    arm.slack >= -1e-9,
                    "negative slack {} — chain weight exceeds its extent",
                    arm.slack
                );
                assert!(arm.compute_share > 0.0 && arm.compute_share <= 1.0);
            }
        }
    }

    #[test]
    fn late_chains_explain_the_misses() {
        // Crash-free cells: the planted chronic straggler makes the
        // oblivious binding chain end past the lifespan (the miss, seen
        // causally), while the replanner's chain finishes in time.
        let e = run_smoke();
        for r in e.rows.iter().filter(|r| r.crash_p == 0.0) {
            assert!(r.oblivious.missed, "straggler must sink the oblivious arm");
            assert!(
                r.oblivious.end > e.lifespan * (1.0 + 1e-9),
                "a missed deadline must show as a late chain end ({} ≤ {})",
                r.oblivious.end,
                e.lifespan
            );
            assert!(!r.adaptive.missed, "replanner detects the straggler");
            assert!(r.replans >= 1, "crash-free straggler cells must replan");
        }
    }

    #[test]
    fn chains_are_near_contiguous_on_the_binding_path() {
        // The Theorem 1 mechanism: the binding chain has no idle gaps
        // beyond event-scheduling rounding and channel waits.
        for r in run_smoke().rows {
            assert!(
                r.oblivious.slack <= r.oblivious.weight * 0.5,
                "slack {} should stay well below weight {}",
                r.oblivious.slack,
                r.oblivious.weight
            );
        }
    }
}
