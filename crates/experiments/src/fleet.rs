//! Experiment E19 (extension) — **fleet sizing**: how many computers are
//! actually worth renting?
//!
//! The `k` fastest computers are always the optimal `k`-subset
//! (Proposition 2 via minorization; verified exhaustively in
//! `hetero_core::selection`). The interesting quantity is the marginal
//! value curve: the X-measure saturates at `1/(A−τδ)`, so late additions
//! to a big fleet buy almost nothing. The table reports, for each §2.5
//! family, the fleet fractions needed for 50/90/99 % of full power.

use hetero_core::{selection, Params, Profile};

use crate::render::{fmt_f, Table};

/// One cluster's sizing summary.
#[derive(Debug, Clone)]
pub struct FleetRow {
    /// Display name.
    pub name: String,
    /// Cluster size.
    pub n: usize,
    /// Smallest k reaching 50 / 90 / 99 % of full power.
    pub k50: usize,
    /// See `k50`.
    pub k90: usize,
    /// See `k50`.
    pub k99: usize,
    /// Saturation of the full cluster (fraction of the server limit).
    pub saturation: f64,
}

/// The experiment results.
#[derive(Debug, Clone)]
pub struct Fleet {
    /// One row per cluster.
    pub rows: Vec<FleetRow>,
}

/// Runs the sizing study on a battery of named profiles.
pub fn run(params: &Params, battery: Vec<(String, Profile)>) -> Fleet {
    let rows = battery
        .into_iter()
        .map(|(name, profile)| FleetRow {
            name,
            n: profile.n(),
            k50: selection::smallest_fleet_for(params, &profile, 0.50).expect("valid"),
            k90: selection::smallest_fleet_for(params, &profile, 0.90).expect("valid"),
            k99: selection::smallest_fleet_for(params, &profile, 0.99).expect("valid"),
            saturation: selection::saturation(params, &profile),
        })
        .collect();
    Fleet { rows }
}

/// Default battery: §2.5 families at a few sizes plus a homogeneous
/// control, under Table 1 parameters.
pub fn run_paper() -> Fleet {
    let battery = vec![
        ("harmonic n=32".to_string(), Profile::harmonic(32)),
        ("harmonic n=1024".to_string(), Profile::harmonic(1024)),
        (
            "uniform spread n=32".to_string(),
            Profile::uniform_spread(32),
        ),
        (
            "uniform spread n=1024".to_string(),
            Profile::uniform_spread(1024),
        ),
        (
            "homogeneous n=32".to_string(),
            Profile::homogeneous(32, 1.0).expect("valid"),
        ),
    ];
    run(&Params::paper_table1(), battery)
}

impl Fleet {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Fleet sizing — smallest k-fastest sub-cluster reaching a power target",
            &["cluster", "n", "k @50%", "k @90%", "k @99%", "saturation %"],
        );
        for r in &self.rows {
            t.row(vec![
                r.name.clone(),
                r.n.to_string(),
                r.k50.to_string(),
                r.k90.to_string(),
                r.k99.to_string(),
                fmt_f(100.0 * r.saturation, 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thresholds_are_ordered() {
        for r in run_paper().rows {
            assert!(r.k50 <= r.k90 && r.k90 <= r.k99, "{}", r.name);
            assert!(r.k99 <= r.n);
        }
    }

    #[test]
    fn harmonic_fleets_concentrate_power_in_few_computers() {
        // In a harmonic fleet the fast minority carries the load: half
        // the power comes from a small fraction of the fleet.
        let f = run_paper();
        let h1024 = f.rows.iter().find(|r| r.name == "harmonic n=1024").unwrap();
        assert!(
            h1024.k50 < h1024.n / 4,
            "50 % of power from under a quarter of the fleet (k50 = {})",
            h1024.k50
        );
    }

    #[test]
    fn homogeneous_fleets_need_proportional_counts() {
        // With identical computers, reaching x % of power needs ~x % of
        // the fleet (X is near-linear in n far from saturation).
        let f = run_paper();
        let h = f
            .rows
            .iter()
            .find(|r| r.name == "homogeneous n=32")
            .unwrap();
        assert!((h.k50 as f64 - 16.0).abs() <= 1.0);
        assert!(h.k99 >= 31);
    }

    #[test]
    fn render_contains_every_cluster() {
        let s = run_paper().table().to_ascii();
        assert!(s.contains("harmonic n=1024"));
        assert!(s.contains("k @99%"));
    }
}
