//! Experiment E12 (extension) — scoring statistical-moment predictors,
//! following the companion paper's direction (Chiang, Maciejewski,
//! Rosenberg & Siegel, "Statistical predictors of computing power in
//! heterogeneous clusters").
//!
//! On random equal-mean pairs we score three predictors of the more
//! powerful cluster: variance (Theorem 5's candidate), skewness, and the
//! *combined* rule "variance, then skewness on near-ties". The paper's
//! finding — variance is strong but imperfect — extends: skewness alone is
//! weaker, but breaks a useful fraction of variance's near-ties.

use std::cmp::Ordering;

use hetero_clustergen::{rng_from_seed, EqualMeanPairGen, GenConfig, Shape};
use hetero_core::xmeasure::x_measure;
use hetero_core::Params;
use hetero_par::{seed, Executor};
use hetero_symfunc::{indices, predictors};
use rand::Rng;

use crate::render::{fmt_f, Table};

/// Which predictors got one trial right.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrialScore {
    /// Trial was decided (X-values distinguishable).
    pub decided: bool,
    /// Variance predictor correct.
    pub variance: bool,
    /// Skewness predictor correct.
    pub skewness: bool,
    /// Variance-then-skewness combination correct.
    pub combined: bool,
    /// Gini-index predictor correct (more unequal ⇒ more powerful).
    pub gini: bool,
    /// Entropy-deficit predictor correct.
    pub entropy: bool,
}

/// Aggregate scores for one cluster size.
#[derive(Debug, Clone, PartialEq)]
pub struct MomentRow {
    /// Cluster size.
    pub n: usize,
    /// Decided trials.
    pub decided: usize,
    /// Correct counts (variance, skewness, combined, gini, entropy).
    pub correct: (usize, usize, usize, usize, usize),
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct MomentsConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster sizes.
    pub sizes: Vec<usize>,
    /// Trials per size.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for MomentsConfig {
    fn default() -> Self {
        MomentsConfig {
            params: Params::paper_table1(),
            sizes: vec![8, 32, 128, 512],
            trials: 2000,
            seed: 0xA11CE,
            threads: hetero_par::default_threads(),
        }
    }
}

/// Results.
#[derive(Debug, Clone)]
pub struct MomentsExperiment {
    /// Configuration used.
    pub config: MomentsConfig,
    /// One row per size.
    pub rows: Vec<MomentRow>,
}

/// Variance gap below which the combined predictor defers to skewness.
const NEAR_TIE: f64 = 1e-3;

/// Runs one trial.
pub fn one_trial(params: &Params, n: usize, trial_seed: u64) -> TrialScore {
    let mut rng = rng_from_seed(trial_seed);
    // Same diverse-shape pair family as the E6 default (variance module).
    const SHAPES: [Shape; 3] = [Shape::Uniform, Shape::Bimodal, Shape::Concentrated];
    let s1 = SHAPES[rng.random_range(0..SHAPES.len())];
    let s2 = SHAPES[rng.random_range(0..SHAPES.len())];
    let gen = EqualMeanPairGen::new(GenConfig::new(n), s1, s2);
    let Some(pair) = gen.sample(&mut rng) else {
        return TrialScore::default();
    };
    let x1 = x_measure(params, &pair.p1);
    let x2 = x_measure(params, &pair.p2);
    if (x1 - x2).abs() / x1.max(x2) < 1e-13 {
        return TrialScore::default();
    }
    let truth = if x1 > x2 {
        Ordering::Greater
    } else {
        Ordering::Less
    };

    let var_pred = predictors::predict_by_variance(pair.p1.rhos(), pair.p2.rhos());
    let skew_pred = predictors::predict_by_skewness(pair.p1.rhos(), pair.p2.rhos());
    let combined_pred = if pair.variance_gap() < NEAR_TIE && skew_pred != Ordering::Equal {
        skew_pred
    } else {
        var_pred
    };
    // Scalar heterogeneity indices as predictors: the more heterogeneous
    // cluster is predicted more powerful (the Corollary 1 intuition).
    let by_index =
        |f: fn(&[f64]) -> f64| -> Ordering { f(pair.p1.rhos()).total_cmp(&f(pair.p2.rhos())) };
    TrialScore {
        decided: true,
        variance: var_pred == truth,
        skewness: skew_pred == truth,
        combined: combined_pred == truth,
        gini: by_index(indices::gini) == truth,
        entropy: by_index(indices::shannon_entropy_deficit) == truth,
    }
}

/// Runs the sweep.
pub fn run(config: &MomentsConfig) -> MomentsExperiment {
    let exec = Executor::new(config.threads);
    let trial_ids: Vec<u64> = (0..config.trials as u64).collect();
    hetero_obs::count(
        "trials.moments",
        (config.trials * config.sizes.len()) as u64,
    );
    let rows = config
        .sizes
        .iter()
        .map(|&n| {
            let size_seed = seed::derive(config.seed, n as u64);
            let scores = exec.map(&trial_ids, |_, &t| {
                one_trial(&config.params, n, seed::derive(size_seed, t))
            });
            let decided = scores.iter().filter(|s| s.decided).count();
            let correct = (
                scores.iter().filter(|s| s.decided && s.variance).count(),
                scores.iter().filter(|s| s.decided && s.skewness).count(),
                scores.iter().filter(|s| s.decided && s.combined).count(),
                scores.iter().filter(|s| s.decided && s.gini).count(),
                scores.iter().filter(|s| s.decided && s.entropy).count(),
            );
            MomentRow {
                n,
                decided,
                correct,
            }
        })
        .collect();
    MomentsExperiment {
        config: config.clone(),
        rows,
    }
}

impl MomentsExperiment {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Extension — moment predictors on equal-mean pairs (accuracy %)",
            &[
                "n", "decided", "variance", "skewness", "var+skew", "gini", "entropy",
            ],
        );
        for r in &self.rows {
            let pct = |c: usize| fmt_f(100.0 * c as f64 / r.decided.max(1) as f64, 1);
            t.row(vec![
                r.n.to_string(),
                r.decided.to_string(),
                pct(r.correct.0),
                pct(r.correct.1),
                pct(r.correct.2),
                pct(r.correct.3),
                pct(r.correct.4),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> MomentsConfig {
        MomentsConfig {
            sizes: vec![8, 64],
            trials: 400,
            seed: 5,
            threads: 2,
            ..MomentsConfig::default()
        }
    }

    #[test]
    fn variance_beats_skewness_alone() {
        let e = run(&quick());
        for r in &e.rows {
            assert!(
                r.correct.0 > r.correct.1,
                "n = {}: variance {} vs skewness {}",
                r.n,
                r.correct.0,
                r.correct.1
            );
        }
    }

    #[test]
    fn variance_is_well_above_chance() {
        let e = run(&quick());
        for r in &e.rows {
            let acc = r.correct.0 as f64 / r.decided as f64;
            assert!(acc > 0.6, "n = {n}: {acc}", n = r.n);
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let mut cfg = quick();
        cfg.threads = 1;
        let a = run(&cfg);
        cfg.threads = 8;
        let b = run(&cfg);
        assert_eq!(a.rows, b.rows);
    }

    #[test]
    fn render_includes_all_predictors() {
        let s = run(&quick()).table().to_ascii();
        assert!(s.contains("variance") && s.contains("skewness") && s.contains("var+skew"));
    }
}
