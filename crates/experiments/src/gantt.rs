//! Experiment E11 — the paper's **Figures 1–2** as ASCII action/time
//! diagrams rendered from actual executions.

use hetero_core::{Params, Profile};
use hetero_protocol::timeline::{fig1_stages, gantt_rows};
use hetero_protocol::{alloc, exec};
use std::fmt::Write as _;

/// Renders Figure 1: the seven-stage pipeline for one remote computer.
pub fn render_fig1(params: &Params, rho: f64, w: f64) -> String {
    let stages = fig1_stages(params, rho, w);
    let total: f64 = stages.iter().map(|s| s.duration).sum();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 1 — worksharing with one remote computer (ρ = {rho}, w = {w}):"
    );
    for s in &stages {
        let _ = writeln!(
            out,
            "  {label:<28} {dur:>14.6}  ({pct:>5.2}%)",
            label = s.label,
            dur = s.duration,
            pct = 100.0 * s.duration / total
        );
    }
    let _ = writeln!(out, "  {:<28} {total:>14.6}", "total");
    out
}

/// Renders Figure 2: the FIFO action/time diagram for an executed plan.
/// Each row shows the entity's activities proportionally on a shared time
/// axis of `width` characters.
pub fn render_fig2(params: &Params, profile: &Profile, lifespan: f64, width: usize) -> String {
    let plan = alloc::fifo_plan(params, profile, lifespan).expect("valid plan");
    let run = exec::execute(params, profile, &plan);
    let makespan = run.makespan().get();
    let rows = gantt_rows(&run, profile.n());

    let mut out = String::new();
    let _ = writeln!(
        out,
        "Figure 2 — FIFO worksharing with {} remote computers (L = {lifespan}):",
        profile.n()
    );
    for row in rows {
        let mut line = vec![b'.'; width];
        for span in &row.spans {
            let a = ((span.start.get() / makespan) * width as f64) as usize;
            let b = (((span.end.get() / makespan) * width as f64).ceil() as usize).min(width);
            let ch = match span.label.as_str() {
                l if l.starts_with("pack") => b'P',
                l if l.starts_with("xmit:work") => b'w',
                l if l.starts_with("xmit:result") => b'r',
                "unpack" => b'u',
                "compute" => b'C',
                "pack" => b'p',
                l if l.starts_with("recv") => b'R',
                _ => b'?',
            };
            for c in line.iter_mut().take(b).skip(a.min(width)) {
                *c = ch;
            }
        }
        let _ = writeln!(
            out,
            "  {name:>4} |{}|",
            String::from_utf8(line).expect("ascii"),
            name = row.name
        );
    }
    out.push_str(
        "  key: P pack  w work-xmit  u unpack  C compute  p pack-results  r result-xmit  R recv\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_lists_seven_stages_and_total() {
        let s = render_fig1(&Params::paper_table1(), 0.5, 100.0);
        assert_eq!(s.matches('%').count(), 7);
        assert!(s.contains("total"));
        assert!(s.contains("computes"));
    }

    #[test]
    fn fig2_has_one_row_per_entity() {
        let p = Params::paper_table1();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let s = render_fig2(&p, &profile, 100.0, 72);
        // C0, C1, C2, C3, net + header + key.
        let rows: Vec<&str> = s.lines().filter(|l| l.contains('|')).collect();
        assert_eq!(rows.len(), 5);
        assert!(s.contains("C0"));
        assert!(s.contains("net"));
        // Compute dominates the workers' rows for coarse tasks.
        assert!(rows[1].contains('C'));
    }

    #[test]
    fn fig2_workers_start_staggered() {
        // FIFO: C1 computes before C2 before C3 — visible as the first
        // non-dot column shifting right for later workers... at µs-scale
        // comm the stagger is subpixel, so verify via the trace instead.
        let p = Params::paper_table1();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let plan = alloc::fifo_plan(&p, &profile, 100.0).unwrap();
        let run = exec::execute(&p, &profile, &plan);
        let start_of = |entity: usize| {
            run.trace
                .entity_spans(entity)
                .map(|s| s.start)
                .min()
                .unwrap()
        };
        assert!(start_of(1) < start_of(2));
        assert!(start_of(2) < start_of(3));
    }
}
