//! Experiment E9b — **FIFO vs LIFO vs naive allocations**, quantifying
//! Theorem 1's optimality claim across cluster shapes.
//!
//! For each battery profile the table reports completed work per lifespan
//! under: the optimal FIFO protocol, the LIFO protocol (results returned
//! in reverse service order, solved through the general Σ/Φ system), the
//! equal-split heuristic, and the speed-proportional heuristic — each the
//! best schedule of its class for the same lifespan.

use hetero_core::{Params, Profile};
use hetero_protocol::{alloc, baseline, general};

use crate::render::{fmt_f, Table};

/// One profile's comparison.
#[derive(Debug, Clone)]
pub struct FifoLifoRow {
    /// Display name.
    pub name: String,
    /// The profile.
    pub profile: Profile,
    /// Work totals: (FIFO, LIFO, equal split, speed proportional).
    /// LIFO is `None` when the order pair is infeasible.
    pub work: (f64, Option<f64>, f64, f64),
}

/// The experiment results.
#[derive(Debug, Clone)]
pub struct FifoLifo {
    /// Lifespan used.
    pub lifespan: f64,
    /// One row per profile.
    pub rows: Vec<FifoLifoRow>,
}

/// Runs the comparison on a battery of named profiles.
pub fn run(params: &Params, lifespan: f64) -> FifoLifo {
    let battery: Vec<(String, Profile)> = vec![
        (
            "2× steps ⟨1,1/2,1/4,1/8⟩".into(),
            Profile::new(vec![1.0, 0.5, 0.25, 0.125]).expect("valid"),
        ),
        ("harmonic n=6".into(), Profile::harmonic(6)),
        ("uniform spread n=6".into(), Profile::uniform_spread(6)),
        (
            "homogeneous n=4".into(),
            Profile::homogeneous(4, 1.0).expect("valid"),
        ),
        (
            "one fast outlier ⟨1,1,1,0.05⟩".into(),
            Profile::new(vec![1.0, 1.0, 1.0, 0.05]).expect("valid"),
        ),
    ];
    let rows = battery
        .into_iter()
        .map(|(name, profile)| {
            let fifo = alloc::fifo_plan(params, &profile, lifespan)
                .expect("battery profiles are feasible")
                .total_work();
            let lifo = general::lifo_plan(params, &profile, lifespan)
                .ok()
                .map(|p| p.total_work());
            let equal = baseline::equal_split_plan(params, &profile, lifespan)
                .expect("valid")
                .total_work();
            let prop = baseline::speed_proportional_plan(params, &profile, lifespan)
                .expect("valid")
                .total_work();
            FifoLifoRow {
                name,
                profile,
                work: (fifo, lifo, equal, prop),
            }
        })
        .collect();
    FifoLifo { lifespan, rows }
}

/// The default configuration: a communication-visible parameter set
/// (τ = 0.05, π = 0.005, δ = 1 in task-time units — 20× the compute-bound
/// Table 1 corner, still comfortably feasible) over a one-hour lifespan.
/// Under Table 1's µs-scale rates LIFO ties FIFO to four decimals; this
/// regime makes the ordering cost visible (LIFO loses 4–11 %).
pub fn run_paper() -> FifoLifo {
    run(&Params::new(0.05, 0.005, 1.0).expect("valid"), 3600.0)
}

impl FifoLifo {
    /// ASCII rendering, with every column normalized to FIFO = 100.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Theorem 1 quantified — work by protocol (FIFO = 100, L = {})",
                self.lifespan
            ),
            &["cluster", "FIFO", "LIFO", "equal split", "∝ speed"],
        );
        for r in &self.rows {
            let (fifo, lifo, equal, prop) = r.work;
            let pct = |w: f64| fmt_f(100.0 * w / fifo, 2);
            t.row(vec![
                r.name.clone(),
                pct(fifo),
                lifo.map_or("infeasible".into(), pct),
                pct(equal),
                pct(prop),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_wins_everywhere() {
        let e = run_paper();
        for r in &e.rows {
            let (fifo, lifo, equal, prop) = r.work;
            if let Some(l) = lifo {
                assert!(l <= fifo * (1.0 + 1e-9), "{}", r.name);
            }
            assert!(equal <= fifo * (1.0 + 1e-9), "{}", r.name);
            assert!(prop <= fifo * (1.0 + 1e-9), "{}", r.name);
        }
    }

    #[test]
    fn lifo_gap_grows_with_heterogeneity() {
        let e = run_paper();
        let gap = |name: &str| {
            let r = e.rows.iter().find(|r| r.name.contains(name)).unwrap();
            1.0 - r.work.1.expect("feasible") / r.work.0
        };
        // A homogeneous cluster loses almost nothing to LIFO; the 8×
        // spread cluster loses visibly more.
        assert!(gap("homogeneous") < gap("2× steps"));
        assert!(gap("2× steps") > 0.02, "the regime makes the cost visible");
        assert!(gap("harmonic") > gap("2× steps"));
    }

    #[test]
    fn speed_proportional_beats_equal_split_on_heterogeneous() {
        let e = run_paper();
        for r in &e.rows {
            if r.profile.variance() > 1e-6 {
                assert!(r.work.3 > r.work.2, "{}", r.name);
            }
        }
    }

    #[test]
    fn render_normalizes_fifo_to_100() {
        let s = run_paper().table().to_ascii();
        assert!(s.contains("100.00"));
        assert!(s.contains("LIFO"));
    }
}
