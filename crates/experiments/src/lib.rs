//! # hetero-experiments — regenerating every table and figure
//!
//! One module per artifact of the paper's evaluation (see DESIGN.md §3 for
//! the full experiment index):
//!
//! | module | paper artifact |
//! |---|---|
//! | [`table3`] | Table 3 — HECRs of the C1/C2 families |
//! | [`table4`] | Table 4 — additive-speedup work ratios |
//! | [`fig34`] | Figures 3–4 — iterated multiplicative speedup snapshots |
//! | [`variance`] | §4.3 — variance as a power predictor (bad-pair rates) |
//! | [`threshold`] | §4.3 — the 100 %-correct variance-gap threshold θ |
//! | [`examples42`] | §4 opening example + Corollary 1 demonstrations |
//! | [`protocol_check`] | Theorems 1–2 validated behaviourally on the DES |
//! | [`gantt`] | Figures 1–2 — action/time diagrams |
//! | [`obs_export`] | Figures 1–2 — Chrome trace-event JSON (`--obs-trace`) |
//! | [`moments_ext`] | companion-paper extension: scoring moment predictors |
//! | [`fifo_lifo`] | Theorem 1 quantified: FIFO vs LIFO vs heuristics |
//! | [`sensitivity`] | extension: τ sweep across the three regimes |
//! | [`scaling`] | extension: §2.5 families up to n = 2¹⁶, X saturation |
//! | [`majorization_ext`] | extension: majorization explains the bad pairs |
//! | [`granularity`] | extension: integral-task quantization cost |
//! | [`robustness`] | extension: planning under speed-estimation error |
//! | [`fault_sweep`] | extension: fault injection vs adaptive replanning |
//! | [`protocol_sweep`] | extension: work exchange + MDS coding vs replanning |
//! | [`fleet`] | extension: fleet sizing against X-measure saturation |
//! | [`selection_sweep`] | extension: branch-and-bound exact selection at fleet scale |
//!
//! Every experiment is a pure function of its configuration (including RNG
//! seeds), returns a typed result struct, and renders through [`render`]'s
//! ASCII/CSV backends. Parallel sweeps run on `hetero-par` with per-trial
//! seed derivation, so results are identical at any thread count.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod critpath;
pub mod examples42;
pub mod fault_sweep;
pub mod fifo_lifo;
pub mod fig34;
pub mod fleet;
pub mod gantt;
pub mod granularity;
pub mod majorization_ext;
pub mod moments_ext;
pub mod obs_export;
pub mod protocol_check;
pub mod protocol_sweep;
pub mod render;
pub mod robustness;
pub mod scaling;
pub mod selection_sweep;
pub mod sensitivity;
pub mod table3;
pub mod table4;
pub mod threshold;
pub mod variance;
