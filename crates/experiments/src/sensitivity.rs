//! Experiment E13 (extension) — **parameter sensitivity**: how the
//! communication constants reshape the conclusions.
//!
//! Sweeping the transit rate τ across six orders of magnitude for a fixed
//! cluster shows the three regimes the model contains:
//!
//! 1. *compute-dominated* (the paper's Table 1 corner): X ≈ Σ1/(Bρ),
//!    upgrades follow Theorem 3/4 condition (1);
//! 2. *transitional*: the Theorem 4 threshold `Aτδ/B²` climbs into the
//!    `ψρᵢρⱼ` range — the Figures 3–4 phase structure appears;
//! 3. *communication-bound*: `A·X(P) > 1`, the gap-free FIFO schedule no
//!    longer exists (our simulator-derived feasibility bound).

use hetero_core::xmeasure;
use hetero_core::{Params, Profile};
use hetero_protocol::alloc;

use crate::render::{fmt_f, Table};

/// One τ sample.
#[derive(Debug, Clone)]
pub struct SensitivityRow {
    /// Transit rate τ.
    pub tau: f64,
    /// `X(P)`.
    pub x: f64,
    /// Work rate `W/L`.
    pub work_rate: f64,
    /// The Theorem 4 threshold `Aτδ/B²`.
    pub threshold: f64,
    /// `A·X(P)` — feasibility margin (> 1 �is infeasible).
    pub a_times_x: f64,
    /// Whether the gap-free FIFO schedule exists.
    pub feasible: bool,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Sensitivity {
    /// Profile swept.
    pub profile: Profile,
    /// π/τ ratio held fixed during the sweep.
    pub pi_over_tau: f64,
    /// One row per τ.
    pub rows: Vec<SensitivityRow>,
}

/// Sweeps τ over `taus`, holding `π = pi_over_tau · τ` and δ = 1.
pub fn run(profile: &Profile, taus: &[f64], pi_over_tau: f64) -> Sensitivity {
    let rows = taus
        .iter()
        .map(|&tau| {
            let params = Params::new(tau, pi_over_tau * tau, 1.0).expect("valid");
            let x = xmeasure::x_measure(&params, profile);
            SensitivityRow {
                tau,
                x,
                work_rate: xmeasure::work_rate(&params, profile),
                threshold: params.theorem4_threshold(),
                a_times_x: params.a() * x,
                feasible: alloc::fifo_feasible(&params, profile),
            }
        })
        .collect();
    Sensitivity {
        profile: profile.clone(),
        pi_over_tau,
        rows,
    }
}

/// The default sweep: the Table 4 cluster, τ from 10⁻⁶ to 10⁻¹
/// (π = 10τ as in Table 1).
pub fn run_paper() -> Sensitivity {
    let profile = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).expect("valid");
    run(
        &profile,
        &[1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.05, 0.1, 0.2],
        10.0,
    )
}

impl Sensitivity {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Sensitivity — the three communication regimes (π = 10τ, δ = 1)",
            &["τ", "X(P)", "W/L", "Aτδ/B²", "A·X", "gap-free FIFO"],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{:.0e}", r.tau),
                fmt_f(r.x, 4),
                fmt_f(r.work_rate, 4),
                format!("{:.2e}", r.threshold),
                fmt_f(r.a_times_x, 4),
                if r.feasible { "yes" } else { "NO" }.into(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_rate_degrades_monotonically_with_tau() {
        let s = run_paper();
        for w in s.rows.windows(2) {
            assert!(w[1].work_rate < w[0].work_rate);
        }
    }

    #[test]
    fn threshold_climbs_seven_orders_of_magnitude() {
        // From the Table 1 corner (~10⁻¹¹, condition (1) everywhere) the
        // Theorem 4 threshold rises past 10⁻² — into the range of ψρᵢρⱼ
        // products, where condition (2) and the Figure 3/4 phase change
        // become observable.
        let s = run_paper();
        assert!(s.rows.first().unwrap().threshold < 1e-9, "Table 1 corner");
        assert!(s.rows.last().unwrap().threshold > 1e-2);
    }

    #[test]
    fn feasibility_flips_exactly_when_ax_crosses_one() {
        let s = run_paper();
        for r in &s.rows {
            assert_eq!(r.feasible, r.a_times_x <= 1.0 + 1e-12, "τ = {}", r.tau);
        }
        // Both regimes are represented in the default sweep.
        assert!(s.rows.iter().any(|r| r.feasible));
        assert!(s.rows.iter().any(|r| !r.feasible));
    }

    #[test]
    fn x_is_monotone_decreasing_in_tau() {
        let s = run_paper();
        for w in s.rows.windows(2) {
            assert!(w[1].x < w[0].x);
        }
    }

    #[test]
    fn render_marks_infeasible_rows() {
        let s = run_paper().table().to_ascii();
        assert!(s.contains("NO"));
        assert!(s.contains("yes"));
    }
}
