//! Experiment E18 (extension) — **fault injection and adaptive
//! replanning**.
//!
//! E17 showed that under *estimation error* the knife-edge deadline is
//! the protocol's weak point. This experiment injects *runtime faults* —
//! permanent worker crashes and chronic multiplicative stragglers drawn
//! from a seeded [`FaultPlan`] — and compares three executors on the same
//! perturbed runs:
//!
//! * **oblivious** — the optimal FIFO plan executed with no failure
//!   detection ([`fault_exec::execute_with_faults`]): sends to crashed
//!   workers are wasted, stragglers deliver late;
//! * **adaptive** — the same plan under [`replan::execute_adaptive`]:
//!   boundary-granularity detection, suffix re-optimization through the
//!   incremental X-scan, crash skips, and a hedge margin on the lifespan;
//! * **equal split** — the estimate-free baseline, also oblivious.
//!
//! Every trial plants at least one chronic straggler, so the oblivious
//! executor delivers late in any trial whose straggler survives — while
//! the replanner detects the slowdown at its first send boundary and
//! re-sizes the whole schedule into the hedged window. The headline
//! claim (pinned by a test): **replanning strictly dominates oblivious
//! FIFO on deadline-miss rate at every swept crash rate**, with
//! deterministic results under fixed seeds at any thread count.

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_core::{xmeasure, Params};
use hetero_faults::{FaultConfig, FaultPlan};
use std::sync::Arc;

use hetero_par::{seed, Pool};
use hetero_protocol::{alloc, baseline, fault_exec, replan};

use crate::render::{fmt_f, Table};

/// Aggregates for one (crash probability, straggler factor, margin) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSweepRow {
    /// Per-worker crash probability.
    pub crash_p: f64,
    /// Chronic-straggler slowdown factor.
    pub straggler_factor: f64,
    /// Hedge margin the adaptive arm plans with.
    pub margin: f64,
    /// Mean effective-throughput fraction (work back by `L` over the
    /// fault-free optimum) of the oblivious executor.
    pub oblivious_fraction: f64,
    /// Same, for the adaptive replanner.
    pub adaptive_fraction: f64,
    /// Same, for oblivious equal split.
    pub equal_fraction: f64,
    /// Fraction of trials in which the oblivious run delivered a result
    /// after the lifespan.
    pub oblivious_miss_rate: f64,
    /// Same, for the adaptive replanner.
    pub adaptive_miss_rate: f64,
    /// Mean suffix re-optimizations per adaptive run.
    pub mean_replans: f64,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct FaultSweepConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster size.
    pub n: usize,
    /// Lifespan every arm plans against.
    pub lifespan: f64,
    /// Per-worker crash probabilities to sweep.
    pub crash_ps: Vec<f64>,
    /// Chronic-straggler severities to sweep (each > 1 so every trial
    /// has a detectable fault).
    pub straggler_factors: Vec<f64>,
    /// Hedge margins to sweep for the adaptive arm.
    pub margins: Vec<f64>,
    /// Trials per cell.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for FaultSweepConfig {
    fn default() -> Self {
        FaultSweepConfig {
            params: Params::paper_table1(),
            n: 8,
            lifespan: 600.0,
            crash_ps: vec![0.0, 0.1, 0.3],
            straggler_factors: vec![1.5, 4.0],
            margins: vec![0.0, 0.1],
            trials: 100,
            seed: 0xFA17,
            threads: hetero_par::default_threads(),
        }
    }
}

/// Results.
#[derive(Debug, Clone)]
pub struct FaultSweep {
    /// Configuration used.
    pub config: FaultSweepConfig,
    /// One row per swept cell, in `crash_ps × straggler_factors ×
    /// margins` order.
    pub rows: Vec<FaultSweepRow>,
}

/// Per-trial metrics: throughput fractions and miss flags for the three
/// arms, plus the adaptive replan count.
struct Trial {
    oblivious: f64,
    adaptive: f64,
    equal: f64,
    oblivious_miss: bool,
    adaptive_miss: bool,
    replans: u32,
}

/// One trial of one cell.
fn one_trial(
    cfg: &FaultSweepConfig,
    crash_p: f64,
    factor: f64,
    margin: f64,
    trial_seed: u64,
) -> Trial {
    let mut rng = rng_from_seed(seed::derive(trial_seed, 1));
    let truth = hetero_clustergen::random_profile(&mut rng, GenConfig::new(cfg.n), Shape::Uniform);
    let optimum = xmeasure::work(&cfg.params, &truth, cfg.lifespan);

    let faults = FaultPlan::sample(
        &FaultConfig {
            crash_p,
            straggler_count: 1,
            straggler_factor: factor,
            ..FaultConfig::default()
        },
        cfg.n,
        cfg.lifespan,
        seed::derive(trial_seed, 2),
    )
    .expect("valid fault config");

    let plan = alloc::fifo_plan(&cfg.params, &truth, cfg.lifespan).expect("feasible");
    let oblivious =
        fault_exec::execute_with_faults(&cfg.params, &truth, &plan, &faults).expect("runs");
    let adaptive = replan::execute_adaptive(
        &cfg.params,
        &truth,
        &plan,
        &faults,
        &replan::HedgePolicy {
            margin,
            ..replan::HedgePolicy::default()
        },
    )
    .expect("runs");
    let equal_plan =
        baseline::equal_split_plan(&cfg.params, &truth, cfg.lifespan).expect("feasible");
    let equal =
        fault_exec::execute_with_faults(&cfg.params, &truth, &equal_plan, &faults).expect("runs");

    Trial {
        oblivious: oblivious.work_completed_by(cfg.lifespan) / optimum,
        adaptive: adaptive.work_completed_by(cfg.lifespan) / optimum,
        equal: equal.work_completed_by(cfg.lifespan) / optimum,
        oblivious_miss: oblivious.missed_deadline(cfg.lifespan),
        adaptive_miss: adaptive.missed_deadline(cfg.lifespan),
        replans: adaptive.replans,
    }
}

/// Runs the sweep.
pub fn run(config: &FaultSweepConfig) -> FaultSweep {
    let pool = Pool::global();
    let shared = Arc::new(config.clone());
    let cells = config.crash_ps.len() * config.straggler_factors.len() * config.margins.len();
    hetero_obs::count("trials.fault_sweep", (config.trials * cells) as u64);
    let mut rows = Vec::with_capacity(cells);
    let mut cell = 0u64;
    for &crash_p in &config.crash_ps {
        for &factor in &config.straggler_factors {
            for &margin in &config.margins {
                cell += 1;
                let cell_seed = seed::derive(config.seed, cell);
                let shared = Arc::clone(&shared);
                let trials = pool.map(config.trials, config.threads, move |t| {
                    one_trial(
                        &shared,
                        crash_p,
                        factor,
                        margin,
                        seed::derive(cell_seed, t as u64),
                    )
                });
                let n = trials.len() as f64;
                rows.push(FaultSweepRow {
                    crash_p,
                    straggler_factor: factor,
                    margin,
                    oblivious_fraction: trials.iter().map(|t| t.oblivious).sum::<f64>() / n,
                    adaptive_fraction: trials.iter().map(|t| t.adaptive).sum::<f64>() / n,
                    equal_fraction: trials.iter().map(|t| t.equal).sum::<f64>() / n,
                    oblivious_miss_rate: trials.iter().filter(|t| t.oblivious_miss).count() as f64
                        / n,
                    adaptive_miss_rate: trials.iter().filter(|t| t.adaptive_miss).count() as f64
                        / n,
                    mean_replans: trials.iter().map(|t| f64::from(t.replans)).sum::<f64>() / n,
                });
            }
        }
    }
    FaultSweep {
        config: config.clone(),
        rows,
    }
}

impl FaultSweep {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Fault sweep — oblivious vs replanning vs equal split (n = {}, {} trials/cell)",
                self.config.n, self.config.trials
            ),
            &[
                "crash p",
                "straggle ×",
                "margin",
                "obliv %",
                "adapt %",
                "equal %",
                "obliv miss",
                "adapt miss",
                "replans",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_f(r.crash_p, 2),
                fmt_f(r.straggler_factor, 1),
                fmt_f(r.margin, 2),
                fmt_f(100.0 * r.oblivious_fraction, 2),
                fmt_f(100.0 * r.adaptive_fraction, 2),
                fmt_f(100.0 * r.equal_fraction, 2),
                fmt_f(r.oblivious_miss_rate, 3),
                fmt_f(r.adaptive_miss_rate, 3),
                fmt_f(r.mean_replans, 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> FaultSweepConfig {
        FaultSweepConfig {
            n: 6,
            crash_ps: vec![0.0, 0.2],
            straggler_factors: vec![3.0],
            margins: vec![0.0, 0.1],
            trials: 30,
            seed: 11,
            threads: 4,
            ..FaultSweepConfig::default()
        }
    }

    #[test]
    fn replanning_strictly_dominates_oblivious_miss_rate() {
        // The acceptance claim: at every swept crash rate the adaptive
        // arm's deadline-miss rate is strictly below the oblivious arm's.
        let r = run(&quick());
        for row in &r.rows {
            assert!(
                row.adaptive_miss_rate < row.oblivious_miss_rate,
                "crash_p = {}, margin = {}: adaptive {} !< oblivious {}",
                row.crash_p,
                row.margin,
                row.adaptive_miss_rate,
                row.oblivious_miss_rate
            );
        }
    }

    #[test]
    fn chronic_stragglers_always_sink_the_oblivious_arm() {
        // Without crashes nothing destroys the straggler's late result,
        // so every oblivious trial misses; the replanner detects the
        // slowdown at its first boundary and never delivers late.
        let r = run(&quick());
        for row in r.rows.iter().filter(|r| r.crash_p == 0.0) {
            assert_eq!(row.oblivious_miss_rate, 1.0);
            assert_eq!(row.adaptive_miss_rate, 0.0);
            assert!(row.mean_replans >= 1.0);
        }
    }

    #[test]
    fn optimal_plans_beat_equal_split_even_under_faults() {
        let r = run(&quick());
        for row in &r.rows {
            assert!(
                row.adaptive_fraction > row.equal_fraction,
                "crash_p = {}, margin = {}",
                row.crash_p,
                row.margin
            );
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let mut cfg = quick();
        cfg.trials = 20;
        cfg.threads = 1;
        let a = run(&cfg);
        cfg.threads = 8;
        let b = run(&cfg);
        assert_eq!(a.rows, b.rows);
    }
}
