//! Experiment E17 (extension) — **robustness to profile estimation
//! error**.
//!
//! The paper assumes the scheduler knows every ρ exactly. In practice
//! speeds are estimated. This experiment plans with a *perturbed* profile
//! (each ρ scaled by an independent factor in `[1−ε, 1+ε]`) and executes
//! the plan against the *true* speeds.
//!
//! Under Table 1 parameters every result arrives within milliseconds of
//! the lifespan (the transmissions chain back-to-back at the very end),
//! so hard-deadline accounting is a knife edge: *any* net overestimate
//! pushes the whole chain past `L` and scores zero. The robust metric is
//! therefore **effective throughput** — planned work over the schedule's
//! *actual* makespan — compared with the true optimum's `W/L`, plus the
//! makespan overrun factor that a deadline-bound operator must hedge
//! with a safety margin.

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_core::{xmeasure, Params, Profile};
use hetero_par::{seed, Executor};
use hetero_protocol::replan::hedged_lifespan;
use hetero_protocol::{alloc, baseline, exec};
use rand::Rng;

use crate::render::{fmt_f, Table};

/// Aggregates for one error level.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustnessRow {
    /// Relative estimation error ε.
    pub epsilon: f64,
    /// Mean effective-throughput fraction (vs the true optimum's `W/L`)
    /// when planning with perturbed estimates.
    pub mean_fraction: f64,
    /// Worst observed fraction.
    pub worst_fraction: f64,
    /// Mean makespan overrun factor (actual/L; > 1 means a deadline miss).
    pub mean_overrun: f64,
    /// Mean throughput fraction achieved by equal split (no estimates).
    pub equal_split_fraction: f64,
    /// Fraction of trials whose last arrival landed past the lifespan.
    pub miss_rate: f64,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct RobustnessConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster size.
    pub n: usize,
    /// Error levels ε to probe.
    pub epsilons: Vec<f64>,
    /// Trials per level.
    pub trials: usize,
    /// Safety margin hedged off the planned lifespan: plans are sized to
    /// [`hedged_lifespan`]`(L, hedge_margin)` but judged against `L`.
    /// Zero (the default) plans to the knife edge.
    pub hedge_margin: f64,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for RobustnessConfig {
    fn default() -> Self {
        RobustnessConfig {
            params: Params::paper_table1(),
            n: 8,
            epsilons: vec![0.0, 0.01, 0.05, 0.1, 0.25, 0.5],
            trials: 200,
            hedge_margin: 0.0,
            seed: 0xEB0B,
            threads: hetero_par::default_threads(),
        }
    }
}

/// Results.
#[derive(Debug, Clone)]
pub struct Robustness {
    /// Configuration used.
    pub config: RobustnessConfig,
    /// One row per ε.
    pub rows: Vec<RobustnessRow>,
}

/// One trial: returns `(throughput fraction, overrun factor, equal-split
/// fraction, deadline missed)`.
pub fn one_trial(
    params: &Params,
    n: usize,
    epsilon: f64,
    hedge_margin: f64,
    trial_seed: u64,
) -> (f64, f64, f64, bool) {
    let mut rng = rng_from_seed(trial_seed);
    let truth = hetero_clustergen::random_profile(&mut rng, GenConfig::new(n), Shape::Uniform);
    let lifespan = 600.0;
    let optimum = xmeasure::work(params, &truth, lifespan);

    // Perturbed estimate (clamped into a valid range).
    let estimate = Profile::from_unsorted(
        truth
            .rhos()
            .iter()
            .map(|r| (r * (1.0 + rng.random_range(-epsilon..=epsilon))).clamp(1e-6, 10.0))
            .collect(),
    )
    .expect("valid");

    // Plan with the estimate... but the plan's `order` refers to positions
    // in the *estimated* (sorted) profile. To execute against the truth we
    // need each position's work, matched to the true computer with the
    // same rank — rank order is preserved by construction because the
    // perturbation is per-computer but both profiles are sorted; matching
    // by rank models "we think this machine is the k-th slowest".
    // The hedge shaves the planned window so estimation noise lands in
    // the margin instead of past the deadline — the same transform the
    // fault replanner applies to its re-solved suffixes.
    let planned = alloc::fifo_plan(params, &estimate, hedged_lifespan(lifespan, hedge_margin))
        .expect("feasible");
    let run = exec::execute(params, &truth, &planned);
    let makespan = run.last_arrival().expect("nonempty").get();
    let throughput = planned.total_work() / makespan.max(lifespan);
    let fraction = throughput / (optimum / lifespan);
    let overrun = makespan / lifespan;
    let missed = makespan > lifespan * (1.0 + 1e-9);

    let equal = baseline::equal_split_plan(params, &truth, lifespan)
        .expect("feasible")
        .total_work()
        / optimum;
    (fraction, overrun, equal, missed)
}

/// Runs the sweep.
pub fn run(config: &RobustnessConfig) -> Robustness {
    let exec = Executor::new(config.threads);
    let trial_ids: Vec<u64> = (0..config.trials as u64).collect();
    hetero_obs::count(
        "trials.robustness",
        (config.trials * config.epsilons.len()) as u64,
    );
    let rows = config
        .epsilons
        .iter()
        .map(|&epsilon| {
            let eps_seed = seed::derive(config.seed, (epsilon * 1e6) as u64);
            let pairs = exec.map(&trial_ids, |_, &t| {
                one_trial(
                    &config.params,
                    config.n,
                    epsilon,
                    config.hedge_margin,
                    seed::derive(eps_seed, t),
                )
            });
            let n = pairs.len() as f64;
            let mean_fraction = pairs.iter().map(|p| p.0).sum::<f64>() / n;
            let worst_fraction = pairs.iter().map(|p| p.0).fold(f64::INFINITY, f64::min);
            let mean_overrun = pairs.iter().map(|p| p.1).sum::<f64>() / n;
            let equal_split_fraction = pairs.iter().map(|p| p.2).sum::<f64>() / n;
            let miss_rate = pairs.iter().filter(|p| p.3).count() as f64 / n;
            RobustnessRow {
                epsilon,
                mean_fraction,
                worst_fraction,
                mean_overrun,
                equal_split_fraction,
                miss_rate,
            }
        })
        .collect();
    Robustness {
        config: config.clone(),
        rows,
    }
}

impl Robustness {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Robustness — planning with ±ε speed estimates (n = {}, % of true optimum)",
                self.config.n
            ),
            &[
                "ε",
                "mean %",
                "worst %",
                "overrun ×",
                "equal split %",
                "miss",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_f(r.epsilon, 2),
                fmt_f(100.0 * r.mean_fraction, 2),
                fmt_f(100.0 * r.worst_fraction, 2),
                fmt_f(r.mean_overrun, 4),
                fmt_f(100.0 * r.equal_split_fraction, 2),
                fmt_f(r.miss_rate, 3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> RobustnessConfig {
        RobustnessConfig {
            n: 6,
            epsilons: vec![0.0, 0.1, 0.5],
            trials: 60,
            seed: 9,
            threads: 4,
            ..RobustnessConfig::default()
        }
    }

    #[test]
    fn zero_error_achieves_the_optimum() {
        let r = run(&quick());
        let exact = &r.rows[0];
        assert!((exact.mean_fraction - 1.0).abs() < 1e-9);
        assert!((exact.worst_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn degradation_is_monotone_in_error() {
        let r = run(&quick());
        for w in r.rows.windows(2) {
            assert!(w[1].mean_fraction <= w[0].mean_fraction + 1e-9);
        }
    }

    #[test]
    fn misplanned_throughput_still_beats_equal_split() {
        // Even with ±50 % speed estimates, the optimal protocol's
        // *throughput* beats the estimate-free equal-split heuristic.
        let r = run(&quick());
        for row in &r.rows {
            assert!(
                row.mean_fraction > row.equal_split_fraction,
                "ε = {}",
                row.epsilon
            );
        }
    }

    #[test]
    fn overrun_quantifies_the_needed_safety_margin() {
        // The mean makespan overrun grows with ε; a deadline-bound
        // operator must shave the planned lifespan by about that factor.
        let r = run(&quick());
        assert!(
            (r.rows[0].mean_overrun - 1.0).abs() < 1e-9,
            "exact plan is exact"
        );
        for w in r.rows.windows(2) {
            assert!(w[1].mean_overrun >= w[0].mean_overrun - 1e-9);
        }
        let big = r.rows.last().unwrap();
        assert!(big.mean_overrun > 1.0, "±50 % estimates overrun on average");
        assert!(big.mean_overrun < 2.0, "but by a bounded factor");
        for row in &r.rows {
            assert!(row.worst_fraction >= 0.0 && row.mean_fraction <= 1.0 + 1e-9);
        }
    }

    #[test]
    fn hedging_the_lifespan_buys_down_the_miss_rate() {
        // Planning to hedged_lifespan(L, margin) with margin at the
        // knife-edge's observed overrun should eliminate nearly every
        // deadline miss, at a bounded throughput cost.
        let knife = run(&quick());
        let hedged = run(&RobustnessConfig {
            hedge_margin: 0.25,
            ..quick()
        });
        let last = knife.rows.len() - 1;
        assert!(
            knife.rows[last].miss_rate > 0.5,
            "±50 % estimates at the knife edge miss most deadlines"
        );
        // A 25 % margin swallows ε = 0.1's entire overrun distribution
        // and strictly improves even ε = 0.5 (whose overrun tail can
        // exceed any fixed margin).
        assert_eq!(hedged.rows[1].miss_rate, 0.0, "ε = 0.1 fully hedged");
        assert!(hedged.rows[last].miss_rate < knife.rows[last].miss_rate);
        for (k, h) in knife.rows.iter().zip(&hedged.rows) {
            assert!(h.miss_rate <= k.miss_rate, "ε = {}", k.epsilon);
        }
    }

    #[test]
    fn deterministic_across_threads() {
        let mut cfg = quick();
        cfg.trials = 30;
        cfg.threads = 1;
        let a = run(&cfg);
        cfg.threads = 8;
        let b = run(&cfg);
        assert_eq!(a.rows, b.rows);
    }
}
