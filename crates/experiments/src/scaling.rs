//! Experiment E14 (extension) — **scaling Table 3 to large clusters**:
//! X, HECR, and the approach to the server's feeding limit.
//!
//! Extends §2.5's comparison of the C1/C2 families from n = 32 up to the
//! paper's largest experimental size, n = 2¹⁶, and adds the quantity the
//! small table hides: `X(P)` saturates at the supremum `1/(A − τδ)` —
//! past a few thousand computers the *server*, not the cluster, limits
//! production, and the HECR's decline stalls accordingly.

use std::hint::black_box;
use std::time::Instant;

use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::xengine::XScan;
use hetero_core::{speedup, xmeasure, NumericMode, Params, Profile};

use crate::render::{fmt_f, Table};

/// One cluster size's measurements.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Cluster size.
    pub n: usize,
    /// `X` of the uniform-spread family C1.
    pub x_c1: f64,
    /// `X` of the harmonic family C2.
    pub x_c2: f64,
    /// HECR of C1.
    pub hecr_c1: f64,
    /// HECR of C2.
    pub hecr_c2: f64,
    /// `X(C2)` as a fraction of the supremum `1/(A−τδ)`.
    pub saturation_c2: f64,
}

/// The scaling sweep.
#[derive(Debug, Clone)]
pub struct Scaling {
    /// Parameters used.
    pub params: Params,
    /// One row per size.
    pub rows: Vec<ScalingRow>,
}

/// Runs the sweep over the given sizes.
pub fn run(params: &Params, sizes: &[usize]) -> Scaling {
    run_mode(params, sizes, NumericMode::Strict)
}

/// [`run`] under an explicit [`NumericMode`]. The C1 X column switches
/// to the certified fast scalar kernel in `Fast` mode (the rows are
/// ragged, so the batch takes its per-row fallback); the C2 column
/// stays on the strict incremental prefix scan in both modes (the
/// engine's O(1) update algebra is certified only against the strict
/// evaluation order), as do both HECR columns' closed forms. Every
/// row's values are recorded as quantile sketches when observability is
/// on, which is what lets CI diff a strict run against a fast run at
/// the certified tolerance (`obsdiff --quantile-rel`).
pub fn run_mode(params: &Params, sizes: &[usize], mode: NumericMode) -> Scaling {
    let sup = xmeasure::x_supremum(params);
    // The harmonic family is nested — ⟨1, 1/2, …, 1/n⟩ is a prefix of
    // ⟨1, 1/2, …, 1/2n⟩ — so one xengine scan over the largest size
    // yields every smaller size's X as a prefix snapshot, bit-identical
    // to evaluating each from scratch. (C1 is not nested: its spread
    // depends on n, so it is evaluated per size.)
    let max_n = sizes.iter().copied().max().unwrap_or(0);
    let c2_scan = (max_n > 0).then(|| XScan::from_profile(params, &Profile::harmonic(max_n)));
    // Observability probe: a same-rho replacement at the last slot is an
    // identity query, so it exercises the O(1) replace path (and its
    // counter) without perturbing the sweep. Self-consistency of the
    // engine is recorded as a relative-error metric.
    if hetero_obs::enabled() {
        if let Some(scan) = c2_scan.as_ref() {
            let last = scan.n() - 1;
            let rho = scan.rhos()[last];
            if let Ok(x_probe) = scan.replace(last, rho) {
                let x = scan.x();
                let rel = if x.abs() > 0.0 {
                    ((x_probe - x) / x).abs()
                } else {
                    (x_probe - x).abs()
                };
                hetero_obs::observe("xengine.replace_identity_rel_err", rel);
            }
        }
    }
    // The C1 column and both HECR columns go through the batch kernels.
    // Rows have distinct lengths, so this is the documented ragged path:
    // the batch falls back to the scalar kernel per row, bit-identical to
    // the per-profile calls it replaces. (C2's X stays on the prefix
    // scan, which is cheaper than any re-evaluation.)
    let mut c1_batch = ProfileBatch::new();
    let mut c2_batch = ProfileBatch::new();
    for &n in sizes {
        c1_batch.push_profile(&Profile::uniform_spread(n));
        c2_batch.push_profile(&Profile::harmonic(n));
    }
    let x1s = xbatch::x_measures_mode(params, &c1_batch, mode);
    let hecr1s = xbatch::hecrs_mode(params, &c1_batch, mode);
    let hecr2s = xbatch::hecrs_mode(params, &c2_batch, mode);
    let rows: Vec<ScalingRow> = sizes
        .iter()
        .enumerate()
        .map(|(i, &n)| {
            let x2 = c2_scan
                .as_ref()
                .and_then(|scan| scan.prefix_x(n))
                .unwrap_or_else(|| xmeasure::x_measure(params, &Profile::harmonic(n)));
            ScalingRow {
                n,
                x_c1: x1s[i],
                x_c2: x2,
                hecr_c1: *hecr1s[i].as_ref().expect("valid"),
                hecr_c2: *hecr2s[i].as_ref().expect("valid"),
                saturation_c2: x2 / sup,
            }
        })
        .collect();
    if hetero_obs::enabled() {
        for r in &rows {
            hetero_obs::sketch("scaling.x_c1", r.x_c1);
            hetero_obs::sketch("scaling.x_c2", r.x_c2);
            hetero_obs::sketch("scaling.hecr_c1", r.hecr_c1);
            hetero_obs::sketch("scaling.hecr_c2", r.hecr_c2);
        }
    }
    Scaling {
        params: *params,
        rows,
    }
}

/// The default sweep: powers of two from 8 to 2¹⁶ under Table 1
/// parameters (the paper's experimental size range).
pub fn run_paper() -> Scaling {
    let sizes: Vec<usize> = (3..=16).map(|k| 1usize << k).collect();
    run(&Params::paper_table1(), &sizes)
}

/// [`run_paper`] under an explicit [`NumericMode`].
pub fn run_paper_mode(mode: NumericMode) -> Scaling {
    let sizes: Vec<usize> = (3..=16).map(|k| 1usize << k).collect();
    run_mode(&Params::paper_table1(), &sizes, mode)
}

/// One row of the `--bench-scaling` greedy-round timing comparison.
#[derive(Debug, Clone)]
pub struct GreedyBenchRow {
    /// Cluster size.
    pub n: usize,
    /// Greedy rounds timed on the incremental engine.
    pub rounds: usize,
    /// Per-round wall time of the xengine-backed greedy, in µs.
    pub incremental_us: f64,
    /// Wall time of one pre-engine round (re-sort and re-evaluate every
    /// candidate from scratch), in µs.
    pub from_scratch_us: f64,
    /// `from_scratch_us / incremental_us`.
    pub speedup: f64,
}

/// Times greedy upgrade rounds at growing cluster sizes, comparing the
/// incremental xengine path against the pre-engine from-scratch candidate
/// rescan — the `--bench-scaling` demonstration that needs no criterion.
pub fn greedy_bench(params: &Params, sizes: &[usize], rounds: usize) -> Vec<GreedyBenchRow> {
    let rounds = rounds.max(1);
    let psi = 0.5;
    sizes
        .iter()
        .map(|&n| {
            let speeds = Profile::harmonic(n).rhos().to_vec();

            let start = Instant::now();
            let steps = speedup::greedy_multiplicative(params, &speeds, psi, rounds)
                .expect("harmonic speeds are valid");
            black_box(&steps);
            let incremental_us = start.elapsed().as_secs_f64() * 1e6 / rounds as f64;

            // One round the old way: per candidate, copy, re-sort, and
            // evaluate the whole profile from scratch.
            let start = Instant::now();
            let mut sorted = vec![0.0f64; n];
            let mut best = f64::NEG_INFINITY;
            for j in 0..n {
                sorted.copy_from_slice(&speeds);
                sorted[j] *= psi;
                sorted.sort_by(|a, b| b.total_cmp(a));
                let x = xmeasure::x_measure_of_rhos(params, &sorted);
                if x > best {
                    best = x;
                }
            }
            black_box(best);
            let from_scratch_us = start.elapsed().as_secs_f64() * 1e6;

            GreedyBenchRow {
                n,
                rounds,
                incremental_us,
                from_scratch_us,
                speedup: from_scratch_us / incremental_us.max(f64::MIN_POSITIVE),
            }
        })
        .collect()
}

/// ASCII rendering of a [`greedy_bench`] run.
pub fn greedy_bench_table(rows: &[GreedyBenchRow]) -> Table {
    let mut t = Table::new(
        "Greedy upgrade rounds — incremental xengine vs from-scratch rescan",
        &[
            "n",
            "rounds",
            "incremental µs/round",
            "from-scratch µs/round",
            "speedup",
        ],
    );
    for r in rows {
        t.row(vec![
            r.n.to_string(),
            r.rounds.to_string(),
            fmt_f(r.incremental_us, 1),
            fmt_f(r.from_scratch_us, 1),
            format!("{}x", fmt_f(r.speedup, 1)),
        ]);
    }
    t
}

impl Scaling {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Scaling §2.5 to n = 2¹⁶ — saturation of the X-measure",
            &[
                "n",
                "X(C1)",
                "X(C2)",
                "HECR C1",
                "HECR C2",
                "C2 % of supremum",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                fmt_f(r.x_c1, 1),
                fmt_f(r.x_c2, 1),
                fmt_f(r.hecr_c1, 4),
                fmt_f(r.hecr_c2, 4),
                fmt_f(100.0 * r.saturation_c2, 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn x_grows_and_stays_below_supremum() {
        let s = run_paper();
        let sup = xmeasure::x_supremum(&s.params);
        for w in s.rows.windows(2) {
            // Strict growth until saturation eats the f64 resolution; never
            // a real decrease.
            assert!(w[1].x_c1 >= w[0].x_c1 * (1.0 - 1e-12));
            assert!(w[1].x_c2 >= w[0].x_c2 * (1.0 - 1e-12));
        }
        for w in s.rows[..4].windows(2) {
            assert!(w[1].x_c1 > w[0].x_c1, "strictly growing while unsaturated");
            assert!(w[1].x_c2 > w[0].x_c2);
        }
        for r in &s.rows {
            assert!(r.x_c2 <= sup * (1.0 + 1e-12) && r.x_c1 <= sup * (1.0 + 1e-12));
            assert!(r.x_c2 > r.x_c1, "C2 is the stronger family");
        }
    }

    #[test]
    fn hecrs_decline_monotonically() {
        let s = run_paper();
        for w in s.rows.windows(2) {
            assert!(w[1].hecr_c1 < w[0].hecr_c1);
            assert!(w[1].hecr_c2 < w[0].hecr_c2);
        }
    }

    #[test]
    fn c2_saturates_visibly_at_the_papers_largest_size() {
        // At n = 2¹⁶ the harmonic family has consumed a large share of
        // the server's feeding capacity — the saturation effect invisible
        // in the paper's n ≤ 32 table.
        let s = run_paper();
        let last = s.rows.last().unwrap();
        assert_eq!(last.n, 65_536);
        assert!(
            last.saturation_c2 > 0.5,
            "saturation {} at n = 2^16",
            last.saturation_c2
        );
        let first = s.rows.first().unwrap();
        assert!(first.saturation_c2 < 0.01, "tiny clusters are far from it");
    }

    #[test]
    fn table3_is_the_prefix_of_the_sweep() {
        let s = run(&Params::paper_table1(), &[8, 16, 32]);
        let t3 = crate::table3::run_paper();
        for (a, b) in s.rows.iter().zip(&t3.rows) {
            assert!((a.hecr_c1 - b.hecr_c1).abs() < 1e-12);
            assert!((a.hecr_c2 - b.hecr_c2).abs() < 1e-12);
        }
    }

    #[test]
    fn render_includes_saturation_column() {
        let s = run(&Params::paper_table1(), &[8, 4096]).table().to_ascii();
        assert!(s.contains("supremum"));
        assert!(s.contains("4096"));
    }

    #[test]
    fn greedy_bench_times_both_paths() {
        let rows = greedy_bench(&Params::paper_table1(), &[64, 512], 2);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.incremental_us > 0.0 && r.incremental_us.is_finite());
            assert!(r.from_scratch_us > 0.0 && r.from_scratch_us.is_finite());
        }
        // At n = 512 a from-scratch round does ~n full evaluations plus n
        // sorts; the engine does one. Even noisy timers show the gap.
        assert!(
            rows[1].speedup > 1.0,
            "n = 512 speedup was {}",
            rows[1].speedup
        );
        let ascii = greedy_bench_table(&rows).to_ascii();
        assert!(ascii.contains("speedup"));
        assert!(ascii.contains("512"));
    }
}
