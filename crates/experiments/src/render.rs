//! ASCII table / CSV / bar-chart rendering.
//!
//! Small, dependency-free output backends shared by every experiment: the
//! CLI prints the ASCII forms; the CSV form exists for downstream
//! plotting.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match headers"
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` iff the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the aligned ASCII form.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        if !self.title.is_empty() {
            let _ = writeln!(out, "{}", self.title);
        }
        let line = |cells: &[String], widths: &[usize]| -> String {
            let mut s = String::from("|");
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(s, " {cell:>w$} |", w = w);
            }
            s
        };
        let sep: String = {
            let mut s = String::from("+");
            for w in &widths {
                s.push_str(&"-".repeat(w + 2));
                s.push('+');
            }
            s
        };
        let _ = writeln!(out, "{sep}");
        let _ = writeln!(out, "{}", line(&self.headers, &widths));
        let _ = writeln!(out, "{sep}");
        for row in &self.rows {
            let _ = writeln!(out, "{}", line(row, &widths));
        }
        let _ = writeln!(out, "{sep}");
        out
    }

    /// Renders the CSV form (headers first; quotes cells containing commas).
    pub fn to_csv(&self) -> String {
        let quote = |c: &str| -> String {
            if c.contains(',') || c.contains('"') {
                format!("\"{}\"", c.replace('"', "\"\""))
            } else {
                c.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| quote(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Renders one snapshot of speeds as a horizontal ASCII bar chart (the
/// shape of the paper's Figures 3–4 panels). Bars are proportional to ρ
/// relative to `max_rho`, so phase-2 snapshots can rescale like the paper.
pub fn bar_chart(title: &str, speeds: &[f64], max_rho: f64, width: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    for (i, &s) in speeds.iter().enumerate() {
        let frac = (s / max_rho).clamp(0.0, 1.0);
        let filled = (frac * width as f64).round() as usize;
        let _ = writeln!(
            out,
            "  C{idx} |{bar:<width$}| {s:.6}",
            idx = i + 1,
            bar = "#".repeat(filled),
        );
    }
    out
}

/// Formats a float with `digits` fractional digits.
pub fn fmt_f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("Demo", &["n", "value"]);
        t.row(vec!["8".into(), "0.366".into()]);
        t.row(vec!["16".into(), "0.298".into()]);
        t
    }

    #[test]
    fn ascii_contains_all_cells_aligned() {
        let s = sample().to_ascii();
        assert!(s.contains("Demo"));
        assert!(s.contains("0.366"));
        assert!(s.contains("0.298"));
        // Every data line has the same width.
        let widths: Vec<usize> = s.lines().skip(1).map(|l| l.len()).collect();
        assert!(widths.windows(2).all(|w| w[0] == w[1]), "{s}");
    }

    #[test]
    fn csv_round_trips_commas() {
        let mut t = Table::new("", &["profile", "x"]);
        t.row(vec!["⟨1, 1/2⟩".into(), "1.23".into()]);
        let csv = t.to_csv();
        assert!(csv.starts_with("profile,x"));
        assert!(csv.contains("\"⟨1, 1/2⟩\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("", &["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn bar_chart_scales_to_max() {
        let s = bar_chart("t", &[1.0, 0.5], 1.0, 10);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].contains("##########"));
        assert!(lines[2].contains("#####"));
        assert!(!lines[2].contains("######"));
    }

    #[test]
    fn table_len() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(Table::new("x", &["a"]).is_empty());
    }
}
