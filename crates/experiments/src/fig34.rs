//! Experiments E4/E5 — the paper's **Figures 3–4**: snapshots of a
//! 4-computer cluster under iterated optimal multiplicative speedup
//! (ψ = 1/2).
//!
//! Phase 1 (Figure 3): starting homogeneous at ⟨1,1,1,1⟩, condition (1)
//! of Theorem 4 selects the then-fastest computer every round (tie-breaks
//! to the larger index), driving the profile to ⟨1/16,…,1/16⟩ in 16
//! rounds, one computer at a time in blocks of four.
//!
//! Phase 2 (Figure 4): with every computer now "very fast", condition (2)
//! takes over and the *slowest* computer is upgraded each round.
//!
//! Candidate evaluation inside [`greedy_multiplicative`] runs on the
//! incremental `hetero_core::xengine` scan (O(1) per candidate); the
//! chosen computers and reported X-values are bit-identical to the
//! from-scratch rescan it replaced, so these figures are unaffected.

use hetero_core::speedup::{greedy_multiplicative, theorem4_choice, GreedyStep, Theorem4Choice};
use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::{fastnum, NumericMode, Params};

use crate::render::bar_chart;

/// Which Theorem 4 condition explains a round's choice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Condition (1): fastest-first.
    FastestFirst,
    /// Condition (2): slowest-first.
    SlowestFirst,
    /// Tie-break among equal speeds.
    TieBreak,
}

/// One annotated snapshot.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// The greedy engine's step (round, chosen computer, speeds, X).
    pub step: GreedyStep,
    /// The regime that explains the choice.
    pub regime: Regime,
}

/// The full two-phase experiment.
#[derive(Debug, Clone)]
pub struct Fig34 {
    /// Parameters (the paper's Figure 3/4 configuration by default).
    pub params: Params,
    /// The speedup factor ψ.
    pub psi: f64,
    /// Phase-1 snapshots (Figure 3).
    pub phase1: Vec<Snapshot>,
    /// Phase-2 snapshots (Figure 4).
    pub phase2: Vec<Snapshot>,
}

fn classify(params: &Params, before: &[f64], chosen: usize, psi: f64) -> Regime {
    let min = before.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = before.iter().cloned().fold(0.0f64, f64::max);
    if (max - min).abs() < 1e-15 {
        return Regime::TieBreak;
    }
    // Compare the chosen computer against the extremes via Theorem 4.
    let rho_chosen = before[chosen];
    if (rho_chosen - min).abs() < 1e-15 {
        // Chose a fastest computer: condition (1) against the slowest.
        debug_assert_eq!(
            theorem4_choice(params, max, rho_chosen, psi),
            Theorem4Choice::Faster
        );
        Regime::FastestFirst
    } else if (rho_chosen - max).abs() < 1e-15 {
        Regime::SlowestFirst
    } else {
        Regime::TieBreak
    }
}

/// Runs the two-phase experiment: `rounds1` greedy rounds from a
/// homogeneous start, then `rounds2` more (the paper uses 16 + 4).
pub fn run(params: &Params, n: usize, psi: f64, rounds1: usize, rounds2: usize) -> Fig34 {
    run_mode(params, n, psi, rounds1, rounds2, NumericMode::Strict)
}

/// [`run`] under an explicit [`NumericMode`]. The greedy engine's
/// candidate scan stays strict in both modes (the incremental xengine
/// is certified against the strict evaluation order); only the
/// trajectory's batched X re-derivation switches kernels.
pub fn run_mode(
    params: &Params,
    n: usize,
    psi: f64,
    rounds1: usize,
    rounds2: usize,
    mode: NumericMode,
) -> Fig34 {
    let mut steps = greedy_multiplicative(params, &vec![1.0; n], psi, rounds1 + rounds2)
        .expect("valid configuration");
    // Re-derive every reported X through the lockstep batch kernel: all
    // rounds share length n, so the whole trajectory is one uniform
    // [`ProfileBatch`] pass. In strict mode the kernel is bit-identical
    // to the incremental scan's from-scratch contract, which the
    // debug_assert pins on every figure regeneration; in fast mode the
    // divide-free kernel must stay within its certified ulp budget of
    // the scan's value instead.
    let mut batch = ProfileBatch::with_capacity(steps.len(), steps.len() * n);
    let mut sorted = vec![0.0; n];
    for step in &steps {
        sorted.copy_from_slice(&step.speeds);
        sorted.sort_by(|a, b| b.total_cmp(a));
        batch.push(&sorted);
    }
    for (step, x) in steps
        .iter_mut()
        .zip(xbatch::x_measures_mode(params, &batch, mode))
    {
        match mode {
            NumericMode::Strict => {
                debug_assert_eq!(step.x.to_bits(), x.to_bits(), "round {}", step.round);
            }
            NumericMode::Fast => {
                debug_assert!(
                    ((x - step.x) / step.x).abs() <= 2.0 * fastnum::x_budget_rcp(n),
                    "round {}: fast X {x} drifted past budget from {}",
                    step.round,
                    step.x
                );
            }
        }
        step.x = x;
    }
    let mut snaps = Vec::with_capacity(steps.len());
    let mut before = vec![1.0; n];
    for step in steps {
        let regime = classify(params, &before, step.chosen, psi);
        before = step.speeds.clone();
        snaps.push(Snapshot { step, regime });
    }
    let phase2 = snaps.split_off(rounds1);
    Fig34 {
        params: *params,
        psi,
        phase1: snaps,
        phase2,
    }
}

/// The paper's exact configuration: 4 computers, ψ = 1/2, 16 + 4 rounds.
pub fn run_paper() -> Fig34 {
    run(&Params::fig34(), 4, 0.5, 16, 4)
}

/// [`run_paper`] under an explicit [`NumericMode`].
pub fn run_paper_mode(mode: NumericMode) -> Fig34 {
    run_mode(&Params::fig34(), 4, 0.5, 16, 4, mode)
}

impl Fig34 {
    /// Renders one phase as a sequence of ASCII bar charts (the paper's
    /// snapshot panels). `max_rho` sets the bar scale (1 for Figure 3,
    /// 1/16 for Figure 4, mirroring the paper's rescaled axes).
    pub fn render_phase(&self, snaps: &[Snapshot], max_rho: f64) -> String {
        let mut out = String::new();
        for s in snaps {
            let regime = match s.regime {
                Regime::FastestFirst => "cond (1): fastest",
                Regime::SlowestFirst => "cond (2): slowest",
                Regime::TieBreak => "tie-break",
            };
            out.push_str(&bar_chart(
                &format!(
                    "round {:2}: speed up C{} [{}]  X = {:.4}",
                    s.step.round,
                    s.step.chosen + 1,
                    regime,
                    s.step.x
                ),
                &s.step.speeds,
                max_rho,
                40,
            ));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase1_reproduces_figure3() {
        let f = run_paper();
        assert_eq!(f.phase1.len(), 16);
        // Identity-ordered choice sequence: C4×4, C3×4, C2×4, C1×4.
        let chosen: Vec<usize> = f.phase1.iter().map(|s| s.step.chosen).collect();
        assert_eq!(chosen, [3, 3, 3, 3, 2, 2, 2, 2, 1, 1, 1, 1, 0, 0, 0, 0]);
        // Final profile ⟨1/16,…⟩.
        for &s in &f.phase1.last().unwrap().step.speeds {
            assert!((s - 1.0 / 16.0).abs() < 1e-12);
        }
    }

    #[test]
    fn phase1_round1_is_a_tie_break_then_condition1() {
        let f = run_paper();
        assert_eq!(f.phase1[0].regime, Regime::TieBreak, "homogeneous start");
        for s in &f.phase1[1..4] {
            assert_eq!(s.regime, Regime::FastestFirst, "round {}", s.step.round);
        }
        // Round 5 switches computers (condition 2 stops C4, tie-break picks
        // C3 among the remaining ρ = 1 computers).
        assert_eq!(f.phase1[4].step.chosen, 2);
    }

    #[test]
    fn phase2_reproduces_figure4() {
        let f = run_paper();
        assert_eq!(f.phase2.len(), 4);
        // Round 17 starts from the again-homogeneous ⟨1/16,…⟩, so it is a
        // tie-break ("with the tie-breaking mechanism used as necessary");
        // every subsequent round picks the slowest under condition (2).
        assert_eq!(f.phase2[0].regime, Regime::TieBreak);
        for s in &f.phase2[1..] {
            assert_eq!(
                s.regime,
                Regime::SlowestFirst,
                "round {}: condition (2) governs phase 2",
                s.step.round
            );
        }
        // Choices sweep C4, C3, C2, C1 — each still-slow computer once.
        let chosen: Vec<usize> = f.phase2.iter().map(|s| s.step.chosen).collect();
        assert_eq!(chosen, [3, 2, 1, 0]);
        for &s in &f.phase2.last().unwrap().step.speeds {
            assert!((s - 1.0 / 32.0).abs() < 1e-12);
        }
    }

    #[test]
    fn x_increases_every_round() {
        let f = run_paper();
        let all: Vec<f64> = f.phase1.iter().chain(&f.phase2).map(|s| s.step.x).collect();
        for w in all.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn rendering_contains_every_round() {
        let f = run_paper();
        let s1 = f.render_phase(&f.phase1, 1.0);
        assert_eq!(s1.matches("round").count(), 16);
        let s2 = f.render_phase(&f.phase2, 1.0 / 16.0);
        assert_eq!(s2.matches("round").count(), 4);
        assert!(s2.contains("cond (2)"));
    }

    #[test]
    fn table1_params_would_not_show_the_phase_change() {
        // With the µs-scale Table 1 parameters, Aτδ/B² ≈ 1e-11, so
        // condition (1) never releases the fastest computer within 20
        // rounds — the documented reason Figures 3–4 need the fig34
        // parameter set (DESIGN.md substitution S2).
        let f = run(&Params::paper_table1(), 4, 0.5, 16, 4);
        let chosen: Vec<usize> = f.phase1.iter().map(|s| s.step.chosen).collect();
        assert!(
            chosen[1..].iter().all(|&c| c == 3),
            "fastest keeps winning: {chosen:?}"
        );
    }
}
