//! Observability export — the paper's **Figures 1–2** executions as
//! Chrome trace-event JSON (`hetero-cli ... --obs-trace PATH`).
//!
//! [`gantt`](crate::gantt) renders the same executions as ASCII; this
//! module re-runs them and hands the resulting [`exec::Execution`] traces
//! to [`hetero_obs::chrome`], so the Gantt rows of Figure 1 (server,
//! worker, channel) open directly in Perfetto / `chrome://tracing` with
//! the same entity names the ASCII timeline uses (`C0`, `C1`, …, `net`).

use hetero_core::{Params, Profile};
use hetero_protocol::alloc::Plan;
use hetero_protocol::{alloc, exec};

/// The single-remote-computer execution behind Figure 1 (ρ = 0.5,
/// w = 100 work units — the same operating point `gantt::render_fig1`
/// prints).
///
/// The lifespan is set far beyond the makespan so the run is shaped by
/// the work allocation alone, exactly like the closed-form seven-stage
/// pipeline of `timeline::fig1_stages`.
pub fn fig1_execution(params: &Params) -> exec::Execution {
    let profile = Profile::new(vec![0.5]).expect("ρ = 0.5 is a valid rho");
    let plan = Plan {
        order: vec![0],
        work: vec![100.0],
        lifespan: 1e9,
    };
    exec::execute(params, &profile, &plan)
}

/// The FIFO execution behind Figure 2: `fifo_plan` sized for `lifespan`
/// on `profile`, then run on the DES (same construction as
/// `gantt::render_fig2`).
pub fn fig2_execution(params: &Params, profile: &Profile, lifespan: f64) -> exec::Execution {
    let plan = alloc::fifo_plan(params, profile, lifespan).expect("valid plan");
    exec::execute(params, profile, &plan)
}

/// Converts an executed run over `n` remote computers into a Chrome
/// trace-event JSON document.
///
/// Entity naming matches `timeline::gantt_rows`: entity 0 is the server
/// (`C0`), entities `1..=n` are the remote computers (`C1`…`Cn`), and
/// entity `n + 1` is the communication channel (`net`).
pub fn execution_to_chrome(run: &exec::Execution, n: usize) -> String {
    let names: Vec<String> = (0..=n + 1)
        .map(|entity| {
            if entity == exec::SERVER {
                "C0".to_string()
            } else if entity == exec::channel_entity(n) {
                "net".to_string()
            } else {
                format!("C{entity}")
            }
        })
        .collect();
    hetero_obs::chrome::sim_trace_to_chrome(&run.trace, &names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_execution_reproduces_the_seven_stage_pipeline() {
        let p = Params::paper_table1();
        let run = fig1_execution(&p);
        // One remote computer: server, worker, channel all have spans.
        let entities: std::collections::BTreeSet<usize> =
            run.trace.spans().iter().map(|s| s.entity).collect();
        assert!(entities.contains(&0), "server must act");
        assert!(entities.contains(&1), "worker must act");
        assert!(entities.contains(&2), "channel must act");
        assert_eq!(run.plan.work, vec![100.0]);
    }

    #[test]
    fn chrome_export_names_rows_like_the_ascii_timeline() {
        let p = Params::paper_table1();
        let profile = Profile::new(vec![1.0, 0.5, 0.25]).unwrap();
        let run = fig2_execution(&p, &profile, 100.0);
        let doc = execution_to_chrome(&run, profile.n());
        for name in ["\"C0\"", "\"C1\"", "\"C2\"", "\"C3\"", "\"net\""] {
            assert!(doc.contains(name), "trace must name row {name}");
        }
        assert!(doc.starts_with("{\"displayTimeUnit\":\"ms\""));
        // Valid JSON end to end.
        hetero_obs::json::parse(&doc).expect("chrome doc parses");
    }

    #[test]
    fn fig1_chrome_trace_is_loadable_json_with_complete_events() {
        let p = Params::paper_table1();
        let run = fig1_execution(&p);
        let doc = execution_to_chrome(&run, 1);
        let v = hetero_obs::json::parse(&doc).expect("parses");
        let events = v.get("traceEvents").expect("has traceEvents").clone();
        let hetero_obs::json::Value::Arr(items) = events else {
            panic!("traceEvents must be an array");
        };
        let complete = items
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("X"))
            .count();
        // Figure 1 has seven stages across the three entities.
        assert_eq!(complete, 7, "seven complete events expected");
    }
}
