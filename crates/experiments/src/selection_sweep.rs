//! Experiment E20 (extension) — **fleet-scale exact selection**: how far
//! does dominance pruning carry the Lemma 1 search?
//!
//! The Gray-code walk of `hetero_core::selection` certifies optimal
//! sub-clusters by enumerating all `2ⁿ − 1` subsets — infeasible past
//! n = 63 and already ~1.4 s at n = 28 on the bench host. The
//! branch-and-bound search closes the same exact answer by pruning with
//! the Proposition 3 dominance ordering and an admissible bound off the
//! hierarchical summary tree. This sweep makes the gap concrete: for
//! n ∈ {64, 256, 4096} — every one of them unreachable by enumeration —
//! it reports the nodes actually expanded against the exhaustive count,
//! on a distinct-speed family and a duplicate-heavy family (the
//! adversarial case for tie canonicalization).
//!
//! The second half demonstrates the other fleet-scale layer: a 10⁶-worker
//! synthetic fleet (clustergen) summarized by a
//! [`SummaryTree`](hetero_core::hcompress::SummaryTree) and collapsed to
//! 64 Proposition 1 homogeneous equivalents, with the compressed X/HECR
//! checked against the exact flat evaluation.

use hetero_clustergen::{rng_from_seed, sample_speeds, GenConfig, Shape};
use hetero_core::hcompress::SummaryTree;
use hetero_core::xmeasure::x_measure_of_rhos;
use hetero_core::{selection, Params, Profile};

use crate::render::{fmt_f, Table};

/// One branch-and-bound cell of the sweep.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Profile family label.
    pub family: String,
    /// Cluster size.
    pub n: usize,
    /// Subset size searched for.
    pub k: usize,
    /// X-measure of the winning subset.
    pub x: f64,
    /// Decision nodes the search expanded.
    pub nodes_visited: u64,
    /// Subtrees cut by the bound or the dominance rule.
    pub nodes_pruned: u64,
    /// Fraction of the `2ⁿ − 1` exhaustive space never materialized.
    pub pruned_fraction: f64,
    /// Whether the winner is bit-identical to the Proposition 2
    /// fastest-`k` suffix (always true for distinct speeds; duplicate
    /// families may canonicalize to an equal-X, smaller-mask subset).
    pub winner_is_fastest_k: bool,
}

/// The million-worker compression demonstration.
#[derive(Debug, Clone)]
pub struct CompressionDemo {
    /// Fleet size.
    pub n: usize,
    /// Homogeneous equivalents retained.
    pub clusters: usize,
    /// Exact flat X of the fleet.
    pub x_flat: f64,
    /// X of the compressed fleet.
    pub x_compressed: f64,
    /// HECR of the compressed fleet.
    pub hecr_compressed: f64,
    /// The summary tree's certified absolute bound on its X.
    pub x_error_bound: f64,
}

/// The experiment results.
#[derive(Debug, Clone)]
pub struct SelectionSweep {
    /// One row per (family, n) cell.
    pub rows: Vec<SweepRow>,
    /// The 10⁶-worker compression demonstration.
    pub demo: CompressionDemo,
}

/// A duplicate-heavy profile: runs of eight equal speeds, the adversarial
/// input for the equal-speed dominance rule (every run forces exact X
/// ties the canonical min-mask winner must break).
fn duplicate_runs(n: usize) -> Profile {
    // hetero-check: allow(expect) — speeds 1/((i/8)+1) are finite and positive by construction
    Profile::from_unsorted((0..n).map(|i| 1.0 / ((i / 8) + 1) as f64).collect())
        .expect("valid speeds")
}

/// Runs the sweep at the given cluster sizes with `k = n/2`, plus the
/// compression demo over `demo_n` synthetic workers.
pub fn run(params: &Params, sizes: &[usize], demo_n: usize, seed: u64) -> SelectionSweep {
    let mut rows = Vec::with_capacity(2 * sizes.len());
    for &n in sizes {
        let k = n / 2;
        for (family, profile) in [
            ("harmonic", Profile::harmonic(n)),
            ("dup-runs", duplicate_runs(n)),
        ] {
            // hetero-check: allow(expect) — 1 ≤ k = n/2 ≤ n for every swept size
            let (winner, stats) =
                selection::best_k_subset_with_stats(params, &profile, k).expect("valid k");
            // hetero-check: allow(expect) — same bounds as above
            let fastest = selection::fastest_k(&profile, k).expect("valid k");
            let winner_is_fastest_k = winner
                .rhos()
                .iter()
                .zip(fastest.rhos())
                .all(|(a, b)| a.to_bits() == b.to_bits());
            rows.push(SweepRow {
                family: family.to_string(),
                n,
                k,
                x: x_measure_of_rhos(params, winner.rhos()),
                nodes_visited: stats.nodes_visited,
                nodes_pruned: stats.nodes_pruned,
                pruned_fraction: stats.pruned_fraction(n),
                winner_is_fastest_k,
            });
        }
    }

    let mut rng = rng_from_seed(seed);
    let speeds = sample_speeds(&mut rng, GenConfig::new(demo_n), Shape::Uniform);
    // hetero-check: allow(expect) — clustergen samples finite positive speeds
    let tree = SummaryTree::new(params, &speeds).expect("generated speeds are valid");
    // hetero-check: allow(expect) — 64 clusters is a valid compression target
    let fleet = tree.compress(64).expect("valid cluster budget");
    let demo = CompressionDemo {
        n: demo_n,
        clusters: fleet.num_clusters(),
        x_flat: x_measure_of_rhos(params, &speeds),
        x_compressed: fleet.x(),
        // hetero-check: allow(expect) — a nonempty fleet always has a finite HECR
        hecr_compressed: fleet.hecr().expect("valid fleet"),
        x_error_bound: tree.x_error_bound(),
    };
    SelectionSweep { rows, demo }
}

/// The paper-default sweep: n ∈ {64, 256, 4096} under Table 1
/// parameters, with a 10⁶-worker demo fleet.
pub fn run_paper() -> SelectionSweep {
    run(&Params::paper_table1(), &[64, 256, 4096], 1_000_000, 20)
}

/// A miniature sweep for smoke tests and CI: small sizes, small fleet.
pub fn run_smoke() -> SelectionSweep {
    run(&Params::paper_table1(), &[16, 64], 10_000, 20)
}

impl SelectionSweep {
    /// ASCII rendering of the branch-and-bound sweep.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "E20 — exact best-k selection by branch-and-bound (vs 2^n enumeration)",
            &[
                "family",
                "n",
                "k",
                "X(winner)",
                "nodes visited",
                "nodes pruned",
                "pruned %",
                "winner = fastest-k",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.family.clone(),
                r.n.to_string(),
                r.k.to_string(),
                fmt_f(r.x, 4),
                r.nodes_visited.to_string(),
                r.nodes_pruned.to_string(),
                fmt_f(100.0 * r.pruned_fraction, 12),
                if r.winner_is_fastest_k { "yes" } else { "tie" }.to_string(),
            ]);
        }
        t
    }

    /// ASCII rendering of the compression demonstration.
    pub fn demo_table(&self) -> Table {
        let mut t = Table::new(
            "E20 — hierarchical HECR compression of a synthetic mega-fleet",
            &[
                "workers",
                "clusters",
                "X flat",
                "X compressed",
                "HECR",
                "certified |ΔX| bound",
            ],
        );
        let d = &self.demo;
        t.row(vec![
            d.n.to_string(),
            d.clusters.to_string(),
            fmt_f(d.x_flat, 4),
            fmt_f(d.x_compressed, 4),
            format!("{:.6e}", d.hecr_compressed),
            format!("{:.3e}", d.x_error_bound),
        ]);
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_sweep_prunes_nearly_everything() {
        let s = run_smoke();
        assert_eq!(s.rows.len(), 4);
        for r in &s.rows {
            assert!(r.pruned_fraction > 0.99, "{} n={}", r.family, r.n);
            assert!(r.x > 0.0);
            assert!(r.nodes_visited > 0);
        }
        // Distinct speeds: the Proposition 2 suffix wins outright.
        assert!(s
            .rows
            .iter()
            .filter(|r| r.family == "harmonic")
            .all(|r| r.winner_is_fastest_k));
    }

    #[test]
    fn compression_demo_is_tight() {
        let s = run_smoke();
        let d = &s.demo;
        assert_eq!(d.clusters, 64);
        let rel = (d.x_compressed - d.x_flat).abs() / d.x_flat;
        assert!(rel < 1e-10, "compressed X off by {rel}");
        assert!(d.hecr_compressed > 0.0);
    }

    #[test]
    fn render_contains_every_cell() {
        let s = run_smoke();
        let ascii = s.table().to_ascii();
        assert!(ascii.contains("harmonic"));
        assert!(ascii.contains("dup-runs"));
        assert!(ascii.contains("pruned %"));
        let demo = s.demo_table().to_ascii();
        assert!(demo.contains("10000"));
    }

    #[test]
    fn sweep_is_deterministic() {
        let a = run_smoke();
        let b = run_smoke();
        assert_eq!(a.table().to_ascii(), b.table().to_ascii());
        assert_eq!(a.demo_table().to_ascii(), b.demo_table().to_ascii());
    }
}
