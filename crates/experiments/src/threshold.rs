//! Experiment E7 — §4.3: the **variance-gap threshold θ**.
//!
//! The paper's refinement of E6: although variance alone errs on ~23 % of
//! equal-mean pairs, every observed error had a *small* variance gap. The
//! authors searched for the smallest θ such that "variance larger by at
//! least θ" was a 100 %-correct predictor across all their trials and
//! found θ = 0.167.
//!
//! We reproduce the search: draw pairs from shape combinations spanning
//! tiny to near-maximal variance gaps, record `(gap, correct?)` for each,
//! and report the largest gap that ever mispredicted — the empirical θ —
//! together with an accuracy-by-gap histogram.

use hetero_clustergen::{rng_from_seed, EqualMeanPairGen, GenConfig, PairBatcher, Shape};
use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::{NumericMode, Params};
use hetero_par::{seed, Pool};

use crate::render::{fmt_f, Table};

/// One trial's record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GapSample {
    /// `|VAR(P1) − VAR(P2)|`.
    pub gap: f64,
    /// Whether the larger-variance cluster was the more powerful.
    pub correct: bool,
}

/// Configuration of the threshold search.
#[derive(Debug, Clone)]
pub struct ThresholdConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster sizes to probe.
    pub sizes: Vec<usize>,
    /// Trials per (size, shape-combination).
    pub trials_per_combo: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Histogram bucket width (in variance units).
    pub bucket_width: f64,
    /// Numeric mode for the batched X pass (`Strict` by default).
    pub numeric: NumericMode,
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        ThresholdConfig {
            params: Params::paper_table1(),
            sizes: vec![4, 16, 64, 256],
            trials_per_combo: 1500,
            seed: 0xBEEF,
            threads: hetero_par::default_threads(),
            bucket_width: 0.02,
            numeric: NumericMode::Strict,
        }
    }
}

/// The search result.
#[derive(Debug, Clone)]
pub struct ThresholdExperiment {
    /// Configuration used.
    pub config: ThresholdConfig,
    /// Every decided trial.
    pub samples: Vec<GapSample>,
    /// The empirical θ: the largest gap that ever mispredicted (`0` when
    /// no trial erred). Any gap strictly above this was always correct.
    pub theta: f64,
    /// Accuracy per gap bucket: `(bucket_lo, decided, correct)`.
    pub histogram: Vec<(f64, usize, usize)>,
}

const SHAPE_COMBOS: [(Shape, Shape); 4] = [
    (Shape::Uniform, Shape::Uniform),
    (Shape::Concentrated, Shape::Uniform),
    (Shape::Uniform, Shape::Bimodal),
    (Shape::Concentrated, Shape::Bimodal),
];

/// Trials per batched block (same policy as the variance sweep).
const TRIAL_BLOCK: usize = 64;

/// Runs trials `lo..hi` of one (size, shape-combo) cell through the
/// batched kernel — generation bulk-loads one [`ProfileBatch`], a single
/// lockstep pass supplies every X-value, and each trial's record is
/// bit-identical to the scalar per-trial path it replaced (pinned by the
/// `batched_run_matches_the_scalar_reference` test below).
fn block_samples(
    params: &Params,
    n: usize,
    shapes: (Shape, Shape),
    numeric: NumericMode,
    combo_seed: u64,
    lo: usize,
    hi: usize,
) -> Vec<Option<GapSample>> {
    let gen = EqualMeanPairGen::new(GenConfig::new(n), shapes.0, shapes.1);
    let mut batch = ProfileBatch::with_capacity(2 * (hi - lo), 2 * n * (hi - lo));
    let mut batcher = PairBatcher::new();
    // Signed gap per judged trial; None when the trial tied before X.
    let mut gaps = Vec::with_capacity(hi - lo);
    for t in lo..hi {
        let mut rng = rng_from_seed(seed::derive(combo_seed, t as u64));
        match batcher.sample_into(&gen, &mut rng, &mut batch) {
            None => gaps.push(None),
            Some(stats) => {
                let gap = stats.var1 - stats.var2;
                if gap.abs() < 1e-12 {
                    batch.truncate(batch.len() - 2);
                    gaps.push(None);
                } else {
                    gaps.push(Some(gap));
                }
            }
        }
    }
    let xs = xbatch::x_measures_mode(params, &batch, numeric);
    let mut next = 0usize;
    gaps.into_iter()
        .map(|gap| {
            let gap = gap?;
            let (x1, x2) = (xs[next], xs[next + 1]);
            next += 2;
            if (x1 - x2).abs() / x1.max(x2) < 1e-13 {
                return None;
            }
            Some(GapSample {
                gap: gap.abs(),
                correct: (gap > 0.0) == (x1 > x2),
            })
        })
        .collect()
}

/// Runs the full search.
pub fn run(config: &ThresholdConfig) -> ThresholdExperiment {
    let pool = Pool::global();
    hetero_obs::count(
        "trials.threshold",
        (config.trials_per_combo * config.sizes.len() * SHAPE_COMBOS.len()) as u64,
    );
    let mut samples = Vec::new();
    for &n in &config.sizes {
        for (combo_idx, &shapes) in SHAPE_COMBOS.iter().enumerate() {
            let combo_seed = seed::derive(config.seed, (n as u64) << 8 | combo_idx as u64);
            let blocks = config.trials_per_combo.div_ceil(TRIAL_BLOCK);
            let (params, trials) = (config.params, config.trials_per_combo);
            let numeric = config.numeric;
            let cell = pool.map(blocks, config.threads, move |b| {
                let lo = b * TRIAL_BLOCK;
                let hi = ((b + 1) * TRIAL_BLOCK).min(trials);
                block_samples(&params, n, shapes, numeric, combo_seed, lo, hi)
            });
            samples.extend(cell.into_iter().flatten().flatten());
        }
    }

    let theta = samples
        .iter()
        .filter(|s| !s.correct)
        .map(|s| s.gap)
        .fold(0.0f64, f64::max);

    let max_gap = samples.iter().map(|s| s.gap).fold(0.0f64, f64::max);
    let buckets = (max_gap / config.bucket_width).ceil() as usize + 1;
    let mut histogram = vec![(0.0, 0usize, 0usize); buckets];
    for (i, h) in histogram.iter_mut().enumerate() {
        h.0 = i as f64 * config.bucket_width;
    }
    for s in &samples {
        let b = (s.gap / config.bucket_width) as usize;
        histogram[b].1 += 1;
        if s.correct {
            histogram[b].2 += 1;
        }
    }
    histogram.retain(|&(_, d, _)| d > 0);

    ThresholdExperiment {
        config: config.clone(),
        samples,
        theta,
        histogram,
    }
}

impl ThresholdExperiment {
    /// Fraction of decided trials the bare predictor got right.
    pub fn overall_accuracy(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        self.samples.iter().filter(|s| s.correct).count() as f64 / self.samples.len() as f64
    }

    /// ASCII rendering of the accuracy-by-gap histogram.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "§4.3 — accuracy by variance gap ({} samples, θ = {:.3}, paper θ = 0.167)",
                self.samples.len(),
                self.theta
            ),
            &["gap ≥", "decided", "correct", "accuracy %"],
        );
        for &(lo, decided, correct) in &self.histogram {
            t.row(vec![
                fmt_f(lo, 3),
                decided.to_string(),
                correct.to_string(),
                fmt_f(100.0 * correct as f64 / decided as f64, 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hetero_core::xengine::x_pair;

    /// The scalar reference: one trial for a given shape combination,
    /// exactly as the pre-batch driver computed it.
    fn one_trial(
        params: &Params,
        n: usize,
        shapes: (Shape, Shape),
        trial_seed: u64,
    ) -> Option<GapSample> {
        let mut rng = rng_from_seed(trial_seed);
        let gen = EqualMeanPairGen::new(GenConfig::new(n), shapes.0, shapes.1);
        let pair = gen.sample(&mut rng)?;
        let gap = pair.var1 - pair.var2;
        if gap.abs() < 1e-12 {
            return None;
        }
        // Both clusters of the pair in one interleaved xengine pass
        // (bit-identical to two x_measure calls).
        let (x1, x2) = x_pair(params, pair.p1.rhos(), pair.p2.rhos());
        if (x1 - x2).abs() / x1.max(x2) < 1e-13 {
            return None;
        }
        Some(GapSample {
            gap: gap.abs(),
            correct: (gap > 0.0) == (x1 > x2),
        })
    }

    fn quick_config() -> ThresholdConfig {
        ThresholdConfig {
            sizes: vec![8, 64],
            trials_per_combo: 250,
            seed: 7,
            threads: 2,
            ..ThresholdConfig::default()
        }
    }

    #[test]
    fn a_finite_threshold_exists() {
        let e = run(&quick_config());
        assert!(!e.samples.is_empty());
        // Some errors occur (otherwise the threshold experiment would be
        // moot) but the worst error has a bounded gap, and gaps above θ
        // are all correct by construction.
        let max_gap = e.samples.iter().map(|s| s.gap).fold(0.0f64, f64::max);
        assert!(
            e.theta < max_gap,
            "largest gaps must predict correctly: θ = {}, max = {max_gap}",
            e.theta
        );
        for s in &e.samples {
            if s.gap > e.theta {
                assert!(s.correct);
            }
        }
    }

    #[test]
    fn accuracy_improves_with_gap() {
        let e = run(&quick_config());
        // Compare small-gap vs large-gap halves.
        let mid = e.theta.max(0.02);
        let acc = |pred: &dyn Fn(&GapSample) -> bool| -> f64 {
            let subset: Vec<_> = e.samples.iter().filter(|s| pred(s)).collect();
            if subset.is_empty() {
                return 1.0;
            }
            subset.iter().filter(|s| s.correct).count() as f64 / subset.len() as f64
        };
        let small = acc(&|s: &GapSample| s.gap <= mid);
        let large = acc(&|s: &GapSample| s.gap > mid);
        assert!(
            large >= small,
            "large-gap accuracy {large} < small-gap {small}"
        );
        assert!(
            (large - 1.0).abs() < 1e-12,
            "gaps above θ are always correct"
        );
    }

    #[test]
    fn overall_accuracy_beats_chance() {
        let e = run(&quick_config());
        assert!(e.overall_accuracy() > 0.6, "{}", e.overall_accuracy());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let mut cfg = quick_config();
        cfg.trials_per_combo = 100;
        cfg.threads = 1;
        let a = run(&cfg);
        cfg.threads = 8;
        let b = run(&cfg);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.theta, b.theta);
    }

    #[test]
    fn batched_run_matches_the_scalar_reference() {
        let mut cfg = quick_config();
        cfg.trials_per_combo = 120;
        let e = run(&cfg);
        let mut reference = Vec::new();
        for &n in &cfg.sizes {
            for (combo_idx, &shapes) in SHAPE_COMBOS.iter().enumerate() {
                let combo_seed = seed::derive(cfg.seed, (n as u64) << 8 | combo_idx as u64);
                for t in 0..cfg.trials_per_combo as u64 {
                    reference.extend(one_trial(
                        &cfg.params,
                        n,
                        shapes,
                        seed::derive(combo_seed, t),
                    ));
                }
            }
        }
        assert_eq!(e.samples.len(), reference.len());
        for (got, want) in e.samples.iter().zip(&reference) {
            assert_eq!(got.gap.to_bits(), want.gap.to_bits());
            assert_eq!(got.correct, want.correct);
        }
    }

    #[test]
    fn histogram_covers_all_samples() {
        let e = run(&quick_config());
        let total: usize = e.histogram.iter().map(|&(_, d, _)| d).sum();
        assert_eq!(total, e.samples.len());
        let s = e.table().to_ascii();
        assert!(s.contains("accuracy %"));
    }
}
