//! Experiment E6 — §4.3: **variance as a predictor of power** for
//! equal-mean clusters.
//!
//! For each cluster size `n`, draw many random pairs of equal-mean
//! profiles and label each pair *good* when the larger-variance cluster is
//! the more powerful (larger X-measure), *bad* otherwise. The paper
//! found bad-pair rates growing to roughly 23 % (around n = 128) and
//! plateauing — i.e. variance is right about 76–77 % of the time.
//!
//! Trials run in blocks on the persistent `hetero-par` [`Pool`]: each
//! block bulk-loads its equal-mean pairs into a structure-of-arrays
//! [`ProfileBatch`] and judges them through the lockstep batched
//! X-kernel — bit-identical to the scalar [`one_trial`] path (pinned by
//! a test). Per-trial RNG streams are derived from the root seed and the
//! trial index, so the numbers are independent of the thread count.

use hetero_clustergen::{rng_from_seed, EqualMeanPairGen, GenConfig, PairBatcher, Shape};
use hetero_core::xbatch::{self, ProfileBatch};
use hetero_core::xengine::x_pair;
use hetero_core::{NumericMode, Params};
use hetero_par::{seed, Pool};
use rand::Rng;

use crate::render::{fmt_f, Table};

/// How pair variances are distributed (DESIGN.md substitution S3: the
/// paper's generator is unavailable, so we report both ends of the
/// plausible family — the paper's ~23 % bad-pair plateau falls between
/// them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairGenerator {
    /// Both sides i.i.d. uniform, mean-matched: variance gaps are small,
    /// so the predictor faces its hardest cases (~40 % bad plateau).
    SameUniform,
    /// Each side's shape drawn at random from
    /// {uniform, bimodal, concentrated}: gaps span the full range
    /// (~12 % bad plateau).
    DiverseShapes,
}

/// Outcome of one pair trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrialOutcome {
    /// Larger variance ⇒ more powerful: the predictor was right.
    Good,
    /// Larger variance but *less* powerful: the predictor was wrong.
    Bad,
    /// Variances or X-values too close to call.
    Tie,
}

/// Per-size aggregate.
#[derive(Debug, Clone, PartialEq)]
pub struct VarianceRow {
    /// Cluster size.
    pub n: usize,
    /// Decided trials (ties excluded).
    pub decided: usize,
    /// Bad trials.
    pub bad: usize,
    /// Ties.
    pub ties: usize,
    /// `bad / decided`.
    pub bad_fraction: f64,
}

/// The experiment's configuration.
#[derive(Debug, Clone)]
pub struct VarianceConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster sizes to probe.
    pub sizes: Vec<usize>,
    /// Trials per size.
    pub trials: usize,
    /// Root RNG seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
    /// Pair-generation strategy.
    pub generator: PairGenerator,
    /// Numeric mode for the batched X pass (`Strict` by default; `Fast`
    /// uses the certified divide-free kernel, which may flip trials
    /// sitting within its ulp budget of the 1e-13 tie threshold).
    pub numeric: NumericMode,
}

impl Default for VarianceConfig {
    fn default() -> Self {
        VarianceConfig {
            params: Params::paper_table1(),
            sizes: vec![4, 8, 16, 32, 64, 128, 256, 512, 1024],
            trials: 2000,
            seed: 0xC0FFEE,
            threads: hetero_par::default_threads(),
            generator: PairGenerator::DiverseShapes,
            numeric: NumericMode::Strict,
        }
    }
}

/// The experiment results.
#[derive(Debug, Clone)]
pub struct VarianceExperiment {
    /// Configuration used.
    pub config: VarianceConfig,
    /// One row per size.
    pub rows: Vec<VarianceRow>,
}

/// Runs one trial: sample an equal-mean pair and judge the predictor.
pub fn one_trial(
    params: &Params,
    n: usize,
    generator: PairGenerator,
    trial_seed: u64,
) -> TrialOutcome {
    let mut rng = rng_from_seed(trial_seed);
    let (s1, s2) = match generator {
        PairGenerator::SameUniform => (Shape::Uniform, Shape::Uniform),
        PairGenerator::DiverseShapes => {
            const SHAPES: [Shape; 3] = [Shape::Uniform, Shape::Bimodal, Shape::Concentrated];
            (
                SHAPES[rng.random_range(0..SHAPES.len())],
                SHAPES[rng.random_range(0..SHAPES.len())],
            )
        }
    };
    let gen = EqualMeanPairGen::new(GenConfig::new(n), s1, s2);
    let Some(pair) = gen.sample(&mut rng) else {
        return TrialOutcome::Tie;
    };
    let gap = pair.var1 - pair.var2;
    if gap.abs() < 1e-12 {
        return TrialOutcome::Tie;
    }
    // Both clusters of the pair in one interleaved xengine pass
    // (bit-identical to two x_measure calls, ~2× fewer stalls).
    let (x1, x2) = x_pair(params, pair.p1.rhos(), pair.p2.rhos());
    if (x1 - x2).abs() / x1.max(x2) < 1e-13 {
        return TrialOutcome::Tie;
    }
    if (gap > 0.0) == (x1 > x2) {
        TrialOutcome::Good
    } else {
        TrialOutcome::Bad
    }
}

/// Trials per batched block: 64 pairs fill one SoA arena per pool job,
/// amortizing allocation without inflating worker memory.
const TRIAL_BLOCK: usize = 64;

/// Pre-X classification of one trial inside a block.
enum Pending {
    /// Generation failed (no rows pushed) — a tie.
    GenFail,
    /// Variance gap below threshold (rows retracted) — a tie.
    GapTie,
    /// Judged by the batched X pass; `gap_positive` records the sign.
    Judge {
        /// `var1 > var2`.
        gap_positive: bool,
    },
}

/// Runs trials `lo..hi` of one size through the batched kernel:
/// generation streams straight into one [`ProfileBatch`], every judged
/// pair's X-values come from a single lockstep pass, and the outcomes
/// are bit-identical to [`one_trial`] per trial (pinned by a test).
fn block_outcomes(
    params: &Params,
    n: usize,
    generator: PairGenerator,
    numeric: NumericMode,
    size_seed: u64,
    lo: usize,
    hi: usize,
) -> Vec<TrialOutcome> {
    let mut batch = ProfileBatch::with_capacity(2 * (hi - lo), 2 * n * (hi - lo));
    let mut batcher = PairBatcher::new();
    let mut pending = Vec::with_capacity(hi - lo);
    for t in lo..hi {
        let mut rng = rng_from_seed(seed::derive(size_seed, t as u64));
        let (s1, s2) = match generator {
            PairGenerator::SameUniform => (Shape::Uniform, Shape::Uniform),
            PairGenerator::DiverseShapes => {
                const SHAPES: [Shape; 3] = [Shape::Uniform, Shape::Bimodal, Shape::Concentrated];
                (
                    SHAPES[rng.random_range(0..SHAPES.len())],
                    SHAPES[rng.random_range(0..SHAPES.len())],
                )
            }
        };
        let gen = EqualMeanPairGen::new(GenConfig::new(n), s1, s2);
        match batcher.sample_into(&gen, &mut rng, &mut batch) {
            None => pending.push(Pending::GenFail),
            Some(stats) => {
                let gap = stats.var1 - stats.var2;
                if gap.abs() < 1e-12 {
                    // Decided before X: retract the pair from the batch.
                    batch.truncate(batch.len() - 2);
                    pending.push(Pending::GapTie);
                } else {
                    pending.push(Pending::Judge {
                        gap_positive: gap > 0.0,
                    });
                }
            }
        }
    }
    let xs = xbatch::x_measures_mode(params, &batch, numeric);
    let mut next = 0usize;
    pending
        .into_iter()
        .map(|p| match p {
            Pending::GenFail | Pending::GapTie => TrialOutcome::Tie,
            Pending::Judge { gap_positive } => {
                let (x1, x2) = (xs[next], xs[next + 1]);
                next += 2;
                if (x1 - x2).abs() / x1.max(x2) < 1e-13 {
                    TrialOutcome::Tie
                } else if gap_positive == (x1 > x2) {
                    TrialOutcome::Good
                } else {
                    TrialOutcome::Bad
                }
            }
        })
        .collect()
}

/// Runs the full sweep.
pub fn run(config: &VarianceConfig) -> VarianceExperiment {
    let pool = Pool::global();
    hetero_obs::count(
        "trials.variance",
        (config.trials * config.sizes.len()) as u64,
    );
    let rows = config
        .sizes
        .iter()
        .map(|&n| {
            // Namespace the per-trial seeds by size so sizes don't share
            // RNG streams.
            let size_seed = seed::derive(config.seed, n as u64);
            let blocks = config.trials.div_ceil(TRIAL_BLOCK);
            let (params, generator, trials) = (config.params, config.generator, config.trials);
            let numeric = config.numeric;
            let outcomes: Vec<TrialOutcome> = pool
                .map(blocks, config.threads, move |b| {
                    let lo = b * TRIAL_BLOCK;
                    let hi = ((b + 1) * TRIAL_BLOCK).min(trials);
                    block_outcomes(&params, n, generator, numeric, size_seed, lo, hi)
                })
                .into_iter()
                .flatten()
                .collect();
            let bad = outcomes.iter().filter(|o| **o == TrialOutcome::Bad).count();
            let ties = outcomes.iter().filter(|o| **o == TrialOutcome::Tie).count();
            let decided = outcomes.len() - ties;
            VarianceRow {
                n,
                decided,
                bad,
                ties,
                bad_fraction: if decided == 0 {
                    0.0
                } else {
                    bad as f64 / decided as f64
                },
            }
        })
        .collect();
    VarianceExperiment {
        config: config.clone(),
        rows,
    }
}

impl VarianceExperiment {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "§4.3 — variance as a power predictor ({:?} pairs, {} trials/size, seed {})",
                self.config.generator, self.config.trials, self.config.seed
            ),
            &["n", "decided", "bad", "ties", "bad %", "correct %"],
        );
        for r in &self.rows {
            t.row(vec![
                r.n.to_string(),
                r.decided.to_string(),
                r.bad.to_string(),
                r.ties.to_string(),
                fmt_f(100.0 * r.bad_fraction, 1),
                fmt_f(100.0 * (1.0 - r.bad_fraction), 1),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> VarianceConfig {
        VarianceConfig {
            sizes: vec![2, 8, 64],
            trials: 300,
            seed: 42,
            threads: 2,
            ..VarianceConfig::default()
        }
    }

    #[test]
    fn n2_is_always_good() {
        // Theorem 5(2): for two-computer clusters the predictor is exact.
        let e = run(&quick_config());
        let n2 = &e.rows[0];
        assert_eq!(n2.n, 2);
        assert_eq!(n2.bad, 0, "biconditional at n = 2");
        assert!(n2.decided > 200, "most trials decide");
    }

    #[test]
    fn bad_pairs_exist_at_larger_n_but_stay_minority() {
        let e = run(&quick_config());
        let n64 = e.rows.iter().find(|r| r.n == 64).unwrap();
        assert!(
            n64.bad_fraction < 0.5,
            "variance predictor stays better than a coin: {}",
            n64.bad_fraction
        );
    }

    #[test]
    fn results_independent_of_thread_count() {
        let mut cfg = quick_config();
        cfg.threads = 1;
        let serial = run(&cfg);
        cfg.threads = 8;
        let parallel = run(&cfg);
        assert_eq!(serial.rows, parallel.rows);
    }

    #[test]
    fn one_trial_is_deterministic() {
        let p = Params::paper_table1();
        for g in [PairGenerator::SameUniform, PairGenerator::DiverseShapes] {
            assert_eq!(one_trial(&p, 16, g, 99), one_trial(&p, 16, g, 99));
        }
    }

    #[test]
    fn diverse_pairs_are_easier_than_same_uniform() {
        // The generator family brackets the paper's ~23 % bad plateau:
        // same-uniform pairs are harder, diverse-shape pairs easier.
        let mut cfg = quick_config();
        cfg.sizes = vec![64];
        cfg.trials = 500;
        cfg.generator = PairGenerator::SameUniform;
        let hard = run(&cfg).rows[0].bad_fraction;
        cfg.generator = PairGenerator::DiverseShapes;
        let easy = run(&cfg).rows[0].bad_fraction;
        assert!(
            easy < hard,
            "diverse {easy} should beat same-uniform {hard}"
        );
        assert!(hard > 0.23 && easy < 0.23, "paper's plateau is bracketed");
    }

    #[test]
    fn batched_run_matches_the_scalar_reference() {
        // The batched block path (SoA arena + lockstep kernel) must land
        // on exactly the outcomes of the per-trial scalar reference.
        let cfg = quick_config();
        let e = run(&cfg);
        for (row, &n) in e.rows.iter().zip(&cfg.sizes) {
            let size_seed = seed::derive(cfg.seed, n as u64);
            let (mut bad, mut ties) = (0usize, 0usize);
            for t in 0..cfg.trials as u64 {
                match one_trial(&cfg.params, n, cfg.generator, seed::derive(size_seed, t)) {
                    TrialOutcome::Bad => bad += 1,
                    TrialOutcome::Tie => ties += 1,
                    TrialOutcome::Good => {}
                }
            }
            assert_eq!((row.bad, row.ties), (bad, ties), "n = {n}");
        }
    }

    #[test]
    fn render_has_one_row_per_size() {
        let e = run(&quick_config());
        assert_eq!(e.table().len(), 3);
        let s = e.table().to_ascii();
        assert!(s.contains("correct %"));
    }
}
