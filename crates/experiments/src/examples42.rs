//! Experiment E8 — §4's worked examples: mean speed misleads, minorization
//! is sufficient but not necessary, and heterogeneity lends power
//! (Corollary 1).

use hetero_core::xmeasure::x_measure;
use hetero_core::{hecr, Params, Profile};

use crate::render::{fmt_f, Table};

/// One comparison row.
#[derive(Debug, Clone)]
pub struct ComparisonRow {
    /// Display name of the comparison.
    pub label: &'static str,
    /// First profile.
    pub p1: Profile,
    /// Second profile.
    pub p2: Profile,
    /// X-measures.
    pub x: (f64, f64),
    /// HECRs.
    pub hecr: (f64, f64),
    /// Means.
    pub mean: (f64, f64),
    /// Variances.
    pub var: (f64, f64),
}

/// The §4 demonstration set.
#[derive(Debug, Clone)]
pub struct Section4Examples {
    /// All comparisons.
    pub rows: Vec<ComparisonRow>,
}

fn compare(label: &'static str, params: &Params, p1: Profile, p2: Profile) -> ComparisonRow {
    let x = (x_measure(params, &p1), x_measure(params, &p2));
    let h = (
        hecr::hecr(params, &p1).expect("valid"),
        hecr::hecr(params, &p2).expect("valid"),
    );
    ComparisonRow {
        label,
        mean: (p1.mean(), p2.mean()),
        var: (p1.variance(), p2.variance()),
        p1,
        p2,
        x,
        hecr: h,
    }
}

/// Builds the three §4 demonstrations under the given parameters.
pub fn run(params: &Params) -> Section4Examples {
    let rows = vec![
        // §4 opening example: worse mean, more power.
        compare(
            "mean misleads: ⟨0.99, 0.02⟩ vs ⟨0.5, 0.5⟩",
            params,
            Profile::new(vec![0.99, 0.02]).expect("valid"),
            Profile::new(vec![0.5, 0.5]).expect("valid"),
        ),
        // Corollary 1: equal mean, hetero beats homo (n = 2).
        compare(
            "Corollary 1: ⟨1, 1/2⟩ vs ⟨3/4, 3/4⟩ (equal mean)",
            params,
            Profile::new(vec![1.0, 0.5]).expect("valid"),
            Profile::homogeneous(2, 0.75).expect("valid"),
        ),
        // Minorization: strictly faster everywhere.
        compare(
            "minorization: ⟨0.9, 0.4⟩ vs ⟨1, 1/2⟩",
            params,
            Profile::new(vec![0.9, 0.4]).expect("valid"),
            Profile::new(vec![1.0, 0.5]).expect("valid"),
        ),
    ];
    Section4Examples { rows }
}

/// The paper's parameterization.
pub fn run_paper() -> Section4Examples {
    run(&Params::paper_table1())
}

impl Section4Examples {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "§4 examples — profile statistics vs actual power",
            &[
                "comparison",
                "mean1",
                "mean2",
                "var1",
                "var2",
                "X1",
                "X2",
                "winner",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                r.label.to_string(),
                fmt_f(r.mean.0, 3),
                fmt_f(r.mean.1, 3),
                fmt_f(r.var.0, 4),
                fmt_f(r.var.1, 4),
                fmt_f(r.x.0, 3),
                fmt_f(r.x.1, 3),
                if r.x.0 > r.x.1 { "P1" } else { "P2" }.to_string(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_example_shows_inversion() {
        let e = run_paper();
        let r = &e.rows[0];
        assert!(r.mean.0 > r.mean.1, "P1 has the worse mean");
        assert!(r.x.0 > r.x.1, "yet P1 has the greater power");
        assert!(r.hecr.0 < r.hecr.1, "and the smaller HECR");
    }

    #[test]
    fn corollary1_heterogeneity_lends_power() {
        let e = run_paper();
        let r = &e.rows[1];
        assert!((r.mean.0 - r.mean.1).abs() < 1e-12, "equal means");
        assert!(r.var.0 > r.var.1, "P1 is the heterogeneous one");
        assert!(r.x.0 > r.x.1, "heterogeneity wins");
    }

    #[test]
    fn minorization_example_dominates() {
        let e = run_paper();
        let r = &e.rows[2];
        assert!(r.p1.minorizes(&r.p2));
        assert!(r.x.0 > r.x.1);
    }

    #[test]
    fn render_names_the_winner() {
        let s = run_paper().table().to_ascii();
        assert!(s.contains("winner"));
        assert!(s.contains("P1"));
    }
}
