//! Experiment E3 — the paper's **Table 4**: work ratios as each computer
//! of `P = ⟨1, 1/2, 1/3, 1/4⟩` is sped up additively by `φ = 1/16`.
//!
//! Theorem 3 "in action": the ratio grows strictly with the speed of the
//! upgraded computer, peaking at the fastest.

use hetero_core::xmeasure::work_ratio;
use hetero_core::{speedup, Params, Profile};

use crate::render::{fmt_f, Table};

/// The published Table 4 ratios for `i = 1…4`.
pub const PAPER_RATIOS: [f64; 4] = [1.008, 1.014, 1.034, 1.159];

/// One row: speeding up computer `index`.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Which computer was sped up (0-based; 0 is slowest, as in C_1).
    pub index: usize,
    /// The upgraded profile.
    pub profile: Profile,
    /// `W(L;P⁽ⁱ⁾) / W(L;P)`.
    pub ratio: f64,
}

/// The reproduced table.
#[derive(Debug, Clone)]
pub struct Table4 {
    /// The base profile.
    pub base: Profile,
    /// The additive term φ.
    pub phi: f64,
    /// One row per upgraded computer, slowest first.
    pub rows: Vec<Table4Row>,
}

/// Computes the table for any base profile and additive term.
pub fn run(params: &Params, base: &Profile, phi: f64) -> Table4 {
    let rows = (0..base.n())
        .map(|index| {
            let upgraded =
                speedup::additive_speedup(base, index, phi).expect("φ < every ρ by construction");
            let ratio = work_ratio(params, &upgraded, base);
            Table4Row {
                index,
                profile: upgraded,
                ratio,
            }
        })
        .collect();
    Table4 {
        base: base.clone(),
        phi,
        rows,
    }
}

/// The paper's exact configuration.
pub fn run_paper() -> Table4 {
    let base = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).expect("valid");
    run(&Params::paper_table1(), &base, 1.0 / 16.0)
}

impl Table4 {
    /// ASCII rendering with the paper's ratios alongside.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Table 4 — work ratios speeding up each computer additively (φ = {})",
                self.phi
            ),
            &["i", "upgraded profile", "ratio (ours)", "ratio (paper)"],
        );
        for r in &self.rows {
            let profile_s = r
                .profile
                .rhos()
                .iter()
                .map(|v| fmt_f(*v, 4))
                .collect::<Vec<_>>()
                .join(" ");
            t.row(vec![
                (r.index + 1).to_string(),
                format!("⟨{profile_s}⟩"),
                fmt_f(r.ratio, 3),
                PAPER_RATIOS
                    .get(r.index)
                    .map_or("-".into(), |v| fmt_f(*v, 3)),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_ratios_exceed_one() {
        // Proposition 2 "in action".
        for r in run_paper().rows {
            assert!(r.ratio > 1.0, "index {}", r.index);
        }
    }

    #[test]
    fn ratios_increase_toward_the_fastest() {
        // Theorem 3's shape: upgrading a faster computer helps more.
        let t = run_paper();
        for w in t.rows.windows(2) {
            assert!(w[1].ratio > w[0].ratio);
        }
    }

    #[test]
    fn matches_paper_magnitudes() {
        // Per-cell: ours are 1.007/1.029/1.069/1.133 vs the paper's
        // 1.008/1.014/1.034/1.159 — the paper's unstated evaluation
        // settings bend the curve, but every cell is within 0.04 and the
        // shape invariants below are exact (see EXPERIMENTS.md).
        let t = run_paper();
        for (row, paper) in t.rows.iter().zip(PAPER_RATIOS) {
            assert!(
                (row.ratio - paper).abs() < 0.04,
                "index {}: ours {} vs paper {paper}",
                row.index,
                row.ratio
            );
        }
    }

    #[test]
    fn qualitative_gap_between_best_and_rest() {
        // Speeding the fastest is dramatically better than the slowest —
        // and the total span gain₄/gain₁ ≈ 20 matches the paper's
        // (0.159/0.008 ≈ 19.9) almost exactly.
        let t = run_paper();
        let slowest_gain = t.rows[0].ratio - 1.0;
        let fastest_gain = t.rows[3].ratio - 1.0;
        let span = fastest_gain / slowest_gain;
        assert!((span - 19.9).abs() < 1.0, "span {span}");
        let paper_span = (PAPER_RATIOS[3] - 1.0) / (PAPER_RATIOS[0] - 1.0);
        assert!((span - paper_span).abs() / paper_span < 0.05);
    }

    #[test]
    fn render_shows_upgraded_profiles() {
        let s = run_paper().table().to_ascii();
        assert!(s.contains("0.1875"), "3/16 = 0.1875 appears: {s}");
    }

    #[test]
    fn other_bases_keep_the_theorem3_shape() {
        let p = Params::paper_table1();
        let base = Profile::new(vec![1.0, 0.8, 0.6, 0.4, 0.2]).unwrap();
        let t = run(&p, &base, 0.05);
        for w in t.rows.windows(2) {
            assert!(w[1].ratio > w[0].ratio);
        }
    }
}
