//! Experiment E16 (extension) — **task granularity**: what the divisible
//! idealization costs.
//!
//! The paper's Table 2 contrasts coarse (1 s) and fine (0.1 s) tasks but
//! the analysis treats work as continuous. Quantizing the optimal FIFO
//! allocation to whole tasks (see `hetero_protocol::integral`) makes the
//! idealization's cost measurable: the table reports the work forfeited
//! as granularity coarsens across four orders of magnitude.

use hetero_core::{Params, Profile};
use hetero_protocol::integral::integral_fifo_plan;

use crate::render::{fmt_f, Table};

/// One granularity sample.
#[derive(Debug, Clone)]
pub struct GranularityRow {
    /// Work units per task.
    pub granularity: f64,
    /// Whole tasks assigned.
    pub tasks: u64,
    /// Work completed by the integral plan.
    pub integral_work: f64,
    /// The divisible-load optimum.
    pub divisible_work: f64,
    /// Loss fraction.
    pub loss: f64,
}

/// The sweep results.
#[derive(Debug, Clone)]
pub struct Granularity {
    /// The profile used.
    pub profile: Profile,
    /// Lifespan used.
    pub lifespan: f64,
    /// One row per granularity.
    pub rows: Vec<GranularityRow>,
}

/// Sweeps task granularity for a profile and lifespan.
pub fn run(params: &Params, profile: &Profile, lifespan: f64, grains: &[f64]) -> Granularity {
    let rows = grains
        .iter()
        .map(|&g| {
            let ip = integral_fifo_plan(params, profile, lifespan, g).expect("valid");
            GranularityRow {
                granularity: g,
                tasks: ip.total_tasks(),
                integral_work: ip.plan.total_work(),
                divisible_work: ip.divisible_work,
                loss: ip.loss_fraction(),
            }
        })
        .collect();
    Granularity {
        profile: profile.clone(),
        lifespan,
        rows,
    }
}

/// Default: the Table 4 cluster, one-hour lifespan, grains from 0.1 to
/// 1000 work units per task.
pub fn run_paper() -> Granularity {
    let profile = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).expect("valid");
    run(
        &Params::paper_table1(),
        &profile,
        3600.0,
        &[0.1, 1.0, 10.0, 100.0, 1000.0],
    )
}

impl Granularity {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Task granularity — cost of quantizing the divisible optimum (L = {})",
                self.lifespan
            ),
            &["units/task", "tasks", "integral W", "divisible W", "loss %"],
        );
        for r in &self.rows {
            t.row(vec![
                format!("{}", r.granularity),
                r.tasks.to_string(),
                fmt_f(r.integral_work, 1),
                fmt_f(r.divisible_work, 1),
                fmt_f(100.0 * r.loss, 3),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_grows_with_granularity() {
        let g = run_paper();
        for w in g.rows.windows(2) {
            assert!(w[1].loss >= w[0].loss - 1e-12);
        }
    }

    #[test]
    fn fine_tasks_are_nearly_free() {
        let g = run_paper();
        assert!(g.rows.first().unwrap().loss < 1e-4);
    }

    #[test]
    fn coarse_tasks_cost_real_work() {
        let g = run_paper();
        let coarsest = g.rows.last().unwrap();
        assert!(coarsest.loss > 1e-4, "1000-unit tasks visibly hurt");
        assert!(coarsest.loss < 0.5, "but not catastrophically at L = 1 h");
    }

    #[test]
    fn integral_work_is_task_multiple() {
        let g = run_paper();
        for r in &g.rows {
            let per_task = r.integral_work / r.granularity;
            assert!(
                (per_task - per_task.round()).abs() < 1e-6,
                "g = {}",
                r.granularity
            );
        }
    }

    #[test]
    fn render_has_loss_column() {
        let s = run_paper().table().to_ascii();
        assert!(s.contains("loss %"));
        assert!(s.contains("1000"));
    }
}
