//! Experiment E22 (extension) — **protocol families under faults:
//! oblivious vs adaptive vs work exchange vs MDS coding**.
//!
//! E18 established that boundary-granularity replanning dominates the
//! oblivious executor once faults appear. This experiment widens the
//! comparison to the two robustness families the related work proposes —
//! peer-to-peer *work exchange* (Attia & Tandon) and *(n, k) MDS-coded*
//! assignment (Reisizadeh et al.) — and runs all four protocols through
//! **identical** seeded fault plans on a grid of crash probability ×
//! straggler severity × cluster heterogeneity × hedge margin:
//!
//! * **oblivious** — the optimal FIFO plan, no failure reaction;
//! * **adaptive** — suffix replanning with a hedge margin (E18's winner);
//! * **exchange** — stragglers shed their residual load to the fastest
//!   healthy peer; plans are built against the hedged lifespan
//!   `L / (1 + margin)` (the knife-edge plan leaves zero slack for the
//!   transfer overhead), and lost results are retransmitted until they
//!   land — exchange never abandons work;
//! * **coded** — work is provisioned on all n workers but the certified
//!   job needs only the k smallest shares; lost results are never
//!   retransmitted, the code absorbs them.
//!
//! Each cell reports per-family throughput fractions and deadline-miss
//! rates plus a **dominance frontier**: the set of families not weakly
//! dominated on (miss rate ↓, fraction ↑) by any other. The headline
//! claim (pinned by a test): under result-message loss the coded family
//! strictly beats the *unhedged* adaptive replanner on miss rate — the
//! replanner cannot see a loss until the retransmit lands late, while
//! the decoder never needed the destroyed share. Hedged replanning buys
//! the slack back, so the margin axis exposes a genuine trade: coding
//! is insensitive to loss at a fixed provisioning overhead, replanning
//! is free of overhead but lives on its hedge.

use hetero_clustergen::{rng_from_seed, GenConfig, Shape};
use hetero_core::{xmeasure, Params};
use hetero_faults::{FaultConfig, FaultPlan};
use std::sync::Arc;

use hetero_par::{seed, Pool};
use hetero_protocol::{alloc, coded, exchange, fault_exec, replan, ExchangePolicy};

use crate::render::{fmt_f, Table};

/// Aggregates for one (crash probability, straggler factor, speed floor)
/// cell.
#[derive(Debug, Clone, PartialEq)]
pub struct ProtocolSweepRow {
    /// Per-worker crash probability.
    pub crash_p: f64,
    /// Chronic-straggler slowdown factor.
    pub straggler_factor: f64,
    /// Speed floor `lo` of the sampled profiles (lower = more
    /// heterogeneous cluster).
    pub lo: f64,
    /// Hedge margin the adaptive arm replans with (the exchange plan is
    /// built against the same hedged lifespan).
    pub margin: f64,
    /// Mean effective-throughput fraction (work back by `L` over the
    /// fault-free optimum) of the oblivious executor.
    pub oblivious_fraction: f64,
    /// Same, for the adaptive replanner.
    pub adaptive_fraction: f64,
    /// Same, for the work-exchange family.
    pub exchange_fraction: f64,
    /// Same, for the MDS-coded family (certified job only).
    pub coded_fraction: f64,
    /// Deadline-miss rate of the oblivious executor.
    pub oblivious_miss_rate: f64,
    /// Same, for the adaptive replanner.
    pub adaptive_miss_rate: f64,
    /// Same, for the work-exchange family.
    pub exchange_miss_rate: f64,
    /// Same, for the MDS-coded family (a miss is failing to decode the
    /// certified job by `L`).
    pub coded_miss_rate: f64,
    /// Mean residual-load transfers per exchange run.
    pub mean_transfers: f64,
    /// Fraction of exchange runs that degraded to adaptive replanning
    /// because no donor was available.
    pub exchange_degraded_rate: f64,
    /// Fraction of coded runs in which fewer than k shares survived.
    pub decode_failure_rate: f64,
    /// Families not weakly dominated on (miss rate, fraction), joined
    /// with `+` in oblivious/adaptive/exchange/coded order.
    pub frontier: String,
}

/// Configuration.
#[derive(Debug, Clone)]
pub struct ProtocolSweepConfig {
    /// Model parameters.
    pub params: Params,
    /// Cluster size.
    pub n: usize,
    /// Lifespan every family is measured against.
    pub lifespan: f64,
    /// Per-worker crash probabilities to sweep.
    pub crash_ps: Vec<f64>,
    /// Chronic-straggler severities to sweep (each > 1 so every trial
    /// has a detectable fault).
    pub straggler_factors: Vec<f64>,
    /// Profile speed floors to sweep (heterogeneity axis; lower `lo`
    /// widens the ρ spread).
    pub spreads: Vec<f64>,
    /// Per-worker result-loss probability (shared by every cell; this
    /// is the regime that separates coding from replanning).
    pub loss_p: f64,
    /// Maximum consecutive losses per afflicted worker.
    pub loss_max: u32,
    /// Hedge margins to sweep for the adaptive arm and the exchange
    /// plan/fallback (0 = knife-edge, no slack for retransmits).
    pub margins: Vec<f64>,
    /// Decode-threshold slack: `k = n - k_slack` shares suffice.
    pub k_slack: usize,
    /// Residual-transfer budget per exchange run.
    pub exchange_rounds: u32,
    /// Trials per cell.
    pub trials: usize,
    /// Root seed.
    pub seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for ProtocolSweepConfig {
    fn default() -> Self {
        ProtocolSweepConfig {
            params: Params::paper_table1(),
            n: 8,
            lifespan: 600.0,
            crash_ps: vec![0.0, 0.1, 0.3],
            straggler_factors: vec![1.5, 4.0],
            spreads: vec![0.9, 0.3],
            loss_p: 0.2,
            loss_max: 1,
            margins: vec![0.0, 0.1],
            k_slack: 4,
            exchange_rounds: 4,
            trials: 60,
            seed: 0x9E22,
            threads: hetero_par::default_threads(),
        }
    }
}

/// Results.
#[derive(Debug, Clone)]
pub struct ProtocolSweep {
    /// Configuration used.
    pub config: ProtocolSweepConfig,
    /// One row per swept cell, in `crash_ps × straggler_factors ×
    /// spreads × margins` order.
    pub rows: Vec<ProtocolSweepRow>,
}

/// Per-trial metrics for the four families.
struct Trial {
    fractions: [f64; 4],
    misses: [bool; 4],
    transfers: usize,
    exchange_degraded: bool,
    decode_failed: bool,
}

/// One trial of one cell: a fresh profile, one shared fault plan, four
/// executions.
fn one_trial(
    cfg: &ProtocolSweepConfig,
    crash_p: f64,
    factor: f64,
    lo: f64,
    margin: f64,
    trial_seed: u64,
) -> Trial {
    let mut rng = rng_from_seed(seed::derive(trial_seed, 1));
    let truth = hetero_clustergen::random_profile(
        &mut rng,
        GenConfig::new(cfg.n).with_lo(lo),
        Shape::Uniform,
    );
    let optimum = xmeasure::work(&cfg.params, &truth, cfg.lifespan);

    // One plan of failures, replayed identically against every family.
    let faults = FaultPlan::sample(
        &FaultConfig {
            crash_p,
            straggler_count: 1,
            straggler_factor: factor,
            loss_p: cfg.loss_p,
            loss_max: cfg.loss_max,
            ..FaultConfig::default()
        },
        cfg.n,
        cfg.lifespan,
        seed::derive(trial_seed, 2),
    )
    .expect("valid fault config");

    let plan = alloc::fifo_plan(&cfg.params, &truth, cfg.lifespan).expect("feasible");
    let oblivious =
        fault_exec::execute_with_faults(&cfg.params, &truth, &plan, &faults).expect("runs");
    let hedge = replan::HedgePolicy {
        margin,
        ..replan::HedgePolicy::default()
    };
    let adaptive =
        replan::execute_adaptive(&cfg.params, &truth, &plan, &faults, &hedge).expect("runs");

    // The exchange arm plans against the hedged lifespan so the transfer
    // overhead (extra unpack/pack plus the parcel transit) fits inside L.
    let hedged_plan =
        alloc::fifo_plan(&cfg.params, &truth, cfg.lifespan / (1.0 + margin)).expect("feasible");
    let xchg = exchange::execute_exchange(
        &cfg.params,
        &truth,
        &hedged_plan,
        &faults,
        &ExchangePolicy {
            max_rounds: cfg.exchange_rounds,
            fallback: hedge,
        },
    )
    .expect("runs");

    let k = cfg.n.saturating_sub(cfg.k_slack).max(1);
    let assignment = coded::mds_assignment(&cfg.params, &truth, cfg.lifespan, k).expect("valid k");
    let mds = coded::execute_coded(&cfg.params, &truth, &assignment, &faults).expect("runs");

    Trial {
        fractions: [
            oblivious.work_completed_by(cfg.lifespan) / optimum,
            adaptive.work_completed_by(cfg.lifespan) / optimum,
            xchg.work_completed_by(cfg.lifespan) / optimum,
            mds.work_completed_by(cfg.lifespan) / optimum,
        ],
        misses: [
            oblivious.missed_deadline(cfg.lifespan),
            adaptive.missed_deadline(cfg.lifespan),
            xchg.missed_deadline(cfg.lifespan),
            mds.missed_deadline(cfg.lifespan),
        ],
        transfers: xchg.exchanges.len(),
        exchange_degraded: xchg.degraded(),
        decode_failed: mds.decode().is_err(),
    }
}

/// Family display names, in metric-array order.
const FAMILIES: [&str; 4] = ["oblivious", "adaptive", "exchange", "coded"];

/// The dominance frontier over (miss rate ↓, fraction ↑): family `a`
/// weakly dominates `b` when it is no worse on both axes and strictly
/// better on at least one.
fn frontier(misses: &[f64; 4], fractions: &[f64; 4]) -> String {
    let dominated = |b: usize| {
        (0..4).any(|a| {
            a != b
                && misses[a] <= misses[b]
                && fractions[a] >= fractions[b]
                && (misses[a] < misses[b] || fractions[a] > fractions[b])
        })
    };
    let survivors: Vec<&str> = (0..4)
        .filter(|&i| !dominated(i))
        .map(|i| FAMILIES[i])
        .collect();
    survivors.join("+")
}

/// Runs the sweep.
pub fn run(config: &ProtocolSweepConfig) -> ProtocolSweep {
    let pool = Pool::global();
    let shared = Arc::new(config.clone());
    let cells = config.crash_ps.len()
        * config.straggler_factors.len()
        * config.spreads.len()
        * config.margins.len();
    hetero_obs::count("trials.protocol_sweep", (config.trials * cells) as u64);
    let mut rows = Vec::with_capacity(cells);
    let mut cell = 0u64;
    for &crash_p in &config.crash_ps {
        for &factor in &config.straggler_factors {
            for &lo in &config.spreads {
                for &margin in &config.margins {
                    cell += 1;
                    let cell_seed = seed::derive(config.seed, cell);
                    let shared = Arc::clone(&shared);
                    let trials = pool.map(config.trials, config.threads, move |t| {
                        one_trial(
                            &shared,
                            crash_p,
                            factor,
                            lo,
                            margin,
                            seed::derive(cell_seed, t as u64),
                        )
                    });
                    let n = trials.len() as f64;
                    let mean_fraction =
                        |i: usize| trials.iter().map(|t| t.fractions[i]).sum::<f64>() / n;
                    let miss_rate =
                        |i: usize| trials.iter().filter(|t| t.misses[i]).count() as f64 / n;
                    let fractions = [
                        mean_fraction(0),
                        mean_fraction(1),
                        mean_fraction(2),
                        mean_fraction(3),
                    ];
                    let misses = [miss_rate(0), miss_rate(1), miss_rate(2), miss_rate(3)];
                    rows.push(ProtocolSweepRow {
                        crash_p,
                        straggler_factor: factor,
                        lo,
                        margin,
                        oblivious_fraction: fractions[0],
                        adaptive_fraction: fractions[1],
                        exchange_fraction: fractions[2],
                        coded_fraction: fractions[3],
                        oblivious_miss_rate: misses[0],
                        adaptive_miss_rate: misses[1],
                        exchange_miss_rate: misses[2],
                        coded_miss_rate: misses[3],
                        mean_transfers: trials.iter().map(|t| t.transfers as f64).sum::<f64>() / n,
                        exchange_degraded_rate: trials
                            .iter()
                            .filter(|t| t.exchange_degraded)
                            .count() as f64
                            / n,
                        decode_failure_rate: trials.iter().filter(|t| t.decode_failed).count()
                            as f64
                            / n,
                        frontier: frontier(&misses, &fractions),
                    });
                }
            }
        }
    }
    ProtocolSweep {
        config: config.clone(),
        rows,
    }
}

impl ProtocolSweep {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            format!(
                "Protocol families under faults — n = {}, k = {}, loss p = {}, {} trials/cell",
                self.config.n,
                self.config.n.saturating_sub(self.config.k_slack).max(1),
                self.config.loss_p,
                self.config.trials
            ),
            &[
                "crash p",
                "straggle ×",
                "lo",
                "margin",
                "obliv %",
                "adapt %",
                "xchg %",
                "coded %",
                "obliv miss",
                "adapt miss",
                "xchg miss",
                "coded miss",
                "xfers",
                "frontier",
            ],
        );
        for r in &self.rows {
            t.row(vec![
                fmt_f(r.crash_p, 2),
                fmt_f(r.straggler_factor, 1),
                fmt_f(r.lo, 2),
                fmt_f(r.margin, 2),
                fmt_f(100.0 * r.oblivious_fraction, 2),
                fmt_f(100.0 * r.adaptive_fraction, 2),
                fmt_f(100.0 * r.exchange_fraction, 2),
                fmt_f(100.0 * r.coded_fraction, 2),
                fmt_f(r.oblivious_miss_rate, 3),
                fmt_f(r.adaptive_miss_rate, 3),
                fmt_f(r.exchange_miss_rate, 3),
                fmt_f(r.coded_miss_rate, 3),
                fmt_f(r.mean_transfers, 2),
                r.frontier.clone(),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> ProtocolSweepConfig {
        ProtocolSweepConfig {
            n: 6,
            crash_ps: vec![0.0, 0.2],
            straggler_factors: vec![3.0],
            spreads: vec![0.5],
            k_slack: 3,
            trials: 30,
            seed: 17,
            threads: 4,
            ..ProtocolSweepConfig::default()
        }
    }

    #[test]
    fn coded_beats_adaptive_under_result_loss() {
        // The acceptance claim: with result-message loss in the fault
        // vocabulary, at least one cell shows the coded family strictly
        // below adaptive replanning on miss rate. (The mechanism: the
        // replanner cannot see a loss until the retransmit arrives late,
        // while the decoder never needed the destroyed share.)
        let r = run(&quick());
        assert!(
            r.rows
                .iter()
                .any(|row| row.coded_miss_rate < row.adaptive_miss_rate),
            "no cell had coded strictly beat adaptive: {:?}",
            r.rows
                .iter()
                .map(|row| (row.coded_miss_rate, row.adaptive_miss_rate))
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn every_frontier_is_nonempty_and_lists_known_families() {
        let r = run(&quick());
        for row in &r.rows {
            assert!(!row.frontier.is_empty(), "empty frontier at {row:?}");
            for name in row.frontier.split('+') {
                assert!(FAMILIES.contains(&name), "unknown family `{name}`");
            }
        }
    }

    #[test]
    fn the_hedge_margin_is_what_protects_the_replanner() {
        // The flip side of the acceptance claim: with slack to absorb
        // retransmits the hedged replanner never delivers late, while
        // the unhedged one misses whenever a loss lands on its
        // knife-edge schedule.
        let r = run(&quick());
        for row in &r.rows {
            if row.margin > 0.0 {
                assert_eq!(
                    row.adaptive_miss_rate, 0.0,
                    "hedged replanner delivered late at crash_p = {}",
                    row.crash_p
                );
            } else {
                assert!(
                    row.adaptive_miss_rate > 0.0,
                    "unhedged replanner absorbed every loss at crash_p = {}",
                    row.crash_p
                );
            }
        }
    }

    #[test]
    fn exchange_stays_useful_under_pure_straggling() {
        // With no crashes and no losses the exchange family's hedged
        // plan plus residual transfers should miss no more often than
        // the oblivious knife-edge plan, and some trials should trade.
        let cfg = ProtocolSweepConfig {
            loss_p: 0.0,
            crash_ps: vec![0.0],
            ..quick()
        };
        let r = run(&cfg);
        for row in &r.rows {
            assert!(
                row.exchange_miss_rate <= row.oblivious_miss_rate,
                "exchange {} > oblivious {}",
                row.exchange_miss_rate,
                row.oblivious_miss_rate
            );
        }
        assert!(
            r.rows.iter().any(|row| row.mean_transfers > 0.0),
            "no cell recorded a residual transfer"
        );
    }

    #[test]
    fn deterministic_across_threads() {
        let mut cfg = quick();
        cfg.trials = 20;
        cfg.threads = 1;
        let a = run(&cfg);
        cfg.threads = 8;
        let b = run(&cfg);
        assert_eq!(a.rows, b.rows);
    }
}
