//! Experiment E2 — the paper's **Table 3**: HECRs of the two §2.5 cluster
//! families at 8, 16, and 32 computers.
//!
//! `C1` spreads speeds evenly over `[1/n, 1]`; `C2 = ⟨1/i⟩` weights them
//! into the fast half. The table shows (a) `C2`'s HECR beats `C1`'s at
//! every size, and (b) the advantage grows with cluster size.

use hetero_core::{hecr, Params, Profile};

use crate::render::{fmt_f, Table};

/// The published Table 3 cells, for side-by-side comparison.
pub const PAPER_VALUES: [(usize, f64, f64); 3] =
    [(8, 0.366, 0.216), (16, 0.298, 0.116), (32, 0.251, 0.060)];

/// One row of the reproduced table.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Cluster size.
    pub n: usize,
    /// HECR of `C1` (uniform spread).
    pub hecr_c1: f64,
    /// HECR of `C2` (harmonic).
    pub hecr_c2: f64,
    /// `hecr_c1 / hecr_c2` — `C2`'s advantage factor.
    pub advantage: f64,
}

/// The reproduced table plus renderers.
#[derive(Debug, Clone)]
pub struct Table3 {
    /// Parameters used.
    pub params: Params,
    /// One row per cluster size.
    pub rows: Vec<Table3Row>,
}

/// Computes Table 3 for the given cluster sizes.
pub fn run(params: &Params, sizes: &[usize]) -> Table3 {
    let rows = sizes
        .iter()
        .map(|&n| {
            let c1 = hecr::hecr(params, &Profile::uniform_spread(n)).expect("valid family");
            let c2 = hecr::hecr(params, &Profile::harmonic(n)).expect("valid family");
            Table3Row {
                n,
                hecr_c1: c1,
                hecr_c2: c2,
                advantage: c1 / c2,
            }
        })
        .collect();
    Table3 {
        params: *params,
        rows,
    }
}

/// Computes the paper's exact configuration (Table 1 parameters,
/// n ∈ {8, 16, 32}).
pub fn run_paper() -> Table3 {
    run(&Params::paper_table1(), &[8, 16, 32])
}

impl Table3 {
    /// ASCII rendering with paper values alongside where available.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Table 3 — HECRs for the sample heterogeneous clusters",
            &[
                "n",
                "C1 (ours)",
                "C1 (paper)",
                "C2 (ours)",
                "C2 (paper)",
                "C1/C2",
            ],
        );
        for r in &self.rows {
            let paper = PAPER_VALUES.iter().find(|(n, _, _)| *n == r.n);
            t.row(vec![
                r.n.to_string(),
                fmt_f(r.hecr_c1, 3),
                paper.map_or("-".into(), |(_, v, _)| fmt_f(*v, 3)),
                fmt_f(r.hecr_c2, 3),
                paper.map_or("-".into(), |(_, _, v)| fmt_f(*v, 3)),
                fmt_f(r.advantage, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_cells_within_tolerance() {
        let t = run_paper();
        for (row, (n, p1, p2)) in t.rows.iter().zip(PAPER_VALUES) {
            assert_eq!(row.n, n);
            assert!((row.hecr_c1 - p1).abs() < 7e-3, "C1 n={n}");
            assert!((row.hecr_c2 - p2).abs() < 7e-3, "C2 n={n}");
        }
    }

    #[test]
    fn advantage_grows_with_size() {
        let t = run_paper();
        assert!(t.rows.windows(2).all(|w| w[1].advantage > w[0].advantage));
        assert!(
            t.rows.last().unwrap().advantage > 4.0,
            "paper: 'more than 4'"
        );
    }

    #[test]
    fn render_includes_paper_columns() {
        let s = run_paper().table().to_ascii();
        assert!(s.contains("0.366"), "paper C1 n=8 shown: {s}");
        assert!(s.contains("0.060"), "paper C2 n=32 shown");
    }

    #[test]
    fn run_handles_other_sizes() {
        let t = run(&Params::paper_table1(), &[4, 64]);
        assert_eq!(t.rows.len(), 2);
        assert!(t.rows[0].hecr_c1 > t.rows[1].hecr_c1, "bigger C1 is faster");
        let s = t.table().to_ascii();
        assert!(s.contains(" 64 ") || s.contains("64"));
    }
}
