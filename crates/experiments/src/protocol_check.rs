//! Experiments E9/E10 — Theorems 1–2 observed on the simulator.
//!
//! E9: the optimal FIFO plan completes the same work under every startup
//! order, and strictly more than naive baselines. E10: the simulated
//! per-lifespan work rate equals the Theorem 2 closed form at every
//! lifespan (the allocation is exact, not merely asymptotic — the
//! *asymptotics* in the paper concern protocols' fixed message overheads,
//! which the model already abstracts away).

use hetero_core::xmeasure;
use hetero_core::{Params, Profile};
use hetero_protocol::{alloc, baseline, exec, validate};

use crate::render::{fmt_f, Table};

/// Results of the protocol validation experiment.
#[derive(Debug, Clone)]
pub struct ProtocolCheck {
    /// Profile used.
    pub profile: Profile,
    /// Lifespans probed.
    pub lifespans: Vec<f64>,
    /// Per lifespan: (simulated optimal work, Theorem 2 work, equal-split
    /// work, speed-proportional work).
    pub rows: Vec<(f64, f64, f64, f64, f64)>,
    /// Work totals under several startup orders at the last lifespan.
    pub order_totals: Vec<f64>,
    /// Protocol-invariant violations observed (must be empty).
    pub violations: usize,
}

/// Runs the check on a profile across lifespans.
pub fn run(params: &Params, profile: &Profile, lifespans: &[f64]) -> ProtocolCheck {
    let mut rows = Vec::new();
    let mut violations = 0;
    for &lifespan in lifespans {
        let plan = alloc::fifo_plan(params, profile, lifespan).expect("valid plan");
        let run = exec::execute(params, profile, &plan);
        violations += validate::validate(params, profile, &run).len();
        let simulated = run.work_completed_by(lifespan);
        let closed = xmeasure::work(params, profile, lifespan);
        let equal = baseline::equal_split_plan(params, profile, lifespan)
            .expect("valid")
            .total_work();
        let prop = baseline::speed_proportional_plan(params, profile, lifespan)
            .expect("valid")
            .total_work();
        rows.push((lifespan, simulated, closed, equal, prop));
    }

    // Theorem 1(2): permutations of the startup order.
    let last = *lifespans.last().expect("nonempty lifespans");
    let n = profile.n();
    let mut orders: Vec<Vec<usize>> = vec![(0..n).collect(), (0..n).rev().collect()];
    // An interleaved order as a third witness.
    let mut inter: Vec<usize> = (0..n).step_by(2).collect();
    inter.extend((1..n).step_by(2));
    orders.push(inter);
    let order_totals = orders
        .iter()
        .map(|order| {
            let plan = alloc::fifo_plan_ordered(params, profile, order, last).expect("valid");
            let run = exec::execute(params, profile, &plan);
            violations += validate::validate(params, profile, &run).len();
            run.work_completed_by(last)
        })
        .collect();

    ProtocolCheck {
        profile: profile.clone(),
        lifespans: lifespans.to_vec(),
        rows,
        order_totals,
        violations,
    }
}

/// Default configuration: the Table 4 cluster across three lifespans.
pub fn run_paper() -> ProtocolCheck {
    let profile = Profile::new(vec![1.0, 0.5, 1.0 / 3.0, 0.25]).expect("valid");
    run(&Params::paper_table1(), &profile, &[60.0, 3600.0, 86_400.0])
}

impl ProtocolCheck {
    /// ASCII rendering.
    pub fn table(&self) -> Table {
        let mut t = Table::new(
            "Theorems 1–2 on the simulator — completed work by lifespan",
            &[
                "L",
                "simulated (FIFO)",
                "Theorem 2",
                "equal split",
                "∝ speed",
            ],
        );
        for &(l, sim, closed, equal, prop) in &self.rows {
            t.row(vec![
                fmt_f(l, 0),
                fmt_f(sim, 2),
                fmt_f(closed, 2),
                fmt_f(equal, 2),
                fmt_f(prop, 2),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simulation_matches_theorem2_at_every_lifespan() {
        let c = run_paper();
        for &(l, sim, closed, _, _) in &c.rows {
            assert!(
                (sim - closed).abs() / closed < 1e-9,
                "L = {l}: {sim} vs {closed}"
            );
        }
    }

    #[test]
    fn no_invariant_violations() {
        assert_eq!(run_paper().violations, 0);
    }

    #[test]
    fn fifo_beats_both_baselines() {
        let c = run_paper();
        for &(l, sim, _, equal, prop) in &c.rows {
            assert!(sim > equal, "L = {l}");
            assert!(sim > prop, "L = {l}");
        }
    }

    #[test]
    fn startup_orders_tie() {
        let c = run_paper();
        let base = c.order_totals[0];
        for &w in &c.order_totals[1..] {
            assert!((w - base).abs() / base < 1e-9);
        }
    }

    #[test]
    fn render_contains_all_lifespans() {
        let c = run_paper();
        let s = c.table().to_ascii();
        assert!(s.contains("86400"));
        assert!(s.contains("Theorem 2"));
    }
}
