//! # hetero-linalg — dense linear algebra, from scratch
//!
//! The general worksharing protocols of `hetero-protocol` (arbitrary
//! startup order Σ and finishing order Φ) define their work allocations
//! through an `n × n` linear timing system rather than the FIFO closed
//! form. This crate provides the solver: a dense [`Matrix`] type and
//! [`lu_solve`] — LU decomposition with partial pivoting — plus
//! [`Lu::determinant`] and [`Lu::solve`] for reuse across right-hand
//! sides.
//!
//! Protocol systems are tiny (n = cluster size), so the implementation
//! favours clarity and numerical robustness (partial pivoting, explicit
//! singularity detection) over blocking or SIMD.
//!
//! ```
//! use hetero_linalg::{lu_solve, Matrix};
//!
//! // 2x + y = 5, x − y = 1  →  x = 2, y = 1.
//! let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, -1.0]]);
//! let x = lu_solve(&a, &[5.0, 1.0]).unwrap();
//! assert!((x[0] - 2.0).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// A dense row-major `rows × cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

/// Why a system could not be solved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular (or numerically so) at the given pivot.
    Singular {
        /// Elimination step where the pivot vanished.
        pivot: usize,
    },
    /// Dimension mismatch between operands.
    Shape,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at elimination step {pivot}")
            }
            LinalgError::Shape => write!(f, "operand dimensions do not match"),
        }
    }
}

impl std::error::Error for LinalgError {}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds from row slices.
    ///
    /// # Panics
    /// Panics when rows have unequal lengths or the input is empty.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(cols > 0, "matrix must have at least one column");
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "ragged rows");
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    /// Panics when `x.len() != cols`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        // hetero-check: allow(float-accum) — row-major dot product in pinned index order; LU goldens fix these bits
        (0..self.rows)
            .map(|i| {
                let row = &self.data[i * self.cols..(i + 1) * self.cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Matrix–matrix product `A·B`.
    pub fn mul(&self, other: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::Shape);
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                // hetero-check: allow(float-eq) — exact-zero sparsity skip; any nonzero (however tiny) must multiply
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Maximum absolute entry (the max norm).
    pub fn max_norm(&self) -> f64 {
        self.data.iter().fold(0.0, |m, v| m.max(v.abs()))
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for i in 0..self.rows {
            write!(f, "  ")?;
            for j in 0..self.cols {
                write!(f, "{:>12.6} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

/// An LU factorization `P·A = L·U` with partial pivoting.
pub struct Lu {
    /// Combined L (strict lower, unit diagonal implied) and U storage.
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row now at position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 / −1), for the determinant.
    sign: f64,
}

/// Relative pivot threshold below which the matrix is declared singular.
const PIVOT_EPS: f64 = 1e-13;

impl Lu {
    /// Factorizes `a` (which must be square).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.rows != a.cols {
            return Err(LinalgError::Shape);
        }
        let n = a.rows;
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut sign = 1.0;
        let scale = lu.max_norm().max(f64::MIN_POSITIVE);

        for k in 0..n {
            // Partial pivoting: largest |entry| in column k at/below row k.
            let (pivot_row, pivot_val) = (k..n)
                .map(|r| (r, lu[(r, k)]))
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                // hetero-check: allow(expect) — k < n, so the range k..n is never empty
                .expect("nonempty range");
            if pivot_val.abs() <= PIVOT_EPS * scale {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(pivot_row, j)];
                    lu[(pivot_row, j)] = tmp;
                }
                perm.swap(k, pivot_row);
                sign = -sign;
            }
            for r in (k + 1)..n {
                let factor = lu[(r, k)] / lu[(k, k)];
                lu[(r, k)] = factor; // store L below the diagonal
                for j in (k + 1)..n {
                    lu[(r, j)] -= factor * lu[(k, j)];
                }
            }
        }
        Ok(Lu { lu, perm, sign })
    }

    /// Solves `A·x = b`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows;
        if b.len() != n {
            return Err(LinalgError::Shape);
        }
        // Forward substitution on the permuted RHS (L has unit diagonal).
        let mut y: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for i in 1..n {
            for j in 0..i {
                // hetero-check: allow(float-accum) — forward substitution updates in the fixed j order the factorization defines
                y[i] -= self.lu[(i, j)] * y[j];
            }
        }
        // Back substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            for j in (i + 1)..n {
                let xj = x[j];
                // hetero-check: allow(float-accum) — back substitution, same pinned elimination order as above
                x[i] -= self.lu[(i, j)] * xj;
            }
            x[i] /= self.lu[(i, i)];
        }
        Ok(x)
    }

    /// The determinant of the factorized matrix.
    pub fn determinant(&self) -> f64 {
        let n = self.lu.rows;
        (0..n).fold(self.sign, |acc, i| acc * self.lu[(i, i)])
    }
}

/// One-shot `A·x = b`.
pub fn lu_solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    Lu::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_to_rhs() {
        let a = Matrix::identity(4);
        let b = [1.0, -2.0, 3.0, 0.5];
        assert_eq!(lu_solve(&a, &b).unwrap(), b.to_vec());
    }

    #[test]
    fn known_3x3_system() {
        // From any linear-algebra text: unique solution (1, 2, 3).
        let a = Matrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let b = a.mul_vec(&[1.0, 2.0, 3.0]);
        let x = lu_solve(&a, &b).unwrap();
        for (xi, expect) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((xi - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = lu_solve(&a, &[3.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 3.0]);
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            lu_solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
        let z = Matrix::zeros(3, 3);
        assert!(Lu::new(&z).is_err());
    }

    #[test]
    fn shape_errors() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::Shape)));
        let sq = Matrix::identity(3);
        assert!(matches!(
            lu_solve(&sq, &[1.0, 2.0]),
            Err(LinalgError::Shape)
        ));
        assert!(matches!(a.mul(&a), Err(LinalgError::Shape)));
    }

    #[test]
    fn determinant_values() {
        assert!((Lu::new(&Matrix::identity(5)).unwrap().determinant() - 1.0).abs() < 1e-12);
        let a = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]);
        assert!((Lu::new(&a).unwrap().determinant() - 6.0).abs() < 1e-12);
        // Swapping rows flips the sign.
        let b = Matrix::from_rows(&[&[0.0, 3.0], &[2.0, 0.0]]);
        assert!((Lu::new(&b).unwrap().determinant() + 6.0).abs() < 1e-12);
    }

    #[test]
    fn factorization_reused_across_rhs() {
        let a = Matrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = Lu::new(&a).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, -2.0]] {
            let x = lu.solve(&b).unwrap();
            let back = a.mul_vec(&x);
            for (r, e) in back.iter().zip(b) {
                assert!((r - e).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn mul_and_mul_vec_agree() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let x = [1.0, 0.5, -1.0];
        let as_mat = Matrix::from_rows(&[&[1.0], &[0.5], &[-1.0]]);
        let v = a.mul_vec(&x);
        let m = a.mul(&as_mat).unwrap();
        assert_eq!(v, vec![m[(0, 0)], m[(1, 0)]]);
    }

    #[test]
    fn identity_times_anything_is_identity_action() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[2.0, 7.0]]);
        let i = Matrix::identity(2);
        assert_eq!(i.mul(&a).unwrap(), a);
        assert_eq!(a.mul(&i).unwrap(), a);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_bounds_checked() {
        let a = Matrix::zeros(2, 2);
        let _ = a[(2, 0)];
    }
}
