//! Property tests: LU against algebraic identities on random
//! well-conditioned matrices.

use hetero_linalg::{lu_solve, Lu, Matrix};
use proptest::prelude::*;

/// Random diagonally dominant `n × n` matrices — guaranteed nonsingular
/// and well-conditioned enough for tight tolerances.
fn dd_matrix(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |vals| {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let v = vals[i * n + j];
                m[(i, j)] = v;
                row_sum += v.abs();
            }
            m[(i, i)] = row_sum + 1.0; // dominance
        }
        m
    })
}

/// A matrix with a matching right-hand side.
fn system() -> impl Strategy<Value = (Matrix, Vec<f64>)> {
    (1usize..8).prop_flat_map(|n| (dd_matrix(n), prop::collection::vec(-5.0f64..5.0, n)))
}

/// A pair of same-size matrices.
fn pair() -> impl Strategy<Value = (Matrix, Matrix)> {
    (1usize..6).prop_flat_map(|n| (dd_matrix(n), dd_matrix(n)))
}

proptest! {
    #[test]
    fn solve_then_multiply_roundtrips((a, b) in system()) {
        let x = lu_solve(&a, &b).unwrap();
        let back = a.mul_vec(&x);
        for (r, e) in back.iter().zip(&b) {
            prop_assert!((r - e).abs() < 1e-9, "{r} vs {e}");
        }
    }

    #[test]
    fn determinant_of_product_is_product_of_determinants((a, b) in pair()) {
        let da = Lu::new(&a).unwrap().determinant();
        let db = Lu::new(&b).unwrap().determinant();
        let dab = Lu::new(&a.mul(&b).unwrap()).unwrap().determinant();
        prop_assert!((dab - da * db).abs() <= 1e-7 * dab.abs().max(1.0),
            "{dab} vs {da}·{db}");
    }

    #[test]
    fn solving_identity_columns_inverts((a, _) in system()) {
        // A·A⁻¹ = I, column by column.
        let n = a.rows();
        let lu = Lu::new(&a).unwrap();
        for j in 0..n {
            let mut e = vec![0.0; n];
            e[j] = 1.0;
            let col = lu.solve(&e).unwrap();
            let back = a.mul_vec(&col);
            for (i, v) in back.iter().enumerate() {
                let expect = if i == j { 1.0 } else { 0.0 };
                prop_assert!((v - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn row_scaling_scales_determinant((a, _) in system()) {
        // Multiply row 0 by 2 → determinant doubles.
        let mut scaled = a.clone();
        for j in 0..a.cols() {
            scaled[(0, j)] *= 2.0;
        }
        let d = Lu::new(&a).unwrap().determinant();
        let d2 = Lu::new(&scaled).unwrap().determinant();
        prop_assert!((d2 - 2.0 * d).abs() <= 1e-8 * d2.abs().max(1.0));
    }
}
