//! Decimal rendering of exact rationals.
//!
//! Certified results (HECR brackets, exact X comparisons) need to be
//! *reported* at a chosen precision without silently passing through
//! f64. [`Ratio::to_decimal_string`] renders a correctly rounded
//! (half-to-even) fixed-point decimal of any width, exactly.

use crate::{BigInt, BigUint, Ratio, Sign};

impl Ratio {
    /// Renders the value as a decimal string with exactly `digits`
    /// fractional digits, rounded half-to-even. The result is exact
    /// arithmetic throughout — no float conversion.
    ///
    /// ```
    /// use hetero_exact::Ratio;
    /// assert_eq!(Ratio::from_frac(1, 3).to_decimal_string(6), "0.333333");
    /// assert_eq!(Ratio::from_frac(-1, 8).to_decimal_string(2), "-0.12");
    /// assert_eq!(Ratio::from_frac(5, 2).to_decimal_string(0), "2");
    /// ```
    pub fn to_decimal_string(&self, digits: usize) -> String {
        // Scale to an integer: round(self · 10^digits), half-to-even.
        let pow10 = BigUint::from(10u64).pow(
            // hetero-check: allow(expect) — a digit count beyond u32::MAX cannot be materialized as a String anyway
            u32::try_from(digits).expect("precision fits in u32"),
        );
        let scaled_num = self.numer().magnitude() * &pow10;
        let (mut q, r) = scaled_num.divrem(self.denom());
        let twice_r = &r + &r;
        let round_up = match twice_r.cmp(self.denom()) {
            std::cmp::Ordering::Greater => true,
            std::cmp::Ordering::Equal => !(&q % &BigUint::from(2u64)).is_zero(),
            std::cmp::Ordering::Less => false,
        };
        if round_up {
            q = &q + &BigUint::one();
        }

        let all = q.to_string();
        let (int_part, frac_part) = if digits == 0 {
            (all.as_str().to_string(), String::new())
        } else if all.len() > digits {
            let split = all.len() - digits;
            (all[..split].to_string(), all[split..].to_string())
        } else {
            ("0".to_string(), format!("{all:0>digits$}"))
        };

        let sign = if self.is_negative() && !(q.is_zero()) {
            "-"
        } else {
            ""
        };
        if digits == 0 {
            format!("{sign}{int_part}")
        } else {
            format!("{sign}{int_part}.{frac_part}")
        }
    }

    /// Parses a plain decimal literal like `"-12.0345"` into the exact
    /// rational it denotes. Returns `None` on malformed input.
    pub fn from_decimal_str(s: &str) -> Option<Ratio> {
        let (sign, rest) = match s.strip_prefix('-') {
            Some(r) => (Sign::Minus, r),
            None => (Sign::Plus, s),
        };
        let (int_s, frac_s) = match rest.split_once('.') {
            Some((i, f)) => (i, f),
            None => (rest, ""),
        };
        if int_s.is_empty() && frac_s.is_empty() {
            return None;
        }
        let int_part = if int_s.is_empty() {
            BigUint::zero()
        } else {
            BigUint::parse_decimal(int_s)?
        };
        let frac_part = if frac_s.is_empty() {
            BigUint::zero()
        } else {
            BigUint::parse_decimal(frac_s)?
        };
        let denom = BigUint::from(10u64).pow(u32::try_from(frac_s.len()).ok()?);
        let num = &int_part * &denom + &frac_part;
        let sign = if num.is_zero() { Sign::Zero } else { sign };
        Some(Ratio::new(BigInt::from_sign_mag(sign, num), denom))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: u64) -> Ratio {
        Ratio::from_frac(n, d)
    }

    #[test]
    fn exact_terminating_decimals() {
        assert_eq!(r(1, 4).to_decimal_string(4), "0.2500");
        assert_eq!(r(7, 1).to_decimal_string(2), "7.00");
        assert_eq!(r(12345, 100).to_decimal_string(2), "123.45");
        assert_eq!(Ratio::zero().to_decimal_string(3), "0.000");
    }

    #[test]
    fn repeating_decimals_truncate_with_rounding() {
        assert_eq!(r(2, 3).to_decimal_string(4), "0.6667");
        assert_eq!(r(1, 7).to_decimal_string(6), "0.142857");
        assert_eq!(r(1, 6).to_decimal_string(3), "0.167");
    }

    #[test]
    fn half_to_even_rounding() {
        // 0.125 at 2 digits: 12.5 → even → 12.
        assert_eq!(r(1, 8).to_decimal_string(2), "0.12");
        // 0.375 at 2 digits: 37.5 → even → 38.
        assert_eq!(r(3, 8).to_decimal_string(2), "0.38");
    }

    #[test]
    fn negatives_and_signs() {
        assert_eq!(r(-2, 3).to_decimal_string(3), "-0.667");
        assert_eq!(r(-1, 1).to_decimal_string(0), "-1");
        // A negative that rounds to zero prints without a stray sign.
        assert_eq!(r(-1, 10_000).to_decimal_string(2), "0.00");
    }

    #[test]
    fn zero_digit_rendering_rounds_to_integer() {
        assert_eq!(r(5, 2).to_decimal_string(0), "2", "2.5 → even 2");
        assert_eq!(r(7, 2).to_decimal_string(0), "4", "3.5 → even 4");
        assert_eq!(r(49, 10).to_decimal_string(0), "5");
    }

    #[test]
    fn decimal_parse_roundtrip() {
        for s in ["0.25", "-3.125", "17", "-0.0001", "123.450"] {
            let v = Ratio::from_decimal_str(s).unwrap();
            let digits = s.split_once('.').map_or(0, |(_, f)| f.len());
            assert_eq!(v.to_decimal_string(digits), normalize(s), "{s}");
        }
        assert!(Ratio::from_decimal_str("").is_none());
        assert!(Ratio::from_decimal_str(".").is_none());
        assert!(Ratio::from_decimal_str("1.2.3").is_none());
        assert!(Ratio::from_decimal_str("x").is_none());
        assert_eq!(Ratio::from_decimal_str("-0.0").unwrap(), Ratio::zero());
        assert_eq!(Ratio::from_decimal_str(".5").unwrap(), r(1, 2));
    }

    fn normalize(s: &str) -> String {
        // "-0.0001" style strings are already canonical for the test set.
        s.to_string()
    }

    #[test]
    fn agrees_with_f64_formatting_on_dyadics() {
        let v = Ratio::from_f64(0.308_593_75).unwrap(); // 79/256
        assert_eq!(v.to_decimal_string(8), "0.30859375");
    }

    #[test]
    fn hecr_bracket_style_usage() {
        // Report a certified bracket to 9 decimal places.
        let lo = r(2_159_827, 10_000_000);
        let hi = &lo + &r(1, 1_000_000_000);
        let (slo, shi) = (lo.to_decimal_string(9), hi.to_decimal_string(9));
        assert_eq!(slo, "0.215982700");
        assert_eq!(shi, "0.215982701");
    }
}
